#!/usr/bin/env python3
"""End-to-end smoke test for the ``repro-mc serve`` admission daemon.

Starts a real daemon subprocess on an ephemeral port, then checks the
ISSUE acceptance criteria from the outside:

1.  **Offline parity** — ``POST /admit`` answers are bit-identical to
    running the same partitioner offline, for several random task sets
    and schemes.
2.  **Throughput** — a concurrent burst of ``POST /place`` admission
    queries sustains at least ``SERVE_SMOKE_MIN_QPS`` queries/s
    (default 1000) *and* the queries actually coalesce
    (``serve.batch_size`` p50 > 1 in the exported metrics).
3.  **Graceful shutdown** — SIGINT drains the queue, the process exits
    0, and the metrics dump + run manifest are written.

Environment overrides: ``SERVE_SMOKE_MIN_QPS``, ``SERVE_SMOKE_PLACES``,
``SERVE_SMOKE_THREADS``.

Run from the repo root (package installed, or ``PYTHONPATH=src``):

    python scripts/serve_smoke.py
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.gen import WorkloadConfig, generate_taskset  # noqa: E402
from repro.model.io import taskset_to_dict  # noqa: E402
from repro.partition.registry import get_partitioner  # noqa: E402

MIN_QPS = float(os.environ.get("SERVE_SMOKE_MIN_QPS", "1000"))
PLACES = int(os.environ.get("SERVE_SMOKE_PLACES", "2000"))
THREADS = int(os.environ.get("SERVE_SMOKE_THREADS", "16"))
CORES = 4

_LISTEN_RE = re.compile(r"listening on http://([\d.]+):(\d+)")


def start_daemon(metrics_path: Path) -> tuple[subprocess.Popen, str, int]:
    """Launch ``repro-mc serve`` and wait for the listening banner."""
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--cores",
            str(CORES),
            "--port",
            "0",
            "--window-ms",
            "2",
            "--metrics",
            str(metrics_path),
        ],
        stderr=subprocess.PIPE,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line:
            raise SystemExit(
                f"daemon exited before listening (rc={proc.poll()})"
            )
        match = _LISTEN_RE.search(line)
        if match:
            return proc, match.group(1), int(match.group(2))
    raise SystemExit("daemon never announced its port")


def request(host: str, port: int, method: str, path: str, payload=None):
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body)
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())
    finally:
        conn.close()


def check_admit_parity(host: str, port: int) -> None:
    """Serve answers must match the offline partitioner exactly."""
    config = WorkloadConfig(cores=CORES, levels=2, nsu=0.7, ifc=1.0)
    for seed in range(5):
        taskset = generate_taskset(config, np.random.default_rng(seed))
        for scheme in ("ca-tpa", "ffd", "wfd"):
            status, body = request(
                host,
                port,
                "POST",
                "/admit",
                {
                    "taskset": taskset_to_dict(taskset),
                    "cores": CORES,
                    "scheme": scheme,
                },
            )
            assert status == 200, f"admit {scheme} seed={seed}: HTTP {status}"
            offline = get_partitioner(scheme).partition(taskset, CORES)
            expect = {
                "schedulable": offline.schedulable,
                "assignment": offline.partition.assignment.tolist(),
                "order": list(offline.order),
                "failed_task": offline.failed_task,
                "utilizations": offline.partition.core_utilizations().tolist(),
            }
            got = {key: body[key] for key in expect}
            assert got == expect, (
                f"serve/offline divergence ({scheme}, seed={seed}):\n"
                f"  serve:   {got}\n  offline: {expect}"
            )
    print("parity: 5 task sets x 3 schemes match offline exactly")


def run_place_burst(host: str, port: int) -> dict:
    """Concurrent /place burst; returns counts + throughput."""
    per_thread = PLACES // THREADS
    total = per_thread * THREADS
    statuses: list[list[int]] = [[] for _ in range(THREADS)]
    errors: list[BaseException] = []
    barrier = threading.Barrier(THREADS + 1)

    def worker(tid: int) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=60)
        try:
            barrier.wait()
            for i in range(per_thread):
                # Tiny utilization so almost everything is admissible.
                payload = json.dumps(
                    {
                        "task": {
                            "period": 4000.0,
                            "wcets": [0.5, 1.0],
                            "name": f"w{tid}-{i}",
                        }
                    }
                )
                conn.request("POST", "/place", body=payload)
                resp = conn.getresponse()
                resp.read()
                statuses[tid].append(resp.status)
        except BaseException as exc:  # surfaced after join
            errors.append(exc)
        finally:
            conn.close()

    threads = [
        threading.Thread(target=worker, args=(tid,)) for tid in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.monotonic()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - start
    if errors:
        raise errors[0]

    flat = [status for per in statuses for status in per]
    accepted = flat.count(200)
    rejected = flat.count(409)
    assert accepted + rejected == total, f"unexpected statuses: {set(flat)}"
    qps = total / elapsed
    print(
        f"throughput: {total} /place queries in {elapsed:.2f}s "
        f"({qps:.0f} qps; {accepted} accepted, {rejected} rejected)"
    )
    assert qps >= MIN_QPS, f"{qps:.0f} qps < floor {MIN_QPS:.0f}"

    status, state = request(host, port, "GET", "/state")
    assert status == 200
    assert state["tasks"] == accepted, (
        f"/state tasks={state['tasks']} != accepted={accepted}"
    )
    assert len(set(state["assignment"])) > 1, "burst never left core 0"
    return {"accepted": accepted, "rejected": rejected, "qps": qps}


def check_shutdown(proc: subprocess.Popen, metrics_path: Path, burst: dict):
    proc.send_signal(signal.SIGINT)
    try:
        _, stderr = proc.communicate(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise SystemExit("daemon did not drain within 30s of SIGINT")
    assert proc.returncode == 0, f"daemon exited {proc.returncode}"
    assert "drained and stopped" in stderr, stderr

    dump = json.loads(metrics_path.read_text())
    counters = dump["metrics"]["counters"]
    batch = dump["metrics"]["summaries"]["serve.batch_size"]
    assert counters["serve.place.accepted"] == burst["accepted"]
    assert batch["p50"] > 1, (
        f"serve.batch_size p50={batch['p50']} — the burst never coalesced"
    )

    manifest_path = metrics_path.with_name("serve.metrics.manifest.json")
    manifest = json.loads(manifest_path.read_text())
    assert manifest["run_id"] == dump["run_id"]
    assert manifest["figure"] == "serve"
    print(
        f"shutdown: rc=0, metrics + manifest exported "
        f"(batch p50={batch['p50']:.1f}, max={batch['max']:.0f})"
    )


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        metrics_path = Path(tmp) / "serve.metrics.json"
        proc, host, port = start_daemon(metrics_path)
        try:
            status, body = request(host, port, "GET", "/healthz")
            assert status == 200 and body["ok"]
            # The daemon must run the incremental probe backend by
            # default — the offline-parity check below then proves the
            # backend choice changes no decision.
            assert body["probe_impl"] == "incremental", body
            check_admit_parity(host, port)
            burst = run_place_burst(host, port)
            check_shutdown(proc, metrics_path, burst)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
    print("serve smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
