#!/usr/bin/env python3
"""End-to-end smoke test for the ``repro-mc serve`` admission daemon.

Starts a real daemon subprocess on an ephemeral port, then checks the
ISSUE acceptance criteria from the outside:

1.  **Offline parity** — ``POST /admit`` answers are bit-identical to
    running the same partitioner offline, for several random task sets
    and schemes; ``POST /explain`` documents match the offline
    explanation layer (modulo the recorded probe backend), and an
    impossible ``/place`` 409s with a structured margin/condition
    reason.
2.  **Throughput** — a concurrent burst of ``POST /place`` admission
    queries sustains at least ``SERVE_SMOKE_MIN_QPS`` queries/s
    (default 1000) *and* the queries actually coalesce
    (``serve.batch_size`` p50 > 1 in the exported metrics).
3.  **Live telemetry** — while the daemon is still serving:
    ``GET /metrics?format=prometheus`` parses as text exposition 0.0.4
    with ordered histogram buckets, ``GET /metrics/history`` returns
    the versioned windowed series (saved as the ``windowed-metrics``
    CI artifact), the ``serve_headroom`` gauge exposes a finite sample,
    and ``repro-mc top --once <url>`` renders a frame with a headroom
    row.
4.  **Graceful shutdown** — SIGINT drains the queue, the process exits
    0, and the metrics dump + run manifest are written.
5.  **SLO gate** — the daemon runs with ``--slo`` rules; the exported
    dump must report zero alerts and no failing rules (exit 1 here
    otherwise — this is the CI exit-code gate).
6.  **Trace tree** — the events.jsonl span stream forms one rooted
    tree (single ``serve.run`` root, zero orphans) with one
    ``serve.request`` span per burst query, each parented to a
    ``serve.flush`` span, and ``queue_wait + kernel + apply``
    reconciling with the span's own duration.

Environment overrides: ``SERVE_SMOKE_MIN_QPS``, ``SERVE_SMOKE_PLACES``,
``SERVE_SMOKE_THREADS``, ``SERVE_SMOKE_SLO_PLACE`` (the place-latency
SLO rule), ``SERVE_SMOKE_ARTIFACT_DIR`` (where the windowed-metrics
artifact lands; default: the run's temp dir, i.e. discarded).

Run from the repo root (package installed, or ``PYTHONPATH=src``):

    python scripts/serve_smoke.py
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.explain import explain_admission  # noqa: E402
from repro.gen import WorkloadConfig, generate_taskset  # noqa: E402
from repro.model.io import taskset_to_dict  # noqa: E402
from repro.partition.registry import get_partitioner  # noqa: E402

MIN_QPS = float(os.environ.get("SERVE_SMOKE_MIN_QPS", "1000"))
PLACES = int(os.environ.get("SERVE_SMOKE_PLACES", "2000"))
THREADS = int(os.environ.get("SERVE_SMOKE_THREADS", "16"))
CORES = 4
#: The place-latency SLO is machine-sensitive (queue wait scales with
#: batch size), so the committed default is deliberately loose; tighten
#: it locally via the env var.  The 503 rule is exact everywhere.
SLO_RULES = [
    os.environ.get("SERVE_SMOKE_SLO_PLACE", "p95(serve.place.seconds) < 250ms"),
    "rate(serve.rejected_503) == 0",
]
ARTIFACT_DIR = os.environ.get("SERVE_SMOKE_ARTIFACT_DIR")

_LISTEN_RE = re.compile(r"listening on http://([\d.]+):(\d+)")


def start_daemon(
    metrics_path: Path, events_path: Path
) -> tuple[subprocess.Popen, str, int]:
    """Launch ``repro-mc serve`` and wait for the listening banner."""
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--cores",
        str(CORES),
        "--port",
        "0",
        "--window-ms",
        "2",
        "--metrics",
        str(metrics_path),
        "--log-json",
        str(events_path),
    ]
    for rule in SLO_RULES:
        argv += ["--slo", rule]
    proc = subprocess.Popen(
        argv,
        stderr=subprocess.PIPE,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line:
            raise SystemExit(
                f"daemon exited before listening (rc={proc.poll()})"
            )
        match = _LISTEN_RE.search(line)
        if match:
            return proc, match.group(1), int(match.group(2))
    raise SystemExit("daemon never announced its port")


def request(host: str, port: int, method: str, path: str, payload=None):
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body)
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())
    finally:
        conn.close()


def check_admit_parity(host: str, port: int) -> None:
    """Serve answers must match the offline partitioner exactly."""
    config = WorkloadConfig(cores=CORES, levels=2, nsu=0.7, ifc=1.0)
    for seed in range(5):
        taskset = generate_taskset(config, np.random.default_rng(seed))
        for scheme in ("ca-tpa", "ffd", "wfd"):
            status, body = request(
                host,
                port,
                "POST",
                "/admit",
                {
                    "taskset": taskset_to_dict(taskset),
                    "cores": CORES,
                    "scheme": scheme,
                },
            )
            assert status == 200, f"admit {scheme} seed={seed}: HTTP {status}"
            offline = get_partitioner(scheme).partition(taskset, CORES)
            expect = {
                "schedulable": offline.schedulable,
                "assignment": offline.partition.assignment.tolist(),
                "order": list(offline.order),
                "failed_task": offline.failed_task,
                "utilizations": offline.partition.core_utilizations().tolist(),
            }
            got = {key: body[key] for key in expect}
            assert got == expect, (
                f"serve/offline divergence ({scheme}, seed={seed}):\n"
                f"  serve:   {got}\n  offline: {expect}"
            )
    print("parity: 5 task sets x 3 schemes match offline exactly")


def check_explain(host: str, port: int) -> None:
    """``POST /explain`` must match the offline explanation layer.

    The daemon explains under its incremental backend, the offline call
    under the ambient batch backend; backends are bit-identical, so the
    documents must agree on everything except the recorded
    ``probe_impl`` name.
    """
    config = WorkloadConfig(cores=CORES, levels=2, nsu=0.7, ifc=1.0)
    for seed in range(3):
        taskset = generate_taskset(config, np.random.default_rng(seed))
        status, body = request(
            host,
            port,
            "POST",
            "/explain",
            {"taskset": taskset_to_dict(taskset), "cores": CORES},
        )
        assert status == 200, f"explain seed={seed}: HTTP {status}"
        assert body["version"] == 1, body.get("version")
        assert body.pop("probe_impl") == "incremental", body
        body.pop("request_id", None)
        offline = explain_admission(taskset, CORES).to_dict()
        offline.pop("probe_impl")
        assert body == offline, (
            f"/explain diverges from offline explain (seed={seed})"
        )
        headroom = body["headroom"]
        assert headroom["system"] is not None, headroom
    print("explain: 3 task sets match the offline explanation exactly")


def check_place_rejection_reason(host: str, port: int) -> None:
    """An impossible task must 409 with a structured reason body."""
    status, body = request(
        host,
        port,
        "POST",
        "/place",
        {"task": {"period": 1.0, "wcets": [2.0, 3.0], "name": "whale"}},
    )
    assert status == 409, f"impossible task: HTTP {status}"
    reason = body.get("reason")
    assert reason is not None, f"409 body has no reason: {body}"
    assert reason["best_margin"] < 0.0, reason
    assert len(reason["cores"]) == CORES, reason
    for entry in reason["cores"]:
        assert entry["first_failing_condition"] is not None, entry
    print(
        f"place 409: structured reason (best core {reason['best_core']}, "
        f"margin {reason['best_margin']:.3f})"
    )


def run_place_burst(host: str, port: int) -> dict:
    """Concurrent /place burst; returns counts + throughput."""
    per_thread = PLACES // THREADS
    total = per_thread * THREADS
    statuses: list[list[int]] = [[] for _ in range(THREADS)]
    errors: list[BaseException] = []
    barrier = threading.Barrier(THREADS + 1)

    def worker(tid: int) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=60)
        try:
            barrier.wait()
            for i in range(per_thread):
                # Tiny utilization so almost everything is admissible.
                payload = json.dumps(
                    {
                        "task": {
                            "period": 4000.0,
                            "wcets": [0.5, 1.0],
                            "name": f"w{tid}-{i}",
                        }
                    }
                )
                conn.request("POST", "/place", body=payload)
                resp = conn.getresponse()
                resp.read()
                statuses[tid].append(resp.status)
        except BaseException as exc:  # surfaced after join
            errors.append(exc)
        finally:
            conn.close()

    threads = [
        threading.Thread(target=worker, args=(tid,)) for tid in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.monotonic()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - start
    if errors:
        raise errors[0]

    flat = [status for per in statuses for status in per]
    accepted = flat.count(200)
    rejected = flat.count(409)
    assert accepted + rejected == total, f"unexpected statuses: {set(flat)}"
    qps = total / elapsed
    print(
        f"throughput: {total} /place queries in {elapsed:.2f}s "
        f"({qps:.0f} qps; {accepted} accepted, {rejected} rejected)"
    )
    assert qps >= MIN_QPS, f"{qps:.0f} qps < floor {MIN_QPS:.0f}"

    status, state = request(host, port, "GET", "/state")
    assert status == 200
    assert state["tasks"] == accepted, (
        f"/state tasks={state['tasks']} != accepted={accepted}"
    )
    assert len(set(state["assignment"])) > 1, "burst never left core 0"
    return {"accepted": accepted, "rejected": rejected, "qps": qps}


def request_text(host: str, port: int, path: str) -> tuple[int, str, str]:
    """GET returning (status, content-type, raw body) — for non-JSON."""
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return (
            resp.status,
            resp.getheader("Content-Type", ""),
            resp.read().decode("utf-8"),
        )
    finally:
        conn.close()


_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?(\d|\+Inf|NaN)"
)


def check_prometheus(host: str, port: int) -> None:
    """``/metrics?format=prometheus`` must parse as text exposition."""
    status, ctype, body = request_text(
        host, port, "/metrics?format=prometheus"
    )
    assert status == 200, f"prometheus scrape: HTTP {status}"
    assert "text/plain" in ctype and "0.0.4" in ctype, ctype
    families: set[str] = set()
    for line in body.splitlines():
        if not line:
            continue
        if line.startswith("# "):
            kind, name = line.split()[1:3]
            assert kind in ("HELP", "TYPE"), line
            families.add(name)
            continue
        assert _SAMPLE_RE.match(line), f"unparseable sample line: {line!r}"
    for required in (
        "serve_requests_total",
        "serve_place_seconds",
        "serve_headroom",
    ):
        assert required in families, f"{required} missing from {families}"
    # The headroom gauge must always expose a finite sample — the
    # bisection clamp guarantees it even for an empty daemon.
    headroom_samples = [
        float(line.rsplit(" ", 1)[1])
        for line in body.splitlines()
        if line.startswith("serve_headroom ")
    ]
    assert headroom_samples, "no serve_headroom sample"
    assert all(np.isfinite(headroom_samples)), headroom_samples
    # Histogram buckets must carry increasing le bounds and cumulative
    # (non-decreasing) counts — the exposition-format contract.
    bounds: list[float] = []
    counts: list[float] = []
    for line in body.splitlines():
        if line.startswith("serve_place_seconds_bucket"):
            le = line.split('le="', 1)[1].split('"', 1)[0]
            bounds.append(float(le))
            counts.append(float(line.rsplit(" ", 1)[1]))
    assert bounds, "no serve_place_seconds_bucket samples"
    assert bounds == sorted(bounds), "le bounds out of order"
    assert bounds[-1] == float("inf"), "missing +Inf bucket"
    assert counts == sorted(counts), "bucket counts not cumulative"
    print(
        f"prometheus: {len(families)} families parse "
        f"({len(bounds)} ordered place-latency buckets)"
    )


def check_history(host: str, port: int, artifact_dir: Path) -> None:
    """``/metrics/history`` is versioned JSON; saved as a CI artifact."""
    status, history = request(host, port, "GET", "/metrics/history")
    assert status == 200, f"history: HTTP {status}"
    assert history["version"] == 1, history.get("version")
    requests_series = history["counters"]["serve.requests"]
    assert sum(requests_series["values"]) > 0, "no requests in window"
    place = history["histograms"]["serve.place.seconds"]
    assert place["window"]["count"] > 0, "no place latency in window"
    artifact_dir.mkdir(parents=True, exist_ok=True)
    artifact = artifact_dir / "windowed-metrics.json"
    artifact.write_text(json.dumps(history, indent=2) + "\n")
    print(
        f"history: version 1, {history['buckets']}x"
        f"{history['bucket_seconds']}s window -> {artifact}"
    )


def check_top(url: str) -> None:
    """``repro-mc top --once`` renders a frame from the live daemon."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "top", url, "--once"],
        capture_output=True,
        text=True,
        timeout=30,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    assert result.returncode == 0, f"top --once rc={result.returncode}: " + (
        result.stderr or result.stdout
    )
    for needle in ("qps", "place p50/p95", "queue depth", "headroom"):
        assert needle in result.stdout, (
            f"top frame missing {needle!r}:\n{result.stdout}"
        )
    print("top: --once renders the live dashboard frame")


def check_trace_tree(events_path: Path, burst: dict) -> None:
    """The span stream must form one rooted tree with linked requests."""
    spans = []
    with events_path.open("r", encoding="utf-8") as fh:
        for line in fh:
            event = json.loads(line)
            if event["event"].startswith("span."):
                spans.append(event)
    ids = {span["span_id"] for span in spans}
    by_id = {span["span_id"]: span for span in spans}
    roots = [span for span in spans if span["parent_id"] is None]
    orphans = [
        span
        for span in spans
        if span["parent_id"] is not None and span["parent_id"] not in ids
    ]
    assert len(roots) == 1, f"{len(roots)} roots (want 1): " + ", ".join(
        span["name"] for span in roots
    )
    assert roots[0]["name"] == "serve.run", roots[0]["name"]
    assert not orphans, (
        f"{len(orphans)} orphan spans, e.g. {orphans[0]['name']}"
    )
    requests_spans = [s for s in spans if s["name"] == "serve.request"]
    total = burst["accepted"] + burst["rejected"]
    assert len(requests_spans) >= total, (
        f"{len(requests_spans)} serve.request spans < {total} burst queries"
    )
    for span in requests_spans:
        parent = by_id[span["parent_id"]]
        assert parent["name"] == "serve.flush", parent["name"]
        parts = span["queue_wait"] + span["kernel"] + span["apply"]
        assert abs(parts - span["seconds"]) < 1e-9, (
            f"attribution {parts} != seconds {span['seconds']}"
        )
    flushes = {span["parent_id"] for span in requests_spans}
    print(
        f"trace: 1 root, 0 orphans, {len(requests_spans)} serve.request "
        f"spans linked to {len(flushes)} serve.flush spans, "
        f"queue/kernel/apply reconcile exactly"
    )


def check_slo_gate(dump: dict) -> None:
    """The CI exit-code gate: the burst must not trip any SLO rule."""
    slo = dump.get("slo")
    assert slo is not None, "exported dump has no slo section"
    assert slo["rules"] == SLO_RULES, slo["rules"]
    assert slo["alerts"] == 0, (
        f"SLO gate FAILED: {slo['alerts']} alert(s), failing={slo['failing']}"
    )
    assert not slo["failing"], slo["failing"]
    print(f"slo: 0 alerts across {len(slo['rules'])} rules — gate passed")


def check_shutdown(proc: subprocess.Popen, metrics_path: Path, burst: dict):
    proc.send_signal(signal.SIGINT)
    try:
        _, stderr = proc.communicate(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise SystemExit("daemon did not drain within 30s of SIGINT")
    assert proc.returncode == 0, f"daemon exited {proc.returncode}"
    assert "drained and stopped" in stderr, stderr

    dump = json.loads(metrics_path.read_text())
    counters = dump["metrics"]["counters"]
    batch = dump["metrics"]["summaries"]["serve.batch_size"]
    assert counters["serve.place.accepted"] == burst["accepted"]
    assert batch["p50"] > 1, (
        f"serve.batch_size p50={batch['p50']} — the burst never coalesced"
    )

    manifest_path = metrics_path.with_name("serve.metrics.manifest.json")
    manifest = json.loads(manifest_path.read_text())
    assert manifest["run_id"] == dump["run_id"]
    assert manifest["figure"] == "serve"
    print(
        f"shutdown: rc=0, metrics + manifest exported "
        f"(batch p50={batch['p50']:.1f}, max={batch['max']:.0f})"
    )
    return dump


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        metrics_path = Path(tmp) / "serve.metrics.json"
        events_path = Path(tmp) / "events.jsonl"
        artifact_dir = Path(ARTIFACT_DIR) if ARTIFACT_DIR else Path(tmp)
        proc, host, port = start_daemon(metrics_path, events_path)
        try:
            status, body = request(host, port, "GET", "/healthz")
            assert status == 200 and body["ok"]
            # The daemon must run the incremental probe backend by
            # default — the offline-parity check below then proves the
            # backend choice changes no decision.
            assert body["probe_impl"] == "incremental", body
            # Run the (rejected, state-free) /place probe first: it
            # seeds serve.place.seconds before the daemon's first SLO
            # tick, which would otherwise read an empty histogram as
            # NaN and count one spurious startup alert.
            check_place_rejection_reason(host, port)
            check_admit_parity(host, port)
            check_explain(host, port)
            burst = run_place_burst(host, port)
            check_prometheus(host, port)
            check_history(host, port, artifact_dir)
            check_top(f"http://{host}:{port}")
            dump = check_shutdown(proc, metrics_path, burst)
            check_slo_gate(dump)
            check_trace_tree(events_path, burst)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
    print("serve smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
