#!/usr/bin/env python3
"""Beyond the paper: EDF-VD vs fixed-priority vs DBF-based partitioning.

Compares three families of per-core schedulability machinery on the same
dual-criticality workloads:

* the paper's utilization-based EDF-VD tests (`ca-tpa`, `ffd`),
* partitioned fixed-priority AMC (AMC-rtb + Audsley; `fp-ff`, `fp-wf`),
* the Ekberg-Yi demand-bound analysis with deadline tuning (`dbf-ffd`).

Also demonstrates the JSON workload corpus I/O: the generated task sets
are saved to disk and re-loaded, so a comparison is exactly repeatable
from the files alone.

Run with::

    python examples/scheduler_comparison.py [--sets 40]
"""

import argparse
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.gen import WorkloadConfig, generate_taskset
from repro.model import load_taskset, save_taskset
from repro.partition import get_partitioner

SCHEMES = ("ca-tpa", "ffd", "fp-ff", "fp-wf", "dbf-ffd")


def build_corpus(directory: Path, sets: int, nsu: float) -> list[Path]:
    config = WorkloadConfig(cores=2, levels=2, nsu=nsu, task_count_range=(8, 14))
    paths = []
    for i in range(sets):
        rng = np.random.default_rng(np.random.SeedSequence(404, spawn_key=(i,)))
        ts = generate_taskset(config, rng)
        path = directory / f"nsu{nsu:.2f}_set{i:03d}.json"
        save_taskset(ts, path)
        paths.append(path)
    return paths


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--sets", type=int, default=40)
    args = parser.parse_args()

    header = f"{'NSU':>5} | " + " ".join(f"{s:>8}" for s in SCHEMES)
    print("Schedulability ratio per scheme (K=2, M=2):")
    print(header)
    print("-" * len(header))

    timing = {s: 0.0 for s in SCHEMES}
    with tempfile.TemporaryDirectory() as tmp:
        for nsu in (0.65, 0.75, 0.85):
            corpus = build_corpus(Path(tmp), args.sets, nsu)
            accepted = {s: 0 for s in SCHEMES}
            for path in corpus:
                ts = load_taskset(path)  # exercise the corpus round trip
                for s in SCHEMES:
                    start = time.perf_counter()
                    accepted[s] += get_partitioner(s).partition(ts, 2).schedulable
                    timing[s] += time.perf_counter() - start
            cells = " ".join(f"{accepted[s] / args.sets:>8.3f}" for s in SCHEMES)
            print(f"{nsu:>5} | {cells}")

    print("\nTotal analysis wall-clock (all points):")
    for s in SCHEMES:
        print(f"  {s:>8}: {timing[s]:.2f}s")
    print(
        "\nReading: the three per-core tests are pairwise *incomparable*"
        "\nsufficient tests.  On these workloads AMC-rtb fixed priority is"
        "\nsurprisingly competitive with (often ahead of) the Eq.-(7) EDF-VD"
        "\npackers; the DBF analysis beats plain Eq.-(7) FFD but costs an"
        "\norder of magnitude more CPU."
    )


if __name__ == "__main__":
    main()
