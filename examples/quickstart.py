#!/usr/bin/env python3
"""Quickstart: partition a small mixed-criticality task set and simulate it.

Run with::

    python examples/quickstart.py
"""

from repro import MCTask, MCTaskSet, partition_taskset
from repro.metrics import partition_metrics
from repro.sched import HonestScenario, LevelScenario, SystemSimulator

# ----------------------------------------------------------------------
# 1. Describe the workload: implicit-deadline periodic MC tasks.
#    wcets=(c(1), ..., c(l)) — the vector length is the task's own
#    criticality level; period doubles as the relative deadline.
# ----------------------------------------------------------------------
taskset = MCTaskSet(
    [
        MCTask(wcets=(2.0, 5.0), period=20.0, name="flight_control"),  # HI
        MCTask(wcets=(3.0, 6.0), period=40.0, name="engine_monitor"),  # HI
        MCTask(wcets=(4.0,), period=25.0, name="telemetry"),           # LO
        MCTask(wcets=(6.0,), period=50.0, name="logging"),             # LO
        MCTask(wcets=(5.0,), period=30.0, name="display"),             # LO
    ],
    levels=2,
)

# ----------------------------------------------------------------------
# 2. Partition onto 2 cores with CA-TPA (per-core EDF-VD analysis).
# ----------------------------------------------------------------------
result = partition_taskset(taskset, cores=2, scheme="ca-tpa")
print(f"schedulable: {result.schedulable}")
for m in range(2):
    names = [taskset[i].name for i in result.partition.tasks_on(m)]
    print(f"  core {m}: {names}")

metrics = partition_metrics(result.partition)
print(
    f"U_sys={metrics['u_sys']:.3f}  U_avg={metrics['u_avg']:.3f}  "
    f"imbalance={metrics['imbalance']:.3f}"
)

# ----------------------------------------------------------------------
# 3. Validate at run time: simulate EDF-VD + AMC on the partition.
# ----------------------------------------------------------------------
for scenario, label in [
    (HonestScenario(), "honest (all jobs within LO budgets)"),
    (LevelScenario(target=2), "overload (HI tasks exhaust HI budgets)"),
]:
    report = SystemSimulator(result.partition, scenario, horizon=2000.0).run()
    print(
        f"{label}: released={report.released} completed={report.completed} "
        f"dropped={report.dropped} mode_switches={report.mode_switches} "
        f"misses={report.miss_count}"
    )
    assert report.all_deadlines_met(), "analysis guarantee violated!"

print("OK: no non-dropped job ever missed its deadline.")
