#!/usr/bin/env python3
"""IMA-style avionics consolidation: partition a DO-178-flavoured workload.

The paper's motivating scenario (Section I) is Integrated Modular
Avionics: functions certified at different design-assurance levels share
one multicore computer.  This example builds a 3-level workload (think
DAL-A / DAL-C / DAL-E), compares all five partitioning schemes on it,
and then stress-tests the chosen partition by simulating a certification
-style overload in which every high-assurance function exhausts its
pessimistic WCET.

Run with::

    python examples/avionics_partitioning.py
"""

from repro import MCTask, MCTaskSet
from repro.metrics import partition_metrics
from repro.partition import PAPER_SCHEMES, get_partitioner
from repro.sched import LevelScenario, RandomScenario, SystemSimulator

# Levels: 1 = mission (DAL-E-ish), 2 = essential (DAL-C), 3 = critical (DAL-A)
AVIONICS = MCTaskSet(
    [
        # critical flight functions: three WCET estimates each
        MCTask(wcets=(2.0, 3.0, 5.0), period=20.0, name="fly_by_wire"),
        MCTask(wcets=(3.0, 4.5, 7.0), period=40.0, name="air_data"),
        MCTask(wcets=(1.5, 2.5, 4.0), period=25.0, name="engine_fadec"),
        # essential functions
        MCTask(wcets=(4.0, 6.0), period=50.0, name="autopilot"),
        MCTask(wcets=(3.0, 5.0), period=40.0, name="nav_fusion"),
        MCTask(wcets=(2.5, 4.0), period=80.0, name="tcas"),
        # mission functions
        MCTask(wcets=(6.0,), period=60.0, name="weather_radar"),
        MCTask(wcets=(8.0,), period=100.0, name="cabin_display"),
        MCTask(wcets=(5.0,), period=50.0, name="datalink"),
        MCTask(wcets=(7.0,), period=200.0, name="maintenance_log"),
    ],
    levels=3,
)

CORES = 2

print(f"Workload: {len(AVIONICS)} functions, K={AVIONICS.levels}, M={CORES}\n")

print(f"{'scheme':>8} {'feasible':>9} {'U_sys':>7} {'U_avg':>7} {'Lambda':>7}")
results = {}
for name in PAPER_SCHEMES:
    res = get_partitioner(name).partition(AVIONICS, CORES)
    results[name] = res
    if res.schedulable:
        m = partition_metrics(res.partition)
        print(
            f"{name:>8} {'yes':>9} {m['u_sys']:>7.3f} {m['u_avg']:>7.3f}"
            f" {m['imbalance']:>7.3f}"
        )
    else:
        failed = AVIONICS[res.failed_task].name
        print(f"{name:>8} {'NO':>9}   (stuck at {failed!r})")

chosen = results["ca-tpa"]
assert chosen.schedulable, "CA-TPA could not certify this configuration"
print("\nCA-TPA placement:")
for m in range(CORES):
    names = [AVIONICS[i].name for i in chosen.partition.tasks_on(m)]
    print(f"  core {m}: {names}")

# ----------------------------------------------------------------------
# Certification stress: drive the system to each assurance level in turn.
# ----------------------------------------------------------------------
print("\nOverload simulations (horizon = 100 major frames):")
for target in (1, 2, 3):
    report = SystemSimulator(
        chosen.partition, LevelScenario(target=target), horizon=20000.0
    ).run()
    print(
        f"  exhaust level-{target} budgets: mode reached {report.max_mode}, "
        f"switches={report.mode_switches}, dropped={report.dropped}, "
        f"misses={report.miss_count}"
    )
    assert report.all_deadlines_met()

# And a long randomized campaign with sporadic overruns.
report = SystemSimulator(
    chosen.partition, RandomScenario(overrun_prob=0.05), horizon=100000.0
).run(seed=42)
print(
    f"  randomized campaign: {report.released} jobs, "
    f"{report.mode_switches} mode switches, misses={report.miss_count}"
)
assert report.all_deadlines_met()
print("\nOK: every non-dropped job met its deadline in all campaigns.")
