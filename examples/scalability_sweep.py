#!/usr/bin/env python3
"""Scalability study: schedulability and partitioning cost vs platform size.

Sweeps the core count (Figure 4's axis) on synthetic workloads and
reports, per scheme, the schedulability ratio and the wall-clock cost of
partitioning — demonstrating the O((M+N)*N) complexity claim of
Section III and the parallel experiment harness.

Run with::

    python examples/scalability_sweep.py [--sets 100] [--jobs 4]
"""

import argparse
import time

import numpy as np

from repro.experiments import evaluate_point, default_schemes
from repro.gen import WorkloadConfig, generate_taskset
from repro.partition import PAPER_SCHEMES, get_partitioner


def partitioning_cost(cores: int, n_tasks: int, repeats: int = 5) -> dict:
    """Mean wall-clock seconds to partition one task set, per scheme."""
    config = WorkloadConfig(cores=cores, task_count_range=(n_tasks, n_tasks))
    out = {}
    for name in PAPER_SCHEMES:
        partitioner = get_partitioner(name)
        total = 0.0
        for r in range(repeats):
            rng = np.random.default_rng(np.random.SeedSequence(9, spawn_key=(r,)))
            ts = generate_taskset(config, rng)
            start = time.perf_counter()
            partitioner.partition(ts, cores)
            total += time.perf_counter() - start
        out[name] = total / repeats
    return out


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--sets", type=int, default=60)
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()

    print("=== Schedulability ratio vs core count (NSU = 0.6) ===")
    header = f"{'M':>4} | " + " ".join(f"{s:>8}" for s in PAPER_SCHEMES)
    print(header)
    print("-" * len(header))
    for cores in (2, 4, 8, 16):
        stats = evaluate_point(
            WorkloadConfig(cores=cores),
            schemes=default_schemes(),
            sets=args.sets,
            seed=11,
            jobs=args.jobs,
        )
        cells = " ".join(f"{stats[s].sched_ratio:>8.3f}" for s in PAPER_SCHEMES)
        print(f"{cores:>4} | {cells}")

    print("\n=== Partitioning wall-clock per task set (N = 160 tasks) ===")
    print(header.replace("M", "M", 1))
    print("-" * len(header))
    for cores in (2, 8, 32):
        cost = partitioning_cost(cores, n_tasks=160)
        cells = " ".join(f"{cost[s] * 1e3:>7.2f}m" for s in PAPER_SCHEMES)
        print(f"{cores:>4} | {cells}   (milliseconds)")

    print("\nNote: CA-TPA probes all M cores per task, so its cost grows")
    print("linearly in M while the ratio improves with the added capacity.")


if __name__ == "__main__":
    main()
