#!/usr/bin/env python3
"""The paper's worked example (Tables I-III): where FFD fails, CA-TPA wins.

Regenerates the Section III-C demonstration on the canonical instance
(see DESIGN.md "Substitutions" for why the instance is a reconstructed
equivalent rather than the OCR-lost original).

Run with::

    python examples/paper_example.py
"""

from repro.experiments import (
    allocation_trace,
    format_allocation_trace,
    format_table1,
    paper_example_taskset,
)
from repro.partition import CATPA, FirstFitDecreasing

taskset = paper_example_taskset()

print(format_table1(taskset))
print()

ffd_steps = allocation_trace(FirstFitDecreasing(), taskset, cores=2)
print(format_allocation_trace("Table II: the task allocations under FFD", taskset, ffd_steps))
print()

catpa_steps = allocation_trace(CATPA(), taskset, cores=2)
print(format_allocation_trace("Table III: the task allocations under CA-TPA", taskset, catpa_steps))
print()

print("FFD sorts by maximum utilization and packs the first feasible core;")
print("it strands the last task.  CA-TPA orders by utilization contribution")
print("and probes for the minimum core-utilization increment, which leaves")
print("room on both cores and places all five tasks.")
