#!/usr/bin/env python3
"""Inside the EDF-VD/AMC runtime: mode switches, drops, and idle resets.

This example zooms into the runtime protocol on a single core:

1. shows the virtual-deadline plan the analysis derives (the lambda
   factors and the min-term branch of Ineq. (5));
2. simulates an overload and narrates what the AMC protocol did;
3. injects a model violation (a task overrunning its own top-level
   WCET) to demonstrate that the guarantee is conditional.

Run with::

    python examples/runtime_simulation.py
"""

import numpy as np

from repro.analysis import assign_virtual_deadlines
from repro.model import MCTask, MCTaskSet
from repro.sched import (
    CoreSimulator,
    FaultyScenario,
    HonestScenario,
    LevelScenario,
    RandomScenario,
)

SUBSET = MCTaskSet(
    [
        MCTask(wcets=(2.0,), period=10.0, name="sensor_poll"),       # LO
        MCTask(wcets=(4.0,), period=25.0, name="ui_refresh"),        # LO
        MCTask(wcets=(3.0, 7.0), period=20.0, name="controller"),    # HI
        MCTask(wcets=(2.0, 6.0), period=40.0, name="safety_check"),  # HI
    ],
    levels=2,
)

# ----------------------------------------------------------------------
# 1. The analysis side: deadline-scaling plan.
# ----------------------------------------------------------------------
plan = assign_virtual_deadlines(SUBSET)
assert plan is not None, "subset must pass Theorem 1"
print("Virtual-deadline plan")
print(f"  pivot condition k* = {plan.k_star}")
print(f"  lambda factors      = {tuple(round(v, 4) for v in plan.lambdas)}")
print(f"  L_K scale at >= k*  = {plan.top_level_scale:.4f} "
      f"({'restored' if plan.top_level_restores else 'kept scaled'})")
for task in SUBSET:
    scale = plan.scale(task.criticality, mode=1)
    print(
        f"  {task.name:>14}: relative deadline {task.period:g} -> "
        f"{scale * task.period:.2f} in LO mode"
    )

# ----------------------------------------------------------------------
# 2. Simulate an overload and narrate.
# ----------------------------------------------------------------------
def simulate(scenario, label, horizon=2000.0, seed=1):
    report = CoreSimulator(
        SUBSET, plan, scenario, np.random.default_rng(seed), horizon
    ).run()
    print(
        f"  {label:>34}: jobs={report.released} completed={report.completed} "
        f"dropped={report.dropped} switches={report.mode_switches} "
        f"idle_resets={report.idle_resets} misses={report.miss_count}"
    )
    return report


print("\nModel-conformant scenarios (misses must stay 0)")
simulate(HonestScenario(), "honest")
simulate(LevelScenario(target=2), "HI budgets exhausted")
simulate(RandomScenario(overrun_prob=0.3), "random overruns (p=0.3)")

# ----------------------------------------------------------------------
# 3. Failure injection: break the model, watch the guarantee dissolve.
# ----------------------------------------------------------------------
print("\nFailure injection (controller exceeds even c(2) by 80%)")
report = simulate(FaultyScenario(excess=0.8), "model violated", seed=3)
if report.miss_count:
    worst = max(
        (m for m in report.misses if np.isfinite(m.lateness)),
        key=lambda m: m.lateness,
        default=report.misses[0],
    )
    print(
        f"  -> {report.miss_count} deadline misses; worst lateness "
        f"{worst.lateness if np.isfinite(worst.lateness) else 'unbounded'}"
        f" on task index {worst.task_index}"
    )
else:
    print("  -> this particular overload was absorbed by slack; "
          "increase `excess` to break it")

# ----------------------------------------------------------------------
# 4. Zoom all the way in: an execution timeline of the first 200 units.
# ----------------------------------------------------------------------
from repro.sched import render_timeline  # noqa: E402

traced = CoreSimulator(
    SUBSET,
    plan,
    LevelScenario(target=2),
    np.random.default_rng(1),
    horizon=200.0,
    record_trace=True,
).run()
print("\nTimeline under the overload (first 200 time units):")
for i, task in enumerate(SUBSET):
    print(f"  t{i} = {task.name}")
print(render_timeline(traced.trace, n_tasks=len(SUBSET), until=200.0, width=100))

print("\nTakeaway: the EDF-VD guarantee covers every behaviour inside the")
print("MC model envelope, and only those.")
