#!/usr/bin/env python3
"""Graceful degradation with elastic mixed-criticality tasks.

Instead of rejecting an overloaded configuration outright, the elastic
model (Su & Zhu's E-MC, cited by the paper) stretches the periods of
low-criticality tasks — trading their service rate for admission — while
high-criticality tasks keep full rate and full guarantees.

Run with::

    python examples/elastic_degradation.py
"""

from repro.elastic import ElasticMCTask, elastic_admission
from repro.model import MCTask
from repro.partition import CATPA
from repro.sched import LevelScenario, SystemSimulator

# A deliberately over-subscribed single-core configuration.
WORKLOAD = [
    # HI control loops: inelastic (max_period == period).
    ElasticMCTask(MCTask((2.0, 4.0), 20.0, name="attitude_ctrl"), max_period=20.0),
    ElasticMCTask(MCTask((3.0, 6.0), 40.0, name="guidance"), max_period=40.0),
    # LO functions: can tolerate up to 3x their desired period.
    ElasticMCTask(MCTask((8.0,), 25.0, name="video_stream"), max_period=75.0),
    ElasticMCTask(MCTask((9.0,), 30.0, name="map_overlay"), max_period=90.0),
    ElasticMCTask(MCTask((6.0,), 50.0, name="telemetry"), max_period=150.0),
]

full = sum(e.task.max_utilization for e in WORKLOAD)
print(f"Desired-rate worst-case utilization: {full:.2f} on 1 core (overloaded)\n")

adm = elastic_admission(WORKLOAD, cores=1, partitioner=CATPA(), steps=60)
assert adm.admitted, "even maximum degradation cannot admit this workload"

print(f"Admitted with uniform stretch factor {adm.factor:.3f}:")
for e, level in zip(WORKLOAD, adm.service_levels):
    marker = "full rate" if level == 1.0 else f"{level:.0%} of desired rate"
    print(f"  {e.task.name:>14}: {marker}")
print(f"mean service level: {adm.mean_service_level:.1%}")

# The admitted (stretched) system still carries the full MC guarantee:
report = SystemSimulator(adm.result.partition, LevelScenario(2), horizon=20000.0).run()
print(
    f"\noverload simulation: {report.released} jobs, "
    f"{report.mode_switches} mode switches, misses={report.miss_count}"
)
assert report.all_deadlines_met()
print("OK: degraded-rate admission preserved every deadline guarantee.")
