"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model import MCTask, MCTaskSet


def make_task(utils, period=100.0, name=""):
    """Task from a per-level utilization sequence (ascending WCETs implied)."""
    return MCTask.from_utilizations(utils, period=period, name=name)


def random_taskset(rng, n=8, levels=2, max_u=0.5):
    """A small random MC task set for property-style tests.

    Utilization vectors are non-decreasing by construction.
    """
    tasks = []
    for i in range(n):
        crit = int(rng.integers(1, levels + 1))
        base = float(rng.uniform(0.01, max_u))
        growth = rng.uniform(1.0, 1.8, size=crit - 1) if crit > 1 else []
        utils = [base]
        for g in growth:
            utils.append(utils[-1] * float(g))
        period = float(rng.uniform(10.0, 1000.0))
        tasks.append(MCTask.from_utilizations(utils, period=period, name=f"t{i}"))
    return MCTaskSet(tasks, levels=levels)


@pytest.fixture
def rng():
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def dual_taskset():
    """A hand-checked dual-criticality set: 2 LO + 2 HI tasks."""
    return MCTaskSet(
        [
            MCTask(wcets=(2.0,), period=10.0, name="lo_a"),  # u=(0.2,)
            MCTask(wcets=(3.0,), period=20.0, name="lo_b"),  # u=(0.15,)
            MCTask(wcets=(2.0, 5.0), period=20.0, name="hi_a"),  # u=(0.1, 0.25)
            MCTask(wcets=(4.0, 12.0), period=40.0, name="hi_b"),  # u=(0.1, 0.3)
        ],
        levels=2,
    )
