"""Tests for the declarative spec layer and shard planning."""

import pytest

from repro.engine.spec import (
    ExperimentSpec,
    PointSpec,
    SchemeSpec,
    default_schemes,
    plan_shards,
)
from repro.gen.params import WorkloadConfig
from repro.types import ReproError


class TestPlanShards:
    def test_single_job_is_one_shard(self):
        assert plan_shards(17, 1) == [(0, 17)]

    def test_jobs_clamped_to_sets(self):
        # More workers than sets: one 1-set shard per set, none empty.
        assert plan_shards(3, 16) == [(0, 1), (1, 1), (2, 1)]

    def test_even_split(self):
        assert plan_shards(10, 2) == [(0, 5), (5, 5)]

    def test_uneven_split_covers_exactly(self):
        assert plan_shards(10, 3) == [(0, 3), (3, 3), (6, 4)]

    @pytest.mark.parametrize("sets", [1, 2, 3, 7, 10, 31, 100])
    @pytest.mark.parametrize("jobs", [1, 2, 3, 5, 9, 10, 50])
    def test_cover_is_exact_and_gapless(self, sets, jobs):
        shards = plan_shards(sets, jobs)
        cursor = 0
        for start, count in shards:
            assert start == cursor
            assert count > 0  # no zero-width shards, ever
            cursor += count
        assert cursor == sets
        assert len(shards) <= min(jobs, sets)

    def test_jobs_close_to_sets_has_no_empty_shards(self):
        # The regression this guards: linspace rounding used to be able
        # to emit zero-width intervals when jobs ~ sets.
        for sets in range(1, 40):
            for jobs in range(1, sets + 3):
                assert all(c > 0 for _, c in plan_shards(sets, jobs))

    def test_zero_sets_rejected(self):
        with pytest.raises(ReproError, match="sets must be >= 1"):
            plan_shards(0, 4)


class TestSchemeSpec:
    def test_round_trip(self):
        spec = SchemeSpec.make("ca-tpa", label="ca-0.3", alpha=0.3)
        assert SchemeSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_defaults(self):
        spec = SchemeSpec.make("ffd")
        assert SchemeSpec.from_dict(spec.to_dict()) == spec


class TestPointSpec:
    def test_round_trip(self):
        point = PointSpec(
            config=WorkloadConfig(cores=2, crit_weights=(2.0, 1.0, 1.0, 1.0)),
            schemes=tuple(default_schemes(alpha=0.3)),
            sets=50,
            seed=7,
            kind="h2h",
        )
        assert PointSpec.from_dict(point.to_dict()) == point

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ReproError, match="duplicate"):
            PointSpec(
                config=WorkloadConfig(),
                schemes=(SchemeSpec.make("ffd"), SchemeSpec.make("ffd")),
            )

    def test_zero_sets_rejected(self):
        with pytest.raises(ReproError, match="sets"):
            PointSpec(
                config=WorkloadConfig(), schemes=(SchemeSpec.make("ffd"),), sets=0
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="kind"):
            PointSpec(
                config=WorkloadConfig(),
                schemes=(SchemeSpec.make("ffd"),),
                kind="bogus",
            )

    def test_empty_schemes_rejected(self):
        with pytest.raises(ReproError, match="scheme"):
            PointSpec(config=WorkloadConfig(), schemes=())

    def test_params_round_trip(self):
        point = PointSpec(
            config=WorkloadConfig(cores=2),
            schemes=(SchemeSpec.make("ca-tpa"),),
            kind="dynsim",
            params=(("burst_factor", 2.0),),
        )
        assert PointSpec.from_dict(point.to_dict()) == point
        assert point.to_dict()["params"] == {"burst_factor": 2.0}

    def test_empty_params_stay_out_of_dict(self):
        # Legacy documents (and their shard hashes) predate `params`;
        # an empty tuple must serialize exactly as before it existed.
        point = PointSpec(config=WorkloadConfig(), schemes=(SchemeSpec.make("ffd"),))
        assert "params" not in point.to_dict()


class TestExperimentSpec:
    def _spec(self):
        points = tuple(
            PointSpec(
                config=WorkloadConfig(nsu=v),
                schemes=tuple(default_schemes()),
                sets=10,
                seed=3,
            )
            for v in (0.4, 0.6)
        )
        return ExperimentSpec(
            figure="fig1",
            title="t",
            parameter="NSU",
            values=(0.4, 0.6),
            points=points,
        )

    def test_round_trip(self):
        spec = self._spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_values_points_length_mismatch_rejected(self):
        spec = self._spec()
        with pytest.raises(ReproError, match="swept values"):
            ExperimentSpec(
                figure="fig1",
                title="t",
                parameter="NSU",
                values=(0.4,),
                points=spec.points,
            )

    def test_workload_config_round_trip(self):
        config = WorkloadConfig(
            cores=4,
            levels=3,
            nsu=0.55,
            ifc=0.35,
            task_count_range=(10, 20),
            period_ranges=((50, 100), (100, 400)),
            exact_nsu=True,
            crit_weights=(3.0, 2.0, 1.0),
        )
        assert WorkloadConfig.from_dict(config.to_dict()) == config

    def test_workload_config_json_round_trip(self):
        import json

        config = WorkloadConfig()
        via_json = WorkloadConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert via_json == config
