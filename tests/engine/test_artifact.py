"""Tests for the structured SweepArtifact / PointResult schema."""

import json

import pytest

from repro.engine import SCHEMA_VERSION, Engine, PointSpec, SweepArtifact
from repro.engine.spec import default_schemes
from repro.experiments.sweeps import definition_to_spec, figure1_nsu
from repro.gen.params import WorkloadConfig
from repro.types import ReproError

TINY = WorkloadConfig(cores=2, levels=2, task_count_range=(6, 9))


@pytest.fixture(scope="module")
def artifact() -> SweepArtifact:
    d = figure1_nsu(nsu_values=(0.5, 0.7))
    spec = definition_to_spec(d, sets=5, seed=11)
    tiny_points = tuple(
        PointSpec(
            config=TINY.with_(nsu=p.config.nsu),
            schemes=p.schemes,
            sets=p.sets,
            seed=p.seed,
        )
        for p in spec.points
    )
    import dataclasses

    return Engine(jobs=1).run(dataclasses.replace(spec, points=tiny_points))


class TestJsonRoundTrip:
    def test_bit_identical_round_trip(self, artifact):
        restored = SweepArtifact.from_json(artifact.to_json())
        # Compare serialized forms: NaN-valued metrics (no schedulable
        # sets) break float == but must still round-trip to null and
        # back to the same JSON bytes.
        assert restored.to_json() == artifact.to_json()
        assert restored.schema_version == SCHEMA_VERSION

    def test_json_is_strict(self, artifact):
        # No NaN/Infinity literals: any JSON parser can read artifacts.
        parsed = json.loads(artifact.to_json())  # strict parse must work
        assert parsed["kind"] == "sweep_artifact"
        assert parsed["schema_version"] == SCHEMA_VERSION

    def test_nan_metrics_become_null(self):
        # Overloaded point: nothing schedulable, quality metrics NaN.
        heavy = PointSpec(
            config=TINY.with_(nsu=2.5),
            schemes=tuple(default_schemes()),
            sets=3,
            seed=1,
        )
        stats = Engine(jobs=1).evaluate(heavy)["ffd"]
        data = stats.to_dict()
        assert data["u_sys"] is None
        restored = type(stats).from_dict(data)
        assert restored.sched_ratio == 0.0
        assert restored.to_dict() == data

    def test_unsupported_schema_version_rejected(self, artifact):
        data = artifact.to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ReproError, match="schema version"):
            SweepArtifact.from_dict(data)


class TestPointResultSurface:
    def test_mapping_access(self, artifact):
        row = artifact.rows[0]
        assert set(row.keys()) == {"ca-tpa", "ffd", "bfd", "wfd", "hybrid"}
        assert row["ffd"].scheme == "ffd"
        assert "ffd" in row
        assert dict(row.items())["wfd"] is row["wfd"]
        with pytest.raises(KeyError):
            row["nope"]

    def test_definition_shim(self, artifact):
        # Old SweepResult callers read result.definition.values etc.
        assert artifact.definition.values == artifact.values
        assert artifact.definition.parameter == "NSU"
        assert artifact.definition.figure == "fig1"

    def test_series(self, artifact):
        series = artifact.series("sched_ratio")
        assert set(series) == set(artifact.schemes)
        assert all(len(v) == len(artifact.values) for v in series.values())

    def test_provenance_is_executable(self, artifact):
        # A row carries enough to regenerate itself bit-identically.
        row = artifact.rows[0]
        point = row.to_point_spec(artifact.sets_per_point, artifact.seed)
        again = Engine(jobs=1).evaluate(point)
        assert tuple(again[label] for label in row.labels) == row.stats
