"""Engine <-> observability integration.

The load-bearing guarantees: instrumentation never changes results
(bit-identical artifacts with it on or off), worker-process counters
survive the ``ProcessPoolExecutor`` boundary exactly (jobs=1 and jobs=4
agree counter-for-counter), and a misbehaving progress hook is demoted
to a warning instead of aborting the sweep.
"""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.engine import Engine, ExperimentSpec, PointSpec, default_schemes
from repro.gen.params import WorkloadConfig

TINY = WorkloadConfig(cores=2, levels=2, nsu=0.6, task_count_range=(6, 9))


def _point(sets=8, seed=3) -> PointSpec:
    return PointSpec(
        config=TINY, schemes=tuple(default_schemes()), sets=sets, seed=seed
    )


def _spec(sets=6, seed=4) -> ExperimentSpec:
    points = tuple(
        PointSpec(
            config=TINY.with_(nsu=v),
            schemes=tuple(default_schemes()),
            sets=sets,
            seed=seed,
        )
        for v in (0.5, 0.7)
    )
    return ExperimentSpec(
        figure="figX",
        title="tiny sweep",
        parameter="NSU",
        values=(0.5, 0.7),
        points=points,
    )


class TestBitIdentical:
    def test_instrumented_artifact_identical_to_plain(self):
        plain = Engine(jobs=1).run(_spec())
        with obs.instrument():
            instrumented = Engine(jobs=1).run(_spec())
        assert plain.to_json() == instrumented.to_json()

    def test_instrumented_parallel_artifact_identical(self):
        plain = Engine(jobs=1).run(_spec())
        with obs.instrument():
            instrumented = Engine(jobs=4).run(_spec())
        assert plain.to_json() == instrumented.to_json()


class TestWorkerAggregation:
    def test_serial_and_parallel_counters_agree(self):
        with obs.instrument() as state:
            Engine(jobs=1).evaluate(_point())
            serial = dict(state.registry.snapshot()["counters"])
        with obs.instrument() as state:
            Engine(jobs=4).evaluate(_point())
            parallel = dict(state.registry.snapshot()["counters"])
        # Shard bookkeeping differs by split (1 shard vs 4), so compare
        # only the workload counters recorded inside the shards.
        serial.pop("engine.shards_computed")
        parallel.pop("engine.shards_computed")
        assert serial == parallel
        assert any(name.startswith("probe.") for name in serial)
        assert any(name.startswith("partition.") for name in serial)
        assert any(name.startswith("theorem1.") for name in serial)

    def test_shard_seconds_counts_every_shard(self):
        with obs.instrument() as state:
            engine = Engine(jobs=4)
            engine.evaluate(_point())
            summaries = state.registry.snapshot()["summaries"]
        assert summaries["engine.shard_seconds"]["count"] == 4
        assert engine.stats.shard_seconds.count == 4
        assert engine.stats.as_dict()["shard_seconds"]["count"] == 4

    def test_shard_seconds_histogram_counts_every_shard(self):
        with obs.instrument() as state:
            engine = Engine(jobs=4)
            engine.evaluate(_point())
            hists = state.registry.snapshot()["histograms"]
        assert hists["engine.shard_seconds"]["count"] == 4
        assert engine.stats.shard_seconds_hist.count == 4
        assert engine.stats.as_dict()["shard_seconds_hist"]["count"] == 4

    def test_registry_histogram_mirrors_stats_exactly(self):
        with obs.instrument() as state:
            engine = Engine(jobs=1)
            engine.evaluate(_point())
            mirror = state.registry.histogram("engine.shard_seconds")
        assert mirror.digest() == engine.stats.shard_seconds_hist.digest()

    @given(
        st.lists(
            st.floats(min_value=1e-6, max_value=1e3, allow_nan=False),
            min_size=1,
            max_size=120,
        ),
        st.integers(min_value=1, max_value=8),
    )
    def test_worker_histogram_merge_is_exact(self, values, jobs):
        """jobs=1 and jobs=N over the same observations → equal digests.

        Simulates the ProcessPoolExecutor boundary: N worker registries
        each observe a chunk, dump through JSON, and merge into a parent
        — the digest must equal one registry observing everything.
        """
        serial = MetricsRegistry()
        for v in values:
            serial.histogram("engine.shard_seconds").observe(v)

        parent = MetricsRegistry()
        stride = -(-len(values) // jobs)
        for start in range(0, len(values), stride):
            worker = MetricsRegistry()
            for v in values[start : start + stride]:
                worker.histogram("engine.shard_seconds").observe(v)
            parent.merge(json.loads(json.dumps(worker.dump())))
        assert (
            parent.histogram("engine.shard_seconds").digest()
            == serial.histogram("engine.shard_seconds").digest()
        )
        assert serial.histogram("engine.shard_seconds").count == len(values)

    def test_uninstrumented_run_records_nothing(self):
        baseline = obs.OBS.registry.snapshot()
        Engine(jobs=1).evaluate(_point(sets=4))
        assert obs.OBS.registry.snapshot() == baseline


class TestEvents:
    def test_events_stream_to_sink(self, tmp_path):
        log = tmp_path / "events.jsonl"
        with obs.instrument(log_path=log):
            Engine(jobs=1).run(_spec())
        events = [json.loads(line) for line in log.read_text().splitlines()]
        names = {e["event"] for e in events}
        assert "engine.point" in names
        assert "engine.shard" in names
        assert [e["seq"] for e in events] == list(range(1, len(events) + 1))

    def test_plan_events_anchor_progress(self, tmp_path):
        """run_plan/point_plan give ``repro-mc top`` its ETA anchors."""
        log = tmp_path / "events.jsonl"
        with obs.instrument(log_path=log):
            Engine(jobs=1).run(_spec())
        events = [json.loads(line) for line in log.read_text().splitlines()]
        run_plans = [e for e in events if e["event"] == "engine.run_plan"]
        point_plans = [e for e in events if e["event"] == "engine.point_plan"]
        assert len(run_plans) == 1
        assert run_plans[0]["figure"] == "figX"
        assert run_plans[0]["points"] == 2
        assert len(point_plans) == 2
        for plan in point_plans:
            assert plan["shards"] >= 1
            assert plan["jobs"] == 1
        # The plan precedes the shards it announces.
        first_shard = next(
            i for i, e in enumerate(events) if e["event"] == "engine.shard"
        )
        assert events.index(point_plans[0]) < first_shard

    def test_cache_hits_mirrored_into_counters(self, tmp_path):
        Engine(jobs=1, store=tmp_path).evaluate(_point(sets=4))
        with obs.instrument() as state:
            Engine(jobs=1, store=tmp_path).evaluate(_point(sets=4))
            counters = state.registry.snapshot()["counters"]
        assert counters["engine.cache_hits"] == 1
        assert "engine.cache_misses" not in counters


class TestTrace:
    """Cross-process span trees: one run, one coherent rooted tree."""

    def _run_traced(self, tmp_path, jobs):
        from repro.obs import trace

        log = tmp_path / "events.jsonl"
        with obs.instrument(log_path=log):
            with obs.span("cli.figure", figure="figX"):
                Engine(jobs=jobs).run(_spec())
        return trace.load_tree(log)

    def test_parallel_run_yields_single_rooted_tree(self, tmp_path):
        tree = self._run_traced(tmp_path, jobs=4)
        assert tree.orphans == []
        assert len(tree.roots) == 1
        assert tree.root.name == "cli.figure"
        names = {node.name for node in tree.walk()}
        assert {
            "engine.run",
            "engine.point",
            "engine.shard",
            "engine.shard.compute",
            "partition.attempt",
            "probe",
        } <= names

    def test_worker_spans_reparented_under_their_shard_span(self, tmp_path):
        tree = self._run_traced(tmp_path, jobs=4)
        computes = [n for n in tree.walk() if n.name == "engine.shard.compute"]
        assert computes  # parallel path actually ran workers
        for node in computes:
            parent = tree.nodes[node.parent_id]
            assert parent.name == "engine.shard"
            # The worker's compute time fits inside the parent's
            # submit->receive window.
            assert node.seconds <= parent.seconds + 0.5

    def test_probe_time_attributed_under_scheme_attempts(self, tmp_path):
        tree = self._run_traced(tmp_path, jobs=4)
        attempts = [n for n in tree.walk() if n.name == "partition.attempt"]
        assert attempts
        assert all(n.scheme for n in attempts)
        probed = [n for n in attempts if n.children]
        assert probed  # at least some attempts recorded probe buckets
        for attempt in probed:
            for child in attempt.children:
                assert child.name == "probe"
                assert child.synthetic
                assert child.calls >= 1
                assert child.seconds <= attempt.seconds

    def test_serial_run_tree_is_rooted_too(self, tmp_path):
        tree = self._run_traced(tmp_path, jobs=1)
        assert tree.orphans == []
        assert len(tree.roots) == 1
        names = {node.name for node in tree.walk()}
        # Serial path: shards run inline, no worker compute spans.
        assert "engine.shard" in names
        assert "engine.shard.compute" not in names
        assert "partition.attempt" in names

    def test_root_span_covers_the_engine_run(self, tmp_path):
        from repro.obs import trace

        tree = self._run_traced(tmp_path, jobs=4)
        path = trace.critical_path(tree)
        assert path[0] is tree.root
        engine_run = next(n for n in tree.walk() if n.name == "engine.run")
        assert tree.root.seconds >= engine_run.seconds


class TestHookGuard:
    def test_raising_hook_warns_once_and_run_completes(self, tmp_path):
        baseline = Engine(jobs=1).run(_spec())

        events = []

        def bad_hook(event):
            events.append(event)
            if len(events) == 2:
                raise ValueError("hook bug")

        engine = Engine(jobs=1, progress=bad_hook)
        with pytest.warns(RuntimeWarning, match="progress hook raised"):
            artifact = engine.run(_spec())
        # Hook disabled after the failure: exactly 2 events delivered.
        assert len(events) == 2
        assert engine.progress is None
        # The sweep still completed, bit-identically.
        assert artifact.to_json() == baseline.to_json()

    def test_healthy_hook_sees_every_event(self):
        events = []
        engine = Engine(jobs=1, progress=events.append)
        engine.evaluate(_point(sets=4))
        assert events  # no warning path taken
        assert engine.progress is not None

    def test_keyboard_interrupt_still_propagates(self):
        def interrupting_hook(event):
            raise KeyboardInterrupt

        engine = Engine(jobs=1, progress=interrupting_hook)
        with pytest.raises(KeyboardInterrupt):
            engine.evaluate(_point(sets=4))
