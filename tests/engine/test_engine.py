"""Tests for the resumable checkpointed engine.

The load-bearing guarantees: serial, parallel, cold-store, and
warm-store runs are bit-identical; an interrupted run resumes from the
checkpointed shards instead of recomputing them; and figures that share
a data point share checkpoints.
"""

import pytest

from repro.engine import (
    Engine,
    ExperimentSpec,
    PointSpec,
    ResultStore,
    default_schemes,
    shard_key,
)
from repro.experiments.compare import head_to_head
from repro.experiments.sweeps import definition_to_spec, figure1_nsu, figure2_ifc
from repro.gen.params import WorkloadConfig
from repro.types import ReproError

TINY = WorkloadConfig(cores=2, levels=2, nsu=0.6, task_count_range=(6, 9))


def _point(sets=8, seed=3, kind="stats") -> PointSpec:
    return PointSpec(
        config=TINY, schemes=tuple(default_schemes()), sets=sets, seed=seed, kind=kind
    )


def _spec(sets=6, seed=4) -> ExperimentSpec:
    points = tuple(
        PointSpec(
            config=TINY.with_(nsu=v),
            schemes=tuple(default_schemes()),
            sets=sets,
            seed=seed,
        )
        for v in (0.5, 0.7)
    )
    return ExperimentSpec(
        figure="figX",
        title="tiny sweep",
        parameter="NSU",
        values=(0.5, 0.7),
        points=points,
    )


class TestEquivalence:
    def test_cold_warm_serial_bit_identical(self, tmp_path):
        spec = _spec()
        serial = Engine(jobs=1).run(spec)

        cold_engine = Engine(jobs=3, store=tmp_path)
        cold = cold_engine.run(spec)
        assert cold_engine.stats.cache_hits == 0
        assert cold_engine.stats.cache_misses == cold_engine.stats.shards_planned
        assert cold_engine.stats.shards_computed == cold_engine.stats.shards_planned

        warm_engine = Engine(jobs=3, store=tmp_path)
        warm = warm_engine.run(spec)
        assert warm_engine.stats.cache_hits == warm_engine.stats.shards_planned
        assert warm_engine.stats.cache_misses == 0
        assert warm_engine.stats.shards_computed == 0

        # Bit-identical artifacts, not merely approximately equal.
        assert serial.to_json() == cold.to_json() == warm.to_json()

    def test_storeless_engine_counts_no_cache_traffic(self):
        engine = Engine(jobs=1)
        engine.evaluate(_point(sets=4))
        assert engine.stats.cache_hits == 0
        assert engine.stats.cache_misses == 0
        assert engine.stats.shards_computed == 1

    def test_evaluate_matches_across_jobs(self, tmp_path):
        serial = Engine(jobs=1).evaluate(_point())
        parallel = Engine(jobs=4).evaluate(_point())
        assert serial == parallel


class _Abort(KeyboardInterrupt):
    """Stands in for SIGKILL / Ctrl-C in the resume test.

    Inherits KeyboardInterrupt: an *exception* raised by a progress hook
    is swallowed (the hook is advisory), but a genuine interrupt must
    still punch through the engine.
    """


class TestResume:
    def test_interrupted_run_resumes_from_checkpoints(self, tmp_path):
        point = _point(sets=8)
        baseline = Engine(jobs=1).evaluate(point)

        computed = []

        def die_after_two(event):
            if event["event"] == "shard" and not event["cached"]:
                computed.append(event)
                if len(computed) == 2:
                    raise _Abort("killed mid-sweep")

        first = Engine(jobs=4, store=tmp_path, progress=die_after_two)
        with pytest.raises(_Abort):
            first.evaluate(point)
        # Shards are checkpointed the moment they finish, before the
        # progress event fires — the two finished ones survived the kill.
        assert len(ResultStore(tmp_path)) == 2

        resumed = Engine(jobs=4, store=tmp_path)
        result = resumed.evaluate(point)
        assert resumed.stats.cache_hits == 2
        assert resumed.stats.cache_misses == 2
        assert resumed.stats.shards_computed == 2
        assert result == baseline

    def test_shared_point_across_figures_hits_cache(self, tmp_path):
        # Fig. 1 at NSU=0.6 and Fig. 2 at IFC=0.4 are both the Section
        # IV-A default point: same config content, same shard keys.
        fig1 = definition_to_spec(figure1_nsu(nsu_values=(0.6,)), sets=10, seed=2)
        fig2 = definition_to_spec(figure2_ifc(ifc_values=(0.4,)), sets=10, seed=2)
        assert shard_key(fig1.points[0], 0, 10) == shard_key(fig2.points[0], 0, 10)

    def test_overlapping_tiny_specs_share_checkpoints(self, tmp_path):
        shared = _point(sets=6, seed=9)
        Engine(jobs=1, store=tmp_path).evaluate(shared)

        second = Engine(jobs=1, store=tmp_path)
        second.evaluate(_point(sets=6, seed=9))
        assert second.stats.cache_hits == 1
        assert second.stats.shards_computed == 0


class TestHeadToHeadThroughEngine:
    def test_parallel_matches_serial(self):
        serial = head_to_head(TINY, default_schemes(), sets=9, seed=5, jobs=1)
        parallel = head_to_head(TINY, default_schemes(), sets=9, seed=5, jobs=3)
        assert serial == parallel

    def test_warm_run_matches_cold(self, tmp_path):
        cold = head_to_head(TINY, default_schemes(), sets=9, seed=5, store=tmp_path)
        warm = head_to_head(TINY, default_schemes(), sets=9, seed=5, store=tmp_path)
        assert warm == cold

    def test_h2h_and_stats_shards_do_not_collide(self, tmp_path):
        # Same content, different kind: the store must keep them apart.
        assert shard_key(_point(kind="stats"), 0, 8) != shard_key(
            _point(kind="h2h"), 0, 8
        )

    def test_mismatched_kind_payload_rejected(self):
        from repro.engine.core import shard_kind

        with pytest.raises(ReproError, match="kind"):
            shard_kind("stats").decode({"kind": "h2h"})


class TestShardRunKwargs:
    def test_empty_params_keep_legacy_signature(self):
        # Runners registered before `params` existed take exactly five
        # arguments; a paramless point must not pass them a sixth.
        from repro.engine.core import _shard_run_kwargs

        assert _shard_run_kwargs(()) == {}

    def test_params_delivered_as_dict(self):
        from repro.engine.core import _shard_run_kwargs

        kwargs = _shard_run_kwargs((("burst_factor", 2.0),))
        assert kwargs == {"params": {"burst_factor": 2.0}}

    def test_dynsim_kind_resolves_lazily(self):
        # The dynsim runner lives in repro.experiments.dynamic and is
        # registered on import via the provider table.
        from repro.engine.core import shard_kind

        assert shard_kind("dynsim").run is not None


class TestRunValidation:
    def test_run_rejects_h2h_points(self):
        spec = _spec(sets=2)
        bad = ExperimentSpec(
            figure=spec.figure,
            title=spec.title,
            parameter=spec.parameter,
            values=(0.5,),
            points=(_point(sets=2, kind="h2h"),),
        )
        with pytest.raises(ReproError, match="stats"):
            Engine(jobs=1).run(bad)

    def test_progress_events_cover_points_and_shards(self):
        events = []
        engine = Engine(jobs=1, progress=events.append)
        engine.run(_spec(sets=4))
        kinds = [e["event"] for e in events]
        assert kinds.count("point") == 2
        assert kinds.count("shard") == 2
        shard_events = [e for e in events if e["event"] == "shard"]
        assert all(not e["cached"] and e["seconds"] >= 0 for e in shard_events)
