"""Tests for the content-addressed shard checkpoint store."""

from repro.engine.spec import PointSpec, SchemeSpec, default_schemes
from repro.engine.store import ResultStore, shard_key
from repro.gen.params import WorkloadConfig


def _point(**overrides) -> PointSpec:
    fields = dict(
        config=WorkloadConfig(cores=2),
        schemes=tuple(default_schemes()),
        sets=20,
        seed=5,
        kind="stats",
    )
    fields.update(overrides)
    return PointSpec(**fields)


class TestShardKey:
    def test_deterministic(self):
        assert shard_key(_point(), 0, 10) == shard_key(_point(), 0, 10)

    def test_sensitive_to_every_input(self):
        base = shard_key(_point(), 0, 10)
        assert shard_key(_point(seed=6), 0, 10) != base
        assert shard_key(_point(config=WorkloadConfig(cores=4)), 0, 10) != base
        assert shard_key(_point(schemes=(SchemeSpec.make("ffd"),)), 0, 10) != base
        assert shard_key(_point(kind="h2h"), 0, 10) != base
        assert shard_key(_point(), 5, 10) != base
        assert shard_key(_point(), 0, 5) != base

    def test_key_ignores_total_sets(self):
        # The shard range, not the point's total, addresses the content:
        # a 2000-set re-run reuses the shards of an earlier 1000-set run
        # wherever the ranges line up.
        assert shard_key(_point(sets=20), 0, 10) == shard_key(_point(sets=40), 0, 10)


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("ab" * 32, {"x": [1.5, 2.5], "kind": "stats"})
        assert store.get("ab" * 32) == {"x": [1.5, 2.5], "kind": "stats"}
        assert store.hits == 1 and store.misses == 0

    def test_miss_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("cd" * 32) is None
        assert store.misses == 1

    def test_contains_and_len(self, tmp_path):
        store = ResultStore(tmp_path)
        assert len(store) == 0
        store.put("ab" * 32, {"v": 1})
        store.put("cd" * 32, {"v": 2})
        assert "ab" * 32 in store
        assert "ef" * 32 not in store
        assert len(store) == 2

    def test_corrupt_entry_is_purged_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ab" * 32
        store.put(key, {"v": 1})
        store._path(key).write_text("{torn checkpoint")
        assert store.get(key) is None
        assert store.misses == 1
        assert key not in store  # purged, not left to fail again

    def test_no_temp_residue(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("ab" * 32, {"v": 1})
        leftovers = [p for p in tmp_path.rglob("*") if p.suffix != ".json" and p.is_file()]
        assert leftovers == []

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("ab" * 32, {"v": 1})
        store.put("cd" * 32, {"v": 2})
        assert store.clear() == 2
        assert len(store) == 0

    def test_env_var_names_default_root(self, tmp_path, monkeypatch):
        from repro.engine.store import default_store_root

        monkeypatch.setenv("REPRO_MC_STORE", str(tmp_path / "elsewhere"))
        assert default_store_root() == tmp_path / "elsewhere"
