"""Tests for the content-addressed shard checkpoint store."""

import json
import os
import threading
import time

from repro.engine.spec import PointSpec, SchemeSpec, default_schemes
from repro.engine.store import STALE_TEMP_SECONDS, ResultStore, shard_key
from repro.gen.params import WorkloadConfig


def _point(**overrides) -> PointSpec:
    fields = dict(
        config=WorkloadConfig(cores=2),
        schemes=tuple(default_schemes()),
        sets=20,
        seed=5,
        kind="stats",
    )
    fields.update(overrides)
    return PointSpec(**fields)


class TestShardKey:
    def test_deterministic(self):
        assert shard_key(_point(), 0, 10) == shard_key(_point(), 0, 10)

    def test_sensitive_to_every_input(self):
        base = shard_key(_point(), 0, 10)
        assert shard_key(_point(seed=6), 0, 10) != base
        assert shard_key(_point(config=WorkloadConfig(cores=4)), 0, 10) != base
        assert shard_key(_point(schemes=(SchemeSpec.make("ffd"),)), 0, 10) != base
        assert shard_key(_point(kind="h2h"), 0, 10) != base
        assert shard_key(_point(), 5, 10) != base
        assert shard_key(_point(), 0, 5) != base

    def test_key_ignores_total_sets(self):
        # The shard range, not the point's total, addresses the content:
        # a 2000-set re-run reuses the shards of an earlier 1000-set run
        # wherever the ranges line up.
        assert shard_key(_point(sets=20), 0, 10) == shard_key(_point(sets=40), 0, 10)

    def test_params_address_distinct_content(self):
        # Two dynsim points differing only in burst factor must never
        # share a checkpoint shard.
        burst2 = _point(kind="dynsim", params=(("burst_factor", 2.0),))
        burst3 = _point(kind="dynsim", params=(("burst_factor", 3.0),))
        assert shard_key(burst2, 0, 10) != shard_key(burst3, 0, 10)
        assert shard_key(burst2, 0, 10) != shard_key(_point(kind="dynsim"), 0, 10)
        assert shard_key(burst2, 0, 10) == shard_key(burst2, 0, 10)


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("ab" * 32, {"x": [1.5, 2.5], "kind": "stats"})
        assert store.get("ab" * 32) == {"x": [1.5, 2.5], "kind": "stats"}
        assert store.hits == 1 and store.misses == 0

    def test_miss_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("cd" * 32) is None
        assert store.misses == 1

    def test_contains_and_len(self, tmp_path):
        store = ResultStore(tmp_path)
        assert len(store) == 0
        store.put("ab" * 32, {"v": 1})
        store.put("cd" * 32, {"v": 2})
        assert "ab" * 32 in store
        assert "ef" * 32 not in store
        assert len(store) == 2

    def test_corrupt_entry_is_purged_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ab" * 32
        store.put(key, {"v": 1})
        store._path(key).write_text("{torn checkpoint")
        assert store.get(key) is None
        assert store.misses == 1
        assert key not in store  # purged, not left to fail again

    def test_no_temp_residue(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("ab" * 32, {"v": 1})
        leftovers = [p for p in tmp_path.rglob("*") if p.suffix != ".json" and p.is_file()]
        assert leftovers == []

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("ab" * 32, {"v": 1})
        store.put("cd" * 32, {"v": 2})
        assert store.clear() == 2
        assert len(store) == 0

    def test_env_var_names_default_root(self, tmp_path, monkeypatch):
        from repro.engine.store import default_store_root

        monkeypatch.setenv("REPRO_MC_STORE", str(tmp_path / "elsewhere"))
        assert default_store_root() == tmp_path / "elsewhere"


class TestTempFileSafety:
    """Regression: PID-only temp suffixes raced across threads and
    crashed runs left ``.tmp.*`` debris forever."""

    def test_temp_paths_unique_across_threads(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ab" * 32
        paths, barrier = [], threading.Barrier(2, timeout=10)

        def grab():
            barrier.wait()
            paths.append(store._temp_path(key))

        threads = [threading.Thread(target=grab) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert len(paths) == 2 and paths[0] != paths[1]
        # pid alone (the old suffix) cannot distinguish the two.
        assert all(str(os.getpid()) in p.name for p in paths)

    def test_concurrent_same_key_puts_survive(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ab" * 32
        errors = []
        barrier = threading.Barrier(2, timeout=10)

        def hammer(value):
            try:
                barrier.wait()
                for i in range(200):
                    store.put(key, {"v": value, "i": i})
            except Exception as exc:  # pragma: no cover - the old race
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(v,)) for v in (1, 2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert errors == []
        # Last atomic rename won: the entry is whole, valid JSON.
        payload = store.get(key)
        assert payload is not None and payload["i"] == 199
        leftovers = [p for p in tmp_path.rglob("*.tmp.*") if p.is_file()]
        assert leftovers == []

    def test_stale_temps_purged_on_open(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ab" * 32
        store.put(key, {"v": 1})
        obj_dir = store._path(key).parent
        stale = obj_dir / f"{key}.json.tmp.999999.1.0"
        stale.write_text("{half a checkpoint")
        old = time.time() - STALE_TEMP_SECONDS - 60
        os.utime(stale, (old, old))
        fresh = obj_dir / f"{key}.json.tmp.999999.2.0"
        fresh.write_text("{in-flight write")

        reopened = ResultStore(tmp_path)
        assert reopened.temps_purged == 1
        assert not stale.exists()
        assert fresh.exists()  # young: may be a live concurrent writer
        # The real entry is untouched.
        assert json.loads(store._path(key).read_text()) == {"v": 1}
