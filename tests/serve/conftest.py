"""Fixtures for the admission-daemon tests: an in-process daemon + client."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve import ServeConfig, ServeDaemon


class HttpClient:
    """A tiny raw-socket HTTP/1.1 client (no external deps, like the server)."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port

    async def request(self, method: str, path: str, body=None, headers=""):
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            payload = b"" if body is None else json.dumps(body).encode()
            head = (
                f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
                f"Content-Length: {len(payload)}\r\n{headers}"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
            raw = await reader.read()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        head, _, data = raw.partition(b"\r\n\r\n")
        return int(head.split()[1]), json.loads(data)

    async def get(self, path: str):
        return await self.request("GET", path)

    async def get_raw(self, path: str):
        """GET returning (status, header text, raw body) — for non-JSON."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(
                f"GET {path} HTTP/1.1\r\nHost: test\r\n"
                "Connection: close\r\n\r\n".encode("latin-1")
            )
            await writer.drain()
            raw = await reader.read()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        head, _, data = raw.partition(b"\r\n\r\n")
        return int(head.split()[1]), head.decode("latin-1"), data.decode("utf-8")

    async def post(self, path: str, body):
        return await self.request("POST", path, body)


class DaemonHarness:
    """Starts a daemon on an ephemeral port; stops it gracefully."""

    def __init__(self, **config_overrides):
        overrides = {"port": 0, "cores": 2}
        overrides.update(config_overrides)
        self.config = ServeConfig(**overrides)
        self.daemon = ServeDaemon(self.config)
        self._shutdown = asyncio.Event()
        self._runner: asyncio.Task | None = None
        self.client: HttpClient | None = None

    async def __aenter__(self) -> "DaemonHarness":
        ready = asyncio.Event()
        self._runner = asyncio.create_task(self.daemon.run(self._shutdown, ready=ready))
        await asyncio.wait_for(ready.wait(), timeout=10)
        self.client = HttpClient(*self.daemon.bound)
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    async def stop(self) -> int:
        if self._runner is None:
            return 0
        self._shutdown.set()
        code = await asyncio.wait_for(self._runner, timeout=10)
        self._runner = None
        return code


@pytest.fixture
def harness_factory():
    return DaemonHarness


def task_entry(period: float, wcets, name: str = "") -> dict:
    return {"task": {"period": period, "wcets": list(wcets), "name": name}}
