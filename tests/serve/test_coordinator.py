"""Coordinator semantics: offline parity, batched placement, rollback."""

import asyncio

import numpy as np
import pytest

from repro.partition.registry import PAPER_SCHEMES, get_partitioner
from repro.serve.batcher import MicroBatcher, WorkItem
from repro.serve.coordinator import Coordinator
from repro.serve.protocol import AdmitRequest, PlaceRequest, ProtocolError
from repro.serve.state import ServeState
from repro.types import ReproError
from tests.conftest import make_task, random_taskset


def make_coordinator(cores=2, levels=2, probe_impl="incremental"):
    state = ServeState(cores=cores, levels=levels, probe_impl=probe_impl)
    return Coordinator(state, MicroBatcher(), probe_impl=probe_impl), state


def flush_one(coordinator, kind, request):
    """Drive one request through flush(); return its result (or raise)."""
    return flush_many(coordinator, [(kind, request)])[0]


def flush_many(coordinator, reqs):
    async def main():
        loop = asyncio.get_running_loop()
        items = [
            WorkItem(kind, request, loop.create_future()) for kind, request in reqs
        ]
        coordinator.flush(items)
        return [item.future.result() for item in items]

    return asyncio.run(main())


class TestAdmit:
    @pytest.mark.parametrize("scheme", PAPER_SCHEMES)
    def test_bit_identical_to_offline(self, scheme):
        ts = random_taskset(np.random.default_rng(1), n=12)
        coordinator, _ = make_coordinator(cores=3)
        body = flush_one(coordinator, "admit", AdmitRequest(ts, 3, scheme))
        offline = get_partitioner(scheme).partition(ts, 3)
        assert body["schedulable"] == offline.schedulable
        assert body["assignment"] == offline.partition.assignment.tolist()
        assert body["failed_task"] == offline.failed_task
        assert body["order"] == list(offline.order)
        # Utilizations too — same floats, not merely close.
        assert body["utilizations"] == offline.partition.core_utilizations().tolist()

    def test_admit_does_not_touch_live_state(self):
        ts = random_taskset(np.random.default_rng(2), n=6)
        coordinator, state = make_coordinator()
        before = state.snapshot
        flush_one(coordinator, "admit", AdmitRequest(ts, 2, "ca-tpa"))
        assert state.snapshot is before
        assert state.partition is None


class TestPlace:
    def test_accepted_task_joins_live_state(self):
        coordinator, state = make_coordinator()
        body = flush_one(
            coordinator, "place", PlaceRequest(make_task([0.3, 0.5], name="a"))
        )
        assert body["accepted"] is True and body["core"] in (0, 1)
        assert state.snapshot.task_count == 1
        assert state.snapshot.seq == 1
        assert state.partition.core_of(0) == body["core"]

    def test_batch_equals_sequential_placement(self):
        """One coalesced flush decides exactly like one-at-a-time flushes."""
        tasks = [
            make_task([u, min(2 * u, 0.9)], name=f"t{i}")
            for i, u in enumerate([0.3, 0.25, 0.4, 0.2, 0.35])
        ]
        batched, batched_state = make_coordinator(cores=3)
        batch_bodies = flush_many(
            batched, [("place", PlaceRequest(t)) for t in tasks]
        )
        sequential, sequential_state = make_coordinator(cores=3)
        seq_bodies = [
            flush_one(sequential, "place", PlaceRequest(t)) for t in tasks
        ]
        assert [b["core"] for b in batch_bodies] == [b["core"] for b in seq_bodies]
        assert np.array_equal(
            batched_state.partition.level_matrices(),
            sequential_state.partition.level_matrices(),
        )

    def test_rejected_task_leaves_no_trace(self):
        coordinator, state = make_coordinator(cores=1)
        assert flush_one(
            coordinator, "place", PlaceRequest(make_task([0.6, 0.8], name="big"))
        )["accepted"]
        before_mats = state.partition.level_matrices().copy()
        body = flush_one(
            coordinator, "place", PlaceRequest(make_task([0.6, 0.9], name="too-big"))
        )
        assert body["accepted"] is False and body["core"] is None
        assert state.snapshot.task_count == 1  # not a member of the live set
        assert np.array_equal(state.partition.level_matrices(), before_mats)

    def test_mixed_batch_keeps_only_accepted(self):
        coordinator, state = make_coordinator(cores=1)
        bodies = flush_many(
            coordinator,
            [
                ("place", PlaceRequest(make_task([0.5, 0.7], name="fits"))),
                ("place", PlaceRequest(make_task([0.5, 0.7], name="overflows"))),
                ("place", PlaceRequest(make_task([0.1, 0.15], name="fits-too"))),
            ],
        )
        assert [b["accepted"] for b in bodies] == [True, False, True]
        names = [t.name for t in state.partition.taskset]
        assert names == ["fits", "fits-too"]
        assert state.partition.is_complete

    def test_criticality_above_daemon_levels_rejected(self):
        coordinator, state = make_coordinator(levels=2)

        async def main():
            loop = asyncio.get_running_loop()
            item = WorkItem(
                "place",
                PlaceRequest(make_task([0.1, 0.2, 0.3], name="k3")),
                loop.create_future(),
            )
            coordinator.flush([item])
            return item.future

        future = asyncio.run(main())
        with pytest.raises(ProtocolError, match="K=2"):
            future.result()
        assert state.partition is None

    def test_backend_choice_never_moves_a_placement(self):
        """Incremental (warm state across flushes) == batch, decision-level."""
        tasks = [
            make_task([u, min(1.9 * u, 0.9)], name=f"t{i}")
            for i, u in enumerate(
                [0.3, 0.25, 0.4, 0.2, 0.35, 0.15, 0.5, 0.1, 0.45, 0.2]
            )
        ]
        outcomes = []
        for impl in ("batch", "incremental"):
            coordinator, state = make_coordinator(cores=3, probe_impl=impl)
            bodies = []
            # Several flushes against the same live state: the second
            # and later ones hit the carried-over warm state.
            for chunk in (tasks[:4], tasks[4:7], tasks[7:]):
                bodies += flush_many(
                    coordinator, [("place", PlaceRequest(t)) for t in chunk]
                )
            outcomes.append(
                (
                    [(b["accepted"], b["core"]) for b in bodies],
                    state.partition.assignment.tolist(),
                    state.partition.level_matrices().tolist(),
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_unknown_probe_impl_rejected_at_construction(self):
        with pytest.raises(ReproError, match="unknown probe implementation"):
            Coordinator(ServeState(cores=2), MicroBatcher(), probe_impl="simd")

    def test_default_backend_is_incremental(self):
        coordinator, state = make_coordinator()
        assert coordinator.probe_impl == "incremental"
        assert state.snapshot.probe_impl == "incremental"
        assert state.snapshot.to_dict()["probe_impl"] == "incremental"

    def test_mixed_admit_and_place_flush(self):
        ts = random_taskset(np.random.default_rng(3), n=5)
        coordinator, state = make_coordinator()
        bodies = flush_many(
            coordinator,
            [
                ("admit", AdmitRequest(ts, 2, "ffd")),
                ("place", PlaceRequest(make_task([0.2, 0.3], name="x"))),
            ],
        )
        assert "schedulable" in bodies[0]
        assert bodies[1]["accepted"] is True
        assert state.snapshot.task_count == 1
