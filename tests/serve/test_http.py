"""End-to-end tests of the daemon over real sockets.

Each test starts a full :class:`ServeDaemon` on an ephemeral port,
talks HTTP to it with a raw-socket client, and shuts it down
gracefully.  Covers offline parity of ``/admit``, micro-batch
coalescing of ``/place`` (``serve.batch_size`` p50 > 1 under a
concurrent burst), lock-free ``/state``, error statuses, backpressure
503s, and the shutdown manifest/metrics export.
"""

import asyncio
import json

import numpy as np

from repro.model.io import taskset_to_dict
from repro.obs import load_manifest
from repro.partition.registry import get_partitioner
from tests.conftest import random_taskset
from tests.serve.conftest import DaemonHarness, task_entry


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


class TestAdmitEndpoint:
    def test_matches_offline_partitioner(self):
        ts = random_taskset(np.random.default_rng(5), n=10)

        async def main():
            async with DaemonHarness(cores=3) as h:
                return await h.client.post(
                    "/admit",
                    {"taskset": taskset_to_dict(ts), "cores": 3, "scheme": "ca-tpa"},
                )

        status, body = run(main())
        offline = get_partitioner("ca-tpa").partition(ts, 3)
        assert status == 200
        assert body["schedulable"] == offline.schedulable
        assert body["assignment"] == offline.partition.assignment.tolist()
        assert body["utilizations"] == offline.partition.core_utilizations().tolist()

    def test_concurrent_admits_all_answered(self):
        tasksets = [
            random_taskset(np.random.default_rng(seed), n=8) for seed in range(8)
        ]

        async def main():
            async with DaemonHarness(cores=2) as h:
                return await asyncio.gather(
                    *[
                        h.client.post(
                            "/admit",
                            {"taskset": taskset_to_dict(ts), "cores": 2},
                        )
                        for ts in tasksets
                    ]
                )

        results = run(main())
        assert all(status == 200 for status, _ in results)
        for (_, body), ts in zip(results, tasksets):
            offline = get_partitioner("ca-tpa").partition(ts, 2)
            assert body["schedulable"] == offline.schedulable
            assert body["assignment"] == offline.partition.assignment.tolist()


class TestPlaceEndpoint:
    def test_burst_coalesces_and_balances(self):
        async def main():
            async with DaemonHarness(cores=2, window_ms=50.0) as h:
                results = await asyncio.gather(
                    *[
                        h.client.post(
                            "/place", task_entry(10.0, [0.5, 1.0], name=f"t{i}")
                        )
                        for i in range(8)
                    ]
                )
                state = await h.client.get("/state")
                metrics = await h.client.get("/metrics")
                return results, state, metrics

        results, (st_status, state), (_, metrics) = run(main())
        assert all(status == 200 for status, _ in results)
        assert st_status == 200
        assert state["tasks"] == 8
        assert sorted(state["assignment"].count(c) for c in (0, 1)) == [4, 4]
        batch = metrics["metrics"]["summaries"]["serve.batch_size"]
        assert batch["p50"] > 1  # the burst really coalesced

    def test_infeasible_placement_answers_409(self):
        async def main():
            async with DaemonHarness(cores=1) as h:
                first = await h.client.post("/place", task_entry(10.0, [6.0, 8.0]))
                second = await h.client.post("/place", task_entry(10.0, [6.0, 9.0]))
                state = await h.client.get("/state")
                return first, second, state

        (s1, b1), (s2, b2), (_, state) = run(main())
        assert s1 == 200 and b1["accepted"]
        assert s2 == 409 and not b2["accepted"] and b2["core"] is None
        assert state["tasks"] == 1  # the rejected task never joined


class TestErrorStatuses:
    def test_unknown_path_404_and_wrong_method_405(self):
        async def main():
            async with DaemonHarness() as h:
                return (
                    await h.client.get("/nope"),
                    await h.client.get("/admit"),
                    await h.client.post("/state", {}),
                )

        (s404, _), (s405a, _), (s405b, _) = run(main())
        assert (s404, s405a, s405b) == (404, 405, 405)

    def test_malformed_json_400(self):
        async def main():
            async with DaemonHarness() as h:
                reader, writer = await asyncio.open_connection(*h.daemon.bound)
                body = b"{not json"
                writer.write(
                    b"POST /place HTTP/1.1\r\nHost: t\r\nContent-Length: "
                    + str(len(body)).encode()
                    + b"\r\nConnection: close\r\n\r\n"
                    + body
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                return int(raw.split()[1])

        assert run(main()) == 400

    def test_validation_error_400(self):
        async def main():
            async with DaemonHarness() as h:
                return await h.client.post("/place", {"task": {"wcets": [1.0]}})

        status, body = run(main())
        assert status == 400 and "bad task" in body["error"]

    def test_overcritical_task_400(self):
        async def main():
            async with DaemonHarness(levels=2) as h:
                return await h.client.post(
                    "/place", task_entry(10.0, [1.0, 2.0, 3.0])
                )

        status, body = run(main())
        assert status == 400 and "K=2" in body["error"]

    def test_backpressure_503_under_overload(self):
        async def main():
            # backlog=1 + a wide window: concurrent submitters must
            # overflow the one-slot queue while the coordinator sleeps.
            async with DaemonHarness(cores=2, backlog=1, window_ms=200.0) as h:
                results = await asyncio.gather(
                    *[
                        h.client.post(
                            "/place", task_entry(50.0, [0.1, 0.2], name=f"t{i}")
                        )
                        for i in range(10)
                    ]
                )
                metrics = await h.client.get("/metrics")
                return results, metrics

        results, (_, metrics) = run(main())
        statuses = [status for status, _ in results]
        assert 503 in statuses  # overload sheds load instead of queueing
        assert any(status == 200 for status in statuses)  # but still serves
        assert metrics["metrics"]["counters"]["serve.overflow_503"] >= 1


class TestKeepAlive:
    def test_two_requests_one_connection(self):
        async def main():
            async with DaemonHarness() as h:
                reader, writer = await asyncio.open_connection(*h.daemon.bound)
                req = b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
                writer.write(req)
                await writer.drain()
                first = await _read_response(reader)
                writer.write(
                    b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
                )
                await writer.drain()
                second = await _read_response(reader)
                writer.close()
                return first, second

        first, second = run(main())
        assert first["ok"] and second["ok"]


async def _read_response(reader):
    head = await reader.readuntil(b"\r\n\r\n")
    length = 0
    for line in head.decode("latin-1").split("\r\n"):
        if line.lower().startswith("content-length:"):
            length = int(line.split(":", 1)[1])
    return json.loads(await reader.readexactly(length))


class TestGracefulShutdown:
    def test_shutdown_exports_manifest_and_metrics(self, tmp_path):
        metrics_path = tmp_path / "serve.metrics.json"

        async def main():
            async with DaemonHarness(
                cores=2, metrics_path=str(metrics_path)
            ) as h:
                await h.client.post("/place", task_entry(10.0, [1.0, 2.0]))
                await h.client.get("/state")
                return h.daemon.run_id

        run_id = run(main())
        dump = json.loads(metrics_path.read_text())
        assert dump["run_id"] == run_id
        assert "serve.batch_size" in dump["metrics"]["summaries"]
        assert dump["metrics"]["counters"]["serve.place.accepted"] == 1
        manifest = load_manifest(tmp_path / "serve.metrics.manifest.json")
        assert manifest["run_id"] == run_id
        assert manifest["figure"] == "serve"
        assert manifest["artifact"]["path"] == "serve.metrics.json"

    def test_queued_work_drains_before_exit(self):
        async def main():
            async with DaemonHarness(cores=2, window_ms=100.0) as h:
                # Requests in flight when shutdown begins still answer.
                posts = [
                    asyncio.create_task(
                        h.client.post(
                            "/place", task_entry(20.0, [0.5, 1.0], name=f"d{i}")
                        )
                    )
                    for i in range(4)
                ]
                await asyncio.sleep(0.01)  # let them hit the queue
                await h.stop()
                return await asyncio.gather(*posts)

        results = run(main())
        assert all(status == 200 for status, _ in results)


class TestTelemetryEndpoints:
    def test_prometheus_exposition(self):
        async def main():
            async with DaemonHarness(cores=2) as h:
                await h.client.post("/place", task_entry(10.0, [1.0, 2.0]))
                return await h.client.get_raw("/metrics?format=prometheus")

        status, head, body = run(main())
        assert status == 200
        assert "text/plain" in head and "0.0.4" in head
        assert "# TYPE serve_requests_total counter" in body
        assert "# TYPE serve_place_seconds histogram" in body
        assert 'serve_place_seconds_bucket{le="+Inf"}' in body
        assert "# TYPE serve_queue_depth gauge" in body

    def test_unknown_metrics_format_is_400(self):
        async def main():
            async with DaemonHarness(cores=2) as h:
                return await h.client.get("/metrics?format=xml")

        status, body = run(main())
        assert status == 400
        assert "format" in body["error"]

    def test_json_metrics_still_default(self):
        async def main():
            async with DaemonHarness(cores=2) as h:
                await h.client.post("/place", task_entry(10.0, [1.0, 2.0]))
                return await h.client.get("/metrics")

        status, body = run(main())
        assert status == 200
        assert body["metrics"]["counters"]["serve.place.accepted"] == 1

    def test_metrics_history_schema(self):
        async def main():
            async with DaemonHarness(cores=2) as h:
                await h.client.post("/place", task_entry(10.0, [1.0, 2.0]))
                return await h.client.get("/metrics/history")

        status, body = run(main())
        assert status == 200
        assert body["version"] == 1
        assert sum(body["counters"]["serve.requests"]["values"]) >= 1
        place = body["histograms"]["serve.place.seconds"]
        assert place["window"]["count"] == 1
        assert body["gauges"]["serve.tasks"] == 1.0
        assert "serve.lambda" in body["gauges"]
