"""Coalescing and backpressure semantics of the MicroBatcher."""

import asyncio

import pytest

from repro.serve.batcher import MicroBatcher, ServeOverflow


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=10))


class TestCoalescing:
    def test_burst_lands_in_one_batch(self):
        async def main():
            batcher = MicroBatcher(window=0.01)
            for i in range(5):
                batcher.submit("place", i)
            batch = await batcher.next_batch()
            return [item.request for item in batch]

        assert run(main()) == [0, 1, 2, 3, 4]

    def test_window_waits_for_stragglers(self):
        async def main():
            batcher = MicroBatcher(window=0.05)
            batcher.submit("place", "early")

            async def straggler():
                await asyncio.sleep(0.01)  # inside the window
                batcher.submit("place", "late")

            task = asyncio.create_task(straggler())
            batch = await batcher.next_batch()
            await task
            return [item.request for item in batch]

        assert run(main()) == ["early", "late"]

    def test_max_batch_bounds_flush(self):
        async def main():
            batcher = MicroBatcher(window=0.0, max_batch=3)
            for i in range(5):
                batcher.submit("place", i)
            first = await batcher.next_batch()
            second = await batcher.next_batch()
            return len(first), len(second)

        assert run(main()) == (3, 2)


class TestBackpressure:
    def test_overflow_raises(self):
        async def main():
            batcher = MicroBatcher(maxsize=2)
            batcher.submit("admit", 1)
            batcher.submit("admit", 2)
            with pytest.raises(ServeOverflow, match="full"):
                batcher.submit("admit", 3)

        run(main())

    def test_submit_after_close_raises(self):
        async def main():
            batcher = MicroBatcher()
            batcher.close()
            with pytest.raises(ServeOverflow, match="shutting down"):
                batcher.submit("admit", 1)

        run(main())


class TestShutdownDrain:
    def test_close_drains_then_ends(self):
        async def main():
            batcher = MicroBatcher(window=0.0)
            batcher.submit("place", "pending")
            batcher.close()
            first = await batcher.next_batch()
            second = await batcher.next_batch()
            return [i.request for i in first], second

        assert run(main()) == (["pending"], None)

    def test_close_empty_ends_immediately(self):
        async def main():
            batcher = MicroBatcher()
            batcher.close()
            return await batcher.next_batch()

        assert run(main()) is None
