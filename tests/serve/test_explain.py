"""Serve-side explanation surfaces: ``/explain``, 409 reasons, headroom.

Covers the three new introspection surfaces of the daemon end-to-end
over real sockets: ``POST /explain`` parity with the offline
explanation layer, the structured ``reason`` carried by rejected
``/place`` responses, and the ``serve.headroom`` gauge in the live
window and the Prometheus exposition.
"""

import asyncio
import math

import numpy as np

from repro.analysis.explain import EXPLAIN_VERSION, explain_admission
from repro.model.io import taskset_to_dict
from tests.conftest import random_taskset
from tests.serve.conftest import DaemonHarness, task_entry

#: A task no core of a fresh 2-core K=2 daemon can hold (load 2 > 1).
IMPOSSIBLE = task_entry(1.0, [2.0, 3.0], name="whale")


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


class TestExplainEndpoint:
    def test_matches_offline_explanation(self):
        ts = random_taskset(np.random.default_rng(11), n=8)

        async def main():
            async with DaemonHarness(cores=3) as h:
                return await h.client.post(
                    "/explain",
                    {"taskset": taskset_to_dict(ts), "cores": 3},
                )

        status, body = run(main())
        assert status == 200
        assert body["version"] == EXPLAIN_VERSION
        # The daemon decided under its incremental backend; offline
        # explain defaults to the ambient batch backend.  Backends are
        # bit-identical, so only the recorded name may differ.
        assert body["probe_impl"] == "incremental"
        offline = explain_admission(ts, 3).to_dict()
        body.pop("probe_impl")
        body.pop("request_id", None)
        offline.pop("probe_impl")
        assert body == offline

    def test_rejected_explain_carries_candidates(self):
        ts = random_taskset(np.random.default_rng(13), n=20, max_u=0.8)

        async def main():
            async with DaemonHarness(cores=2) as h:
                return await h.client.post(
                    "/explain",
                    {"taskset": taskset_to_dict(ts), "cores": 1},
                )

        status, body = run(main())
        assert status == 200
        if not body["admitted"]:
            assert body["failed_task"] is not None
            assert body["candidate_explanations"]
            assert body["sensitivity"]["task"] == body["failed_task"]

    def test_get_is_405(self):
        async def main():
            async with DaemonHarness() as h:
                return await h.client.get("/explain")

        status, _ = run(main())
        assert status == 405


class TestPlaceRejectionReason:
    def test_409_carries_structured_reason(self):
        async def main():
            async with DaemonHarness(cores=2) as h:
                return await h.client.post("/place", IMPOSSIBLE)

        status, body = run(main())
        assert status == 409
        assert not body["accepted"]
        reason = body["reason"]
        assert set(reason) == {"best_core", "best_margin", "cores"}
        assert reason["best_margin"] < 0.0
        assert len(reason["cores"]) == 2
        for entry in reason["cores"]:
            assert entry["margin"] < 0.0
            assert entry["first_failing_condition"] == 1

    def test_accepted_place_has_no_reason(self):
        async def main():
            async with DaemonHarness(cores=2) as h:
                return await h.client.post(
                    "/place", task_entry(10.0, [1.0, 2.0])
                )

        status, body = run(main())
        assert status == 200
        assert "reason" not in body

    def test_reason_reflects_live_state(self):
        """After filling the daemon, the margins account for the load."""

        async def main():
            async with DaemonHarness(cores=2) as h:
                for _ in range(2):
                    await h.client.post("/place", task_entry(10.0, [4.0, 8.0]))
                return await h.client.post("/place", task_entry(10.0, [4.0, 8.0]))

        status, body = run(main())
        assert status == 409
        # Both cores hold a 0.8-HI task: probing another one fails by
        # the same margin everywhere, so the best core ties to index 0.
        assert body["reason"]["best_core"] == 0


class TestHeadroomGauge:
    def test_gauge_in_history_and_prometheus(self):
        async def main():
            async with DaemonHarness(cores=2) as h:
                empty = await h.client.get("/metrics/history")
                await h.client.post("/place", task_entry(10.0, [4.0, 8.0]))
                filled = await h.client.get("/metrics/history")
                _, _, prom = await h.client.get_raw(
                    "/metrics?format=prometheus"
                )
                return empty[1], filled[1], prom

        empty, filled, prom = run(main())
        # Empty daemon: headroom is the finite clamp, not infinity.
        assert empty["gauges"]["serve.headroom"] == 64.0
        alpha = filled["gauges"]["serve.headroom"]
        assert math.isfinite(alpha)
        # One 0.8-HI task on one core: it tips over at 1/0.8 = 1.25.
        assert alpha < 64.0 and alpha > 1.0
        line = next(
            ln for ln in prom.splitlines()
            if ln.startswith("serve_headroom ")
        )
        assert math.isfinite(float(line.split()[1]))
