"""Graceful-drain durability: events.jsonl is complete before export.

Pins the shutdown ordering contract of :meth:`ServeDaemon.run`: drain,
record the final spans/events, snapshot the registry, close the JSONL
sink, *then* write the metrics dump — so the events file is whole on
disk before (and regardless of) the export, even when the serving
block raises.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve import ServeConfig, ServeDaemon
from tests.serve.conftest import DaemonHarness, task_entry


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


class TestDrainDurability:
    def test_events_complete_and_closed_before_export(self, tmp_path):
        events = tmp_path / "events.jsonl"
        metrics = tmp_path / "metrics.json"
        at_export: dict = {}

        async def main():
            h = DaemonHarness(
                cores=2,
                log_json=str(events),
                metrics_path=str(metrics),
            )
            original_export = h.daemon._export

            def spying_export(snapshot):
                # Captured at the exact moment the export begins: the
                # sink must already be closed and the file whole.
                at_export["text"] = events.read_text()
                original_export(snapshot)

            h.daemon._export = spying_export
            async with h:
                status, _ = await h.client.post(
                    "/place", task_entry(1000.0, [1.0, 2.0], name="t0")
                )
                assert status == 200

        run(main())
        text = at_export["text"]
        assert text.endswith("\n"), "torn final line at export time"
        parsed = [json.loads(line) for line in text.splitlines()]
        names = [e["event"] for e in parsed]
        assert "serve.start" in names
        assert "serve.stop" in names
        # The daemon's root span is recorded before the sink closes,
        # and serve.stop is the final event of the stream.
        assert "span.serve.run" in names
        assert names[-1] == "serve.stop"
        # Sequence numbers are gapless: nothing was dropped in the drain.
        assert [e["seq"] for e in parsed] == list(range(1, len(parsed) + 1))
        # And the export itself completed after the spy ran.
        dump = json.loads(metrics.read_text())
        assert dump["metrics"]["counters"]["serve.place.accepted"] == 1

    def test_export_survives_a_crashing_serve_block(self, tmp_path):
        events = tmp_path / "events.jsonl"
        metrics = tmp_path / "metrics.json"
        daemon = ServeDaemon(
            ServeConfig(
                cores=2,
                port=0,
                log_json=str(events),
                metrics_path=str(metrics),
            )
        )

        async def boom():
            raise RuntimeError("bind failed")

        daemon.server.start = boom

        async def main():
            await daemon.run(asyncio.Event())

        with pytest.raises(RuntimeError, match="bind failed"):
            run(main())
        # The metrics dump still landed, and the events file is whole
        # with the errored root span recorded.
        dump = json.loads(metrics.read_text())
        assert dump["run_id"] == daemon.run_id
        text = events.read_text()
        assert text.endswith("\n")
        spans = [
            json.loads(line)
            for line in text.splitlines()
            if json.loads(line)["event"] == "span.serve.run"
        ]
        assert len(spans) == 1
        assert spans[0]["error"] is True

    def test_slo_section_exported_when_rules_configured(self, tmp_path):
        metrics = tmp_path / "metrics.json"

        async def main():
            h = DaemonHarness(
                cores=2,
                metrics_path=str(metrics),
                slo=["rate(serve.rejected_503) == 0", "count(ghost) == 0"],
            )
            async with h:
                status, _ = await h.client.post(
                    "/place", task_entry(1000.0, [1.0, 2.0])
                )
                assert status == 200

        run(main())
        dump = json.loads(metrics.read_text())
        assert dump["slo"]["alerts"] == 0
        assert dump["slo"]["failing"] == []
        assert len(dump["slo"]["rules"]) == 2

    def test_slo_violation_is_alerted_and_exported(self, tmp_path):
        metrics = tmp_path / "metrics.json"
        events = tmp_path / "events.jsonl"

        async def main():
            h = DaemonHarness(
                cores=2,
                metrics_path=str(metrics),
                log_json=str(events),
                # Impossible latency bound: any request violates it.
                slo=["p95(serve.place.seconds) < 1us"],
                slo_interval_s=0.05,
            )
            async with h:
                status, _ = await h.client.post(
                    "/place", task_entry(1000.0, [1.0, 2.0])
                )
                assert status == 200
                await asyncio.sleep(0.2)  # let the SLO loop tick

        run(main())
        dump = json.loads(metrics.read_text())
        assert dump["slo"]["alerts"] == 1  # edge-triggered: exactly one
        assert dump["slo"]["failing"] == ["p95(serve.place.seconds) < 1us"]
        alerts = [
            json.loads(line)
            for line in events.read_text().splitlines()
            if json.loads(line)["event"] == "slo.alert"
        ]
        assert len(alerts) == 1
        assert alerts[0]["rule"] == "p95(serve.place.seconds) < 1us"
