"""Per-request tracing: burst → one flush span + N linked request spans.

Pins the ISSUE acceptance criteria for the serve span tree: every
request gets its own ``serve.request`` span linked (``parent_id``) to
the shared ``serve.flush`` span of the batch it rode in, the whole
stream forms one tree rooted at ``serve.run``, and the queue-wait /
kernel / apply attribution reconciles exactly with each span's own
duration.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from repro.model.io import taskset_to_dict
from tests.conftest import random_taskset
from tests.serve.conftest import DaemonHarness, task_entry

BURST = 8


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


def read_spans(events_path) -> list[dict]:
    events = [
        json.loads(line) for line in events_path.read_text().splitlines()
    ]
    return [e for e in events if e["event"].startswith("span.")]


def run_burst(events_path, n=BURST):
    """A coalesced /place burst against a traced daemon; returns bodies."""

    async def main():
        # A wide window so one flush collects the whole burst.
        async with DaemonHarness(
            cores=4, window_ms=100, log_json=str(events_path)
        ) as h:
            results = await asyncio.gather(
                *(
                    h.client.post(
                        "/place", task_entry(4000.0, [0.5, 1.0], name=f"t{i}")
                    )
                    for i in range(n)
                )
            )
        return results

    return run(main())


class TestRequestSpans:
    def test_burst_yields_one_rooted_tree(self, tmp_path):
        events = tmp_path / "events.jsonl"
        run_burst(events)
        spans = read_spans(events)
        ids = {s["span_id"] for s in spans}
        roots = [s for s in spans if s["parent_id"] is None]
        orphans = [
            s
            for s in spans
            if s["parent_id"] is not None and s["parent_id"] not in ids
        ]
        assert len(roots) == 1
        assert roots[0]["event"] == "span.serve.run"
        assert orphans == []

    def test_each_request_links_to_the_shared_flush_span(self, tmp_path):
        events = tmp_path / "events.jsonl"
        results = run_burst(events)
        assert all(status == 200 for status, _ in results)
        spans = read_spans(events)
        requests = [s for s in spans if s["event"] == "span.serve.request"]
        flush_ids = {
            s["span_id"] for s in spans if s["event"] == "span.serve.flush"
        }
        assert len(requests) == BURST
        parents = {s["parent_id"] for s in requests}
        assert parents <= flush_ids
        # The 100 ms window coalesced the whole burst into one flush.
        assert len(parents) == 1
        assert all(s["kind"] == "place" for s in requests)

    def test_request_ids_propagate_to_responses_and_spans(self, tmp_path):
        events = tmp_path / "events.jsonl"
        results = run_burst(events)
        response_ids = {body["request_id"] for _, body in results}
        assert len(response_ids) == BURST  # unique per request
        spans = read_spans(events)
        span_ids = {
            s["request_id"]
            for s in spans
            if s["event"] == "span.serve.request"
        }
        assert span_ids == response_ids

    def test_attribution_reconciles_exactly(self, tmp_path):
        events = tmp_path / "events.jsonl"
        run_burst(events)
        spans = read_spans(events)
        root = next(s for s in spans if s["event"] == "span.serve.run")
        for span in spans:
            if span["event"] != "span.serve.request":
                continue
            queue_wait = span["queue_wait"]
            kernel = span["kernel"]
            apply_s = span["apply"]
            assert queue_wait >= 0 and kernel >= 0 and apply_s >= 0
            # seconds is constructed as the sum — exact, not approximate.
            assert queue_wait + kernel + apply_s == span["seconds"]
            # Wall-clock containment inside the daemon's run span.
            assert span["start"] >= root["start"]
            assert span["start"] + span["seconds"] <= (
                root["start"] + root["seconds"] + 0.5
            )

    def test_admit_requests_get_spans_too(self, tmp_path):
        events = tmp_path / "events.jsonl"

        taskset = random_taskset(np.random.default_rng(7), n=6)

        async def main():
            async with DaemonHarness(
                cores=2, log_json=str(events)
            ) as h:
                return await h.client.post(
                    "/admit",
                    {
                        "taskset": taskset_to_dict(taskset),
                        "cores": 2,
                        "scheme": "ca-tpa",
                    },
                )

        status, body = run(main())
        assert status == 200
        assert body["request_id"].startswith("admit-")
        requests = [
            s
            for s in read_spans(events)
            if s["event"] == "span.serve.request"
        ]
        assert len(requests) == 1
        assert requests[0]["kind"] == "admit"
