"""Validation of the admission daemon's wire protocol."""

import pytest

from repro.model.io import taskset_to_dict
from repro.serve.protocol import ProtocolError, parse_admit, parse_place
from tests.conftest import random_taskset

import numpy as np


@pytest.fixture
def ts():
    return random_taskset(np.random.default_rng(0), n=5)


class TestParseAdmit:
    def test_round_trip(self, ts):
        req = parse_admit(
            {"taskset": taskset_to_dict(ts), "cores": 3, "scheme": "ffd"}
        )
        assert req.cores == 3 and req.scheme == "ffd"
        assert req.taskset == ts

    def test_scheme_defaults_to_catpa(self, ts):
        assert parse_admit({"taskset": taskset_to_dict(ts), "cores": 1}).scheme == "ca-tpa"

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_admit([1, 2])

    def test_rejects_missing_taskset(self):
        with pytest.raises(ProtocolError, match="taskset"):
            parse_admit({"cores": 2})

    def test_rejects_malformed_taskset(self, ts):
        doc = taskset_to_dict(ts)
        doc["format"] = "something-else"
        with pytest.raises(ProtocolError, match="bad taskset"):
            parse_admit({"taskset": doc, "cores": 2})

    @pytest.mark.parametrize("cores", [0, -1, "2", 2.0, True, None])
    def test_rejects_bad_cores(self, ts, cores):
        with pytest.raises(ProtocolError, match="cores"):
            parse_admit({"taskset": taskset_to_dict(ts), "cores": cores})

    def test_rejects_unknown_scheme(self, ts):
        with pytest.raises(ProtocolError, match="unknown scheme"):
            parse_admit(
                {"taskset": taskset_to_dict(ts), "cores": 2, "scheme": "zzz"}
            )


class TestParsePlace:
    def test_round_trip(self):
        req = parse_place({"task": {"period": 10.0, "wcets": [1.0, 2.0], "name": "x"}})
        assert req.task.period == 10.0
        assert req.task.wcets == (1.0, 2.0)
        assert req.task.criticality == 2

    def test_rejects_missing_task(self):
        with pytest.raises(ProtocolError, match="'task'"):
            parse_place({"period": 10.0})

    def test_rejects_malformed_task(self):
        with pytest.raises(ProtocolError, match="bad task"):
            parse_place({"task": {"wcets": [1.0]}})  # no period

    def test_rejects_invalid_wcets(self):
        with pytest.raises(ProtocolError, match="bad task"):
            parse_place({"task": {"period": 10.0, "wcets": []}})

    def test_error_carries_status(self):
        try:
            parse_place(None)
        except ProtocolError as exc:
            assert exc.status == 400
