"""Tests for the elastic MC extension."""

import pytest

from repro.elastic import (
    ElasticMCTask,
    elastic_admission,
    stretch_taskset,
)
from repro.model import MCTask
from repro.partition import CATPA
from repro.types import ModelError


def elastic(u, period=10.0, max_stretch=2.0, hi_u=None):
    utils = [u] if hi_u is None else [u, hi_u]
    task = MCTask.from_utilizations(utils, period)
    return ElasticMCTask(task=task, max_period=period * max_stretch)


class TestElasticTask:
    def test_max_period_below_period_rejected(self):
        task = MCTask(wcets=(1.0,), period=10.0)
        with pytest.raises(ModelError):
            ElasticMCTask(task=task, max_period=5.0)

    def test_stretch_lowers_utilization(self):
        e = elastic(0.4)
        assert e.stretched(1.0).utilization(1) == pytest.approx(0.4)
        assert e.stretched(2.0).utilization(1) == pytest.approx(0.2)

    def test_stretch_clamped_at_max(self):
        e = elastic(0.4, max_stretch=1.5)
        assert e.stretched(3.0).period == pytest.approx(15.0)

    def test_inelastic_task_untouched(self):
        e = elastic(0.4, max_stretch=1.0)
        assert e.stretched(5.0) is e.task

    def test_stretch_below_one_rejected(self):
        with pytest.raises(ModelError):
            elastic(0.4).stretched(0.5)

    def test_service_level(self):
        e = elastic(0.4, max_stretch=2.0)
        assert e.service_level(1.0) == 1.0
        assert e.service_level(2.0) == 0.5
        assert e.service_level(4.0) == 0.5  # clamped

    def test_wcets_preserved(self):
        e = elastic(0.4, hi_u=0.8)
        assert e.stretched(2.0).wcets == e.task.wcets


class TestStretchTaskset:
    def test_builds_ordinary_taskset(self):
        ts = stretch_taskset([elastic(0.4), elastic(0.6)], 2.0)
        assert len(ts) == 2
        assert ts.average_utilization(1) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            stretch_taskset([], 1.0)


class TestAdmission:
    def test_full_service_when_feasible(self):
        tasks = [elastic(0.3), elastic(0.3)]
        adm = elastic_admission(tasks, cores=1, partitioner=CATPA())
        assert adm.admitted
        assert adm.factor == 1.0
        assert adm.mean_service_level == 1.0

    def test_degrades_just_enough(self):
        # Total utilization 1.5 on one core: needs stretch ~1.5.
        tasks = [elastic(0.5), elastic(0.5), elastic(0.5)]
        adm = elastic_admission(tasks, cores=1, partitioner=CATPA(), steps=50)
        assert adm.admitted
        assert 1.4 <= adm.factor <= 1.7
        assert adm.result.schedulable
        # the accepted (stretched) set really is schedulable
        total = adm.taskset.average_utilization(1)
        assert total <= 1.0 + 1e-9

    def test_rejects_when_even_max_stretch_insufficient(self):
        tasks = [elastic(0.9, max_stretch=1.1), elastic(0.9, max_stretch=1.1)]
        adm = elastic_admission(tasks, cores=1, partitioner=CATPA())
        assert not adm.admitted
        assert adm.taskset is None
        assert adm.result is None

    def test_inelastic_hi_tasks_keep_full_rate(self):
        hi = ElasticMCTask(
            task=MCTask.from_utilizations([0.2, 0.5], 10.0), max_period=10.0
        )
        lo = elastic(0.8, max_stretch=4.0)
        adm = elastic_admission([hi, lo], cores=1, partitioner=CATPA(), steps=40)
        assert adm.admitted
        assert adm.service_levels[0] == 1.0  # HI keeps its rate
        assert adm.service_levels[1] < 1.0  # LO pays for admission

    def test_admitted_set_simulates_clean(self):
        from repro.sched import LevelScenario, SystemSimulator

        hi = ElasticMCTask(
            task=MCTask.from_utilizations([0.2, 0.5], 20.0), max_period=20.0
        )
        tasks = [hi, elastic(0.5, period=25.0), elastic(0.5, period=40.0)]
        adm = elastic_admission(tasks, cores=1, partitioner=CATPA(), steps=40)
        assert adm.admitted
        report = SystemSimulator(
            adm.result.partition, LevelScenario(2), horizon=4000.0
        ).run()
        assert report.all_deadlines_met()

    def test_bad_steps_rejected(self):
        with pytest.raises(ModelError):
            elastic_admission([elastic(0.5)], 1, CATPA(), steps=0)
