"""Unit tests for MCTaskSet and its utilization algebra."""

import numpy as np
import pytest

from repro.model import MCTask, MCTaskSet
from repro.types import ModelError


def simple_set():
    return MCTaskSet(
        [
            MCTask(wcets=(1.0,), period=10.0),  # l=1, u=(0.1,)
            MCTask(wcets=(2.0, 4.0), period=10.0),  # l=2, u=(0.2, 0.4)
            MCTask(wcets=(1.0, 2.0, 6.0), period=20.0),  # l=3, u=(.05,.1,.3)
        ],
        levels=3,
    )


class TestConstruction:
    def test_levels_default_to_max_criticality(self):
        ts = MCTaskSet([MCTask(wcets=(1.0, 2.0), period=4.0)])
        assert ts.levels == 2

    def test_levels_may_exceed_max_criticality(self):
        ts = MCTaskSet([MCTask(wcets=(1.0,), period=4.0)], levels=4)
        assert ts.levels == 4
        assert ts.utilization_matrix.shape == (1, 4)

    def test_levels_below_max_rejected(self):
        with pytest.raises(ModelError):
            MCTaskSet([MCTask(wcets=(1.0, 2.0), period=4.0)], levels=1)

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            MCTaskSet([])

    def test_container_protocol(self):
        ts = simple_set()
        assert len(ts) == 3
        assert ts[1].criticality == 2
        assert [t.criticality for t in ts] == [1, 2, 3]

    def test_equality(self):
        assert simple_set() == simple_set()
        assert simple_set() != simple_set().with_levels(4)

    def test_matrices_read_only(self):
        ts = simple_set()
        with pytest.raises(ValueError):
            ts.utilization_matrix[0, 0] = 9.9
        with pytest.raises(ValueError):
            ts.criticalities[0] = 2


class TestUtilizationMatrix:
    def test_values_and_padding(self):
        ts = simple_set()
        expected = np.array(
            [
                [0.1, 0.0, 0.0],
                [0.2, 0.4, 0.0],
                [0.05, 0.1, 0.3],
            ]
        )
        np.testing.assert_allclose(ts.utilization_matrix, expected)

    def test_criticalities(self):
        np.testing.assert_array_equal(simple_set().criticalities, [1, 2, 3])


class TestLevelMatrix:
    def test_full_set(self):
        ts = simple_set()
        mat = ts.level_matrix()
        # L[j-1, k-1] = U_j(k): bucket rows by criticality.
        expected = np.array(
            [
                [0.1, 0.0, 0.0],
                [0.2, 0.4, 0.0],
                [0.05, 0.1, 0.3],
            ]
        )
        np.testing.assert_allclose(mat, expected)

    def test_bucket_merging(self):
        ts = MCTaskSet(
            [
                MCTask(wcets=(1.0, 2.0), period=10.0),
                MCTask(wcets=(2.0, 3.0), period=10.0),
            ],
            levels=2,
        )
        mat = ts.level_matrix()
        np.testing.assert_allclose(mat[1], [0.3, 0.5])
        np.testing.assert_allclose(mat[0], [0.0, 0.0])

    def test_subset_indices(self):
        ts = simple_set()
        mat = ts.level_matrix([0, 2])
        np.testing.assert_allclose(mat[0], [0.1, 0.0, 0.0])
        np.testing.assert_allclose(mat[1], [0.0, 0.0, 0.0])
        np.testing.assert_allclose(mat[2], [0.05, 0.1, 0.3])

    def test_empty_indices_gives_zero_matrix(self):
        mat = simple_set().level_matrix([])
        np.testing.assert_allclose(mat, np.zeros((3, 3)))


class TestTotals:
    def test_total_utilization_counts_crit_at_or_above(self):
        ts = simple_set()
        # U(1): all tasks at level 1
        assert ts.total_utilization(1) == pytest.approx(0.1 + 0.2 + 0.05)
        # U(2): only tasks with l >= 2
        assert ts.total_utilization(2) == pytest.approx(0.4 + 0.1)
        # U(3): only the level-3 task
        assert ts.total_utilization(3) == pytest.approx(0.3)

    def test_total_vector_matches_scalar(self):
        ts = simple_set()
        vec = ts.total_utilization_vector()
        for k in range(1, 4):
            assert vec[k - 1] == pytest.approx(ts.total_utilization(k))

    def test_total_utilization_level_out_of_range(self):
        with pytest.raises(ModelError):
            simple_set().total_utilization(4)
        with pytest.raises(ModelError):
            simple_set().total_utilization(0)

    def test_average_utilization_is_raw_level_sum(self):
        ts = simple_set()
        assert ts.average_utilization(1) == pytest.approx(0.35)
        assert ts.average_utilization(3) == pytest.approx(0.3)


class TestDerivedSets:
    def test_subset(self):
        ts = simple_set()
        sub = ts.subset([1])
        assert len(sub) == 1
        assert sub.levels == 3
        assert sub[0] == ts[1]

    def test_subset_empty_rejected(self):
        with pytest.raises(ModelError):
            simple_set().subset([])

    def test_with_levels(self):
        ts = simple_set().with_levels(5)
        assert ts.levels == 5
        assert ts.utilization_matrix.shape == (3, 5)
