"""Tests for JSON serialization of task sets and partitions."""

import json

import pytest

from repro.model import (
    MCTask,
    MCTaskSet,
    Partition,
    events_from_dict,
    events_to_dict,
    load_events,
    load_partition,
    load_taskset,
    partition_from_dict,
    partition_to_dict,
    save_events,
    save_partition,
    save_taskset,
    taskset_from_dict,
    taskset_to_dict,
)
from repro.sched.events import (
    core_failure,
    core_hotplug,
    mode_recovery,
    task_arrival,
    task_departure,
    wcet_burst,
)
from repro.types import ModelError, SimulationError


@pytest.fixture
def taskset():
    return MCTaskSet(
        [
            MCTask(wcets=(2.0, 5.0), period=20.0, name="hi"),
            MCTask(wcets=(4.0,), period=25.0, name="lo"),
        ],
        levels=3,
    )


class TestTasksetRoundTrip:
    def test_dict_round_trip(self, taskset):
        assert taskset_from_dict(taskset_to_dict(taskset)) == taskset

    def test_file_round_trip(self, taskset, tmp_path):
        path = tmp_path / "ts.json"
        save_taskset(taskset, path)
        assert load_taskset(path) == taskset

    def test_document_is_plain_json(self, taskset, tmp_path):
        path = tmp_path / "ts.json"
        save_taskset(taskset, path)
        doc = json.loads(path.read_text())
        assert doc["format"] == "repro-mc-taskset"
        assert doc["levels"] == 3
        assert doc["tasks"][0]["wcets"] == [2.0, 5.0]

    def test_wrong_format_rejected(self):
        with pytest.raises(ModelError, match="format"):
            taskset_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self, taskset):
        doc = taskset_to_dict(taskset)
        doc["version"] = 99
        with pytest.raises(ModelError, match="version"):
            taskset_from_dict(doc)

    def test_malformed_tasks_rejected(self, taskset):
        doc = taskset_to_dict(taskset)
        del doc["tasks"][0]["period"]
        with pytest.raises(ModelError, match="malformed"):
            taskset_from_dict(doc)

    def test_invalid_task_values_surface_model_errors(self, taskset):
        doc = taskset_to_dict(taskset)
        doc["tasks"][0]["wcets"] = [5.0, 2.0]  # decreasing
        with pytest.raises(ModelError):
            taskset_from_dict(doc)


class TestPartitionRoundTrip:
    def test_round_trip(self, taskset, tmp_path):
        part = Partition(taskset, cores=2)
        part.assign(0, 1)
        part.assign(1, 0)
        path = tmp_path / "part.json"
        save_partition(part, path)
        loaded = load_partition(path)
        assert loaded.cores == 2
        assert loaded.core_of(0) == 1
        assert loaded.core_of(1) == 0
        assert loaded.taskset == taskset

    def test_partial_partition_round_trip(self, taskset):
        part = Partition(taskset, cores=2)
        part.assign(0, 0)
        clone = partition_from_dict(partition_to_dict(part))
        assert clone.core_of(0) == 0
        assert clone.core_of(1) == -1

    def test_wrong_format_rejected(self, taskset):
        with pytest.raises(ModelError, match="format"):
            partition_from_dict(taskset_to_dict(taskset))

    def test_level_matrices_rebuilt(self, taskset):
        import numpy as np

        part = Partition(taskset, cores=2)
        part.assign(0, 0)
        part.assign(1, 0)
        clone = partition_from_dict(partition_to_dict(part))
        np.testing.assert_allclose(clone.level_matrix(0), part.level_matrix(0))


@pytest.fixture
def events():
    return (
        wcet_burst(10.0, 40.0, 2.5, tasks=(0, 1)),
        task_arrival(20.0, MCTask(wcets=(1.0, 2.0), period=15.0, name="late")),
        task_departure(50.0, task_index=1),
        core_failure(30.0, core=1),
        core_hotplug(80.0, core=1),
        mode_recovery(60.0, 90.0),
    )


class TestEventsRoundTrip:
    def test_dict_round_trip(self, events):
        clone = events_from_dict(events_to_dict(events))
        assert clone == events

    def test_file_round_trip(self, events, tmp_path):
        path = tmp_path / "events.json"
        save_events(events, path)
        assert load_events(path) == events

    def test_instantaneous_events_use_time_sugar(self, events):
        doc = events_to_dict(events)
        by_kind = {entry["kind"]: entry for entry in doc["events"]}
        assert by_kind["core_failure"] == {
            "kind": "core_failure",
            "time": 30.0,
            "core": 1,
        }
        assert "start" not in by_kind["task_arrival"]
        assert by_kind["wcet_burst"]["start"] == 10.0
        assert by_kind["wcet_burst"]["end"] == 40.0

    def test_time_sugar_accepted_on_load(self):
        doc = {
            "format": "repro-mc-events",
            "version": 1,
            "events": [{"kind": "task_departure", "time": 5.0, "task_index": 0}],
        }
        (event,) = events_from_dict(doc)
        assert event.start == event.end == 5.0

    def test_wrong_format_rejected(self, events):
        doc = events_to_dict(events)
        doc["format"] = "repro-mc-taskset"
        with pytest.raises(ModelError, match="not a repro-mc-events"):
            events_from_dict(doc)

    def test_wrong_version_rejected(self, events):
        doc = events_to_dict(events)
        doc["version"] = 99
        with pytest.raises(ModelError, match="unsupported version"):
            events_from_dict(doc)

    def test_non_list_events_rejected(self):
        doc = {"format": "repro-mc-events", "version": 1, "events": {}}
        with pytest.raises(ModelError, match="must be a list"):
            events_from_dict(doc)

    def test_malformed_entry_names_position(self, events):
        doc = events_to_dict(events)
        del doc["events"][2]["kind"]
        with pytest.raises(ModelError, match="malformed event #2"):
            events_from_dict(doc)

    def test_structurally_invalid_event_surfaces_sim_error(self, events):
        doc = events_to_dict(events)
        doc["events"][0]["factor"] = -1.0
        with pytest.raises(SimulationError, match="factor must be positive"):
            events_from_dict(doc)

    def test_document_is_plain_json(self, events, tmp_path):
        path = tmp_path / "events.json"
        save_events(events, path)
        doc = json.loads(path.read_text())
        assert doc["format"] == "repro-mc-events"
        assert len(doc["events"]) == len(events)
