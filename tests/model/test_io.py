"""Tests for JSON serialization of task sets and partitions."""

import json

import pytest

from repro.model import (
    MCTask,
    MCTaskSet,
    Partition,
    load_partition,
    load_taskset,
    partition_from_dict,
    partition_to_dict,
    save_partition,
    save_taskset,
    taskset_from_dict,
    taskset_to_dict,
)
from repro.types import ModelError


@pytest.fixture
def taskset():
    return MCTaskSet(
        [
            MCTask(wcets=(2.0, 5.0), period=20.0, name="hi"),
            MCTask(wcets=(4.0,), period=25.0, name="lo"),
        ],
        levels=3,
    )


class TestTasksetRoundTrip:
    def test_dict_round_trip(self, taskset):
        assert taskset_from_dict(taskset_to_dict(taskset)) == taskset

    def test_file_round_trip(self, taskset, tmp_path):
        path = tmp_path / "ts.json"
        save_taskset(taskset, path)
        assert load_taskset(path) == taskset

    def test_document_is_plain_json(self, taskset, tmp_path):
        path = tmp_path / "ts.json"
        save_taskset(taskset, path)
        doc = json.loads(path.read_text())
        assert doc["format"] == "repro-mc-taskset"
        assert doc["levels"] == 3
        assert doc["tasks"][0]["wcets"] == [2.0, 5.0]

    def test_wrong_format_rejected(self):
        with pytest.raises(ModelError, match="format"):
            taskset_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self, taskset):
        doc = taskset_to_dict(taskset)
        doc["version"] = 99
        with pytest.raises(ModelError, match="version"):
            taskset_from_dict(doc)

    def test_malformed_tasks_rejected(self, taskset):
        doc = taskset_to_dict(taskset)
        del doc["tasks"][0]["period"]
        with pytest.raises(ModelError, match="malformed"):
            taskset_from_dict(doc)

    def test_invalid_task_values_surface_model_errors(self, taskset):
        doc = taskset_to_dict(taskset)
        doc["tasks"][0]["wcets"] = [5.0, 2.0]  # decreasing
        with pytest.raises(ModelError):
            taskset_from_dict(doc)


class TestPartitionRoundTrip:
    def test_round_trip(self, taskset, tmp_path):
        part = Partition(taskset, cores=2)
        part.assign(0, 1)
        part.assign(1, 0)
        path = tmp_path / "part.json"
        save_partition(part, path)
        loaded = load_partition(path)
        assert loaded.cores == 2
        assert loaded.core_of(0) == 1
        assert loaded.core_of(1) == 0
        assert loaded.taskset == taskset

    def test_partial_partition_round_trip(self, taskset):
        part = Partition(taskset, cores=2)
        part.assign(0, 0)
        clone = partition_from_dict(partition_to_dict(part))
        assert clone.core_of(0) == 0
        assert clone.core_of(1) == -1

    def test_wrong_format_rejected(self, taskset):
        with pytest.raises(ModelError, match="format"):
            partition_from_dict(taskset_to_dict(taskset))

    def test_level_matrices_rebuilt(self, taskset):
        import numpy as np

        part = Partition(taskset, cores=2)
        part.assign(0, 0)
        part.assign(1, 0)
        clone = partition_from_dict(partition_to_dict(part))
        np.testing.assert_allclose(clone.level_matrix(0), part.level_matrix(0))
