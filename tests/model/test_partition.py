"""Unit tests for the Partition builder."""

import numpy as np
import pytest

from repro.model import MCTask, MCTaskSet, Partition
from repro.types import PartitionError


@pytest.fixture
def ts():
    return MCTaskSet(
        [
            MCTask(wcets=(1.0,), period=10.0),  # u=(0.1,)
            MCTask(wcets=(2.0, 4.0), period=10.0),  # u=(0.2, 0.4)
            MCTask(wcets=(3.0, 6.0), period=20.0),  # u=(0.15, 0.3)
        ],
        levels=2,
    )


class TestAssignment:
    def test_initially_unassigned(self, ts):
        part = Partition(ts, cores=2)
        assert not part.is_complete
        assert part.core_of(0) == -1
        assert part.tasks_on(0) == []

    def test_assign_and_query(self, ts):
        part = Partition(ts, cores=2)
        part.assign(0, 0)
        part.assign(1, 1)
        part.assign(2, 1)
        assert part.is_complete
        assert part.core_of(2) == 1
        assert part.tasks_on(1) == [1, 2]
        assert part.core_size(0) == 1

    def test_double_assignment_rejected(self, ts):
        part = Partition(ts, cores=2)
        part.assign(0, 0)
        with pytest.raises(PartitionError, match="already assigned"):
            part.assign(0, 1)

    def test_bad_core_rejected(self, ts):
        part = Partition(ts, cores=2)
        with pytest.raises(PartitionError):
            part.assign(0, 2)
        with pytest.raises(PartitionError):
            part.assign(0, -1)

    def test_bad_task_rejected(self, ts):
        part = Partition(ts, cores=2)
        with pytest.raises(PartitionError):
            part.assign(5, 0)

    def test_zero_cores_rejected(self, ts):
        with pytest.raises(PartitionError):
            Partition(ts, cores=0)


class TestLevelMatrices:
    def test_incremental_matches_batch(self, ts):
        part = Partition(ts, cores=2)
        part.assign(0, 0)
        part.assign(1, 0)
        part.assign(2, 1)
        np.testing.assert_allclose(part.level_matrix(0), ts.level_matrix([0, 1]))
        np.testing.assert_allclose(part.level_matrix(1), ts.level_matrix([2]))

    def test_empty_core_matrix_is_zero(self, ts):
        part = Partition(ts, cores=3)
        np.testing.assert_allclose(part.level_matrix(2), np.zeros((2, 2)))

    def test_returned_matrix_not_writable(self, ts):
        part = Partition(ts, cores=1)
        part.assign(0, 0)
        with pytest.raises(ValueError):
            part.level_matrix(0)[0, 0] = 1.0

    def test_protection_cannot_be_stripped_from_aliases(self, ts):
        # The base array is read-only, so re-enabling the write flag on a
        # returned view (or any alias derived from it) must fail — the
        # old per-view setflags(write=False) only guarded one object.
        part = Partition(ts, cores=2)
        view = part.level_matrix(0)
        with pytest.raises(ValueError):
            view.setflags(write=True)
        alias = view[:]
        with pytest.raises(ValueError):
            alias.setflags(write=True)
        with pytest.raises(ValueError):
            alias[0, 0] = 1.0

    def test_level_matrices_stack_not_writable(self, ts):
        part = Partition(ts, cores=2)
        part.assign(0, 1)
        stack = part.level_matrices()
        np.testing.assert_array_equal(stack[1], part.level_matrix(1))
        with pytest.raises(ValueError):
            stack[0, 0, 0] = 1.0
        with pytest.raises(ValueError):
            stack.setflags(write=True)

    def test_view_stays_readonly_after_assign(self, ts):
        part = Partition(ts, cores=2)
        view = part.level_matrix(0)
        part.assign(0, 0)  # toggles the base writable internally
        with pytest.raises(ValueError):
            view[0, 0] = 1.0


class TestUtilizationCache:
    def test_matches_fresh_computation(self, ts):
        from repro.analysis import core_utilization

        part = Partition(ts, cores=2)
        part.assign(0, 0)
        part.assign(1, 1)
        first = part.core_utilizations()
        expected = np.array(
            [core_utilization(part.level_matrix(m)) for m in range(2)]
        )
        np.testing.assert_array_equal(first, expected)
        # Cached second read is identical (and a defensive copy).
        second = part.core_utilizations()
        np.testing.assert_array_equal(second, first)
        second[0] = 99.0
        assert part.core_utilization(0) == first[0]

    def test_empty_cores_are_zero(self, ts):
        part = Partition(ts, cores=3)
        np.testing.assert_array_equal(part.core_utilizations(), np.zeros(3))

    def test_invalidated_per_core_on_assign(self, ts):
        part = Partition(ts, cores=2)
        part.assign(0, 0)
        before = part.core_utilizations()
        part.assign(1, 1)
        after = part.core_utilizations()
        assert after[0] == before[0]  # untouched core kept its entry
        assert after[1] > 0.0

    def test_per_rule_caches_are_independent(self, ts):
        part = Partition(ts, cores=2)
        part.assign(1, 0)
        part.assign(2, 0)
        from repro.analysis import core_utilization

        for rule in ("max", "min"):
            expected = np.array(
                [core_utilization(part.level_matrix(m), rule=rule) for m in range(2)]
            )
            np.testing.assert_array_equal(part.core_utilizations(rule), expected)

    def test_matrix_updates_after_each_assign(self, ts):
        part = Partition(ts, cores=1)
        part.assign(1, 0)
        assert part.level_matrix(0)[1, 0] == pytest.approx(0.2)
        assert part.level_matrix(0)[1, 1] == pytest.approx(0.4)
        part.assign(2, 0)
        assert part.level_matrix(0)[1, 0] == pytest.approx(0.35)
        assert part.level_matrix(0)[1, 1] == pytest.approx(0.7)


class TestExport:
    def test_core_subsets(self, ts):
        part = Partition(ts, cores=2)
        part.assign(0, 1)
        part.assign(1, 0)
        part.assign(2, 1)
        assert part.core_subsets() == [[1], [0, 2]]

    def test_core_tasksets(self, ts):
        part = Partition(ts, cores=3)
        part.assign(0, 0)
        subsets = part.core_tasksets()
        assert subsets[0] is not None and len(subsets[0]) == 1
        assert subsets[1] is None and subsets[2] is None

    def test_from_assignment_roundtrip(self, ts):
        part = Partition(ts, cores=2)
        part.assign(0, 0)
        part.assign(1, 1)
        part.assign(2, 0)
        clone = Partition.from_assignment(ts, 2, part.assignment)
        assert clone.core_subsets() == part.core_subsets()

    def test_from_assignment_skips_unassigned(self, ts):
        part = Partition.from_assignment(ts, 2, [-1, 0, -1])
        assert part.core_of(0) == -1
        assert part.core_of(1) == 0
        assert not part.is_complete

    def test_assignment_returns_copy(self, ts):
        part = Partition(ts, cores=2)
        vec = part.assignment
        vec[0] = 1
        assert part.core_of(0) == -1


class TestUnassign:
    def test_unassign_reverts_matrices_exactly(self, ts):
        part = Partition(ts, cores=2)
        part.assign(0, 0)
        before = part.level_matrix(1).copy()
        part.assign(1, 1)
        part.assign(2, 1)
        core = part.unassign(2)
        assert core == 1
        part.unassign(1)
        # Recomputed, not decremented: bit-identical to the pre-assign state.
        assert np.array_equal(part.level_matrix(1), before)
        assert part.core_of(1) == -1 and part.core_of(2) == -1
        assert part.tasks_on(1) == []

    def test_unassign_then_reassign_elsewhere(self, ts):
        part = Partition(ts, cores=2)
        part.assign(1, 0)
        part.unassign(1)
        part.assign(1, 1)
        assert part.core_of(1) == 1
        twin = Partition(ts, cores=2)
        twin.assign(1, 1)
        assert np.array_equal(part.level_matrices(), twin.level_matrices())

    def test_unassign_invalidates_util_cache(self, ts):
        part = Partition(ts, cores=2)
        part.assign(1, 0)
        loaded = part.core_utilization(0)
        assert loaded > 0.0
        part.unassign(1)
        assert part.core_utilization(0) == 0.0
        assert part.core_size(0) == 0

    def test_unassign_unassigned_rejected(self, ts):
        part = Partition(ts, cores=2)
        with pytest.raises(PartitionError, match="not assigned"):
            part.unassign(0)
        with pytest.raises(PartitionError, match="out of range"):
            part.unassign(99)


class TestSnapshot:
    def test_snapshot_is_immutable(self, ts):
        part = Partition(ts, cores=2)
        part.assign(0, 0)
        snap = part.snapshot()
        assert snap.is_frozen and not part.is_frozen
        with pytest.raises(PartitionError, match="immutable"):
            snap.assign(1, 1)
        with pytest.raises(PartitionError, match="immutable"):
            snap.unassign(0)

    def test_snapshot_unaffected_by_later_mutation(self, ts):
        part = Partition(ts, cores=2)
        part.assign(0, 0)
        snap = part.snapshot()
        mats = snap.level_matrices().copy()
        part.assign(1, 0)
        part.assign(2, 1)
        assert np.array_equal(snap.level_matrices(), mats)
        assert snap.core_of(1) == -1
        assert snap.core_size(1) == 0

    def test_snapshot_reads_work(self, ts):
        part = Partition(ts, cores=2)
        part.assign(1, 0)
        snap = part.snapshot()
        assert snap.core_utilization(0) == part.core_utilization(0)
        assert snap.tasks_on(0) == [1]
        assert np.array_equal(snap.candidate_stack(2), part.candidate_stack(2))


class TestExtended:
    def test_extended_carries_warm_state(self, ts):
        part = Partition(ts, cores=2)
        part.assign(0, 0)
        part.assign(1, 1)
        grown = MCTaskSet(
            list(ts) + [MCTask(wcets=(1.0, 2.0), period=5.0)], levels=2
        )
        ext = part.extended(grown)
        assert len(ext.taskset) == 4
        assert ext.core_of(0) == 0 and ext.core_of(1) == 1
        assert ext.core_of(2) == -1 and ext.core_of(3) == -1
        assert np.array_equal(ext.level_matrices(), part.level_matrices())
        # The extension is mutable and matrices match a cold rebuild.
        ext.assign(3, 0)
        cold = Partition(grown, cores=2)
        for i, core in enumerate(ext.assignment):
            if core >= 0:
                cold.assign(i, int(core))
        assert np.array_equal(ext.level_matrices(), cold.level_matrices())

    def test_extended_rejects_non_prefix(self, ts):
        part = Partition(ts, cores=2)
        shuffled = ts.subset([1, 0, 2])
        with pytest.raises(PartitionError, match="prefix"):
            part.extended(shuffled)
        with pytest.raises(PartitionError, match="prefix"):
            part.extended(ts.subset([0, 1]))

    def test_extended_rejects_level_change(self, ts):
        part = Partition(ts, cores=2)
        with pytest.raises(PartitionError, match="K="):
            part.extended(ts.with_levels(3))


class TestCandidateStacks:
    def test_matches_single_task_stacks(self, ts):
        part = Partition(ts, cores=3)
        part.assign(0, 0)
        part.assign(1, 2)
        stacks = part.candidate_stacks([0, 1, 2])
        for t, i in enumerate([0, 1, 2]):
            assert np.array_equal(stacks[t], part.candidate_stack(i))

    def test_empty_and_repeated_indices(self, ts):
        part = Partition(ts, cores=2)
        assert part.candidate_stacks([]).shape == (0, 2, 2, 2)
        stacks = part.candidate_stacks([2, 2])
        assert np.array_equal(stacks[0], stacks[1])

    def test_rejects_2d_indices(self, ts):
        part = Partition(ts, cores=2)
        with pytest.raises(PartitionError, match="1-D"):
            part.candidate_stacks([[0, 1]])

    def test_writable_and_detached(self, ts):
        part = Partition(ts, cores=2)
        stacks = part.candidate_stacks([0])
        stacks += 1.0  # writable copy
        assert np.array_equal(part.level_matrix(0), np.zeros((2, 2)))
