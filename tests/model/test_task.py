"""Unit tests for the MCTask model."""

import math

import pytest

from repro.model import MCTask
from repro.types import ModelError


class TestConstruction:
    def test_basic_fields(self):
        t = MCTask(wcets=(2.0, 5.0), period=10.0, name="t")
        assert t.criticality == 2
        assert t.period == 10.0
        assert t.wcets == (2.0, 5.0)

    def test_wcets_coerced_to_float(self):
        t = MCTask(wcets=(1, 2), period=4)
        assert t.wcets == (1.0, 2.0)
        assert isinstance(t.period, float)

    def test_empty_wcets_rejected(self):
        with pytest.raises(ModelError, match="empty"):
            MCTask(wcets=(), period=10.0)

    @pytest.mark.parametrize("period", [0.0, -1.0, math.inf, math.nan])
    def test_bad_period_rejected(self, period):
        with pytest.raises(ModelError):
            MCTask(wcets=(1.0,), period=period)

    @pytest.mark.parametrize("wcets", [(0.0,), (-1.0, 2.0), (math.inf,), (math.nan, 1.0)])
    def test_bad_wcets_rejected(self, wcets):
        with pytest.raises(ModelError):
            MCTask(wcets=wcets, period=10.0)

    def test_decreasing_wcets_rejected(self):
        with pytest.raises(ModelError, match="non-decreasing"):
            MCTask(wcets=(5.0, 2.0), period=10.0)

    def test_equal_consecutive_wcets_allowed(self):
        # The model requires non-decreasing, not strictly increasing.
        t = MCTask(wcets=(2.0, 2.0, 3.0), period=10.0)
        assert t.criticality == 3

    def test_frozen(self):
        t = MCTask(wcets=(1.0,), period=2.0)
        with pytest.raises(AttributeError):
            t.period = 3.0


class TestUtilization:
    def test_per_level(self):
        t = MCTask(wcets=(2.0, 5.0), period=10.0)
        assert t.utilization(1) == pytest.approx(0.2)
        assert t.utilization(2) == pytest.approx(0.5)

    def test_above_own_criticality_is_zero(self):
        t = MCTask(wcets=(2.0,), period=10.0)
        assert t.utilization(2) == 0.0
        assert t.wcet(5) == 0.0

    def test_level_zero_rejected(self):
        t = MCTask(wcets=(2.0,), period=10.0)
        with pytest.raises(ModelError):
            t.utilization(0)
        with pytest.raises(ModelError):
            t.wcet(0)

    def test_max_utilization(self):
        t = MCTask(wcets=(2.0, 5.0, 6.0), period=10.0)
        assert t.max_utilization == pytest.approx(0.6)

    def test_utilization_vector_padding(self):
        t = MCTask(wcets=(2.0, 5.0), period=10.0)
        assert t.utilization_vector(4) == pytest.approx((0.2, 0.5, 0.0, 0.0))

    def test_utilization_vector_truncation_rejected(self):
        t = MCTask(wcets=(2.0, 5.0), period=10.0)
        with pytest.raises(ModelError):
            t.utilization_vector(1)


class TestHelpers:
    def test_from_utilizations_roundtrip(self):
        t = MCTask.from_utilizations([0.1, 0.3], period=50.0)
        assert t.wcets == pytest.approx((5.0, 15.0))
        assert t.utilization(2) == pytest.approx(0.3)

    def test_scaled(self):
        t = MCTask(wcets=(2.0, 4.0), period=10.0, name="x")
        s = t.scaled(0.5)
        assert s.wcets == pytest.approx((1.0, 2.0))
        assert s.period == t.period
        assert s.name == "x"

    def test_scaled_rejects_nonpositive(self):
        t = MCTask(wcets=(2.0,), period=10.0)
        with pytest.raises(ModelError):
            t.scaled(0.0)

    def test_equality_and_hash(self):
        a = MCTask(wcets=(1.0, 2.0), period=4.0)
        b = MCTask(wcets=(1.0, 2.0), period=4.0)
        assert a == b
        assert hash(a) == hash(b)

    def test_str_contains_name(self):
        t = MCTask(wcets=(1.0,), period=2.0, name="nav")
        assert "nav" in str(t)
