"""Tests for run manifests: build/write/load/inspect rendering."""

from __future__ import annotations

import json

import pytest

from repro._version import __version__
from repro.obs import (
    MANIFEST_VERSION,
    build_manifest,
    format_manifest,
    git_describe,
    load_manifest,
    manifest_path_for,
    write_manifest,
)
from repro.types import ReproError


def _manifest(tmp_path, **overrides):
    artifact = tmp_path / "fig1.json"
    artifact.write_text('{"figure": "fig1"}\n')
    kwargs = dict(
        run_id="r-test",
        command=["fig1", "--sets", "4"],
        figure="fig1",
        sets=4,
        seed=2016,
        jobs=2,
        artifact_path=artifact,
        engine_stats={
            "points": 5,
            "shards_planned": 10,
            "cache_hits": 1,
            "cache_misses": 9,
            "shards_computed": 9,
            "compute_seconds": 1.25,
            "worker_retries": 0,
            "shard_seconds": {
                "count": 9,
                "total": 1.25,
                "min": 0.1,
                "max": 0.3,
                "p50": 0.12,
                "p95": 0.29,
            },
        },
        metrics={"counters": {"probe.cores_probed": 42}, "summaries": {}},
        events_log="events.jsonl",
    )
    kwargs.update(overrides)
    return build_manifest(**kwargs)


class TestBuild:
    def test_contains_provenance(self, tmp_path):
        m = _manifest(tmp_path)
        assert m["manifest_version"] == MANIFEST_VERSION
        assert m["run_id"] == "r-test"
        assert m["repro_version"] == __version__
        assert m["artifact"]["path"] == "fig1.json"
        assert len(m["artifact"]["sha256"]) == 64

    def test_minimal_build(self):
        m = build_manifest(run_id="r-min")
        assert m["artifact"] is None
        assert m["figure"] is None

    def test_git_describe_is_string_or_none(self):
        described = git_describe()
        assert described is None or (isinstance(described, str) and described)


class TestRoundtrip:
    def test_write_load(self, tmp_path):
        m = _manifest(tmp_path)
        path = manifest_path_for(tmp_path / "fig1.json")
        assert path.name == "fig1.manifest.json"
        write_manifest(path, m)
        assert load_manifest(path) == m

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.manifest.json"
        path.write_text(json.dumps({"manifest_version": 999}))
        with pytest.raises(ReproError, match="unsupported manifest version"):
            load_manifest(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            load_manifest(tmp_path / "absent.manifest.json")

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.manifest.json"
        path.write_text("{not json")
        with pytest.raises(ReproError, match="cannot read"):
            load_manifest(path)


class TestFormat:
    def test_renders_key_sections(self, tmp_path):
        text = format_manifest(_manifest(tmp_path))
        assert "run_id        r-test" in text
        assert "figure        fig1" in text
        assert "repro-mc fig1 --sets 4" in text
        assert "1 cache hits" in text
        assert "probe.cores_probed" in text
        assert "shard_seconds" in text

    def test_counter_truncation(self, tmp_path):
        metrics = {
            "counters": {f"c{i:03}": i for i in range(50)},
            "summaries": {},
        }
        text = format_manifest(_manifest(tmp_path, metrics=metrics), top=5)
        assert "top 5 of 50" in text
        # Ranked by value descending: c049 shown, c001 cut.
        assert "c049" in text
        assert "c001" not in text

    def test_renders_engine_histogram_row(self, tmp_path):
        m = _manifest(tmp_path)
        m["engine"]["shard_seconds_hist"] = {
            "count": 9,
            "total": 1.25,
            "min": 0.1,
            "max": 0.3,
            "p50": 0.12,
            "p95": 0.29,
            "p99": 0.3,
            "overflow": 0,
        }
        text = format_manifest(m)
        assert "shard_seconds_hist" in text
        assert "p99=0.3" in text
        # Zero overflow stays silent — it is the healthy steady state.
        assert "overflow" not in text

    def test_renders_metrics_histograms_section(self, tmp_path):
        metrics = {
            "counters": {},
            "summaries": {},
            "histograms": {
                "serve.place.seconds": {
                    "count": 120,
                    "total": 0.6,
                    "min": 0.001,
                    "max": 9.0,
                    "p50": 0.004,
                    "p95": 0.02,
                    "p99": 0.05,
                    "overflow": 3,
                },
                "serve.empty": {
                    "count": 0,
                    "total": 0.0,
                    "min": None,
                    "max": None,
                    "p50": None,
                    "p95": None,
                    "p99": None,
                    "overflow": 0,
                },
            },
        }
        text = format_manifest(_manifest(tmp_path, metrics=metrics))
        assert "Histograms" in text
        assert "serve.place.seconds" in text
        assert "overflow=3" in text
        assert "serve.empty" in text and "(empty)" in text
