"""Unit tests for the live-telemetry layer (repro.obs.live).

A fake clock steps the window deterministically — no sleeps anywhere.
"""

from __future__ import annotations

import math

import pytest

from repro.obs.live import (
    LiveMetrics,
    MetricsView,
    SloMonitor,
    evaluate_slo,
    parse_slo,
    render_prometheus,
)
from repro.obs.metrics import HIST_EDGES, Histogram, MetricsRegistry
from repro.types import ReproError


class FakeClock:
    def __init__(self, t: float = 1000.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def tick(self, seconds: float) -> None:
        self.t += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def live(clock):
    return LiveMetrics(bucket_seconds=1.0, buckets=10, clock=clock)


class TestWindowedCounters:
    def test_total_accumulates_in_current_bucket(self, live):
        live.inc("x")
        live.inc("x", 4)
        assert live.total("x") == 5.0

    def test_unknown_counter_is_zero(self, live):
        assert live.total("nope") == 0.0
        assert live.rate("nope") == 0.0

    def test_window_limits_the_sum(self, live, clock):
        live.inc("x", 10)
        clock.tick(5)
        live.inc("x", 1)
        assert live.total("x", seconds=2) == 1.0
        assert live.total("x") == 11.0

    def test_old_buckets_expire(self, live, clock):
        live.inc("x", 7)
        clock.tick(10)  # a full ring revolution
        live.inc("x", 1)
        assert live.total("x") == 1.0

    def test_skipped_buckets_are_zeroed(self, live, clock):
        live.inc("x", 3)
        clock.tick(50)  # far beyond the ring: everything stale
        assert live.total("x") == 0.0

    def test_rate_divides_by_covered_span(self, live, clock):
        clock.tick(100)  # uptime >> window so the clamp is inactive
        live.inc("x", 20)
        assert live.rate("x", seconds=10) == pytest.approx(2.0)

    def test_rate_clamps_to_uptime(self, live, clock):
        # Daemon alive 2 s: a 10-burst reads 10/2, not 10/10.
        clock.tick(2)
        live.inc("x", 10)
        assert live.rate("x", seconds=10) == pytest.approx(5.0)


class TestWindowedHistograms:
    def test_window_merge_equals_single_histogram(self, live, clock):
        values = [0.001, 0.003, 0.01, 0.2, 1.5]
        expect = Histogram("expect")
        for i, v in enumerate(values):
            live.observe("lat", v)
            expect.observe(v)
            clock.tick(1)
        merged = live.window_histogram("lat")
        assert merged.digest()["counts"] == expect.digest()["counts"]
        assert merged.count == len(values)

    def test_window_histogram_expires(self, live, clock):
        live.observe("lat", 5.0)
        clock.tick(10)
        assert live.window_histogram("lat").count == 0

    def test_partial_window(self, live, clock):
        live.observe("lat", 1.0)
        clock.tick(3)
        live.observe("lat", 2.0)
        assert live.window_histogram("lat", seconds=2).count == 1

    def test_unknown_stream_is_empty(self, live):
        assert live.window_histogram("nope").count == 0


class TestGaugesAndHistory:
    def test_gauges_resolve_callables_at_scrape(self, live):
        depth = [3]
        live.gauge("q", lambda: depth[0])
        live.gauge("k", 7)
        assert live.gauges() == {"q": 3.0, "k": 7.0}
        depth[0] = 9
        assert live.gauges()["q"] == 9.0

    def test_history_schema(self, live, clock):
        live.inc("reqs", 4)
        live.observe("lat", 0.01)
        live.gauge("depth", 2)
        clock.tick(1)
        body = live.history()
        assert body["version"] == 1
        assert body["bucket_seconds"] == 1.0
        assert body["buckets"] == 10
        assert body["window_seconds"] == 10.0
        assert body["uptime_seconds"] == pytest.approx(1.0)
        reqs = body["counters"]["reqs"]
        assert len(reqs["values"]) == 10
        assert sum(reqs["values"]) == 4.0
        lat = body["histograms"]["lat"]
        assert len(lat["count"]) == 10
        assert sum(lat["count"]) == 1
        assert lat["window"]["count"] == 1
        # Empty buckets report None percentiles, occupied ones floats.
        assert any(p is not None for p in lat["p50"])
        assert body["gauges"] == {"depth": 2.0}

    def test_constructor_validation(self, clock):
        with pytest.raises(ReproError, match="bucket_seconds"):
            LiveMetrics(bucket_seconds=0.0, clock=clock)
        with pytest.raises(ReproError, match="buckets"):
            LiveMetrics(buckets=1, clock=clock)


class TestRenderPrometheus:
    def test_counter_becomes_total_family(self):
        reg = MetricsRegistry()
        reg.counter("serve.requests").inc(3)
        text = render_prometheus(reg)
        assert "# TYPE serve_requests_total counter" in text
        assert "serve_requests_total 3" in text
        assert text.endswith("\n")

    def test_scheme_tag_becomes_label(self):
        reg = MetricsRegistry()
        reg.counter("serve.admit.requests[ca-tpa]").inc()
        text = render_prometheus(reg)
        assert 'serve_admit_requests_total{scheme="ca-tpa"} 1' in text

    def test_explicit_key_value_label(self):
        reg = MetricsRegistry()
        reg.counter("probe.calls[core=3]").inc(2)
        text = render_prometheus(reg)
        assert 'probe_calls_total{core="3"} 2' in text

    def test_summary_quantiles_sum_count(self):
        reg = MetricsRegistry()
        for v in [1.0, 2.0, 3.0]:
            reg.summary("lat").observe(v)
        text = render_prometheus(reg)
        assert "# TYPE lat summary" in text
        assert 'lat{quantile="0.5"}' in text
        assert 'lat{quantile="0.95"}' in text
        assert "lat_sum 6" in text
        assert "lat_count 3" in text

    def test_histogram_buckets_ordered_and_cumulative(self):
        reg = MetricsRegistry()
        for v in [1e-5, 1e-3, 1e-1, 10.0, 1e9]:
            reg.histogram("lat").observe(v)
        text = render_prometheus(reg)
        assert "# TYPE lat histogram" in text
        bounds, counts = [], []
        for line in text.splitlines():
            if line.startswith("lat_bucket"):
                bounds.append(float(line.split('le="')[1].split('"')[0]))
                counts.append(float(line.rsplit(" ", 1)[1]))
        assert len(bounds) == len(HIST_EDGES) + 1
        assert bounds == sorted(bounds)
        assert bounds[-1] == float("inf")
        assert counts == sorted(counts)
        assert counts[-1] == 5.0
        assert "lat_count 5" in text

    def test_gauges_render(self):
        text = render_prometheus(None, gauges={"serve.queue_depth": 4.0})
        assert "# TYPE serve_queue_depth gauge" in text
        assert "serve_queue_depth 4" in text

    def test_output_is_deterministic(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        reg.histogram("h").observe(0.1)
        assert render_prometheus(reg) == render_prometheus(reg)


class TestParseSlo:
    def test_latency_rule_with_ms(self):
        rule = parse_slo("p95(serve.place.seconds) < 5ms")
        assert rule.fn == "p95"
        assert rule.metric == "serve.place.seconds"
        assert rule.op == "<"
        assert rule.threshold == pytest.approx(0.005)

    def test_units(self):
        assert parse_slo("p50(x) < 3us").threshold == pytest.approx(3e-6)
        assert parse_slo("p50(x) < 2s").threshold == pytest.approx(2.0)
        assert parse_slo("p50(x) < 0.5").threshold == pytest.approx(0.5)

    def test_rate_equality_rule(self):
        rule = parse_slo("rate(serve.rejected_503) == 0")
        assert (rule.fn, rule.op, rule.threshold) == ("rate", "==", 0.0)

    def test_count_and_value_and_whitespace(self):
        assert parse_slo("  count( x )  >=  10  ").fn == "count"
        assert parse_slo("value(serve.queue_depth) <= 100").fn == "value"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "p42(x) < 1",
            "p95(x) ~ 1",
            "p95() < 1",
            "p95(x) < 5min",
            "mean(x) < 1",
        ],
    )
    def test_bad_rules_raise(self, bad):
        with pytest.raises(ReproError, match="bad SLO rule"):
            parse_slo(bad)


class TestSloEvaluation:
    def test_against_live_window(self, live):
        for _ in range(10):
            live.observe("serve.place.seconds", 0.001)
        ok = evaluate_slo(parse_slo("p95(serve.place.seconds) < 5ms"), live)
        assert ok.ok and ok.value < 0.005
        bad = evaluate_slo(parse_slo("p95(serve.place.seconds) < 1us"), live)
        assert not bad.ok

    def test_nan_fails_every_comparison(self, live):
        # A metric that never reported is violated, not vacuously met.
        result = evaluate_slo(parse_slo("p95(ghost) < 1s"), live)
        assert math.isnan(result.value)
        assert not result.ok

    def test_rate_rule_over_live_counters(self, live, clock):
        clock.tick(30)
        assert evaluate_slo(parse_slo("rate(e503) == 0"), live).ok
        live.inc("e503")
        assert not evaluate_slo(parse_slo("rate(e503) == 0"), live).ok

    def test_value_rule_reads_gauges(self, live):
        live.gauge("serve.queue_depth", 3)
        assert evaluate_slo(parse_slo("value(serve.queue_depth) <= 5"), live).ok

    def test_monitor_is_edge_triggered(self, live):
        monitor = SloMonitor([parse_slo("count(errs) == 0")])
        _, failing, ok = monitor.check(live)
        assert not failing and not ok and monitor.alerts == 0

        live.inc("errs")
        _, failing, _ = monitor.check(live)
        assert len(failing) == 1
        assert monitor.alerts == 1
        assert monitor.failing == {"count(errs) == 0"}

        # Still failing: no re-alert.
        _, failing, _ = monitor.check(live)
        assert not failing and monitor.alerts == 1


class TestMetricsView:
    SNAPSHOT = {
        "counters": {"serve.rejected_503": 0, "serve.requests": 120},
        "summaries": {"old.lat": {"count": 3, "p95": 0.2}},
        "histograms": {"serve.place.seconds": {"count": 9, "p95": 0.004}},
    }

    def test_count_and_rate(self):
        view = MetricsView(self.SNAPSHOT, elapsed=60.0)
        assert view.slo_value("count", "serve.requests") == 120.0
        assert view.slo_value("rate", "serve.requests") == pytest.approx(2.0)
        # Without elapsed, rate degenerates to the total count — still
        # exact for == 0 gates.
        assert MetricsView(self.SNAPSHOT).slo_value("rate", "serve.requests") == 120.0

    def test_percentiles_prefer_histograms(self):
        view = MetricsView(self.SNAPSHOT)
        assert view.slo_value("p95", "serve.place.seconds") == 0.004
        assert view.slo_value("p95", "old.lat") == 0.2

    def test_missing_metric_is_nan(self):
        view = MetricsView(self.SNAPSHOT)
        assert math.isnan(view.slo_value("p95", "ghost"))
        assert math.isnan(view.slo_value("value", "anything"))

    def test_post_mortem_gate(self):
        view = MetricsView(self.SNAPSHOT, elapsed=60.0)
        assert evaluate_slo(parse_slo("rate(serve.rejected_503) == 0"), view).ok
        assert evaluate_slo(parse_slo("p95(serve.place.seconds) < 5ms"), view).ok
