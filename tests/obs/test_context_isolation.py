"""Concurrency isolation of the context-scoped switches.

Regression tests for the process-global-state bugs the admission daemon
exposed: ``use_probe_implementation`` and ``scheme_tag`` used to mutate
module/singleton state, so two threads (or two asyncio tasks) flipped
each other's probe engine and scheme attribution mid-decision.  Both now
ride :class:`contextvars.ContextVar` — each context sees only its own
selection, with the same context-manager API.
"""

import asyncio
import threading

from repro.obs.runtime import OBS, scheme_tag
from repro.partition.probe import probe_implementation, use_probe_implementation


def _interleave(worker_a, worker_b):
    """Run two workers in lockstep; re-raise the first failure."""
    barrier = threading.Barrier(2, timeout=10)
    errors = []

    def run(worker):
        try:
            worker(barrier.wait)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)
            barrier.abort()

    threads = [
        threading.Thread(target=run, args=(w,)) for w in (worker_a, worker_b)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    if errors:
        raise errors[0]


class TestProbeImplementationIsolation:
    def test_two_threads_interleaved(self):
        def scalar_side(sync):
            assert probe_implementation() == "batch"
            with use_probe_implementation("scalar"):
                sync()  # both inside their with-blocks
                assert probe_implementation() == "scalar"
                sync()  # other thread asserted too
            sync()  # both restored
            assert probe_implementation() == "batch"

        def batch_side(sync):
            assert probe_implementation() == "batch"
            with use_probe_implementation("batch"):
                sync()
                assert probe_implementation() == "batch"
                sync()
            sync()
            assert probe_implementation() == "batch"

        _interleave(scalar_side, batch_side)

    def test_fresh_thread_sees_default(self):
        seen = []
        with use_probe_implementation("scalar"):
            t = threading.Thread(target=lambda: seen.append(probe_implementation()))
            t.start()
            t.join(timeout=10)
        assert seen == ["batch"]

    def test_asyncio_tasks_isolated(self):
        async def tagged(impl):
            with use_probe_implementation(impl):
                await asyncio.sleep(0)  # force an interleaving point
                return probe_implementation()

        async def main():
            return await asyncio.gather(tagged("scalar"), tagged("batch"))

        assert asyncio.run(main()) == ["scalar", "batch"]


class TestSchemeTagIsolation:
    def test_two_threads_interleaved(self):
        def side(name):
            def worker(sync):
                assert OBS.scheme == ""
                with scheme_tag(name):
                    sync()
                    assert OBS.scheme == name
                    sync()
                sync()
                assert OBS.scheme == ""

            return worker

        _interleave(side("ca-tpa"), side("ffd"))

    def test_nested_tags_restore(self):
        with scheme_tag("outer"):
            with scheme_tag("inner"):
                assert OBS.scheme == "inner"
            assert OBS.scheme == "outer"
        assert OBS.scheme == ""
