"""Tests for repro.obs.trace: tree building, analysis, and exporters."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import trace
from repro.types import ReproError


def _record(
    span_id,
    name,
    parent_id=None,
    start=0.0,
    seconds=1.0,
    **extra,
):
    return {
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "start": start,
        "seconds": seconds,
        "error": False,
        **extra,
    }


def _sample_records():
    """root(10s) -> [shard(6s) -> probe(4s synthetic), merge(1s)]."""
    return [
        _record(1, "engine.run", start=0.0, seconds=10.0),
        _record(2, "engine.shard", parent_id=1, start=0.5, seconds=6.0),
        _record(
            3,
            "probe",
            parent_id=2,
            start=0.5,
            seconds=4.0,
            calls=100,
            synthetic=True,
            scheme="ca-tpa",
        ),
        _record(4, "engine.merge", parent_id=1, start=7.0, seconds=1.0),
    ]


class TestBuildTree:
    def test_links_children_and_orders_by_start(self):
        tree = trace.build_tree(_sample_records())
        assert len(tree) == 4
        assert len(tree.roots) == 1
        root = tree.root
        assert root.name == "engine.run"
        assert [c.name for c in root.children] == ["engine.shard", "engine.merge"]
        assert root.children[0].children[0].name == "probe"
        assert tree.orphans == []

    def test_orphans_become_extra_roots(self):
        records = _sample_records()
        records.append(_record(9, "lost", parent_id=777, seconds=0.5))
        tree = trace.build_tree(records)
        assert [n.name for n in tree.orphans] == ["lost"]
        assert {r.name for r in tree.roots} == {"engine.run", "lost"}

    def test_duplicate_span_id_rejected(self):
        records = [_record(1, "a"), _record(1, "b")]
        with pytest.raises(ReproError, match="duplicate span_id"):
            trace.build_tree(records)

    def test_empty_tree_root_raises(self):
        tree = trace.build_tree([])
        with pytest.raises(ReproError, match="no span records"):
            tree.root

    def test_self_seconds_clamped_for_concurrent_children(self):
        # Two parallel 4s shards under a 5s point: children sum past it.
        records = [
            _record(1, "point", seconds=5.0),
            _record(2, "shard", parent_id=1, seconds=4.0),
            _record(3, "shard", parent_id=1, start=0.1, seconds=4.0),
        ]
        tree = trace.build_tree(records)
        assert tree.root.self_seconds == 0.0
        assert tree.root.child_seconds == pytest.approx(8.0)


class TestSpanRecords:
    def test_filters_span_events_only(self):
        events = [
            {"event": "cli.figure_start", "figure": "fig1"},
            {"event": "span.work", "span_id": 1, "seconds": 1.0, "name": "work"},
            {"event": "engine.shard", "start": 0, "count": 2},
        ]
        records = trace.span_records(events)
        assert len(records) == 1
        assert records[0]["name"] == "work"

    def test_name_falls_back_to_event_suffix(self):
        events = [{"event": "span.engine.run", "span_id": 1, "seconds": 2.0}]
        assert trace.span_records(events)[0]["name"] == "engine.run"

    def test_pre_trace_span_events_without_ids_skipped(self):
        events = [{"event": "span.legacy", "seconds": 1.0}]
        assert trace.span_records(events) == []


class TestReadEvents:
    def test_reads_jsonl_and_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"event": "a"}\n{"event": "b"}\n{"event": "tr')
        events = trace.read_events(path)
        assert [e["event"] for e in events] == ["a", "b"]

    def test_malformed_middle_line_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"event": "a"}\nnot json\n{"event": "b"}\n')
        with pytest.raises(ReproError, match="malformed"):
            trace.read_events(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            trace.read_events(tmp_path / "nope.jsonl")

    def test_resolve_accepts_run_directory(self, tmp_path):
        (tmp_path / "events.jsonl").write_text("{}\n")
        assert trace.resolve_events_path(tmp_path).name == "events.jsonl"

    def test_resolve_single_jsonl_fallback(self, tmp_path):
        (tmp_path / "run.jsonl").write_text("{}\n")
        assert trace.resolve_events_path(tmp_path).name == "run.jsonl"

    def test_resolve_ambiguous_directory_raises(self, tmp_path):
        (tmp_path / "a.jsonl").write_text("{}\n")
        (tmp_path / "b.jsonl").write_text("{}\n")
        with pytest.raises(ReproError, match="2 candidates"):
            trace.resolve_events_path(tmp_path)


class TestAnalysis:
    def test_critical_path_descends_largest_child(self):
        path = trace.critical_path(trace.build_tree(_sample_records()))
        assert [n.name for n in path] == ["engine.run", "engine.shard", "probe"]

    def test_aggregate_spans_totals_and_self(self):
        rows = {r["name"]: r for r in trace.aggregate_spans(
            trace.build_tree(_sample_records())
        )}
        assert rows["engine.run"]["total_seconds"] == pytest.approx(10.0)
        # 10 total - (6 + 1) children = 3 self
        assert rows["engine.run"]["self_seconds"] == pytest.approx(3.0)
        assert rows["probe"]["calls"] == 100
        assert rows["probe"]["count"] == 1

    def test_aggregate_schemes_only_tagged_spans(self):
        rows = trace.aggregate_schemes(trace.build_tree(_sample_records()))
        assert len(rows) == 1
        assert rows[0]["scheme"] == "ca-tpa"
        assert rows[0]["name"] == "probe"
        assert rows[0]["calls"] == 100

    def test_error_spans_counted(self):
        records = [_record(1, "a", seconds=1.0, error=True)]
        rows = trace.aggregate_spans(trace.build_tree(records))
        assert rows[0]["errors"] == 1


class TestFolded:
    def test_stack_paths_with_self_microseconds(self):
        folded = trace.to_folded(trace.build_tree(_sample_records()))
        lines = dict(
            line.rsplit(" ", 1) for line in folded.splitlines()
        )
        # engine.run self = 3s, shard self = 2s, probe self = 4s.
        assert int(lines["engine.run"]) == 3_000_000
        assert int(lines["engine.run;engine.shard"]) == 2_000_000
        assert int(lines["engine.run;engine.shard;probe[ca-tpa]"]) == 4_000_000
        assert int(lines["engine.run;engine.merge"]) == 1_000_000

    def test_zero_self_frames_omitted(self):
        records = [
            _record(1, "wrapper", seconds=1.0),
            _record(2, "inner", parent_id=1, seconds=1.0),
        ]
        folded = trace.to_folded(trace.build_tree(records))
        assert folded.splitlines() == ["wrapper;inner 1000000"]


class TestChrome:
    def test_structurally_valid_trace_events(self):
        doc = trace.to_chrome(trace.build_tree(_sample_records()))
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        # Metadata event + one "X" event per span.
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 4
        for e in slices:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"} <= set(e)
            assert e["ts"] >= 0.0
            assert e["dur"] >= 0.0
        meta = [e for e in events if e["ph"] == "M"]
        assert meta and meta[0]["name"] == "process_name"
        json.dumps(doc)  # must be serializable as-is

    def test_ts_normalized_to_earliest_start(self):
        doc = trace.to_chrome(trace.build_tree(_sample_records()))
        slices = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert slices["engine.run"]["ts"] == 0.0
        assert slices["engine.merge"]["ts"] == pytest.approx(7.0e6)
        assert slices["engine.run"]["dur"] == pytest.approx(10.0e6)

    def test_nested_spans_share_a_lane(self):
        doc = trace.to_chrome(trace.build_tree(_sample_records()))
        slices = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert slices["engine.shard"]["tid"] == slices["engine.run"]["tid"]
        assert slices["engine.merge"]["tid"] == slices["engine.run"]["tid"]

    def test_overlapping_siblings_get_distinct_lanes(self):
        records = [
            _record(1, "point", seconds=5.0),
            _record(2, "shard_a", parent_id=1, start=0.0, seconds=4.0),
            _record(3, "shard_b", parent_id=1, start=1.0, seconds=4.0),
        ]
        doc = trace.to_chrome(trace.build_tree(records))
        slices = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert slices["shard_a"]["tid"] != slices["shard_b"]["tid"]

    def test_synthetic_children_laid_out_sequentially(self):
        records = [
            _record(1, "parent", start=100.0, seconds=5.0),
            _record(
                2, "p1", parent_id=1, start=100.0, seconds=2.0, synthetic=True
            ),
            _record(
                3, "p2", parent_id=1, start=100.0, seconds=1.0, synthetic=True
            ),
        ]
        doc = trace.to_chrome(trace.build_tree(records))
        slices = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert slices["p1"]["ts"] == pytest.approx(0.0)
        assert slices["p2"]["ts"] == pytest.approx(2.0e6)  # after p1

    def test_args_carry_scheme_and_calls(self):
        doc = trace.to_chrome(trace.build_tree(_sample_records()))
        probe = next(
            e for e in doc["traceEvents"] if e["ph"] == "X" and "probe" in e["name"]
        )
        assert probe["args"]["scheme"] == "ca-tpa"
        assert probe["args"]["calls"] == 100


class TestReport:
    def test_report_sections_and_percentages(self):
        report = trace.format_report(trace.build_tree(_sample_records()))
        assert "Critical path" in report
        assert "100.0%" in report  # the root itself
        assert "60.0%" in report  # 6s shard of a 10s run
        assert "Per-scheme attribution" in report
        assert "ca-tpa" in report

    def test_report_counts_error_spans(self):
        records = [
            _record(1, "root", seconds=2.0),
            _record(2, "bad", parent_id=1, seconds=1.0, error=True),
        ]
        report = trace.format_report(trace.build_tree(records))
        assert "1 span(s) closed on an exception" in report


class TestEndToEnd:
    def test_runtime_spans_roundtrip_through_events_file(self, tmp_path):
        """span() -> events.jsonl -> load_tree reconstructs the tree."""
        log = tmp_path / "events.jsonl"
        with obs.instrument(log_path=log):
            with obs.span("outer"):
                with obs.span("inner"):
                    obs.add_span_time("probe", 0.125, calls=10)
        tree = trace.load_tree(log)
        assert tree.orphans == []
        root = tree.root
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner"]
        probe = root.children[0].children[0]
        assert probe.name == "probe"
        assert probe.synthetic
        assert probe.calls == 10
        assert probe.seconds == pytest.approx(0.125)

    def test_load_tree_accepts_run_directory(self, tmp_path):
        with obs.instrument(log_path=tmp_path / "events.jsonl"):
            with obs.span("solo"):
                pass
        assert trace.load_tree(tmp_path).root.name == "solo"
