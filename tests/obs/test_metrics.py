"""Unit tests for the counter/summary primitives of repro.obs."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import (
    DEFAULT_MAX_SAMPLES,
    HIST_EDGES,
    HIST_SCHEMA,
    Counter,
    Histogram,
    MetricsRegistry,
    Summary,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6


class TestSummary:
    def test_empty_as_dict(self):
        s = Summary("t")
        assert s.as_dict() == {
            "count": 0,
            "total": 0.0,
            "min": None,
            "max": None,
            "p50": None,
            "p95": None,
        }
        assert math.isnan(s.percentile(50))
        assert math.isnan(s.mean)

    def test_exact_fields(self):
        s = Summary("t")
        for v in [3.0, 1.0, 2.0]:
            s.observe(v)
        d = s.as_dict()
        assert d["count"] == 3
        assert d["total"] == pytest.approx(6.0)
        assert d["min"] == 1.0
        assert d["max"] == 3.0
        assert s.mean == pytest.approx(2.0)

    def test_percentiles_exact_before_decimation(self):
        s = Summary("t")
        for v in range(1, 101):
            s.observe(float(v))
        assert s.percentile(0) == 1.0
        assert s.percentile(100) == 100.0
        assert s.percentile(50) == pytest.approx(50.0, abs=1.0)

    def test_memory_stays_bounded(self):
        s = Summary("t", max_samples=16)
        for v in range(10_000):
            s.observe(float(v))
        assert len(s._samples) < 16
        assert s.count == 10_000
        # The reservoir still spans the stream, not just its head.
        assert s.percentile(95) > 5_000

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            Summary("t", max_samples=1)

    def test_decimation_is_deterministic(self):
        a, b = Summary("a"), Summary("b")
        for v in range(5 * DEFAULT_MAX_SAMPLES):
            a.observe(float(v))
            b.observe(float(v))
        assert a._samples == b._samples
        assert a.as_dict() == b.as_dict()

    def test_merge_state_combines_exact_fields(self):
        a, b = Summary("a"), Summary("b")
        for v in [1.0, 2.0]:
            a.observe(v)
        for v in [10.0, 0.5]:
            b.observe(v)
        a.merge_state(b.state())
        d = a.as_dict()
        assert d["count"] == 4
        assert d["total"] == pytest.approx(13.5)
        assert d["min"] == 0.5
        assert d["max"] == 10.0

    def test_merge_empty_state_is_a_noop(self):
        a = Summary("a")
        a.observe(1.0)
        before = a.as_dict()
        a.merge_state(Summary("b").state())
        assert a.as_dict() == before

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=300,
        ),
        st.integers(min_value=1, max_value=299),
    )
    def test_merged_equals_sequential_on_exact_fields(self, values, split):
        split = min(split, len(values))
        seq = Summary("seq")
        for v in values:
            seq.observe(v)
        left, right = Summary("l"), Summary("r")
        for v in values[:split]:
            left.observe(v)
        for v in values[split:]:
            right.observe(v)
        left.merge_state(right.state())
        assert left.count == seq.count
        assert left.total == pytest.approx(seq.total)
        assert left.min == seq.min
        assert left.max == seq.max


class TestHistogram:
    def test_empty(self):
        h = Histogram("t")
        assert h.count == 0
        assert math.isnan(h.percentile(50))
        assert h.as_dict()["p95"] is None
        assert h.digest()["counts"] == {}

    def test_exact_fields_and_bucketing(self):
        h = Histogram("t")
        for v in [0.001, 0.01, 0.1]:
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(0.111)
        assert h.min == 0.001
        assert h.max == 0.1
        # Exactly one bucket per decade-separated observation.
        assert sum(1 for n in h.counts if n) == 3

    def test_percentile_quantized_to_bucket_edge(self):
        h = Histogram("t")
        for _ in range(100):
            h.observe(0.0012)
        p50 = h.percentile(50)
        # Upper edge of the bucket holding 0.0012, clamped to max.
        assert 0.0012 <= p50 <= 0.0012 * (10 ** 0.25)

    def test_percentile_clamped_to_observed_range(self):
        h = Histogram("t")
        h.observe(0.5)
        assert h.percentile(0) == 0.5
        assert h.percentile(100) == 0.5

    def test_underflow_and_overflow_buckets(self):
        h = Histogram("t")
        h.observe(0.0)  # below the smallest edge
        h.observe(-1.0)
        h.observe(1e9)  # above the largest edge
        assert h.counts[0] == 2
        assert h.counts[-1] == 1
        # The overflow bucket has no upper edge: report the exact max.
        assert h.percentile(100) == 1e9

    def test_merge_equals_sequential(self):
        values = [10 ** (i / 7 - 4) for i in range(60)]
        seq = Histogram("seq")
        for v in values:
            seq.observe(v)
        left, right = Histogram("l"), Histogram("r")
        for v in values[:23]:
            left.observe(v)
        for v in values[23:]:
            right.observe(v)
        left.merge(right)
        assert left.digest() == seq.digest()
        assert left.total == pytest.approx(seq.total)

    def test_state_roundtrip_is_exact(self):
        h = Histogram("t")
        for v in [0.002, 0.004, 7.5]:
            h.observe(v)
        clone = Histogram("c")
        clone.merge_state(h.state())
        assert clone.digest() == h.digest()
        assert clone.total == pytest.approx(h.total)

    def test_merge_state_rejects_schema_mismatch(self):
        h = Histogram("t")
        bad = Histogram("other").state()
        bad["schema"] = "log10[-1:1:1]"
        with pytest.raises(ValueError, match="schema mismatch"):
            h.merge_state(bad)

    def test_merge_empty_is_a_noop(self):
        h = Histogram("t")
        h.observe(1.0)
        before = h.digest()
        h.merge(Histogram("empty"))
        h.merge_state(Histogram("empty").state())
        assert h.digest() == before

    def test_digest_excludes_float_total(self):
        h = Histogram("t")
        h.observe(0.1)
        assert "total" not in h.digest()
        assert h.digest()["schema"] == HIST_SCHEMA

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        st.integers(min_value=1, max_value=199),
    )
    def test_merge_is_exactly_associative(self, values, split):
        split = min(split, len(values))
        seq = Histogram("seq")
        for v in values:
            seq.observe(v)
        left, right = Histogram("l"), Histogram("r")
        for v in values[:split]:
            left.observe(v)
        for v in values[split:]:
            right.observe(v)
        left.merge(right)
        assert left.digest() == seq.digest()

    def test_edges_are_increasing(self):
        assert list(HIST_EDGES) == sorted(HIST_EDGES)
        assert len(set(HIST_EDGES)) == len(HIST_EDGES)


class TestMetricsRegistry:
    def test_create_on_first_use(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.counter("a").inc()
        reg.summary("s").observe(1.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 3}
        assert snap["summaries"]["s"]["count"] == 1

    def test_snapshot_keys_are_sorted(self):
        reg = MetricsRegistry()
        for name in ["zz", "aa", "mm"]:
            reg.counter(name).inc()
        assert list(reg.snapshot()["counters"]) == ["aa", "mm", "zz"]

    def test_dump_merge_roundtrip(self):
        worker = MetricsRegistry()
        worker.counter("probe.calls").inc(7)
        worker.summary("seconds").observe(0.25)
        worker.summary("seconds").observe(0.75)

        parent = MetricsRegistry()
        parent.counter("probe.calls").inc(3)
        parent.merge(worker.dump())
        snap = parent.snapshot()
        assert snap["counters"]["probe.calls"] == 10
        assert snap["summaries"]["seconds"]["count"] == 2
        assert snap["summaries"]["seconds"]["total"] == pytest.approx(1.0)

    def test_histogram_dump_merge_roundtrip(self):
        worker = MetricsRegistry()
        worker.histogram("lat").observe(0.002)
        worker.histogram("lat").observe(0.2)
        parent = MetricsRegistry()
        parent.histogram("lat").observe(0.02)
        parent.merge(worker.dump())
        snap = parent.snapshot()
        assert snap["histograms"]["lat"]["count"] == 3
        assert parent.histogram("lat").digest()["count"] == 3

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.clear()
        assert reg.snapshot() == {
            "counters": {},
            "summaries": {},
            "histograms": {},
        }


class TestMergeKindCollision:
    """Counters and summaries are independent namespaces (pinned).

    The same name arriving as a Counter in one worker dump and as a
    Summary in another must coexist — merge never raises, never converts
    one kind into the other, and never loses either side's data.
    """

    def test_same_name_as_counter_and_summary_coexists(self):
        counter_worker = MetricsRegistry()
        counter_worker.counter("probe.time").inc(5)
        summary_worker = MetricsRegistry()
        summary_worker.summary("probe.time").observe(0.5)

        parent = MetricsRegistry()
        parent.merge(counter_worker.dump())
        parent.merge(summary_worker.dump())

        snap = parent.snapshot()
        assert snap["counters"]["probe.time"] == 5
        assert snap["summaries"]["probe.time"]["count"] == 1
        assert snap["summaries"]["probe.time"]["total"] == pytest.approx(0.5)

    def test_collision_merge_order_is_irrelevant(self):
        a = MetricsRegistry()
        a.counter("x").inc(2)
        b = MetricsRegistry()
        b.summary("x").observe(1.0)

        forward = MetricsRegistry()
        forward.merge(a.dump())
        forward.merge(b.dump())
        backward = MetricsRegistry()
        backward.merge(b.dump())
        backward.merge(a.dump())
        assert forward.snapshot() == backward.snapshot()

    def test_local_kind_collision_also_coexists(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.summary("x").observe(2.0)
        snap = reg.snapshot()
        assert snap["counters"]["x"] == 1
        assert snap["summaries"]["x"]["count"] == 1

    def test_dump_roundtrips_both_kinds_of_a_collided_name(self):
        reg = MetricsRegistry()
        reg.counter("x").inc(3)
        reg.summary("x").observe(1.5)
        clone = MetricsRegistry()
        clone.merge(reg.dump())
        assert clone.snapshot() == reg.snapshot()
