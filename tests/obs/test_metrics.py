"""Unit tests for the counter/summary primitives of repro.obs."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import DEFAULT_MAX_SAMPLES, Counter, MetricsRegistry, Summary


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6


class TestSummary:
    def test_empty_as_dict(self):
        s = Summary("t")
        assert s.as_dict() == {
            "count": 0,
            "total": 0.0,
            "min": None,
            "max": None,
            "p50": None,
            "p95": None,
        }
        assert math.isnan(s.percentile(50))
        assert math.isnan(s.mean)

    def test_exact_fields(self):
        s = Summary("t")
        for v in [3.0, 1.0, 2.0]:
            s.observe(v)
        d = s.as_dict()
        assert d["count"] == 3
        assert d["total"] == pytest.approx(6.0)
        assert d["min"] == 1.0
        assert d["max"] == 3.0
        assert s.mean == pytest.approx(2.0)

    def test_percentiles_exact_before_decimation(self):
        s = Summary("t")
        for v in range(1, 101):
            s.observe(float(v))
        assert s.percentile(0) == 1.0
        assert s.percentile(100) == 100.0
        assert s.percentile(50) == pytest.approx(50.0, abs=1.0)

    def test_memory_stays_bounded(self):
        s = Summary("t", max_samples=16)
        for v in range(10_000):
            s.observe(float(v))
        assert len(s._samples) < 16
        assert s.count == 10_000
        # The reservoir still spans the stream, not just its head.
        assert s.percentile(95) > 5_000

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            Summary("t", max_samples=1)

    def test_decimation_is_deterministic(self):
        a, b = Summary("a"), Summary("b")
        for v in range(5 * DEFAULT_MAX_SAMPLES):
            a.observe(float(v))
            b.observe(float(v))
        assert a._samples == b._samples
        assert a.as_dict() == b.as_dict()

    def test_merge_state_combines_exact_fields(self):
        a, b = Summary("a"), Summary("b")
        for v in [1.0, 2.0]:
            a.observe(v)
        for v in [10.0, 0.5]:
            b.observe(v)
        a.merge_state(b.state())
        d = a.as_dict()
        assert d["count"] == 4
        assert d["total"] == pytest.approx(13.5)
        assert d["min"] == 0.5
        assert d["max"] == 10.0

    def test_merge_empty_state_is_a_noop(self):
        a = Summary("a")
        a.observe(1.0)
        before = a.as_dict()
        a.merge_state(Summary("b").state())
        assert a.as_dict() == before

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=300,
        ),
        st.integers(min_value=1, max_value=299),
    )
    def test_merged_equals_sequential_on_exact_fields(self, values, split):
        split = min(split, len(values))
        seq = Summary("seq")
        for v in values:
            seq.observe(v)
        left, right = Summary("l"), Summary("r")
        for v in values[:split]:
            left.observe(v)
        for v in values[split:]:
            right.observe(v)
        left.merge_state(right.state())
        assert left.count == seq.count
        assert left.total == pytest.approx(seq.total)
        assert left.min == seq.min
        assert left.max == seq.max


class TestMetricsRegistry:
    def test_create_on_first_use(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.counter("a").inc()
        reg.summary("s").observe(1.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 3}
        assert snap["summaries"]["s"]["count"] == 1

    def test_snapshot_keys_are_sorted(self):
        reg = MetricsRegistry()
        for name in ["zz", "aa", "mm"]:
            reg.counter(name).inc()
        assert list(reg.snapshot()["counters"]) == ["aa", "mm", "zz"]

    def test_dump_merge_roundtrip(self):
        worker = MetricsRegistry()
        worker.counter("probe.calls").inc(7)
        worker.summary("seconds").observe(0.25)
        worker.summary("seconds").observe(0.75)

        parent = MetricsRegistry()
        parent.counter("probe.calls").inc(3)
        parent.merge(worker.dump())
        snap = parent.snapshot()
        assert snap["counters"]["probe.calls"] == 10
        assert snap["summaries"]["seconds"]["count"] == 2
        assert snap["summaries"]["seconds"]["total"] == pytest.approx(1.0)

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.clear()
        assert reg.snapshot() == {"counters": {}, "summaries": {}}


class TestMergeKindCollision:
    """Counters and summaries are independent namespaces (pinned).

    The same name arriving as a Counter in one worker dump and as a
    Summary in another must coexist — merge never raises, never converts
    one kind into the other, and never loses either side's data.
    """

    def test_same_name_as_counter_and_summary_coexists(self):
        counter_worker = MetricsRegistry()
        counter_worker.counter("probe.time").inc(5)
        summary_worker = MetricsRegistry()
        summary_worker.summary("probe.time").observe(0.5)

        parent = MetricsRegistry()
        parent.merge(counter_worker.dump())
        parent.merge(summary_worker.dump())

        snap = parent.snapshot()
        assert snap["counters"]["probe.time"] == 5
        assert snap["summaries"]["probe.time"]["count"] == 1
        assert snap["summaries"]["probe.time"]["total"] == pytest.approx(0.5)

    def test_collision_merge_order_is_irrelevant(self):
        a = MetricsRegistry()
        a.counter("x").inc(2)
        b = MetricsRegistry()
        b.summary("x").observe(1.0)

        forward = MetricsRegistry()
        forward.merge(a.dump())
        forward.merge(b.dump())
        backward = MetricsRegistry()
        backward.merge(b.dump())
        backward.merge(a.dump())
        assert forward.snapshot() == backward.snapshot()

    def test_local_kind_collision_also_coexists(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.summary("x").observe(2.0)
        snap = reg.snapshot()
        assert snap["counters"]["x"] == 1
        assert snap["summaries"]["x"]["count"] == 1

    def test_dump_roundtrips_both_kinds_of_a_collided_name(self):
        reg = MetricsRegistry()
        reg.counter("x").inc(3)
        reg.summary("x").observe(1.5)
        clone = MetricsRegistry()
        clone.merge(reg.dump())
        assert clone.snapshot() == reg.snapshot()
