"""Unit tests for the ``repro-mc top`` dashboard sources and renderer."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import top as top_mod
from repro.obs.top import (
    DaemonSource,
    SweepSource,
    make_source,
    run_top,
    sparkline,
)
from repro.types import ReproError


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_zero_is_floor_blocks(self):
        assert sparkline([0.0, 0.0, 0.0]) == "▁▁▁"

    def test_peak_maps_to_top_block(self):
        line = sparkline([0.0, 10.0])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_width_keeps_the_tail(self):
        line = sparkline([0.0] * 50 + [10.0], width=5)
        assert len(line) == 5
        assert line[-1] == "█"


def _event(name: str, ts: float, **payload) -> str:
    return json.dumps(
        {"run_id": "r1", "seq": 1, "ts": ts, "event": name, **payload}
    )


def _write_sweep(path, lines):
    path.write_text("\n".join(lines) + "\n")


SWEEP_EVENTS = [
    _event("engine.run_plan", 100.0, figure="fig1", points=2, sets_per_point=4),
    _event("engine.point_plan", 100.1, kind="fig1", sets=4, shards=2, jobs=2),
    _event("engine.shard", 101.0, cached=False, seconds=0.8),
    _event("engine.shard", 102.0, cached=True, seconds=0.0),
]


class TestSweepSource:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError, match="no events file"):
            SweepSource(tmp_path / "nope.jsonl")

    def test_directory_resolves_to_events_jsonl(self, tmp_path):
        _write_sweep(tmp_path / "events.jsonl", SWEEP_EVENTS)
        source = SweepSource(tmp_path)
        assert source.path.name == "events.jsonl"

    def test_folds_progress(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _write_sweep(path, SWEEP_EVENTS)
        source = SweepSource(path)
        frame = source.frame()
        assert source.figure == "fig1"
        assert source.points_total == 2
        assert source.shards_planned == 2
        assert source.shards_done == 2
        assert source.cache_hits == 1
        assert source.jobs == 2
        assert "fig1" in frame
        assert "cache hit rate 50%" in frame

    def test_eta_scales_unopened_points(self, tmp_path):
        # 1 of 2 points planned at 2 shards each, both done in 2 s:
        # 2 more shards remain -> ETA 2 s at 1 shard/s.
        path = tmp_path / "events.jsonl"
        _write_sweep(path, SWEEP_EVENTS)
        source = SweepSource(path)
        source._ingest()
        assert source._eta() == pytest.approx(2.0)

    def test_eta_zero_when_everything_done(self, tmp_path):
        path = tmp_path / "events.jsonl"
        done = SWEEP_EVENTS + [
            _event("engine.point_plan", 102.5, kind="fig1", sets=4, shards=2, jobs=2),
            _event("engine.shard", 103.0, cached=False, seconds=0.5),
            _event("engine.shard", 104.0, cached=False, seconds=0.5),
        ]
        _write_sweep(path, done)
        source = SweepSource(path)
        source._ingest()
        assert source._eta() == 0.0

    def test_tail_is_incremental_and_skips_partial_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _write_sweep(path, SWEEP_EVENTS[:2])
        source = SweepSource(path)
        source.frame()
        assert source.shards_done == 0
        # Append one full line and one half-written line.
        with path.open("a") as fh:
            fh.write(SWEEP_EVENTS[2] + "\n")
            fh.write(SWEEP_EVENTS[3][:20])  # no newline: torn write
        source.frame()
        assert source.shards_done == 1
        # The torn line is re-read once completed.
        with path.open("a") as fh:
            fh.write(SWEEP_EVENTS[3][20:] + "\n")
        source.frame()
        assert source.shards_done == 2

    def test_garbage_lines_are_ignored(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _write_sweep(path, ["{not json", *SWEEP_EVENTS])
        source = SweepSource(path)
        source.frame()
        assert source.shards_done == 2


HISTORY = {
    "version": 1,
    "bucket_seconds": 1.0,
    "buckets": 120,
    "window_seconds": 120.0,
    "wall": 0.0,
    "uptime_seconds": 12.0,
    "counters": {
        "serve.requests": {"values": [0.0, 5.0, 10.0], "rate": 1.5},
        "serve.http.200": {"values": [0.0, 5.0, 9.0], "rate": 1.4},
        "serve.http.409": {"values": [0.0, 0.0, 1.0], "rate": 0.1},
        "serve.rejected_503": {"values": [0.0], "rate": 0.0},
    },
    "histograms": {
        "serve.place.seconds": {
            "count": [0, 3],
            "p50": [None, 0.001],
            "p95": [None, 0.002],
            "window": {"count": 3, "p50": 0.001, "p95": 0.002, "max": 0.002},
        },
        "serve.batch_size": {
            "count": [0, 2],
            "p50": [None, 4.0],
            "p95": [None, 8.0],
            "window": {"count": 2, "p50": 4.0, "p95": 8.0, "max": 8.0},
        },
    },
    "gauges": {
        "serve.queue_depth": 2.0,
        "serve.tasks": 7.0,
        "serve.lambda": 1.25,
    },
}

HEALTH = {"ok": True, "seq": 9, "probe_impl": "incremental"}


class TestDaemonSource:
    def test_frame_renders_history(self, monkeypatch):
        calls = []

        def fake_fetch(url, timeout=2.0):
            calls.append(url)
            return HISTORY if "history" in url else HEALTH

        monkeypatch.setattr(top_mod, "fetch_json", fake_fetch)
        frame = DaemonSource("http://127.0.0.1:1234/").frame()
        assert "http://127.0.0.1:1234" in frame
        assert "qps" in frame and "1.5" in frame
        assert "200:14" in frame and "409:1" in frame
        assert "1.0ms / 2.0ms" in frame  # place p50/p95
        assert "rejected 503" in frame
        assert "Λ 1.250" in frame
        assert calls == [
            "http://127.0.0.1:1234/metrics/history",
            "http://127.0.0.1:1234/healthz",
        ]

    def test_unreachable_daemon_raises(self):
        with pytest.raises(ReproError, match="cannot poll"):
            DaemonSource("http://127.0.0.1:1", timeout=0.2).frame()


class TestRunTop:
    def test_once_renders_without_ansi(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _write_sweep(path, SWEEP_EVENTS)
        out = io.StringIO()
        assert run_top(str(path), once=True, stream=out) == 0
        text = out.getvalue()
        assert "\x1b" not in text
        assert "fig1" in text

    def test_loop_clears_screen(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _write_sweep(path, SWEEP_EVENTS)
        out = io.StringIO()
        assert run_top(str(path), interval=0.0, stream=out, max_frames=2) == 0
        assert out.getvalue().count("\x1b[2J\x1b[H") == 2

    def test_make_source_dispatch(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _write_sweep(path, SWEEP_EVENTS)
        assert isinstance(make_source(str(path)), SweepSource)
        assert isinstance(make_source("http://x:1"), DaemonSource)
