"""Tests for the OBS singleton, spans, tagging, and event emission."""

from __future__ import annotations

import io
import json

from repro import obs
from repro.obs.runtime import OBS


class TestDefaults:
    def test_disabled_by_default(self):
        assert OBS.enabled is False
        assert OBS.sink is None

    def test_emit_is_noop_when_disabled(self):
        obs.emit("anything", value=1)  # must not raise
        assert OBS.seq == 0

    def test_span_runs_block_when_disabled(self):
        ran = []
        with obs.span("x"):
            ran.append(True)
        assert ran == [True]


class TestInstrument:
    def test_enables_fresh_registry_and_restores(self):
        outer_registry = OBS.registry
        with obs.instrument() as state:
            assert OBS.enabled
            assert state.registry is not outer_registry
            obs.counter("a").inc()
            assert state.registry.snapshot()["counters"] == {"a": 1}
        assert OBS.enabled is False
        assert OBS.registry is outer_registry

    def test_restores_on_exception(self):
        try:
            with obs.instrument():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert OBS.enabled is False

    def test_nested_instrument_isolates(self):
        with obs.instrument() as outer:
            obs.counter("outer").inc()
            with obs.instrument() as inner:
                obs.counter("inner").inc()
                assert "outer" not in inner.registry.counters
            assert OBS.registry is outer.registry
            assert outer.registry.snapshot()["counters"] == {"outer": 1}

    def test_log_path_writes_and_closes(self, tmp_path):
        log = tmp_path / "events.jsonl"
        with obs.instrument(log_path=log) as state:
            run_id = state.run_id
            obs.emit("hello", n=1)
            obs.emit("world", n=2)
        lines = [json.loads(line) for line in log.read_text().splitlines()]
        assert [e["event"] for e in lines] == ["hello", "world"]
        assert [e["seq"] for e in lines] == [1, 2]
        assert all(e["run_id"] == run_id for e in lines)

    def test_explicit_run_id_is_used(self):
        with obs.instrument(run_id="r-fixed") as state:
            assert state.run_id == "r-fixed"

    def test_new_run_ids_are_unique(self):
        assert obs.new_run_id() != obs.new_run_id()


class TestSpanAndTag:
    def test_span_observes_summary_and_emits(self):
        stream = io.StringIO()
        with obs.instrument(sink=obs.JsonlSink(stream)) as state:
            with obs.span("work", shard=3):
                pass
            summaries = state.registry.snapshot()["summaries"]
        assert summaries["work.seconds"]["count"] == 1
        event = json.loads(stream.getvalue().splitlines()[0])
        assert event["event"] == "span.work"
        assert event["shard"] == 3
        assert event["seconds"] >= 0.0

    def test_scheme_tag_restores_previous(self):
        assert OBS.scheme == ""
        with obs.scheme_tag("ca-tpa"):
            assert OBS.scheme == "ca-tpa"
            with obs.scheme_tag("ffd"):
                assert OBS.scheme == "ffd"
            assert OBS.scheme == "ca-tpa"
        assert OBS.scheme == ""


class TestCollect:
    def test_collect_isolates_and_dumps(self):
        with obs.instrument() as state:
            obs.counter("parent").inc()
            with obs.collect() as worker_registry:
                obs.counter("child").inc(4)
                dump = worker_registry.dump()
            # Parent registry untouched by the worker-side counts.
            assert "child" not in state.registry.counters
            state.registry.merge(dump)
            snap = state.registry.snapshot()["counters"]
        assert snap == {"parent": 1, "child": 4}


class TestJsonlSink:
    def test_non_serializable_payload_falls_back_to_repr(self):
        stream = io.StringIO()
        sink = obs.JsonlSink(stream)
        sink.emit({"event": "x", "obj": object()})
        line = json.loads(stream.getvalue())
        assert line["obj"].startswith("<object object")
        assert sink.events_written == 1

    def test_path_target_truncates(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text("stale\n")
        sink = obs.JsonlSink(path)
        sink.emit({"event": "fresh"})
        sink.close()
        assert json.loads(path.read_text())["event"] == "fresh"
