"""Tests for the OBS singleton, spans, tagging, and event emission."""

from __future__ import annotations

import io
import json

import pytest

from repro import obs
from repro.obs.events import make_event
from repro.obs.runtime import OBS


class TestDefaults:
    def test_disabled_by_default(self):
        assert OBS.enabled is False
        assert OBS.sink is None

    def test_emit_is_noop_when_disabled(self):
        obs.emit("anything", value=1)  # must not raise
        assert OBS.seq == 0

    def test_span_runs_block_when_disabled(self):
        ran = []
        with obs.span("x"):
            ran.append(True)
        assert ran == [True]


class TestInstrument:
    def test_enables_fresh_registry_and_restores(self):
        outer_registry = OBS.registry
        with obs.instrument() as state:
            assert OBS.enabled
            assert state.registry is not outer_registry
            obs.counter("a").inc()
            assert state.registry.snapshot()["counters"] == {"a": 1}
        assert OBS.enabled is False
        assert OBS.registry is outer_registry

    def test_restores_on_exception(self):
        try:
            with obs.instrument():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert OBS.enabled is False

    def test_nested_instrument_isolates(self):
        with obs.instrument() as outer:
            obs.counter("outer").inc()
            with obs.instrument() as inner:
                obs.counter("inner").inc()
                assert "outer" not in inner.registry.counters
            assert OBS.registry is outer.registry
            assert outer.registry.snapshot()["counters"] == {"outer": 1}

    def test_log_path_writes_and_closes(self, tmp_path):
        log = tmp_path / "events.jsonl"
        with obs.instrument(log_path=log) as state:
            run_id = state.run_id
            obs.emit("hello", n=1)
            obs.emit("world", n=2)
        lines = [json.loads(line) for line in log.read_text().splitlines()]
        assert [e["event"] for e in lines] == ["hello", "world"]
        assert [e["seq"] for e in lines] == [1, 2]
        assert all(e["run_id"] == run_id for e in lines)

    def test_explicit_run_id_is_used(self):
        with obs.instrument(run_id="r-fixed") as state:
            assert state.run_id == "r-fixed"

    def test_new_run_ids_are_unique(self):
        assert obs.new_run_id() != obs.new_run_id()


class TestSpanAndTag:
    def test_span_observes_summary_and_emits(self):
        stream = io.StringIO()
        with obs.instrument(sink=obs.JsonlSink(stream)) as state:
            with obs.span("work", shard=3):
                pass
            summaries = state.registry.snapshot()["summaries"]
        assert summaries["work.seconds"]["count"] == 1
        event = json.loads(stream.getvalue().splitlines()[0])
        assert event["event"] == "span.work"
        assert event["shard"] == 3
        assert event["seconds"] >= 0.0

    def test_span_records_carry_scheme_tag(self):
        with obs.instrument() as state:
            with obs.scheme_tag("ca-tpa"):
                with obs.span("partition.attempt"):
                    pass
            # OBS.spans is part of the state instrument() restores, so
            # read it inside the block.
            record = state.spans[0]
        assert record["name"] == "partition.attempt"
        assert record["scheme"] == "ca-tpa"

    def test_scheme_tag_restores_previous(self):
        assert OBS.scheme == ""
        with obs.scheme_tag("ca-tpa"):
            assert OBS.scheme == "ca-tpa"
            with obs.scheme_tag("ffd"):
                assert OBS.scheme == "ffd"
            assert OBS.scheme == "ca-tpa"
        assert OBS.scheme == ""


class TestCollect:
    def test_collect_isolates_and_dumps(self):
        with obs.instrument() as state:
            obs.counter("parent").inc()
            with obs.collect() as worker_registry:
                obs.counter("child").inc(4)
                dump = worker_registry.dump()
            # Parent registry untouched by the worker-side counts.
            assert "child" not in state.registry.counters
            state.registry.merge(dump)
            snap = state.registry.snapshot()["counters"]
        assert snap == {"parent": 1, "child": 4}


class TestSpanTree:
    def test_nested_spans_link_parent_ids(self):
        with obs.instrument() as state:
            with obs.span("outer"):
                outer_id = obs.current_span_id()
                with obs.span("inner"):
                    assert obs.current_span_id() != outer_id
            records = {r["name"]: r for r in state.spans}
        # inner closes (and records) first; both carry the link.
        assert records["inner"]["parent_id"] == records["outer"]["span_id"]
        assert records["outer"]["parent_id"] is None
        assert records["inner"]["span_id"] != records["outer"]["span_id"]

    def test_sibling_spans_share_parent(self):
        with obs.instrument() as state:
            with obs.span("root"):
                with obs.span("a"):
                    pass
                with obs.span("b"):
                    pass
            records = {r["name"]: r for r in state.spans}
        assert records["a"]["parent_id"] == records["root"]["span_id"]
        assert records["b"]["parent_id"] == records["root"]["span_id"]
        assert records["a"]["span_id"] != records["b"]["span_id"]

    def test_current_span_id_is_none_outside_spans(self):
        with obs.instrument():
            assert obs.current_span_id() is None
        assert obs.current_span_id() is None

    def test_disabled_span_does_no_bookkeeping(self):
        assert not OBS.enabled
        with obs.span("x", field=1):
            assert obs.current_span_id() is None
        assert OBS.spans == []
        assert OBS.span_stack == []

    def test_error_span_tagged_and_exception_propagates(self):
        with obs.instrument() as state:
            with pytest.raises(ValueError, match="boom"):
                with obs.span("failing"):
                    raise ValueError("boom")
            record = state.spans[0]
        assert record["error"] is True

    def test_error_attribution_via_raising_probe(self, monkeypatch):
        """A probe raising inside a partition attempt marks the span."""
        import numpy as np

        from repro.gen import WorkloadConfig, generate_taskset
        from repro.model.partition import Partition
        from repro.partition.catpa import CATPA

        config = WorkloadConfig(cores=2, task_count_range=(5, 6))
        taskset = generate_taskset(config, np.random.default_rng(0))

        def exploding(self, task_index):
            raise RuntimeError("probe exploded")

        with obs.instrument() as state:
            monkeypatch.setattr(Partition, "candidate_stack", exploding)
            with pytest.raises(RuntimeError, match="probe exploded"):
                CATPA().partition(taskset, config.cores)
            attempts = [r for r in state.spans if r["name"] == "partition.attempt"]
        assert len(attempts) == 1
        assert attempts[0]["error"] is True
        assert attempts[0]["scheme"] == "ca-tpa"

    def test_user_fields_never_clobber_reserved_keys(self):
        with obs.instrument() as state:
            with obs.span("s", start="not-a-time", shard=7):
                pass
            record = state.spans[0]
        assert isinstance(record["start"], float)  # runtime's wall clock
        assert record["shard"] == 7

    def test_span_buffer_is_bounded(self, monkeypatch):
        from repro.obs import runtime as runtime_mod

        monkeypatch.setattr(runtime_mod, "MAX_SPAN_RECORDS", 2)
        with obs.instrument() as state:
            for _ in range(5):
                with obs.span("s"):
                    pass
            assert len(state.spans) == 2
            dropped = state.registry.snapshot()["counters"]["trace.spans_dropped"]
        assert dropped == 3


class TestSpanBuckets:
    def test_add_span_time_aggregates_into_synthetic_child(self):
        with obs.instrument() as state:
            with obs.span("parent"):
                obs.add_span_time("probe", 0.25)
                obs.add_span_time("probe", 0.75, calls=3)
            records = {r["name"]: r for r in state.spans}
        bucket = records["probe"]
        assert bucket["parent_id"] == records["parent"]["span_id"]
        assert bucket["seconds"] == pytest.approx(1.0)
        assert bucket["calls"] == 4
        assert bucket["synthetic"] is True

    def test_add_span_time_outside_spans_is_noop(self):
        with obs.instrument() as state:
            obs.add_span_time("probe", 1.0)
            assert state.spans == []

    def test_buckets_attach_to_innermost_span(self):
        with obs.instrument() as state:
            with obs.span("outer"):
                with obs.span("inner"):
                    obs.add_span_time("probe", 0.5)
            records = {r["name"]: r for r in state.spans}
        assert records["probe"]["parent_id"] == records["inner"]["span_id"]


class TestRecordSpan:
    def test_explicit_record_defaults_parent_to_open_span(self):
        with obs.instrument() as state:
            with obs.span("root"):
                span_id = obs.record_span("window", start=100.0, seconds=2.5, k=1)
            records = {r["name"]: r for r in state.spans}
        assert records["window"]["span_id"] == span_id
        assert records["window"]["parent_id"] == records["root"]["span_id"]
        assert records["window"]["start"] == 100.0
        assert records["window"]["seconds"] == 2.5
        assert records["window"]["k"] == 1

    def test_disabled_returns_none(self):
        assert obs.record_span("x", start=0.0, seconds=1.0) is None


class TestDrainAndAdopt:
    def test_drain_returns_and_clears(self):
        with obs.instrument() as state:
            with obs.span("a"):
                pass
            drained = obs.drain_spans()
            assert [r["name"] for r in drained] == ["a"]
            assert state.spans == []

    def test_adopt_remaps_ids_and_reroots(self):
        # "Worker": records in its own id namespace.
        with obs.instrument():
            with obs.span("worker.root"):
                with obs.span("worker.child"):
                    pass
            worker_records = obs.drain_spans()
        # "Parent": adopt under a local shard span.
        with obs.instrument() as state:
            shard_id = obs.record_span("engine.shard", start=0.0, seconds=1.0)
            adopted = obs.adopt_spans(worker_records, shard_id)
            records = {r["name"]: r for r in state.spans}
        assert len(adopted) == 2
        assert records["worker.root"]["parent_id"] == shard_id
        assert (
            records["worker.child"]["parent_id"] == records["worker.root"]["span_id"]
        )
        # Fresh local ids, no collision with the parent's own spans.
        ids = {r["span_id"] for r in records.values()}
        assert len(ids) == 3

    def test_adopt_when_disabled_is_noop(self):
        records = [{"span_id": 1, "parent_id": None, "name": "x"}]
        assert obs.adopt_spans(records, 99) == []

    def test_collect_ships_spans_across_the_boundary(self):
        with obs.instrument() as state:
            with obs.span("engine.point"):
                parent_span = obs.current_span_id()
                with obs.collect():
                    with obs.span("compute"):
                        pass
                    shipped = obs.drain_spans()
                # Worker spans never leak into the parent buffer...
                assert [r["name"] for r in state.spans] == []
                sid = obs.record_span("engine.shard", start=0.0, seconds=0.1)
                obs.adopt_spans(shipped, sid)
                names = {r["name"]: r for r in state.spans}
            # ...until adopted under the parent's shard span.
            assert names["compute"]["parent_id"] == names["engine.shard"]["span_id"]
            assert names["engine.shard"]["parent_id"] == parent_span


class TestMakeEventEnvelope:
    def test_payload_keys_colliding_with_envelope_are_prefixed(self):
        event = make_event(
            "r-1", 7, "weird", {"run_id": "fake", "ts": 0, "n": 3, "event": "x"}
        )
        assert event["run_id"] == "r-1"
        assert event["seq"] == 7
        assert event["event"] == "weird"
        assert event["payload_run_id"] == "fake"
        assert event["payload_ts"] == 0
        assert event["payload_event"] == "x"
        assert event["n"] == 3

    def test_plain_payload_keys_pass_through(self):
        event = make_event("r-1", 1, "e", {"alpha": 0.5})
        assert event["alpha"] == 0.5
        assert "payload_alpha" not in event


class TestJsonlSink:
    def test_non_serializable_payload_falls_back_to_repr(self):
        stream = io.StringIO()
        sink = obs.JsonlSink(stream)
        sink.emit({"event": "x", "obj": object()})
        line = json.loads(stream.getvalue())
        assert line["obj"].startswith("<object object")
        assert sink.events_written == 1

    def test_path_target_truncates(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text("stale\n")
        sink = obs.JsonlSink(path)
        sink.emit({"event": "fresh"})
        sink.close()
        assert json.loads(path.read_text())["event"] == "fresh"
