"""Engine integration of the validation campaign.

The campaign is just another shard kind: it must checkpoint/resume
through the ResultStore, survive worker processes (whose interpreters
have not imported :mod:`repro.validate`), and produce identical
payloads serial vs. parallel and cold vs. warm.
"""

import subprocess
import sys

import pytest

from repro.engine import Engine
from repro.engine.core import shard_kind
from repro.gen import WorkloadConfig
from repro.types import ReproError
from repro.validate import campaign_points, run_campaign

TINY = (
    WorkloadConfig(
        cores=2,
        levels=2,
        nsu=0.6,
        task_count_range=(5, 8),
        period_ranges=((10, 60),),
    ),
)


def _point(sets=6, seed=1):
    return campaign_points(sets, seed, configs=TINY)[0]


class TestShardKind:
    def test_registered_with_engine(self):
        kind = shard_kind("validate")
        assert kind.name == "validate"

    def test_codec_round_trips(self):
        kind = shard_kind("validate")
        payload = {"cases": 3, "checks": 21, "failures": []}
        assert kind.decode(kind.encode(payload)) == payload

    def test_decode_rejects_foreign_kind(self):
        with pytest.raises(ReproError, match="kind"):
            shard_kind("validate").decode({"kind": "stats"})

    def test_lazy_provider_import(self):
        # A fresh interpreter that only imports the engine must still
        # resolve the validate kind (worker processes depend on this).
        code = (
            "from repro.engine.core import shard_kind; "
            "print(shard_kind('validate').name)"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == "validate"


class TestEngineEquivalence:
    def test_parallel_matches_serial(self):
        serial = Engine(jobs=1).evaluate(_point())
        parallel = Engine(jobs=3).evaluate(_point())
        assert serial == parallel

    def test_warm_store_resumes_without_recomputing(self, tmp_path):
        cold_engine = Engine(jobs=1, store=tmp_path)
        cold = cold_engine.evaluate(_point())
        assert cold_engine.stats.shards_computed == 1

        warm_engine = Engine(jobs=1, store=tmp_path)
        warm = warm_engine.evaluate(_point())
        assert warm_engine.stats.cache_hits == 1
        assert warm_engine.stats.shards_computed == 0
        assert warm == cold

    def test_campaign_merges_all_points(self, tmp_path):
        result = run_campaign(sets=2, seed=0, store=tmp_path)
        assert result.cases == 2 * len(result.points)
        assert result.ok

        # Second run answers fully from the checkpoint store.
        events = []
        again = run_campaign(sets=2, seed=0, store=tmp_path, progress=events.append)
        assert again.cases == result.cases
        assert all(e["cached"] for e in events if e["event"] == "shard")
