"""Tier-1 slice of the differential validation harness.

A deterministic seeded sweep of every oracle (the full campaign is the
``repro-mc validate`` CLI / CI job), plus hypothesis-driven property
tests for the invariants that carry the most weight: Theorem-1
acceptance really does imply a miss-free simulation, and jobs are
conserved, over generator-distribution workloads.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gen import WorkloadConfig
from repro.types import ReproError
from repro.validate import (
    all_oracles,
    get_oracle,
    make_case,
    run_campaign,
    run_case,
)

#: Small config used by the hypothesis properties; K=3 exercises the
#: staged virtual-deadline protocol, not just the dual specialization.
PROP_CONFIG = WorkloadConfig(
    cores=2,
    levels=3,
    nsu=0.7,
    task_count_range=(4, 8),
    period_ranges=((10, 60), (60, 240)),
)

DUAL_CONFIG = PROP_CONFIG.with_(levels=2, nsu=0.8)


class TestRegistry:
    def test_builtin_oracles_registered_in_sorted_order(self):
        names = [o.name for o in all_oracles()]
        assert names == sorted(names)
        assert set(names) >= {
            "probe-scalar-batch",
            "theorem1-eq7-k2",
            "admission-monotonicity",
            "schedulable-no-miss",
            "trace-busy-time",
            "job-conservation",
            "telemetry-counters",
        }

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ReproError, match="unknown oracle"):
            get_oracle("nope")

    def test_descriptions_are_non_empty(self):
        assert all(o.description for o in all_oracles())


class TestSeededSlice:
    def test_small_campaign_is_all_green(self):
        result = run_campaign(sets=4, seed=2016)
        assert result.ok, result.summary()
        assert result.cases == 4 * len(result.points)
        assert result.checks == result.cases * len(all_oracles())
        assert "all green" in result.summary()

    def test_cases_are_reproducible(self):
        a = make_case(PROP_CONFIG, (), seed=7, index=3)
        b = make_case(PROP_CONFIG, (), seed=7, index=3)
        assert a.taskset == b.taskset
        assert a.sim_seed(1).spawn_key == b.sim_seed(1).spawn_key


class TestProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31), st.integers(0, 31))
    def test_schedulable_implies_no_miss(self, seed, index):
        case = make_case(PROP_CONFIG, (), seed=seed, index=index)
        assert get_oracle("schedulable-no-miss").check(case) == []

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31), st.integers(0, 31))
    def test_jobs_are_conserved(self, seed, index):
        case = make_case(PROP_CONFIG, (), seed=seed, index=index)
        assert get_oracle("job-conservation").check(case) == []

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31), st.integers(0, 31))
    def test_theorem1_matches_eq7_on_dual_workloads(self, seed, index):
        case = make_case(DUAL_CONFIG, (), seed=seed, index=index)
        assert get_oracle("theorem1-eq7-k2").check(case) == []

    def test_eq7_oracle_skips_multi_level_sets(self):
        case = make_case(PROP_CONFIG, (), seed=0, index=0)
        assert case.taskset.levels == 3
        assert get_oracle("theorem1-eq7-k2").check(case) == []


class TestRunCase:
    def test_green_case_returns_no_records(self):
        assert run_case(make_case(PROP_CONFIG, (), seed=1, index=0)) == []

    def test_counters_tally_cases_and_checks(self):
        from repro import obs

        with obs.instrument() as state:
            run_case(make_case(PROP_CONFIG, (), seed=1, index=0))
            counters = state.registry.snapshot()["counters"]
        assert counters["validate.cases"] == 1
        assert counters["validate.checks"] == len(all_oracles())

    def test_scheme_results_cached_per_case(self):
        case = make_case(PROP_CONFIG, (), seed=1, index=1)
        assert case.scheme_results() is case.scheme_results()

    def test_instrumented_case_matches_plain(self):
        # Instrumentation must never change an oracle verdict: the same
        # case checks green with and without a live registry.
        from repro import obs

        plain = run_case(make_case(PROP_CONFIG, (), seed=5, index=2))
        with obs.instrument():
            instrumented = run_case(make_case(PROP_CONFIG, (), seed=5, index=2))
        assert plain == instrumented


class TestProbeEquivalenceOracle:
    def test_detects_diverging_implementations(self, monkeypatch):
        # Force the scalar feasibility probe to reject everything: the
        # oracle must notice the scalar/batch divergence, proving it
        # exercises both engines rather than comparing batch to itself.
        monkeypatch.setattr(
            "repro.partition.backend.is_feasible_core", lambda mat: False
        )
        case = make_case(DUAL_CONFIG, (), seed=3, index=0)
        messages = get_oracle("probe-scalar-batch").check(case)
        assert messages
        assert "scalar/batch probes disagree" in messages[0]


class TestServeOfflineOracle:
    def test_green_on_healthy_cases(self):
        for index in range(3):
            case = make_case(DUAL_CONFIG, (), seed=11, index=index)
            assert get_oracle("serve-offline").check(case) == []

    def test_green_at_k3(self):
        case = make_case(PROP_CONFIG, (), seed=5, index=1)
        assert get_oracle("serve-offline").check(case) == []

    def test_detects_serve_divergence(self, monkeypatch):
        # Corrupt the service-side answer only: the oracle must flag the
        # mismatch, proving it really compares serve against offline.
        from repro.serve.coordinator import Coordinator

        original = Coordinator._admit

        def corrupted(self, req):
            body = original(self, req)
            body["schedulable"] = not body["schedulable"]
            return body

        monkeypatch.setattr(Coordinator, "_admit", corrupted)
        case = make_case(DUAL_CONFIG, (), seed=11, index=0)
        messages = get_oracle("serve-offline").check(case)
        assert messages
        assert "diverges from the offline partitioner" in messages[0]
