"""Counterexample shrinking, repro files, and the seeded-bug acceptance test.

The centerpiece deliberately plants a bug — the Eq. (6) reduction
factors ``lambda_j`` are halved, which inflates the Theorem-1 capacity
terms ``theta(k) = prod(1 - lambda_j)`` on the *scalar* analysis path —
and demands that the harness (a) catches it via the scalar/batch
differential, (b) shrinks a failure to a handful of tasks, and (c) the
written repro file replays red under the bug and green once it is
fixed.
"""

import numpy as np
import pytest

from repro.gen import WorkloadConfig
from repro.types import ReproError
from repro.validate import (
    check_repro,
    get_oracle,
    load_repro,
    make_case,
    run_campaign,
    shrink_case,
    shrink_failure,
    write_repro,
)

#: K=3 near the feasibility boundary: lambda_2 enters theta(2), so the
#: corruption is visible (at K=2 the only capacity term is theta(1)=1
#: and the lambdas cancel out of the admission decision entirely).
CORRUPTIBLE = (
    WorkloadConfig(
        cores=2,
        levels=3,
        nsu=0.85,
        task_count_range=(6, 12),
        period_ranges=((10, 60), (60, 240)),
    ),
)


@pytest.fixture
def corrupted_lambda(monkeypatch):
    """Halve every Eq. (6) reduction factor on the scalar analysis path."""
    from repro.analysis import edfvd

    true_lambda = edfvd.lambda_factors
    monkeypatch.setattr(edfvd, "lambda_factors", lambda mat: true_lambda(mat) * 0.5)


class TestShrinkCase:
    def test_passing_case_cannot_be_shrunk(self):
        case = make_case(CORRUPTIBLE[0], (), seed=0, index=0)
        with pytest.raises(ReproError, match="cannot shrink"):
            shrink_case(get_oracle("probe-scalar-batch"), case)

    def test_shrinking_never_mutates_the_input_case(self, corrupted_lambda):
        result = run_campaign(sets=20, seed=0, configs=CORRUPTIBLE)
        failure = next(
            f for f in result.failures if f.oracle == "probe-scalar-batch"
        )
        case = failure.case()
        before = case.taskset
        shrink_case(get_oracle(failure.oracle), case)
        assert case.taskset == before


class TestSeededBugAcceptance:
    def test_corrupted_lambda_yields_small_repro_file(
        self, corrupted_lambda, tmp_path
    ):
        result = run_campaign(sets=20, seed=0, configs=CORRUPTIBLE)
        failures = [
            f for f in result.failures if f.oracle == "probe-scalar-batch"
        ]
        assert failures, "halved lambdas must make scalar and batch disagree"

        doc = shrink_failure(failures[0])
        assert len(doc["taskset"]["tasks"]) <= 4
        assert doc["oracle"] == "probe-scalar-batch"
        assert doc["messages"]

        path = write_repro(doc, tmp_path)
        assert path.name.startswith("probe-scalar-batch-seed0-set")
        loaded = load_repro(path)
        assert loaded == doc
        # Under the planted bug the repro replays red...
        assert check_repro(path)

    def test_repro_replays_green_once_fixed(self, tmp_path):
        with pytest.MonkeyPatch.context() as mp:
            from repro.analysis import edfvd

            true_lambda = edfvd.lambda_factors
            mp.setattr(edfvd, "lambda_factors", lambda m: true_lambda(m) * 0.5)
            result = run_campaign(sets=20, seed=0, configs=CORRUPTIBLE)
            failure = next(
                f for f in result.failures if f.oracle == "probe-scalar-batch"
            )
            path = write_repro(shrink_failure(failure), tmp_path)
            assert check_repro(path)
        # ...and green with the bug reverted: the file proves the fix.
        assert check_repro(path) == []


class TestReproFiles:
    def test_filenames_carry_the_config(self, tmp_path):
        # The campaign reuses seed and set indices across configs, so
        # two counterexamples for "set 0" must land in distinct files.
        base = {
            "format": "repro-mc-counterexample",
            "version": 1,
            "oracle": "probe-scalar-batch",
            "seed": 0,
            "set_index": 0,
            "taskset": {"tasks": []},
        }
        a = write_repro({**base, "config": {"cores": 4, "levels": 3, "nsu": 0.7}}, tmp_path)
        b = write_repro({**base, "config": {"cores": 4, "levels": 4, "nsu": 0.5}}, tmp_path)
        assert a != b
        assert a.name == "probe-scalar-batch-seed0-set0-M4K3-nsu0p7.json"
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_load_rejects_foreign_documents(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "something-else", "version": 1}')
        with pytest.raises(ReproError, match="not a repro-mc-counterexample"):
            load_repro(bad)

    def test_load_rejects_unknown_version(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "repro-mc-counterexample", "version": 99}')
        with pytest.raises(ReproError, match="version"):
            load_repro(bad)
