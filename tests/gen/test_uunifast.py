"""Tests for the UUniFast workload generator extension."""

import numpy as np
import pytest

from repro.gen import uunifast, uunifast_discard, uunifast_mc_taskset
from repro.types import GenerationError


class TestUUniFast:
    def test_sums_to_total(self, rng):
        for n, total in [(1, 0.5), (5, 2.0), (50, 10.0)]:
            utils = uunifast(n, total, rng)
            assert utils.sum() == pytest.approx(total)
            assert utils.shape == (n,)

    def test_non_negative(self, rng):
        for _ in range(50):
            assert (uunifast(10, 3.0, rng) >= 0).all()

    def test_single_task(self, rng):
        assert uunifast(1, 0.7, rng)[0] == pytest.approx(0.7)

    def test_invalid_args(self, rng):
        with pytest.raises(GenerationError):
            uunifast(0, 1.0, rng)
        with pytest.raises(GenerationError):
            uunifast(3, 0.0, rng)

    def test_mean_is_uniform_split(self, rng):
        # On the simplex each component has mean total/n.
        samples = np.array([uunifast(4, 2.0, rng) for _ in range(3000)])
        np.testing.assert_allclose(samples.mean(axis=0), 0.5, atol=0.03)


class TestDiscard:
    def test_all_components_at_most_one(self, rng):
        for _ in range(30):
            utils = uunifast_discard(6, 4.0, rng)
            assert (utils <= 1.0).all()
            assert utils.sum() == pytest.approx(4.0)

    def test_impossible_total_rejected(self, rng):
        with pytest.raises(GenerationError):
            uunifast_discard(3, 3.5, rng)


class TestMCTaskset:
    def test_structure(self, rng):
        ts = uunifast_mc_taskset(20, 4.0, levels=3, ifc=0.5, rng=rng)
        assert len(ts) == 20
        assert ts.levels == 3
        assert ts.average_utilization(1) == pytest.approx(4.0, rel=1e-6)

    def test_growth(self, rng):
        ts = uunifast_mc_taskset(10, 2.0, levels=4, ifc=0.25, rng=rng)
        for t in ts:
            for k in range(2, t.criticality + 1):
                assert t.wcet(k) == pytest.approx(t.wcet(k - 1) * 1.25)

    def test_invalid_args(self, rng):
        with pytest.raises(GenerationError):
            uunifast_mc_taskset(5, 1.0, levels=0, ifc=0.3, rng=rng)
        with pytest.raises(GenerationError):
            uunifast_mc_taskset(5, 1.0, levels=2, ifc=-1.0, rng=rng)
        with pytest.raises(GenerationError):
            uunifast_mc_taskset(5, 1.0, levels=2, ifc=0.3, rng=rng, period_range=(9, 2))
