"""Tests for the Section IV-A synthetic workload generator."""

import numpy as np
import pytest

from repro.gen import WorkloadConfig, generate_batch, generate_taskset
from repro.types import GenerationError


@pytest.fixture
def config():
    return WorkloadConfig()


class TestConfig:
    def test_paper_defaults(self):
        c = WorkloadConfig.paper_default()
        assert (c.cores, c.levels, c.nsu, c.ifc) == (8, 4, 0.6, 0.4)
        assert c.task_count_range == (40, 200)
        assert len(c.period_ranges) == 3

    def test_with_replaces_fields(self, config):
        c2 = config.with_(nsu=0.8, cores=16)
        assert (c2.nsu, c2.cores) == (0.8, 16)
        assert c2.levels == config.levels

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cores": 0},
            {"levels": 0},
            {"nsu": 0.0},
            {"ifc": -0.1},
            {"task_count_range": (0, 10)},
            {"task_count_range": (10, 5)},
            {"period_ranges": ()},
            {"period_ranges": ((0, 10),)},
            {"period_ranges": ((20, 10),)},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(GenerationError):
            WorkloadConfig(**kwargs)


class TestGeneration:
    def test_task_count_in_range(self, config, rng):
        for _ in range(10):
            ts = generate_taskset(config, rng)
            assert 40 <= len(ts) <= 200

    def test_fixed_task_count(self, config, rng):
        ts = generate_taskset(config, rng, n_tasks=55)
        assert len(ts) == 55

    def test_bad_task_count_rejected(self, config, rng):
        with pytest.raises(GenerationError):
            generate_taskset(config, rng, n_tasks=0)

    def test_periods_from_declared_ranges(self, config, rng):
        ts = generate_taskset(config, rng, n_tasks=100)
        for t in ts:
            assert any(lo <= t.period <= hi for lo, hi in config.period_ranges)
            assert t.period == int(t.period)  # integer periods

    def test_criticalities_within_levels(self, config, rng):
        ts = generate_taskset(config, rng, n_tasks=200)
        assert ts.levels == config.levels
        assert ts.criticalities.min() >= 1
        assert ts.criticalities.max() <= config.levels

    def test_all_levels_hit_eventually(self, config, rng):
        ts = generate_taskset(config, rng, n_tasks=200)
        assert set(np.unique(ts.criticalities)) == {1, 2, 3, 4}

    def test_wcet_growth_matches_ifc(self, config, rng):
        ts = generate_taskset(config, rng, n_tasks=50)
        for t in ts:
            for k in range(2, t.criticality + 1):
                assert t.wcet(k) == pytest.approx(t.wcet(k - 1) * (1 + config.ifc))

    def test_c1_within_sampling_band(self, config, rng):
        # c_i(1) in [0.2, 1.8] * p_i * u_base
        n = 120
        ts = generate_taskset(config, rng, n_tasks=n)
        u_base = config.nsu * config.cores / n
        for t in ts:
            assert 0.2 * u_base - 1e-12 <= t.utilization(1) <= 1.8 * u_base + 1e-12

    def test_nsu_achieved_in_expectation(self, config, rng):
        # Mean aggregate level-1 utilization over many sets ~= NSU * M.
        totals = [
            generate_taskset(config, rng, n_tasks=100).average_utilization(1)
            for _ in range(100)
        ]
        assert np.mean(totals) == pytest.approx(config.nsu * config.cores, rel=0.05)

    def test_exact_nsu_flag(self, rng):
        config = WorkloadConfig(exact_nsu=True)
        ts = generate_taskset(config, rng, n_tasks=77)
        assert ts.average_utilization(1) == pytest.approx(
            config.nsu * config.cores, rel=1e-9
        )


class TestBatch:
    def test_batch_reproducible(self):
        cfg = WorkloadConfig()
        a = generate_batch(cfg, 5, seed=42)
        b = generate_batch(cfg, 5, seed=42)
        assert a == b

    def test_batch_sets_differ(self):
        cfg = WorkloadConfig()
        batch = generate_batch(cfg, 3, seed=7)
        assert batch[0] != batch[1]

    def test_empty_batch(self):
        assert generate_batch(WorkloadConfig(), 0, seed=1) == []

    def test_negative_count_rejected(self):
        with pytest.raises(GenerationError):
            generate_batch(WorkloadConfig(), -1, seed=1)

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(99)
        batch = generate_batch(WorkloadConfig(), 2, seed=seq)
        assert len(batch) == 2


class TestCritWeights:
    def test_uniform_by_default(self, config, rng):
        ts = generate_taskset(config, rng, n_tasks=400)
        counts = np.bincount(ts.criticalities, minlength=5)[1:]
        assert (counts > 50).all()  # all four levels well represented

    def test_skewed_weights_respected(self, rng):
        config = WorkloadConfig(crit_weights=(1.0, 0.0, 0.0, 1.0))
        ts = generate_taskset(config, rng, n_tasks=300)
        crits = set(np.unique(ts.criticalities))
        assert crits <= {1, 4}
        assert crits == {1, 4}

    def test_wrong_length_rejected(self):
        with pytest.raises(GenerationError, match="one weight per level"):
            WorkloadConfig(crit_weights=(1.0, 1.0))

    def test_negative_weight_rejected(self):
        with pytest.raises(GenerationError):
            WorkloadConfig(crit_weights=(1.0, -1.0, 1.0, 1.0))

    def test_zero_sum_rejected(self):
        with pytest.raises(GenerationError):
            WorkloadConfig(crit_weights=(0.0, 0.0, 0.0, 0.0))
