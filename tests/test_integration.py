"""End-to-end integration journeys across the whole library."""

import numpy as np
import pytest

from repro.analysis import is_feasible_partition
from repro.gen import WorkloadConfig, generate_taskset
from repro.metrics import partition_metrics
from repro.model import (
    load_partition,
    load_taskset,
    save_partition,
    save_taskset,
)
from repro.partition import available_schemes, get_partitioner
from repro.sched import (
    LevelScenario,
    RandomScenario,
    SporadicReleases,
    SystemSimulator,
)


@pytest.fixture(scope="module")
def workload():
    cfg = WorkloadConfig(cores=2, levels=2, nsu=0.5, task_count_range=(10, 14))
    return cfg, generate_taskset(cfg, np.random.default_rng(2024))


class TestFullJourney:
    def test_generate_partition_validate_persist(self, workload, tmp_path):
        cfg, ts = workload

        # 1. persist + reload the workload
        save_taskset(ts, tmp_path / "w.json")
        ts2 = load_taskset(tmp_path / "w.json")
        assert ts2 == ts

        # 2. partition
        result = get_partitioner("ca-tpa").partition(ts2, cfg.cores)
        assert result.schedulable
        metrics = partition_metrics(result.partition)
        assert 0.0 < metrics["u_avg"] <= metrics["u_sys"] <= 1.0

        # 3. simulate the deployment under stress
        report = SystemSimulator(
            result.partition,
            RandomScenario(overrun_prob=0.2),
            horizon=20000.0,
            releases=SporadicReleases(max_delay=0.3),
        ).run(seed=1)
        assert report.all_deadlines_met()
        assert report.completed > 0

        # 4. persist + reload the deployment, verify it still checks out
        save_partition(result.partition, tmp_path / "d.json")
        deployed = load_partition(tmp_path / "d.json")
        assert is_feasible_partition(deployed)
        report2 = SystemSimulator(deployed, LevelScenario(2), horizon=5000.0).run()
        assert report2.all_deadlines_met()

    def test_every_registered_scheme_runs_on_dual_workload(self, workload):
        cfg, ts = workload
        for name in available_schemes():
            if name == "ca-tpa-variant":
                scheme = get_partitioner(name, order="max-utilization")
            else:
                scheme = get_partitioner(name)
            result = scheme.partition(ts, cfg.cores)
            # every scheme must at least terminate with a coherent result
            assert result.partition.cores == cfg.cores
            if result.schedulable:
                assert is_feasible_partition(result.partition) or name.startswith(
                    ("fp-", "dbf-")
                )  # FP/DBF schemes certify with their own (non-Thm-1) tests

    def test_accepted_schemes_all_survive_the_same_overload(self, workload):
        cfg, ts = workload
        for name in ("ca-tpa", "ffd", "bfd", "wfd", "hybrid"):
            result = get_partitioner(name).partition(ts, cfg.cores)
            if not result.schedulable:
                continue
            report = SystemSimulator(
                result.partition, LevelScenario(2), horizon=10000.0
            ).run(seed=3)
            assert report.all_deadlines_met(), name

    def test_experiment_pipeline_to_csv(self, tmp_path):
        import csv

        from repro.experiments import (
            save_sweep_csv,
            figure1_nsu,
            run_sweep,
        )
        import dataclasses

        d = figure1_nsu(nsu_values=(0.5,))
        base = d.point

        def small(v):
            config, schemes = base(v)
            return config.with_(cores=2, task_count_range=(6, 8)), schemes

        sweep = run_sweep(dataclasses.replace(d, point=small), sets=5, seed=3)
        save_sweep_csv(sweep, tmp_path / "fig.csv")
        with open(tmp_path / "fig.csv") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 20  # 1 value x 5 schemes x 4 metrics
