"""Property-based tests (hypothesis) on the core data structures and
invariants of the library.

Strategies build small-but-arbitrary MC task sets; the properties assert
the algebraic identities the rest of the library leans on: utilization
bookkeeping, the Theorem-1 machinery's ranges and cross-checks, ordering
rules, partition incrementality, and generator postconditions.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    available_utilizations,
    capacity_terms,
    contribution_matrix,
    contribution_order,
    core_utilization,
    demand_terms,
    is_feasible_dual,
    is_feasible_simple,
    is_feasible_theorem1,
    lambda_factors,
    utilization_contributions,
)
from repro.analysis.dual import DualUtilizations, is_feasible_classic
from repro.metrics import imbalance_factor
from repro.model import MCTask, MCTaskSet, Partition
from repro.partition.backend import BatchBackend, IncrementalBackend
from repro.types import EPS, fits_unit_capacity

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

finite_u = st.floats(min_value=1e-4, max_value=0.9, allow_nan=False)


@st.composite
def mc_tasks(draw, max_levels=5):
    crit = draw(st.integers(min_value=1, max_value=max_levels))
    base = draw(finite_u)
    growths = draw(
        st.lists(
            st.floats(min_value=1.0, max_value=2.0),
            min_size=crit - 1,
            max_size=crit - 1,
        )
    )
    utils = [base]
    for g in growths:
        utils.append(utils[-1] * g)
    period = draw(st.floats(min_value=1.0, max_value=1000.0))
    return MCTask.from_utilizations(utils, period=period)


@st.composite
def mc_tasksets(draw, min_tasks=1, max_tasks=8, levels=4):
    tasks = draw(st.lists(mc_tasks(levels), min_size=min_tasks, max_size=max_tasks))
    return MCTaskSet(tasks, levels=levels)


@st.composite
def dual_utilizations(draw):
    return DualUtilizations(
        lo_lo=draw(st.floats(min_value=0.0, max_value=1.5)),
        hi_lo=draw(st.floats(min_value=0.0, max_value=1.0)),
        hi_hi=draw(st.floats(min_value=0.0, max_value=1.5)),
    )


# ----------------------------------------------------------------------
# Model invariants
# ----------------------------------------------------------------------


class TestModelProperties:
    @given(mc_tasks())
    def test_utilization_monotone_in_level(self, task):
        utils = [task.utilization(k) for k in range(1, task.criticality + 1)]
        assert all(b >= a for a, b in zip(utils, utils[1:]))
        assert task.max_utilization == utils[-1]

    @given(mc_tasks(), st.floats(min_value=0.1, max_value=4.0))
    def test_scaling_scales_utilizations(self, task, factor):
        scaled = task.scaled(factor)
        for k in range(1, task.criticality + 1):
            assert scaled.utilization(k) == abs_approx(task.utilization(k) * factor)

    @given(mc_tasksets())
    def test_level_matrix_row_buckets(self, ts):
        # Row j of the level matrix is the sum of utilization rows of
        # tasks whose criticality is exactly j+1.
        mat = ts.level_matrix()
        for j in range(ts.levels):
            idx = [i for i in range(len(ts)) if ts.criticalities[i] == j + 1]
            expected = ts.utilization_matrix[idx].sum(axis=0)
            np.testing.assert_allclose(mat[j], expected, atol=1e-12)

    @given(mc_tasksets(min_tasks=2))
    def test_level_matrix_additive_over_disjoint_subsets(self, ts):
        half = len(ts) // 2
        a = list(range(half))
        b = list(range(half, len(ts)))
        np.testing.assert_allclose(
            ts.level_matrix(a) + ts.level_matrix(b),
            ts.level_matrix(),
            atol=1e-9,
        )

    @given(mc_tasksets())
    def test_total_utilization_counts_high_criticality_only(self, ts):
        for k in range(1, ts.levels + 1):
            expected = sum(
                t.utilization(k) for t in ts if t.criticality >= k
            )
            assert ts.total_utilization(k) == abs_approx(expected)


# ----------------------------------------------------------------------
# Analysis invariants
# ----------------------------------------------------------------------


class TestAnalysisProperties:
    @given(mc_tasksets())
    def test_lambda_factors_in_unit_interval_or_nan(self, ts):
        lambdas = lambda_factors(ts.level_matrix())
        assert lambdas[0] == 0.0
        for lam in lambdas[1:]:
            assert np.isnan(lam) or 0.0 <= lam < 1.0

    @given(mc_tasksets())
    def test_capacity_terms_at_most_one(self, ts):
        theta = capacity_terms(ts.level_matrix())
        for value in theta:
            assert np.isnan(value) or value <= 1.0 + 1e-12

    @given(mc_tasksets())
    def test_demand_terms_nonincreasing_in_k(self, ts):
        mu = demand_terms(ts.level_matrix())
        for a, b in zip(mu, mu[1:]):
            assert b <= a + 1e-12  # suffix sums shrink

    @given(mc_tasksets())
    def test_available_utilization_consistency(self, ts):
        mat = ts.level_matrix()
        avail = available_utilizations(mat)
        util = core_utilization(mat)
        if np.isfinite(util):
            assert is_feasible_theorem1(mat)
            assert util == abs_approx(float(np.max(1.0 - avail[avail >= -1e-12])))
        else:
            assert not is_feasible_theorem1(mat)

    @given(mc_tasksets())
    def test_eq4_implies_theorem1(self, ts):
        mat = ts.level_matrix()
        if is_feasible_simple(mat):
            assert is_feasible_theorem1(mat)

    @given(dual_utilizations())
    def test_dual_eq7_equals_theorem1_and_implies_classic(self, u):
        mat = np.array([[u.lo_lo, 0.0], [u.hi_lo, u.hi_hi]])
        assert is_feasible_dual(u) == is_feasible_theorem1(mat)
        if is_feasible_dual(u):
            assert is_feasible_classic(u)

    @given(mc_tasksets())
    def test_contributions_are_shares(self, ts):
        contrib = contribution_matrix(ts)
        assert (contrib >= 0.0).all()
        assert (contrib <= 1.0 + 1e-12).all()
        totals = ts.total_utilization_vector()
        for k in range(ts.levels):
            if totals[k] > 0:
                assert contrib[:, k].sum() == abs_approx(1.0)

    @given(mc_tasksets())
    def test_contribution_order_is_permutation_sorted_by_priority(self, ts):
        order = contribution_order(ts)
        assert sorted(order) == list(range(len(ts)))
        contribs = utilization_contributions(ts)
        crit = ts.criticalities
        keys = [(-contribs[i], -crit[i], i) for i in order]
        assert keys == sorted(keys)


# ----------------------------------------------------------------------
# Partition and metrics invariants
# ----------------------------------------------------------------------


class TestPartitionProperties:
    @given(mc_tasksets(min_tasks=2), st.integers(min_value=1, max_value=4), st.randoms())
    def test_incremental_matrices_match_batch(self, ts, cores, rnd):
        part = Partition(ts, cores)
        for i in range(len(ts)):
            part.assign(i, rnd.randrange(cores))
        for m in range(cores):
            np.testing.assert_allclose(
                part.level_matrix(m),
                ts.level_matrix(part.tasks_on(m)),
                atol=1e-12,
            )

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=2.0), min_size=1, max_size=8
        )
    )
    def test_imbalance_in_unit_interval(self, utils):
        value = imbalance_factor(np.array(utils))
        assert 0.0 <= value <= 1.0


# ----------------------------------------------------------------------
# Incremental probe-backend invariants
# ----------------------------------------------------------------------


class TestIncrementalBackendProperties:
    """The incremental backend's warm Δ-state is unobservable.

    After *any* interleaving of ``assign``/``unassign``/``extended``,
    every probe answered from the warm per-core cache must be bit-equal
    to the batch backend's answer on a from-scratch rebuild of the same
    assignment.
    """

    @given(data=st.data())
    @settings(deadline=None, max_examples=30)
    def test_interleaving_leaves_state_equal_to_rebuild(self, data):
        batch = BatchBackend()
        incremental = IncrementalBackend()
        ts = data.draw(mc_tasksets(min_tasks=2, max_tasks=6, levels=3))
        cores = data.draw(st.integers(min_value=1, max_value=3))
        part = Partition(ts, cores)
        n_ops = data.draw(st.integers(min_value=1, max_value=10))
        for _ in range(n_ops):
            assigned = [i for i in range(len(ts)) if part.core_of(i) >= 0]
            free = [i for i in range(len(ts)) if part.core_of(i) < 0]
            ops = ["probe", "extended"]
            if free:
                ops.append("assign")
            if assigned:
                ops.append("unassign")
            op = data.draw(st.sampled_from(ops))
            if op == "assign":
                task = data.draw(st.sampled_from(free))
                part.assign(task, data.draw(st.integers(0, cores - 1)))
            elif op == "unassign":
                part.unassign(data.draw(st.sampled_from(assigned)))
            elif op == "extended":
                grown = MCTaskSet(
                    list(ts) + [data.draw(mc_tasks(max_levels=3))],
                    levels=3,
                )
                part = part.extended(grown)
                ts = grown
            # Warm (or re-warm) the incremental state, then compare the
            # whole probe surface against a cold rebuild.
            idx = list(range(len(ts)))
            rebuilt = Partition.from_assignment(ts, cores, part.assignment)
            np.testing.assert_array_equal(
                incremental.probe_tasks(part, idx),
                batch.probe_tasks(rebuilt, idx),
            )
            np.testing.assert_array_equal(
                incremental.probe_feasible_tasks(part, idx),
                batch.probe_feasible_tasks(rebuilt, idx),
            )
            task = data.draw(st.sampled_from(idx))
            np.testing.assert_array_equal(
                incremental.probe(part, task), batch.probe(rebuilt, task)
            )
            np.testing.assert_array_equal(
                incremental.probe_feasible(part, task),
                batch.probe_feasible(rebuilt, task),
            )

    @given(
        st.floats(min_value=-4.0, max_value=4.0),
        st.integers(min_value=1, max_value=3),
    )
    @settings(deadline=None, max_examples=50)
    def test_eps_boundary_feasibility_agrees_with_fits_unit_capacity(
        self, offset_in_eps, cores
    ):
        # Utilizations straddling 1.0 by fractions of EPS: the probe's
        # feasibility verdict on an empty core must match the Eq.-(4)
        # capacity predicate exactly, through the warm cache too.
        util = 1.0 + offset_in_eps * EPS
        ts = MCTaskSet(
            [MCTask.from_utilizations([util], period=10.0)], levels=1
        )
        part = Partition(ts, cores)
        incremental = IncrementalBackend()
        expected = fits_unit_capacity(util)
        cold = incremental.probe_feasible(part, 0)
        warm = incremental.probe_feasible(part, 0)
        assert cold.all() == expected
        np.testing.assert_array_equal(cold, warm)


# ----------------------------------------------------------------------
# Heuristic postconditions
# ----------------------------------------------------------------------


class TestHeuristicProperties:
    @given(mc_tasksets(levels=3), st.sampled_from(["ca-tpa", "ffd", "bfd", "wfd", "hybrid"]))
    @settings(deadline=None, max_examples=40)
    def test_schedulable_results_pass_the_feasibility_test(self, ts, scheme):
        from repro.analysis import is_feasible_partition
        from repro.partition import get_partitioner

        result = get_partitioner(scheme).partition(ts, cores=3)
        if result.schedulable:
            assert result.partition.is_complete
            assert is_feasible_partition(result.partition)
        else:
            assert result.failed_task is not None
            assert result.partition.core_of(result.failed_task) == -1

    @given(mc_tasksets(levels=2, max_tasks=6))
    @settings(deadline=None, max_examples=30)
    def test_catpa_succeeds_with_one_core_per_fitting_task(self, ts):
        from repro.analysis import is_feasible_core
        from repro.partition import CATPA

        # If every task fits alone on a core and there are at least as
        # many cores as tasks, some feasible core always exists at every
        # greedy step, so CA-TPA cannot fail.
        each_fits = all(
            is_feasible_core(ts.level_matrix([i])) for i in range(len(ts))
        )
        if each_fits:
            assert CATPA().partition(ts, cores=len(ts)).schedulable


# ----------------------------------------------------------------------
# Generator postconditions
# ----------------------------------------------------------------------


class TestGeneratorProperties:
    @given(
        st.integers(min_value=1, max_value=40),
        st.floats(min_value=0.1, max_value=8.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_uunifast_partition_of_total(self, n, total, seed):
        from repro.gen import uunifast

        rng = np.random.default_rng(seed)
        utils = uunifast(n, total, rng)
        assert utils.shape == (n,)
        assert (utils >= -1e-12).all()
        assert utils.sum() == abs_approx(total)

    @given(
        st.integers(min_value=2, max_value=6),
        st.floats(min_value=0.3, max_value=0.7),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(deadline=None, max_examples=25)
    def test_generator_respects_config(self, levels, ifc, seed):
        from repro.gen import WorkloadConfig, generate_taskset

        config = WorkloadConfig(levels=levels, ifc=ifc, task_count_range=(5, 15))
        ts = generate_taskset(config, np.random.default_rng(seed))
        assert 5 <= len(ts) <= 15
        assert ts.levels == levels
        for t in ts:
            for k in range(2, t.criticality + 1):
                assert t.wcet(k) == abs_approx(t.wcet(k - 1) * (1 + ifc))


def abs_approx(value, tol=1e-9):
    import pytest

    return pytest.approx(value, abs=tol, rel=1e-9)


# ----------------------------------------------------------------------
# Extension-module invariants
# ----------------------------------------------------------------------


class TestDbfProperties:
    @given(
        st.floats(min_value=0.0, max_value=500.0),
        st.floats(min_value=1.0, max_value=100.0),
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=0.01, max_value=50.0),
    )
    def test_dbf_step_monotone_and_consistent(self, t, period, deadline, wcet):
        from repro.analysis import dbf_step

        value = dbf_step(t, period, deadline, wcet)
        later = dbf_step(t + period, period, deadline, wcet)
        assert value >= 0.0
        assert later >= value  # monotone in t
        # One extra full period adds one job — up to float rounding at
        # exact step boundaries (floor((t+p-d)/p) vs floor((t-d)/p)+1
        # can disagree by one ulp-job when t-d is a multiple of p).
        if t >= deadline:
            assert abs(later - (value + wcet)) <= wcet + 1e-9

    @given(mc_tasksets(levels=2, min_tasks=1, max_tasks=5))
    @settings(deadline=None, max_examples=30)
    def test_tuned_plans_respect_budget_floor(self, ts):
        from repro.analysis import tune_virtual_deadlines

        plan = tune_virtual_deadlines(ts)
        if plan is None:
            return
        for i, task in enumerate(ts):
            assert task.wcet(1) - 1e-9 <= plan.deadlines[i] <= task.period + 1e-9
            if task.criticality == 1:
                assert plan.deadlines[i] == task.period


class TestGlobalProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=0, max_size=10),
        st.integers(min_value=1, max_value=8),
    )
    def test_gfb_monotone_in_processors(self, densities, m):
        from repro.analysis import gfb_edf_schedulable

        if gfb_edf_schedulable(densities, m):
            assert gfb_edf_schedulable(densities, m + 1)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=0.9), min_size=1, max_size=8),
        st.integers(min_value=1, max_value=4),
        st.floats(min_value=0.0, max_value=0.5),
    )
    def test_gfb_antitone_in_load(self, densities, m, bump):
        from repro.analysis import gfb_edf_schedulable

        heavier = [min(d + bump, 1.0) for d in densities]
        if not gfb_edf_schedulable(densities, m):
            assert not gfb_edf_schedulable(heavier, m) or bump == 0.0


class TestElasticProperties:
    @given(
        st.floats(min_value=0.01, max_value=0.9),
        st.floats(min_value=1.0, max_value=5.0),
        st.floats(min_value=1.0, max_value=10.0),
    )
    def test_stretch_divides_utilization(self, u, max_stretch, factor):
        from repro.elastic import ElasticMCTask
        from repro.model import MCTask

        e = ElasticMCTask(
            task=MCTask.from_utilizations([u], 10.0),
            max_period=10.0 * max_stretch,
        )
        applied = min(factor, max_stretch)
        stretched = e.stretched(factor)
        assert stretched.utilization(1) == abs_approx(u / applied)
        assert e.service_level(factor) == abs_approx(1.0 / applied)


class TestSerializationProperties:
    @given(mc_tasksets(levels=3))
    @settings(deadline=None, max_examples=30)
    def test_taskset_json_round_trip(self, ts):
        from repro.model import taskset_from_dict, taskset_to_dict

        assert taskset_from_dict(taskset_to_dict(ts)) == ts
