"""The pluggable probe-backend layer: registry, protocol, Δ-state.

Pins the tentpole guarantees of the backend refactor:

* the registry resolves by name and rejects unknown names with a clean
  :class:`~repro.types.ReproError` (never a bare ``KeyError``);
* the incremental backend is bit-identical to batch across arbitrary
  ``assign``/``unassign``/``extended`` interleavings — its warm per-core
  state must be indistinguishable from a from-scratch rebuild;
* invalidation: ``unassign`` bumps the mutated core's version, so a
  warm cache can never serve the pre-unassign column (the PR-6
  warm-prefix regression);
* observability: cached columns count as cache hits, only fresh kernel
  work counts as ``probe.cores_probed``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.model import MCTask, MCTaskSet, Partition
from repro.obs import runtime as obs
from repro.partition.backend import (
    BatchBackend,
    IncrementalBackend,
    ProbeBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.partition.probe import (
    batch_probe,
    batch_probe_feasible,
    batch_probe_feasible_tasks,
    batch_probe_tasks,
    first_feasible_core,
    first_finite_probe,
    use_probe_implementation,
)
from repro.types import EPS, ModelError, ReproError, fits_unit_capacity
from tests.conftest import make_task, random_taskset

BATCH = BatchBackend()
INCREMENTAL = IncrementalBackend()


def fresh_rebuild(partition: Partition) -> Partition:
    """A from-scratch partition with the same assignment (cold caches)."""
    return Partition.from_assignment(
        partition.taskset, partition.cores, partition.assignment
    )


def assert_backend_parity(part: Partition, idx: list[int]) -> None:
    """Incremental answers (warm state) == batch answers on a rebuild."""
    cold = fresh_rebuild(part)
    for i in idx:
        np.testing.assert_array_equal(
            INCREMENTAL.probe(part, i), BATCH.probe(cold, i)
        )
        np.testing.assert_array_equal(
            INCREMENTAL.probe_feasible(part, i),
            BATCH.probe_feasible(cold, i),
        )
    if idx:
        np.testing.assert_array_equal(
            INCREMENTAL.probe_tasks(part, idx),
            BATCH.probe_tasks(cold, idx),
        )
        np.testing.assert_array_equal(
            INCREMENTAL.probe_feasible_tasks(part, idx),
            BATCH.probe_feasible_tasks(cold, idx),
        )


class TestRegistry:
    def test_all_three_backends_registered(self):
        assert available_backends() == ("batch", "incremental", "scalar")

    def test_get_backend_returns_named_instance(self):
        for name in available_backends():
            assert get_backend(name).name == name

    def test_unknown_name_is_a_repro_error(self):
        with pytest.raises(ReproError, match="unknown probe implementation"):
            get_backend("simd")

    def test_unknown_name_is_not_a_key_error(self):
        try:
            get_backend("simd")
        except KeyError:  # pragma: no cover - the bug this test pins
            pytest.fail("get_backend leaked a KeyError")
        except ReproError as exc:
            assert "available" in str(exc)

    def test_use_probe_implementation_validates_eagerly(self):
        with pytest.raises(ModelError):
            with use_probe_implementation("simd"):
                pass

    def test_register_requires_a_name(self):
        class Anonymous(ProbeBackend):
            def probe(self, partition, task_index, rule="max"):
                raise NotImplementedError

            def probe_feasible(self, partition, task_index):
                raise NotImplementedError

            def probe_tasks(self, partition, task_indices, rule="max"):
                raise NotImplementedError

            def probe_feasible_tasks(self, partition, task_indices):
                raise NotImplementedError

        with pytest.raises(ModelError, match="name"):
            register_backend(Anonymous())


class TestIncrementalEquivalence:
    """Warm incremental state == cold batch rebuild, under any mutation."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_assign_unassign_interleaving(self, seed):
        rng = np.random.default_rng(seed)
        ts = random_taskset(rng, n=14, levels=3, max_u=0.4)
        part = Partition(ts, cores=4)
        unplaced = list(range(len(ts)))
        for _ in range(60):
            action = rng.random()
            assigned = [i for i in range(len(ts)) if part.core_of(i) >= 0]
            if action < 0.6 and unplaced:
                i = unplaced.pop(int(rng.integers(len(unplaced))))
                part.assign(i, int(rng.integers(4)))
            elif assigned:
                i = assigned[int(rng.integers(len(assigned)))]
                part.unassign(i)
                unplaced.append(i)
            probe_idx = (unplaced + assigned)[:5]
            assert_backend_parity(part, probe_idx)

    @pytest.mark.parametrize("rule", ["max", "min"])
    def test_rules_are_cached_independently(self, rng, rule):
        ts = random_taskset(rng, n=10, levels=2, max_u=0.5)
        part = Partition(ts, cores=3)
        # Warm both rule caches, mutate, re-probe: each rule must see
        # the mutation (a shared cache row would leak the other rule's
        # values or the stale ones).
        INCREMENTAL.probe(part, 0, rule="max")
        INCREMENTAL.probe(part, 0, rule="min")
        part.assign(1, 0)
        got = INCREMENTAL.probe(part, 0, rule=rule)
        want = BATCH.probe(fresh_rebuild(part), 0, rule=rule)
        np.testing.assert_array_equal(got, want)

    def test_repeated_probe_is_stable(self, rng):
        ts = random_taskset(rng, n=8)
        part = Partition(ts, cores=3)
        part.assign(0, 1)
        first = INCREMENTAL.probe(part, 2)
        second = INCREMENTAL.probe(part, 2)
        np.testing.assert_array_equal(first, second)
        # Returned rows are copies: the caller cannot poison the cache.
        first[:] = -1.0
        np.testing.assert_array_equal(INCREMENTAL.probe(part, 2), second)

    def test_duplicate_task_indices_in_micro_batch(self, rng):
        ts = random_taskset(rng, n=8)
        part = Partition(ts, cores=3)
        part.assign(0, 0)
        got = INCREMENTAL.probe_tasks(part, [2, 2, 3])
        want = BATCH.probe_tasks(fresh_rebuild(part), [2, 2, 3])
        np.testing.assert_array_equal(got, want)

    def test_preference_order_scans_match_all_backends(self, rng):
        for _ in range(10):
            ts = random_taskset(rng, n=10, levels=3, max_u=0.6)
            parts = {}
            for name in available_backends():
                p = Partition(ts, cores=4)
                p.assign(0, 2)
                parts[name] = p
            order = list(np.argsort(rng.random(4)))
            answers = set()
            probes = set()
            for name, p in parts.items():
                with use_probe_implementation(name):
                    answers.add(first_feasible_core(p, 1, order))
                    probes.add(first_finite_probe(p, 1, order))
            assert len(answers) == 1
            assert len(probes) == 1


class TestInvalidation:
    """The satellite-2 regression: unassign must invalidate warm state."""

    def test_unassign_then_probe_same_core(self, rng):
        ts = random_taskset(rng, n=10, levels=3, max_u=0.4)
        part = Partition(ts, cores=3)
        for i in range(6):
            part.assign(i, i % 3)
        warm = INCREMENTAL.probe(part, 7)  # warm every column
        part.unassign(3)  # core 0 shrinks
        got = INCREMENTAL.probe(part, 7)
        want = BATCH.probe(fresh_rebuild(part), 7)
        np.testing.assert_array_equal(got, want)
        assert not np.array_equal(got, warm) or np.array_equal(
            want, warm
        )  # if values moved, the cache must have moved with them

    def test_unassign_then_candidate_stacks_on_warm_prefix(self, rng):
        """unassign + probes on an ``extended`` (warm-prefix) partition.

        The PR-6 warm-prefix path carries level matrices and version
        counters verbatim; a missed version bump in ``unassign`` would
        let the carried cache answer with the pre-unassign column.
        """
        ts = random_taskset(rng, n=8, levels=2, max_u=0.4)
        part = Partition(ts, cores=3)
        for i in range(8):
            part.assign(i, i % 3)
        INCREMENTAL.probe_tasks(part, list(range(8)))  # warm the table
        grown = MCTaskSet(
            list(ts) + [make_task([0.1, 0.2], period=50.0, name="new")],
            levels=2,
        )
        ext = part.extended(grown)
        ext.unassign(0)  # mutate a prefix core under the carried cache
        np.testing.assert_array_equal(
            INCREMENTAL.probe_tasks(ext, list(range(9))),
            BATCH.probe_tasks(fresh_rebuild(ext), list(range(9))),
        )
        np.testing.assert_array_equal(
            ext.candidate_stacks(np.arange(9)),
            fresh_rebuild(ext).candidate_stacks(np.arange(9)),
        )

    def test_snapshot_starts_cold_and_stays_consistent(self, rng):
        ts = random_taskset(rng, n=6)
        part = Partition(ts, cores=2)
        part.assign(0, 0)
        INCREMENTAL.probe(part, 1)
        snap = part.snapshot()
        assert snap.probe_state == {}
        np.testing.assert_array_equal(
            INCREMENTAL.probe(snap, 1), BATCH.probe(fresh_rebuild(part), 1)
        )

    def test_extended_drops_rows_of_appended_indices(self, rng):
        """Index ``n`` in the grown set is a *different* task."""
        ts = random_taskset(rng, n=4, levels=2, max_u=0.3)
        part = Partition(ts, cores=2)
        part.assign(0, 0)
        part.assign(1, 1)
        # Warm a row for every index, including 2 and 3 (unassigned).
        INCREMENTAL.probe_tasks(part, [0, 1, 2, 3])
        heavy = make_task([0.6, 0.9], period=10.0, name="heavy")
        grown = MCTaskSet(list(ts)[:4] + [heavy], levels=2)
        ext = part.extended(grown)
        got = INCREMENTAL.probe(ext, 4)
        want = BATCH.probe(fresh_rebuild(ext), 4)
        np.testing.assert_array_equal(got, want)


class TestObservability:
    def test_cache_hits_and_fresh_work_are_separated(self, rng):
        ts = random_taskset(rng, n=8)
        part = Partition(ts, cores=4)
        with obs.collect() as registry:
            INCREMENTAL.probe(part, 0)  # 4 fresh columns
            INCREMENTAL.probe(part, 0)  # 4 cached columns
            part.assign(1, 2)
            INCREMENTAL.probe(part, 0)  # 1 fresh, 3 cached
            counters = registry.snapshot()["counters"]
        assert counters["probe.calls.incremental"] == 3
        assert counters["probe.cores_probed"] == 5
        assert counters["probe.cache_hits.incremental"] == 7

    def test_micro_batch_counts_rows_as_calls(self, rng):
        ts = random_taskset(rng, n=8)
        part = Partition(ts, cores=2)
        with obs.collect() as registry:
            INCREMENTAL.probe_tasks(part, [0, 1, 2])
            counters = registry.snapshot()["counters"]
        assert counters["probe.calls.incremental"] == 3
        assert counters["probe.cores_probed"] == 6

    def test_plain_probe_functions_route_through_contextvar(self, rng):
        ts = random_taskset(rng, n=6)
        part = Partition(ts, cores=2)
        with use_probe_implementation("incremental"):
            with obs.collect() as registry:
                batch_probe(part, 0)
                batch_probe_feasible(part, 0)
                batch_probe_tasks(part, [1, 2])
                batch_probe_feasible_tasks(part, [1, 2])
                counters = registry.snapshot()["counters"]
        assert counters["probe.calls.incremental"] == 6


class TestEpsBoundary:
    """fits_unit_capacity boundary: probes at exactly 1.0 +/- eps."""

    def _single_core_probe(self, util: float) -> np.ndarray:
        ts = MCTaskSet(
            [make_task([util], period=10.0, name="a")], levels=1
        )
        part = Partition(ts, cores=1)
        return INCREMENTAL.probe_feasible(part, 0)

    def test_exactly_unit_capacity_is_feasible(self):
        assert fits_unit_capacity(1.0)
        assert self._single_core_probe(1.0).all()

    def test_within_eps_above_unit_is_feasible(self):
        assert fits_unit_capacity(1.0 + EPS / 2)
        assert self._single_core_probe(1.0 + EPS / 2).all()

    def test_clearly_above_unit_is_infeasible(self):
        assert not fits_unit_capacity(1.0 + 1e-6)
        assert not self._single_core_probe(1.0 + 1e-6).any()

    def test_boundary_agrees_across_backends(self):
        for util in (1.0 - EPS, 1.0, 1.0 + EPS / 2, 1.0 + 4 * EPS, 1.01):
            ts = MCTaskSet(
                [make_task([util], period=10.0, name="a")], levels=1
            )
            answers = set()
            for name in available_backends():
                part = Partition(ts, cores=2)
                with use_probe_implementation(name):
                    answers.add(batch_probe_feasible(part, 0).tobytes())
            assert len(answers) == 1
