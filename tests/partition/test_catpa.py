"""Tests for the CA-TPA heuristic."""

import numpy as np
import pytest

from repro.analysis import (
    core_utilization,
    is_feasible_partition,
    utilization_contributions,
)
from repro.model import MCTask, MCTaskSet
from repro.partition import CATPA, FirstFitDecreasing, get_partitioner
from repro.types import PartitionError


def mc(lo_u, hi_u=None, period=10.0, name=""):
    utils = [lo_u] if hi_u is None else [lo_u, hi_u]
    return MCTask.from_utilizations(utils, period, name=name)


class TestOrdering:
    def test_orders_by_contribution_not_max_utilization(self):
        # HI task with modest max utilization but dominant share of U(2).
        ts = MCTaskSet(
            [
                mc(0.50),            # max-u order would put this first
                mc(0.05, 0.30),      # sole HI task: contribution 1.0 at level 2
                mc(0.20),
            ],
            levels=2,
        )
        contrib = utilization_contributions(ts)
        assert contrib[1] == pytest.approx(1.0)
        assert CATPA().order_tasks(ts) == [1, 0, 2]


class TestSelection:
    def test_min_increment_balances_two_hi_tasks(self):
        # Two identical HI-heavy tasks: the second must go to the empty
        # core, because joining the first core would raise that core's
        # utilization by more than seeding the empty one.
        ts = MCTaskSet([mc(0.2, 0.5), mc(0.2, 0.5)], levels=2)
        res = CATPA().partition(ts, cores=2)
        assert res.schedulable
        assert res.partition.core_of(0) == 0
        assert res.partition.core_of(1) == 1

    def test_mixing_criticalities_reduces_increment(self):
        # A LO task can hide under a HI task's slack: U^{Psi} of a core
        # with one HI task is min(U_2(2), U_2(1)/(1-U_2(2))); adding a LO
        # task to the *other* core would cost its full utilization there,
        # while here the min-term may keep the increase smaller.
        hi = mc(0.10, 0.60, name="hi")
        lo = mc(0.25, name="lo")
        ts = MCTaskSet([hi, lo], levels=2)
        res = CATPA(alpha=None).partition(ts, cores=2)
        assert res.schedulable
        # Core 0 with hi: U = min(0.6, 0.1/0.4) = 0.25.
        # Probe lo on core 0: U = 0.25 + min(0.6, 0.25) = 0.5 -> delta 0.25
        # Probe lo on core 1: U = 0.25 -> delta 0.25; tie -> core 0.
        assert res.partition.core_of(1) == 0

    def test_tie_breaks_to_lower_core_index(self):
        ts = MCTaskSet([mc(0.3), mc(0.3)], levels=1)
        res = CATPA(alpha=None).partition(ts, cores=3)
        # Both tasks see identical increments on all empty cores; second
        # task's increment on core 0 (0.3 -> 0.6) equals 0.3 as well.
        assert res.partition.core_of(0) == 0
        assert res.partition.core_of(1) == 0

    def test_failure_reported(self):
        ts = MCTaskSet([mc(0.9), mc(0.9), mc(0.9)], levels=1)
        res = CATPA().partition(ts, cores=2)
        assert not res.schedulable
        assert res.failed_task is not None


class TestImbalanceOverride:
    def test_idle_cores_do_not_trigger_override(self):
        # Eq.-(16) regression: idle cores used to pin Lambda at exactly 1,
        # so any alpha < 1 made the min-utilization rule place the first
        # M tasks.  Idle cores are now excluded from the min, so while
        # only one core is loaded the paper's min-increment rule packs —
        # alpha = 0 and alpha = None agree on this instance.
        ts = MCTaskSet([mc(0.3), mc(0.3), mc(0.2)], levels=1)
        tight = CATPA(alpha=0.0).partition(ts, cores=2)
        packed = CATPA(alpha=None).partition(ts, cores=2)
        assert tight.schedulable and packed.schedulable
        np.testing.assert_array_equal(tight.assignment, packed.assignment)
        assert packed.partition.tasks_on(0) == [0, 1, 2]

    def test_override_rebalances_loaded_cores(self):
        # Once two cores are loaded, exceeding alpha routes the next task
        # to the least-utilized core instead of the min-increment pick.
        ts = MCTaskSet([mc(0.7), mc(0.6), mc(0.2)], levels=1)
        # Placement: t0 -> core 0 (tie), t1 -> core 1 (core 0 overflows),
        # then Lambda = (0.7 - 0.6)/0.7 ~ 0.143.
        balanced = CATPA(alpha=0.1).partition(ts, cores=2)
        assert balanced.schedulable
        assert balanced.partition.core_of(2) == 1  # min-utilization core
        greedy = CATPA(alpha=None).partition(ts, cores=2)
        assert greedy.schedulable
        assert greedy.partition.core_of(2) == 0  # min-increment tie -> core 0

    def test_alpha_none_disables_override(self):
        ts = MCTaskSet([mc(0.4), mc(0.3), mc(0.2)], levels=1)
        res = CATPA(alpha=None).partition(ts, cores=4)
        # pure min-increment packs everything onto core 0 (0.9 total)
        assert res.partition.tasks_on(0) == [0, 1, 2]

    def test_negative_alpha_rejected(self):
        with pytest.raises(PartitionError):
            CATPA(alpha=-0.1)

    def test_large_alpha_equivalent_to_disabled(self, rng):
        from tests.conftest import random_taskset

        for _ in range(30):
            ts = random_taskset(rng, n=10, levels=3, max_u=0.2)
            a = CATPA(alpha=10.0).partition(ts, cores=4)
            b = CATPA(alpha=None).partition(ts, cores=4)
            # alpha >= 1 can only differ on the empty-core Lambda == 1
            # edge; with at least one empty core Lambda is exactly 1,
            # never > 10, so these agree.
            assert a.schedulable == b.schedulable
            np.testing.assert_array_equal(a.assignment, b.assignment)


class TestResultMetrics:
    def test_tracked_core_utils_match_recomputed(self, rng):
        from tests.conftest import random_taskset

        checked = 0
        for _ in range(40):
            ts = random_taskset(rng, n=8, levels=3, max_u=0.2)
            res = CATPA().partition(ts, cores=3)
            if not res.schedulable:
                continue
            checked += 1
            expected = np.array(
                [core_utilization(res.partition.level_matrix(m)) for m in range(3)]
            )
            np.testing.assert_allclose(res.core_utilizations(), expected, atol=1e-9)
        assert checked > 5

    def test_schedulable_results_are_feasible(self, rng):
        from tests.conftest import random_taskset

        ok = 0
        for _ in range(60):
            ts = random_taskset(rng, n=10, levels=4, max_u=0.2)
            res = CATPA().partition(ts, cores=4)
            if res.schedulable:
                ok += 1
                assert is_feasible_partition(res.partition)
        assert ok > 5


class TestVsBaselines:
    def test_beats_ffd_on_criticality_skewed_instance(self, rng):
        """There exist instances where FFD fails and CA-TPA succeeds.

        This is the phenomenon of the paper's Tables I-III; we find such
        an instance by seeded random search so the test is deterministic.
        """
        from tests.conftest import random_taskset

        wins = 0
        for _ in range(400):
            ts = random_taskset(rng, n=6, levels=2, max_u=0.45)
            ffd = FirstFitDecreasing().partition(ts, cores=2)
            ca = CATPA().partition(ts, cores=2)
            if ca.schedulable and not ffd.schedulable:
                wins += 1
        assert wins > 0

    def test_registry_round_trip(self):
        p = get_partitioner("ca-tpa", alpha=0.3)
        assert isinstance(p, CATPA)
        assert p.alpha == 0.3


class TestEq9Rule:
    def test_invalid_rule_rejected(self):
        with pytest.raises(PartitionError):
            CATPA(eq9_rule="median")

    def test_rules_identical_for_dual_criticality(self, rng):
        # K=2 has a single Theorem-1 condition, so min == max.
        from tests.conftest import random_taskset

        for _ in range(30):
            ts = random_taskset(rng, n=8, levels=2, max_u=0.3)
            a = CATPA(eq9_rule="max").partition(ts, cores=3)
            b = CATPA(eq9_rule="min").partition(ts, cores=3)
            assert a.schedulable == b.schedulable
            np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_min_rule_results_still_feasible(self, rng):
        from tests.conftest import random_taskset

        ok = 0
        for _ in range(40):
            ts = random_taskset(rng, n=8, levels=4, max_u=0.2)
            res = CATPA(eq9_rule="min").partition(ts, cores=3)
            if res.schedulable:
                ok += 1
                assert is_feasible_partition(res.partition)
        assert ok > 5
