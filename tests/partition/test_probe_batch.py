"""Equivalence of the batch probe path with the scalar probe path.

The batch engine is the default for every partitioner; these tests pin
the guarantee that switching to the scalar path changes *nothing* about
probe values or placement decisions — which is also what keeps the
benchmark reference numbers valid across the two implementations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.model import Partition
from repro.partition import (
    CATPA,
    CATPAVariant,
    BestFitDecreasing,
    FirstFitDecreasing,
    HybridPartitioner,
    WorstFitDecreasing,
)
from repro.partition.probe import (
    batch_candidate_matrices,
    batch_probe,
    batch_probe_feasible,
    batch_probe_feasible_tasks,
    batch_probe_tasks,
    candidate_level_matrix,
    probe_core_utilization,
    probe_feasible,
    probe_implementation,
    use_probe_implementation,
)
from repro.types import ModelError
from tests.conftest import random_taskset


def random_partial_partition(rng, ts, cores):
    """Assign a random subset of tasks to random cores."""
    part = Partition(ts, cores)
    for i in range(len(ts)):
        core = int(rng.integers(-1, cores))
        if core >= 0:
            part.assign(i, core)
    return part


class TestBatchProbe:
    def test_candidate_stack_matches_per_core(self, rng):
        for _ in range(20):
            ts = random_taskset(rng, n=10, levels=4, max_u=0.4)
            part = random_partial_partition(rng, ts, cores=4)
            task = int(rng.integers(0, len(ts)))
            stack = batch_candidate_matrices(part, task)
            for m in range(4):
                np.testing.assert_array_equal(
                    stack[m], candidate_level_matrix(part, m, task)
                )

    @pytest.mark.parametrize("rule", ["max", "min"])
    def test_batch_probe_matches_scalar(self, rng, rule):
        for _ in range(20):
            ts = random_taskset(rng, n=12, levels=3, max_u=0.5)
            part = random_partial_partition(rng, ts, cores=5)
            task = int(rng.integers(0, len(ts)))
            batch = batch_probe(part, task, rule=rule)
            scalar = np.array(
                [
                    probe_core_utilization(part, m, task, rule=rule)
                    for m in range(5)
                ]
            )
            np.testing.assert_array_equal(batch, scalar)

    def test_batch_feasible_matches_scalar(self, rng):
        for _ in range(20):
            ts = random_taskset(rng, n=12, levels=2, max_u=0.6)
            part = random_partial_partition(rng, ts, cores=3)
            task = int(rng.integers(0, len(ts)))
            batch = batch_probe_feasible(part, task)
            scalar = np.array(
                [probe_feasible(part, m, task) for m in range(3)]
            )
            np.testing.assert_array_equal(batch, scalar)


SCHEMES = [
    CATPA(),
    CATPA(alpha=0.1),
    CATPA(alpha=None),
    CATPA(eq9_rule="min"),
    CATPAVariant(order="max-utilization", selection="worst-fit"),
    CATPAVariant(selection="best-fit", alpha=0.2),
    CATPAVariant(selection="first-fit", alpha=None),
    FirstFitDecreasing(),
    BestFitDecreasing(),
    WorstFitDecreasing(),
    HybridPartitioner(),
]


class TestPartitionerEquivalence:
    @pytest.mark.parametrize(
        "scheme", SCHEMES, ids=lambda s: s.name
    )
    def test_scalar_and_batch_paths_place_identically(self, rng, scheme):
        for _ in range(15):
            ts = random_taskset(rng, n=14, levels=3, max_u=0.35)
            with use_probe_implementation("batch"):
                a = scheme.partition(ts, cores=4)
            with use_probe_implementation("scalar"):
                b = scheme.partition(ts, cores=4)
            assert a.schedulable == b.schedulable
            assert a.failed_task == b.failed_task
            np.testing.assert_array_equal(a.assignment, b.assignment)


class TestImplementationToggle:
    def test_default_is_batch(self):
        assert probe_implementation() == "batch"

    def test_toggle_restores_on_exit(self):
        with use_probe_implementation("scalar"):
            assert probe_implementation() == "scalar"
            with use_probe_implementation("batch"):
                assert probe_implementation() == "batch"
            assert probe_implementation() == "scalar"
        assert probe_implementation() == "batch"

    def test_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with use_probe_implementation("scalar"):
                raise RuntimeError("boom")
        assert probe_implementation() == "batch"

    def test_unknown_implementation_rejected(self):
        with pytest.raises(ModelError):
            with use_probe_implementation("simd"):
                pass


class TestMicroBatchProbes:
    """The (T, M) micro-batch primitives equal T single-task probes."""

    @pytest.mark.parametrize("seed", [0, 7])
    @pytest.mark.parametrize("rule", ["max", "min"])
    def test_batch_probe_tasks_bit_identical(self, seed, rule):
        rng = np.random.default_rng(seed)
        ts = random_taskset(rng, n=14)
        part = random_partial_partition(rng, ts, cores=4)
        idx = [i for i in range(len(ts)) if part.core_of(i) < 0][:5]
        got = batch_probe_tasks(part, idx, rule=rule)
        want = np.stack([batch_probe(part, i, rule=rule) for i in idx])
        assert np.array_equal(got, want)  # bit-identical, same kernel

    @pytest.mark.parametrize("seed", [0, 7])
    def test_batch_probe_feasible_tasks_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        ts = random_taskset(rng, n=14)
        part = random_partial_partition(rng, ts, cores=4)
        idx = [i for i in range(len(ts)) if part.core_of(i) < 0][:5]
        got = batch_probe_feasible_tasks(part, idx)
        want = np.stack([batch_probe_feasible(part, i) for i in idx])
        assert np.array_equal(got, want)

    def test_scalar_path_matches_batch_path(self):
        rng = np.random.default_rng(3)
        ts = random_taskset(rng, n=12)
        part = random_partial_partition(rng, ts, cores=3)
        idx = list(range(len(ts)))
        batch_utils = batch_probe_tasks(part, idx)
        batch_feas = batch_probe_feasible_tasks(part, idx)
        with use_probe_implementation("scalar"):
            scalar_utils = batch_probe_tasks(part, idx)
            scalar_feas = batch_probe_feasible_tasks(part, idx)
        np.testing.assert_allclose(scalar_utils, batch_utils, rtol=0, atol=1e-12)
        assert np.array_equal(scalar_feas, batch_feas)

    def test_empty_batch(self):
        rng = np.random.default_rng(1)
        ts = random_taskset(rng, n=6)
        part = random_partial_partition(rng, ts, cores=2)
        assert batch_probe_tasks(part, []).shape == (0, 2)
        assert batch_probe_feasible_tasks(part, []).shape == (0, 2)

    def test_bad_rule_rejected(self):
        rng = np.random.default_rng(1)
        ts = random_taskset(rng, n=6)
        part = random_partial_partition(rng, ts, cores=2)
        with pytest.raises(ModelError, match="rule"):
            batch_probe_tasks(part, [0], rule="median")
