"""Tests for FFD/BFD/WFD heuristics."""

import pytest

from repro.analysis import is_feasible_partition
from repro.model import MCTask, MCTaskSet
from repro.partition import (
    BestFitDecreasing,
    FirstFitDecreasing,
    WorstFitDecreasing,
)


def lo(u, period=10.0, name=""):
    return MCTask.from_utilizations([u], period, name=name)


class TestOrdering:
    def test_decreasing_max_utilization(self):
        ts = MCTaskSet(
            [lo(0.2), MCTask.from_utilizations([0.1, 0.5], 10.0), lo(0.3)],
            levels=2,
        )
        assert FirstFitDecreasing().order_tasks(ts) == [1, 2, 0]

    def test_tie_prefers_higher_criticality(self):
        ts = MCTaskSet(
            [lo(0.25), MCTask.from_utilizations([0.125, 0.25], 10.0)],
            levels=2,
        )
        assert FirstFitDecreasing().order_tasks(ts) == [1, 0]


class TestFFD:
    def test_packs_first_core_first(self):
        ts = MCTaskSet([lo(0.4), lo(0.3), lo(0.2)], levels=1)
        res = FirstFitDecreasing().partition(ts, cores=2)
        assert res.schedulable
        # 0.4 + 0.3 + 0.2 = 0.9 all fit on core 0
        assert res.partition.tasks_on(0) == [0, 1, 2]
        assert res.partition.tasks_on(1) == []

    def test_overflows_to_next_core(self):
        ts = MCTaskSet([lo(0.7), lo(0.6), lo(0.3)], levels=1)
        res = FirstFitDecreasing().partition(ts, cores=2)
        assert res.schedulable
        assert res.partition.tasks_on(0) == [0, 2]  # 0.7 then 0.3
        assert res.partition.tasks_on(1) == [1]

    def test_failure_reports_task(self):
        ts = MCTaskSet([lo(0.9), lo(0.8), lo(0.5)], levels=1)
        res = FirstFitDecreasing().partition(ts, cores=2)
        assert not res.schedulable
        assert res.failed_task == 2  # 0.9 and 0.8 fill both cores
        # the partial partition is still exposed
        assert res.partition.core_of(0) == 0
        assert res.partition.core_of(2) == -1


class TestBFDvsWFD:
    def test_bfd_packs_wfd_spreads(self):
        # BFD keeps stacking the fullest feasible core: 0.5 and 0.4 both
        # land on core 0, and 0.3 overflows to core 1.  WFD alternates.
        ts = MCTaskSet([lo(0.5), lo(0.4), lo(0.3)], levels=1)
        bfd = BestFitDecreasing().partition(ts, cores=2)
        wfd = WorstFitDecreasing().partition(ts, cores=2)
        assert bfd.partition.core_subsets() == [[0, 1], [2]]
        assert wfd.partition.core_of(1) == 1
        assert wfd.partition.core_of(2) == 1  # min load 0.4 < 0.5

    def test_wfd_seeds_second_core(self):
        ts = MCTaskSet([lo(0.5), lo(0.4)], levels=1)
        res = WorstFitDecreasing().partition(ts, cores=2)
        assert res.partition.core_of(0) == 0
        assert res.partition.core_of(1) == 1

    def test_bfd_respects_feasibility(self):
        # Fuller core can't take the task -> falls back to the other.
        ts = MCTaskSet([lo(0.8), lo(0.5), lo(0.4)], levels=1)
        res = BestFitDecreasing().partition(ts, cores=2)
        assert res.schedulable
        assert res.partition.core_of(2) == 1  # 0.8 + 0.4 > 1

    def test_wfd_fails_where_ffd_succeeds(self):
        # The classical WFD pathology: spreading leaves no core with
        # enough room for the tail.
        ts = MCTaskSet([lo(0.6), lo(0.6), lo(0.4), lo(0.4)], levels=1)
        assert FirstFitDecreasing().partition(ts, cores=2).schedulable
        wfd = WorstFitDecreasing().partition(ts, cores=2)
        assert wfd.schedulable  # 0.6/0.6 split then 0.4/0.4 -> fits!
        # FFD packs {0.5, 0.5} + {0.34, 0.33, 0.33}; WFD's balanced
        # prefix (0.84 / 0.83) leaves no room for the last 0.33.
        ts2 = MCTaskSet([lo(0.5), lo(0.5), lo(0.34), lo(0.33), lo(0.33)], levels=1)
        ffd2 = FirstFitDecreasing().partition(ts2, cores=2)
        wfd2 = WorstFitDecreasing().partition(ts2, cores=2)
        assert ffd2.schedulable
        assert not wfd2.schedulable


class TestInvariants:
    @pytest.mark.parametrize(
        "scheme", [FirstFitDecreasing, BestFitDecreasing, WorstFitDecreasing]
    )
    def test_schedulable_results_are_feasible(self, scheme, rng):
        from tests.conftest import random_taskset

        ok = 0
        for _ in range(60):
            ts = random_taskset(rng, n=10, levels=3, max_u=0.25)
            res = scheme().partition(ts, cores=4)
            if res.schedulable:
                ok += 1
                assert res.partition.is_complete
                assert is_feasible_partition(res.partition)
                assert res.failed_task is None
            else:
                assert res.failed_task is not None
                assert not res.partition.is_complete
        assert ok > 5

    def test_order_is_exposed(self):
        ts = MCTaskSet([lo(0.2), lo(0.4)], levels=1)
        res = FirstFitDecreasing().partition(ts, cores=1)
        assert res.order == (1, 0)
