"""Tests for the partitioned fixed-priority schemes."""

import numpy as np
import pytest

from repro.gen import WorkloadConfig, generate_taskset
from repro.model import MCTask, MCTaskSet
from repro.partition import FPPartitioner, get_partitioner
from repro.types import ModelError, PartitionError


def dual(rows):
    return MCTaskSet([MCTask(wcets=w, period=p) for w, p in rows], levels=2)


class TestConstruction:
    def test_registered_variants(self):
        assert get_partitioner("fp-ff").name == "fp-ff"
        assert get_partitioner("fp-wf").name == "fp-wf"
        assert get_partitioner("fp-ff-ca").name == "fp-ff-ca"

    def test_invalid_options(self):
        with pytest.raises(PartitionError):
            FPPartitioner(order="nope")
        with pytest.raises(PartitionError):
            FPPartitioner(fit="nope")

    def test_k3_rejected(self):
        ts = MCTaskSet([MCTask(wcets=(1.0, 2.0, 3.0), period=10.0)], levels=3)
        with pytest.raises(ModelError):
            FPPartitioner().partition(ts, cores=1)


class TestOrdering:
    def test_utilization_order(self):
        ts = dual([((1.0,), 10.0), ((4.0,), 10.0), ((1.0, 3.0), 10.0)])
        assert FPPartitioner(order="utilization").order_tasks(ts) == [1, 2, 0]

    def test_criticality_order(self):
        ts = dual([((4.0,), 10.0), ((1.0, 3.0), 10.0)])
        assert FPPartitioner(order="criticality").order_tasks(ts) == [1, 0]


class TestAllocation:
    def test_simple_partition(self):
        ts = dual(
            [
                ((3.0,), 10.0),
                ((2.0, 5.0), 20.0),
                ((4.0,), 25.0),
                ((2.0, 4.0), 40.0),
            ]
        )
        res = FPPartitioner().partition(ts, cores=2)
        assert res.schedulable

    def test_worst_fit_spreads(self):
        ts = dual([((4.0,), 10.0), ((4.0,), 10.0)])
        res = FPPartitioner(fit="worst").partition(ts, cores=2)
        assert res.partition.core_of(0) != res.partition.core_of(1)

    def test_first_fit_packs(self):
        ts = dual([((3.0,), 10.0), ((3.0,), 10.0)])
        res = FPPartitioner(fit="first").partition(ts, cores=2)
        assert res.partition.tasks_on(0) == [0, 1]

    def test_core_assignments_cover_partition(self):
        ts = dual(
            [((3.0,), 10.0), ((2.0, 5.0), 20.0), ((4.0,), 25.0)]
        )
        scheme = FPPartitioner()
        res = scheme.partition(ts, cores=2)
        assert res.schedulable
        assignments = scheme.core_assignments(res.partition)
        for m in range(2):
            idx = res.partition.tasks_on(m)
            if idx:
                assert assignments[m] is not None
                assert sorted(assignments[m].priorities) == list(
                    range(len(idx))
                )
            else:
                assert assignments[m] is None


class TestVsEDFVD:
    def test_edfvd_and_fp_are_incomparable_but_close(self, rng):
        """Eq. (7) (utilization-based, dynamic priorities) and AMC-rtb
        (response-time-based, static priorities) are *incomparable*
        sufficient tests: on these workloads AMC-rtb+Audsley actually
        edges out the Eq.-(7) FFD slightly.  Pin the qualitative fact
        that both accept a comparable, non-trivial share."""
        cfg = WorkloadConfig(cores=2, levels=2, nsu=0.75, task_count_range=(8, 12))
        edf = get_partitioner("ffd")
        fp = get_partitioner("fp-ff")
        edf_ok = fp_ok = 0
        for i in range(50):
            r = np.random.default_rng(np.random.SeedSequence(31, spawn_key=(i,)))
            ts = generate_taskset(cfg, r)
            edf_ok += edf.partition(ts, 2).schedulable
            fp_ok += fp.partition(ts, 2).schedulable
        assert edf_ok > 25 and fp_ok > 25
        assert abs(edf_ok - fp_ok) <= 10

    def test_end_to_end_fp_partition_simulates_clean(self):
        from repro.sched import LevelScenario
        from repro.sched.fp_sim import fp_core_simulator

        ts = dual(
            [
                ((3.0,), 10.0),
                ((2.0, 5.0), 20.0),
                ((4.0,), 25.0),
                ((2.0, 4.0), 40.0),
            ]
        )
        scheme = FPPartitioner()
        res = scheme.partition(ts, cores=2)
        assert res.schedulable
        assignments = scheme.core_assignments(res.partition)
        for m in range(2):
            idx = res.partition.tasks_on(m)
            if not idx:
                continue
            subset = ts.subset(idx)
            report = fp_core_simulator(
                subset,
                assignments[m],
                LevelScenario(2),
                np.random.default_rng(m),
                1000.0,
            ).run()
            assert report.miss_count == 0
