"""Tests for the CA-TPA ablation variants and the registry."""

import numpy as np
import pytest

from repro.model import MCTask, MCTaskSet
from repro.partition import (
    CATPA,
    CATPAVariant,
    available_schemes,
    get_partitioner,
    register,
)
from repro.partition.ablation import ORDERINGS, SELECTIONS
from repro.types import PartitionError
from tests.conftest import random_taskset


class TestVariantConstruction:
    def test_default_variant_matches_catpa(self, rng):
        for _ in range(30):
            ts = random_taskset(rng, n=8, levels=3, max_u=0.2)
            base = CATPA().partition(ts, cores=3)
            variant = CATPAVariant().partition(ts, cores=3)
            assert base.schedulable == variant.schedulable
            np.testing.assert_array_equal(base.assignment, variant.assignment)

    def test_unknown_ordering_rejected(self):
        with pytest.raises(PartitionError):
            CATPAVariant(order="nope")

    def test_unknown_selection_rejected(self):
        with pytest.raises(PartitionError):
            CATPAVariant(selection="nope")

    def test_random_order_needs_rng(self):
        with pytest.raises(PartitionError):
            CATPAVariant(order="random")

    def test_name_encodes_configuration(self):
        v = CATPAVariant(order="max-utilization", selection="first-fit", alpha=None)
        assert "max-utilization" in v.name
        assert "first-fit" in v.name
        assert "no-imbalance" in v.name

    def test_random_order_is_permutation(self, rng):
        ts = random_taskset(rng, n=10, levels=2)
        v = CATPAVariant(order="random", rng=rng)
        assert sorted(v.order_tasks(ts)) == list(range(10))


class TestVariantBehaviour:
    @pytest.mark.parametrize("selection", SELECTIONS)
    def test_all_selections_produce_feasible_results(self, selection, rng):
        from repro.analysis import is_feasible_partition

        ok = 0
        for _ in range(40):
            ts = random_taskset(rng, n=8, levels=3, max_u=0.2)
            res = CATPAVariant(selection=selection).partition(ts, cores=3)
            if res.schedulable:
                ok += 1
                assert is_feasible_partition(res.partition)
        assert ok > 5

    @pytest.mark.parametrize("order", sorted(ORDERINGS))
    def test_all_orderings_produce_permutations(self, order, rng):
        ts = random_taskset(rng, n=10, levels=3)
        v = CATPAVariant(order=order)
        assert sorted(v.order_tasks(ts)) == list(range(10))

    def test_first_fit_selection_packs_low_cores(self):
        ts = MCTaskSet(
            [MCTask.from_utilizations([0.2], 10.0) for _ in range(3)], levels=1
        )
        res = CATPAVariant(selection="first-fit", alpha=None).partition(ts, cores=2)
        assert res.partition.tasks_on(0) == [0, 1, 2]

    def test_worst_fit_selection_spreads(self):
        ts = MCTaskSet(
            [MCTask.from_utilizations([0.2], 10.0) for _ in range(2)], levels=1
        )
        res = CATPAVariant(selection="worst-fit", alpha=None).partition(ts, cores=2)
        assert res.partition.core_of(0) != res.partition.core_of(1)


class TestRegistry:
    def test_paper_schemes_resolvable(self):
        for name in ("ca-tpa", "ffd", "bfd", "wfd", "hybrid"):
            assert get_partitioner(name).name == name

    def test_unknown_scheme(self):
        with pytest.raises(PartitionError, match="unknown scheme"):
            get_partitioner("does-not-exist")

    def test_available_schemes_lists_paper_first(self):
        names = available_schemes()
        assert names[:5] == ["ca-tpa", "ffd", "bfd", "wfd", "hybrid"]

    def test_register_and_duplicate_rejected(self):
        class Dummy(CATPA):
            name = "dummy-test-scheme"

        try:
            register("dummy-test-scheme", Dummy)
            assert isinstance(get_partitioner("dummy-test-scheme"), Dummy)
            with pytest.raises(PartitionError, match="already registered"):
                register("dummy-test-scheme", Dummy)
        finally:
            from repro.partition import registry

            registry._REGISTRY.pop("dummy-test-scheme", None)

    def test_top_level_wrapper(self):
        import repro

        ts = MCTaskSet(
            [MCTask.from_utilizations([0.3], 10.0) for _ in range(2)], levels=1
        )
        res = repro.partition_taskset(ts, cores=2, scheme="ffd")
        assert res.schedulable
