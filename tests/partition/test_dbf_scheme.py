"""Tests for the DBF-based partitioned scheme (extension)."""

import numpy as np

from repro.gen import WorkloadConfig, generate_taskset
from repro.model import MCTask, MCTaskSet
from repro.partition import DBFFirstFit, FirstFitDecreasing, get_partitioner


class TestDBFFirstFit:
    def test_registered(self):
        assert isinstance(get_partitioner("dbf-ffd"), DBFFirstFit)

    def test_partitions_a_dual_set(self):
        ts = MCTaskSet(
            [
                MCTask(wcets=(3.0,), period=10.0),
                MCTask(wcets=(2.0, 5.0), period=20.0),
                MCTask(wcets=(4.0,), period=25.0),
            ],
            levels=2,
        )
        res = DBFFirstFit().partition(ts, cores=2)
        assert res.schedulable

    def test_accepts_at_least_as_many_as_thm1_ffd(self, rng):
        cfg = WorkloadConfig(cores=2, levels=2, nsu=0.75, task_count_range=(8, 10))
        dbf = DBFFirstFit()
        ffd = FirstFitDecreasing()
        dbf_ok = ffd_ok = 0
        for i in range(40):
            r = np.random.default_rng(np.random.SeedSequence(21, spawn_key=(i,)))
            ts = generate_taskset(cfg, r)
            dbf_ok += dbf.partition(ts, 2).schedulable
            ffd_ok += ffd.partition(ts, 2).schedulable
        assert dbf_ok >= ffd_ok - 1  # finer test; allow 1 tuning artefact

    def test_falls_back_to_theorem1_for_k3(self):
        ts = MCTaskSet(
            [
                MCTask(wcets=(2.0,), period=10.0),
                MCTask(wcets=(1.0, 2.0, 4.0), period=20.0),
            ],
            levels=3,
        )
        res = DBFFirstFit().partition(ts, cores=1)
        assert res.schedulable

    def test_core_plans_simulatable(self):
        from repro.sched import CoreSimulator, RandomScenario

        ts = MCTaskSet(
            [
                MCTask(wcets=(3.0,), period=10.0),
                MCTask(wcets=(2.0, 6.0), period=20.0),
                MCTask(wcets=(1.0, 3.0), period=25.0),
            ],
            levels=2,
        )
        scheme = DBFFirstFit()
        res = scheme.partition(ts, cores=1)
        assert res.schedulable
        plans = scheme.core_plans(res.partition)
        assert plans[0] is not None
        report = CoreSimulator(
            ts, plans[0], RandomScenario(0.5), np.random.default_rng(1), 2000.0
        ).run()
        assert report.miss_count == 0
