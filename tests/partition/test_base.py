"""Tests for the Partitioner base machinery and PartitionResult."""

import pytest

from repro.model import MCTask, MCTaskSet
from repro.partition import Partitioner, FirstFitDecreasing
from repro.types import PartitionError


class BrokenOrder(FirstFitDecreasing):
    name = "broken-order"

    def order_tasks(self, taskset):
        return [0, 0]  # not a permutation


class TestPartitionerContract:
    def test_zero_cores_rejected(self):
        ts = MCTaskSet([MCTask(wcets=(1.0,), period=10.0)])
        with pytest.raises(PartitionError):
            FirstFitDecreasing().partition(ts, cores=0)

    def test_non_permutation_order_rejected(self):
        ts = MCTaskSet([MCTask(wcets=(1.0,), period=10.0) for _ in range(2)])
        with pytest.raises(PartitionError, match="permutation"):
            BrokenOrder().partition(ts, cores=1)

    def test_abstract_base_cannot_instantiate(self):
        with pytest.raises(TypeError):
            Partitioner()


class TestPartitionResult:
    def test_core_utilizations_recomputed_when_untracked(self):
        ts = MCTaskSet(
            [
                MCTask(wcets=(2.0,), period=10.0),
                MCTask(wcets=(3.0,), period=10.0),
            ],
            levels=1,
        )
        res = FirstFitDecreasing().partition(ts, cores=2)
        utils = res.core_utilizations()
        assert utils.shape == (2,)
        assert utils[0] == pytest.approx(0.5)
        assert utils[1] == pytest.approx(0.0)

    def test_core_utilizations_returns_copy(self):
        from repro.partition import CATPA

        ts = MCTaskSet([MCTask(wcets=(2.0,), period=10.0)], levels=1)
        res = CATPA().partition(ts, cores=1)
        a = res.core_utilizations()
        a[0] = 99.0
        assert res.core_utilizations()[0] != 99.0

    def test_assignment_reflects_partition(self):
        ts = MCTaskSet(
            [MCTask(wcets=(2.0,), period=10.0), MCTask(wcets=(9.0,), period=10.0)],
            levels=1,
        )
        res = FirstFitDecreasing().partition(ts, cores=2)
        assignment = res.assignment
        for i in range(2):
            assert assignment[i] == res.partition.core_of(i)


class TestSingleLevelDegenerate:
    """K = 1 reduces everything to classical partitioned EDF."""

    def test_all_schemes_handle_k1(self):
        from repro.partition import PAPER_SCHEMES, get_partitioner

        ts = MCTaskSet(
            [MCTask(wcets=(3.0,), period=10.0) for _ in range(4)], levels=1
        )
        for name in PAPER_SCHEMES:
            res = get_partitioner(name).partition(ts, cores=2)
            assert res.schedulable, name

    def test_k1_infeasible_when_sum_exceeds_cores(self):
        from repro.partition import get_partitioner

        ts = MCTaskSet(
            [MCTask(wcets=(8.0,), period=10.0) for _ in range(3)], levels=1
        )
        res = get_partitioner("ca-tpa").partition(ts, cores=2)
        assert not res.schedulable
