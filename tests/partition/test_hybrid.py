"""Tests for the Hybrid (WFD-high / FFD-low) scheme."""

import pytest

from repro.analysis import is_feasible_partition
from repro.model import MCTask, MCTaskSet
from repro.partition import HybridPartitioner
from repro.types import PartitionError


def lo(u, period=10.0):
    return MCTask.from_utilizations([u], period)


def hi(u1, u2, period=10.0):
    return MCTask.from_utilizations([u1, u2], period)


class TestOrdering:
    def test_high_group_first(self):
        ts = MCTaskSet([lo(0.9), hi(0.05, 0.1), hi(0.02, 0.3)], levels=2)
        order = HybridPartitioner().order_tasks(ts)
        # HI tasks first, by decreasing u_i(l_i): task2 (0.3) then task1.
        assert order == [2, 1, 0]

    def test_threshold_moves_tasks_between_groups(self):
        three = MCTaskSet(
            [
                MCTask.from_utilizations([0.1], 10.0),
                MCTask.from_utilizations([0.1, 0.2], 10.0),
                MCTask.from_utilizations([0.1, 0.2, 0.4], 10.0),
            ],
            levels=3,
        )
        default = HybridPartitioner(high_threshold=2).order_tasks(three)
        strict = HybridPartitioner(high_threshold=3).order_tasks(three)
        assert default == [2, 1, 0]
        # with threshold 3 only the level-3 task is "high"; the level-2
        # task joins the FFD group (sorted by decreasing max utilization).
        assert strict == [2, 1, 0]  # same order here, different phases

    def test_bad_threshold_rejected(self):
        with pytest.raises(PartitionError):
            HybridPartitioner(high_threshold=0)


class TestAllocation:
    def test_high_tasks_spread_low_tasks_pack(self):
        ts = MCTaskSet(
            [hi(0.1, 0.4), hi(0.1, 0.4), lo(0.2), lo(0.2)],
            levels=2,
        )
        res = HybridPartitioner().partition(ts, cores=2)
        assert res.schedulable
        # WFD phase: the two HI tasks land on different cores.
        assert res.partition.core_of(0) != res.partition.core_of(1)
        # FFD phase: both LO tasks pack onto core 0.
        assert res.partition.core_of(2) == 0
        assert res.partition.core_of(3) == 0

    def test_schedulable_results_are_feasible(self, rng):
        from tests.conftest import random_taskset

        ok = 0
        for _ in range(60):
            ts = random_taskset(rng, n=10, levels=3, max_u=0.25)
            res = HybridPartitioner().partition(ts, cores=4)
            if res.schedulable:
                ok += 1
                assert is_feasible_partition(res.partition)
        assert ok > 5

    def test_failure_reports_task(self):
        ts = MCTaskSet([lo(0.9), lo(0.9), lo(0.9)], levels=1)
        res = HybridPartitioner().partition(ts, cores=2)
        assert not res.schedulable
        assert res.failed_task == 2
