"""End-to-end validation: Theorem-1-feasible subsets never miss deadlines.

This is the strongest correctness check in the repository: the
reconstructed analysis (lambda recurrence, min-term branch, deadline
scaling protocol) and the simulator (EDF-VD priorities, AMC mode
switches, drops, idle resets) must agree — any job the protocol does not
drop must meet its original deadline, under *every* model-conformant
execution scenario.
"""

import numpy as np
import pytest

from repro.analysis import assign_virtual_deadlines
from repro.model import MCTask, MCTaskSet
from repro.sched import (
    CoreSimulator,
    HonestScenario,
    LevelScenario,
    RandomScenario,
)


def random_feasible_subset(rng, levels, n_tasks=4, max_u=0.25):
    """Rejection-sample a Theorem-1-feasible subset."""
    from tests.conftest import random_taskset

    for _ in range(200):
        ts = random_taskset(rng, n=n_tasks, levels=levels, max_u=max_u)
        if assign_virtual_deadlines(ts) is not None:
            return ts
    raise AssertionError("could not sample a feasible subset")


SCENARIOS = [
    HonestScenario(),
    HonestScenario(fraction=0.6),
    RandomScenario(overrun_prob=0.2),
    RandomScenario(overrun_prob=0.8),
]


class TestNoMissesWhenFeasible:
    @pytest.mark.parametrize("levels", [2, 3, 4, 5])
    def test_random_subsets_random_scenarios(self, levels, rng):
        for trial in range(15):
            subset = random_feasible_subset(rng, levels)
            plan = assign_virtual_deadlines(subset)
            scenario = SCENARIOS[trial % len(SCENARIOS)]
            horizon = 30.0 * max(t.period for t in subset)
            report = CoreSimulator(
                subset, plan, scenario, np.random.default_rng(trial), horizon
            ).run()
            assert report.miss_count == 0, (
                f"K={levels} trial={trial} scenario={type(scenario).__name__}: "
                f"{report.misses[:3]}"
            )

    @pytest.mark.parametrize("levels", [2, 3, 4])
    def test_level_scenarios_drive_every_mode(self, levels, rng):
        """Force the core through each mode in turn; never a miss."""
        for target in range(1, levels + 1):
            for trial in range(8):
                subset = random_feasible_subset(rng, levels)
                plan = assign_virtual_deadlines(subset)
                horizon = 30.0 * max(t.period for t in subset)
                report = CoreSimulator(
                    subset,
                    plan,
                    LevelScenario(target=target),
                    np.random.default_rng(trial),
                    horizon,
                ).run()
                assert report.miss_count == 0, (
                    f"K={levels} target={target} trial={trial}: "
                    f"{report.misses[:3]}"
                )
                assert report.max_mode <= levels

    def test_tight_dual_instance(self):
        """A dual-criticality set at the Eq. (7) boundary survives the
        worst model-conformant behaviour."""
        # U_1(1) = 0.4, U_2(1) = 0.18, U_2(2) = 0.7:
        # demand = 0.4 + min(0.7, 0.18/0.3 = 0.6) = 1.0 exactly.
        subset = MCTaskSet(
            [
                MCTask.from_utilizations([0.2], 10.0),
                MCTask.from_utilizations([0.2], 25.0),
                MCTask.from_utilizations([0.09, 0.35], 20.0),
                MCTask.from_utilizations([0.09, 0.35], 40.0),
            ],
            levels=2,
        )
        plan = assign_virtual_deadlines(subset)
        assert plan is not None
        for scenario in (
            HonestScenario(),
            LevelScenario(target=2),
            RandomScenario(overrun_prob=0.5),
        ):
            report = CoreSimulator(
                subset, plan, scenario, np.random.default_rng(3), 4000.0
            ).run()
            assert report.miss_count == 0, type(scenario).__name__

    def test_pivot_two_protocol(self):
        """A K=3 subset with k* = 2 (staged lambda shrinking) holds up."""
        subset = MCTaskSet(
            [
                MCTask.from_utilizations([0.90], 50.0),
                MCTask.from_utilizations([0.010, 0.15], 60.0),
                MCTask.from_utilizations([0.005, 0.01, 0.05], 70.0),
            ],
            levels=3,
        )
        plan = assign_virtual_deadlines(subset)
        assert plan is not None and plan.k_star == 2
        for target in (1, 2, 3):
            report = CoreSimulator(
                subset,
                plan,
                LevelScenario(target=target),
                np.random.default_rng(0),
                6000.0,
            ).run()
            assert report.miss_count == 0, f"target={target}: {report.misses[:3]}"
