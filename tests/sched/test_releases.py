"""Tests for sporadic/periodic release models."""

import numpy as np
import pytest

from repro.analysis import assign_virtual_deadlines
from repro.model import MCTask, MCTaskSet
from repro.partition import CATPA
from repro.sched import (
    CoreSimulator,
    HonestScenario,
    LevelScenario,
    PeriodicReleases,
    RandomScenario,
    SporadicReleases,
    SystemSimulator,
)
from repro.types import SimulationError


class TestModels:
    def test_periodic_is_exact(self, rng):
        task = MCTask(wcets=(1.0,), period=12.5)
        assert PeriodicReleases().interarrival(task, rng) == 12.5

    def test_sporadic_at_least_period(self, rng):
        task = MCTask(wcets=(1.0,), period=10.0)
        model = SporadicReleases(max_delay=0.5)
        gaps = [model.interarrival(task, rng) for _ in range(200)]
        assert min(gaps) >= 10.0
        assert max(gaps) <= 15.0
        assert max(gaps) > 10.5  # actually sporadic

    def test_zero_delay_degenerates_to_periodic(self, rng):
        task = MCTask(wcets=(1.0,), period=10.0)
        model = SporadicReleases(max_delay=0.0)
        assert model.interarrival(task, rng) == 10.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SporadicReleases(max_delay=-0.1)


class TestSimulatorIntegration:
    def subset(self):
        return MCTaskSet(
            [
                MCTask(wcets=(3.0,), period=10.0),
                MCTask(wcets=(4.0, 8.0), period=20.0),
            ],
            levels=2,
        )

    def test_sporadic_releases_fewer_jobs(self):
        subset = self.subset()
        plan = assign_virtual_deadlines(subset)
        periodic = CoreSimulator(
            subset, plan, HonestScenario(), np.random.default_rng(0), 2000.0
        ).run()
        sporadic = CoreSimulator(
            subset,
            plan,
            HonestScenario(),
            np.random.default_rng(0),
            2000.0,
            releases=SporadicReleases(max_delay=0.5),
        ).run()
        assert sporadic.released < periodic.released

    def test_bad_release_model_caught(self):
        class Broken(SporadicReleases):
            def interarrival(self, task, rng):
                return task.period * 0.5  # violates sporadic minimum

        subset = self.subset()
        plan = assign_virtual_deadlines(subset)
        sim = CoreSimulator(
            subset,
            plan,
            HonestScenario(),
            np.random.default_rng(0),
            100.0,
            releases=Broken(),
        )
        with pytest.raises(SimulationError, match="interarrival"):
            sim.run()

    def test_sustainability_no_misses_under_sporadic(self, rng):
        """Analysis-accepted subsets stay miss-free when arrivals are
        sporadic (the theory's actual model)."""
        from tests.conftest import random_taskset

        validated = 0
        for trial in range(20):
            ts = random_taskset(rng, n=4, levels=3, max_u=0.2)
            plan = assign_virtual_deadlines(ts)
            if plan is None:
                continue
            validated += 1
            horizon = 30.0 * max(t.period for t in ts)
            report = CoreSimulator(
                ts,
                plan,
                RandomScenario(0.4),
                np.random.default_rng(trial),
                horizon,
                releases=SporadicReleases(max_delay=0.8),
            ).run()
            assert report.miss_count == 0
        assert validated > 5

    def test_system_simulator_passes_releases_through(self):
        ts = self.subset()
        res = CATPA().partition(ts, cores=1)
        assert res.schedulable
        report = SystemSimulator(
            res.partition,
            LevelScenario(target=2),
            horizon=2000.0,
            releases=SporadicReleases(max_delay=0.3),
        ).run()
        assert report.all_deadlines_met()
        assert report.released > 0
