"""Tests for execution tracing and the ASCII timeline."""

import numpy as np
import pytest

from repro.analysis import assign_virtual_deadlines
from repro.model import MCTask, MCTaskSet
from repro.sched import (
    CoreSimulator,
    EventKind,
    HonestScenario,
    LevelScenario,
    render_timeline,
)


def traced_run(tasks, scenario, horizon=100.0, levels=None):
    subset = MCTaskSet(tasks, levels=levels)
    plan = assign_virtual_deadlines(subset)
    assert plan is not None
    sim = CoreSimulator(
        subset, plan, scenario, np.random.default_rng(0), horizon, record_trace=True
    )
    return subset, sim.run()


class TestTraceRecording:
    def test_disabled_by_default(self):
        subset = MCTaskSet([MCTask(wcets=(1.0,), period=10.0)])
        plan = assign_virtual_deadlines(subset)
        report = CoreSimulator(
            subset, plan, HonestScenario(), np.random.default_rng(0), 50.0
        ).run()
        assert report.trace is None

    def test_releases_and_completions_counted(self):
        _, report = traced_run([MCTask(wcets=(2.0,), period=10.0)], HonestScenario())
        trace = report.trace
        assert len(trace.events_of(EventKind.RELEASE)) == report.released
        assert len(trace.events_of(EventKind.COMPLETE)) == report.completed
        assert not trace.events_of(EventKind.MISS)

    def test_slice_busy_time_matches_report(self):
        _, report = traced_run(
            [MCTask(wcets=(2.0,), period=10.0), MCTask(wcets=(3.0,), period=15.0)],
            HonestScenario(),
        )
        assert report.trace.busy_time() == pytest.approx(report.busy_time)

    def test_slices_are_ordered_and_disjoint(self):
        _, report = traced_run(
            [MCTask(wcets=(2.0,), period=10.0), MCTask(wcets=(6.0,), period=15.0)],
            HonestScenario(),
        )
        slices = report.trace.slices
        for a, b in zip(slices, slices[1:]):
            assert a.end <= b.start + 1e-9
            assert a.duration > 0

    def test_mode_events_recorded(self):
        _, report = traced_run(
            [
                MCTask(wcets=(2.0,), period=10.0),
                MCTask(wcets=(2.0, 5.0), period=20.0),
            ],
            LevelScenario(target=2),
            horizon=200.0,
            levels=2,
        )
        trace = report.trace
        assert len(trace.events_of(EventKind.MODE_UP)) == report.mode_switches
        assert len(trace.events_of(EventKind.IDLE_RESET)) == report.idle_resets
        assert len(trace.events_of(EventKind.DROP)) == report.dropped
        # MODE_UP events carry the new (raised) mode.
        assert all(e.mode == 2 for e in trace.events_of(EventKind.MODE_UP))

    def test_preemption_splits_slices(self):
        # Long low-priority job is preempted by periodic short releases.
        _, report = traced_run(
            [MCTask(wcets=(2.0,), period=10.0), MCTask(wcets=(12.0,), period=40.0)],
            HonestScenario(),
        )
        long_job_slices = [
            s for s in report.trace.slices if s.task_index == 1 and s.start < 40.0
        ]
        assert len(long_job_slices) >= 2  # preempted at t=10 releases


class TestTimeline:
    def test_render_contains_all_rows(self):
        _, report = traced_run(
            [MCTask(wcets=(2.0,), period=10.0), MCTask(wcets=(3.0,), period=15.0)],
            HonestScenario(),
        )
        art = render_timeline(report.trace, n_tasks=2, until=50.0, width=50)
        lines = art.splitlines()
        assert len(lines) == 3  # two task rows + mode row
        assert "#" in lines[0] and "#" in lines[1]

    def test_first_column_clamped_at_right_edge(self):
        # Regression: a slice starting just below ``until`` can round to
        # column ``width`` (here 0.8999999999999999 / 0.3 == 3.0 exactly);
        # only ``last`` was clamped, so ``range(first, last + 1)`` was
        # empty and the slice silently vanished from the chart.
        from repro.sched.trace import ExecutionSlice, Trace

        start = 0.8999999999999999
        until, width = 0.9, 3
        assert start < until
        assert int(start / (until / width)) == width
        trace = Trace(
            events=[], slices=[ExecutionSlice(start=start, end=1.0, task_index=0)]
        )
        art = render_timeline(trace, n_tasks=1, until=until, width=width)
        assert art.splitlines()[0] == "t0  |  #|"

    def test_mode_markers_appear(self):
        _, report = traced_run(
            [
                MCTask(wcets=(2.0,), period=10.0),
                MCTask(wcets=(2.0, 5.0), period=20.0),
            ],
            LevelScenario(target=2),
            horizon=200.0,
            levels=2,
        )
        art = render_timeline(report.trace, n_tasks=2, until=200.0, width=100)
        assert "^" in art  # at least one mode switch marker
