"""Tests for the multicore system simulator."""

import pytest

from repro.model import MCTask, MCTaskSet, Partition
from repro.partition import CATPA
from repro.sched import (
    HonestScenario,
    LevelScenario,
    SystemSimulator,
    default_horizon,
)
from repro.types import SimulationError


def dual_taskset():
    return MCTaskSet(
        [
            MCTask(wcets=(3.0,), period=10.0),
            MCTask(wcets=(4.0, 8.0), period=20.0),
            MCTask(wcets=(5.0,), period=25.0),
            MCTask(wcets=(2.0, 5.0), period=20.0),
        ],
        levels=2,
    )


class TestSystemSimulator:
    def test_partitioned_simulation_no_misses(self):
        ts = dual_taskset()
        res = CATPA().partition(ts, cores=2)
        assert res.schedulable
        report = SystemSimulator(res.partition, HonestScenario(), horizon=500.0).run()
        assert report.all_deadlines_met()
        assert report.released > 0
        assert report.completed > 0

    def test_empty_cores_have_no_report(self):
        ts = MCTaskSet([MCTask(wcets=(1.0,), period=10.0)], levels=1)
        part = Partition(ts, cores=3)
        part.assign(0, 1)
        report = SystemSimulator(part, HonestScenario(), horizon=100.0).run()
        assert report.core_reports[0] is None
        assert report.core_reports[2] is None
        assert report.core_reports[1] is not None

    def test_incomplete_partition_rejected(self):
        ts = dual_taskset()
        part = Partition(ts, cores=2)
        part.assign(0, 0)
        with pytest.raises(SimulationError, match="every task"):
            SystemSimulator(part, HonestScenario())

    def test_infeasible_core_rejected_by_default(self):
        ts = MCTaskSet(
            [MCTask(wcets=(7.0,), period=10.0), MCTask(wcets=(6.0,), period=10.0)],
            levels=1,
        )
        part = Partition(ts, cores=1)
        part.assign(0, 0)
        part.assign(1, 0)
        with pytest.raises(SimulationError, match="allow_infeasible"):
            SystemSimulator(part, HonestScenario(), horizon=100.0).run()

    def test_failure_injection_observes_misses(self):
        ts = MCTaskSet(
            [MCTask(wcets=(7.0,), period=10.0), MCTask(wcets=(6.0,), period=10.0)],
            levels=1,
        )
        part = Partition(ts, cores=1)
        part.assign(0, 0)
        part.assign(1, 0)
        report = SystemSimulator(
            part, HonestScenario(), horizon=200.0, allow_infeasible=True
        ).run()
        assert report.miss_count > 0

    def test_mode_switches_confined_to_their_core(self):
        # HI tasks on core 0 overrun; the LO-only core 1 must stay at
        # mode 1 and drop nothing (partitioned isolation).
        ts = dual_taskset()
        part = Partition(ts, cores=2)
        part.assign(1, 0)  # HI
        part.assign(3, 0)  # HI
        part.assign(0, 1)  # LO
        part.assign(2, 1)  # LO
        report = SystemSimulator(
            part, LevelScenario(target=2), horizon=1000.0
        ).run()
        assert report.core_reports[0].mode_switches > 0
        assert report.core_reports[1].mode_switches == 0
        assert report.core_reports[1].dropped == 0
        assert report.all_deadlines_met()

    def test_default_horizon_scales_with_periods(self):
        ts = dual_taskset()
        part = Partition(ts, cores=1)
        for i in range(4):
            part.assign(i, 0)
        assert default_horizon(part) == pytest.approx(20.0 * 25.0)

    def test_default_horizon_empty_taskset_is_clean_error(self):
        # MCTaskSet forbids empty sets, but default_horizon is also
        # reachable with partition-like objects (e.g. a filtered view);
        # it must fail with SimulationError, not a bare ValueError from
        # max() over an empty generator.
        class _EmptyPartition:
            taskset = ()

        with pytest.raises(SimulationError, match="empty task set"):
            default_horizon(_EmptyPartition())

    def test_default_horizon_rejects_non_positive_cycles(self):
        ts = dual_taskset()
        part = Partition(ts, cores=1)
        for i in range(4):
            part.assign(i, 0)
        with pytest.raises(SimulationError, match="cycles"):
            default_horizon(part, cycles=0.0)

    def test_report_aggregation_over_all_empty_cores(self):
        from repro.sched import SystemReport

        report = SystemReport(core_reports=[None, None, None])
        assert report.released == 0
        assert report.completed == 0
        assert report.dropped == 0
        assert report.pending == 0
        assert report.miss_count == 0
        assert report.mode_switches == 0
        assert report.idle_resets == 0
        assert report.max_mode == 1
        assert report.all_deadlines_met()
        telemetry = report.telemetry()
        assert telemetry["sim.cores_simulated"] == 0
        assert all(v == 0 for v in telemetry.values())

    def test_one_core_partition_aggregates_single_report(self):
        ts = MCTaskSet(
            [
                MCTask(wcets=(3.0,), period=10.0),
                MCTask(wcets=(4.0, 8.0), period=20.0),
            ],
            levels=2,
        )
        part = Partition(ts, cores=1)
        for i in range(2):
            part.assign(i, 0)
        report = SystemSimulator(part, HonestScenario(), horizon=200.0).run()
        assert len(report.core_reports) == 1
        core = report.core_reports[0]
        assert report.released == core.released
        assert report.completed == core.completed
        assert report.pending == core.pending
        assert report.released == report.completed + report.dropped + report.pending

    def test_seeded_runs_reproducible(self):
        ts = dual_taskset()
        res = CATPA().partition(ts, cores=2)
        sim = SystemSimulator(res.partition, LevelScenario(target=2), horizon=500.0)
        a, b = sim.run(seed=5), sim.run(seed=5)
        assert a.released == b.released
        assert a.mode_switches == b.mode_switches
        assert a.miss_count == b.miss_count
