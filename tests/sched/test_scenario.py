"""Tests for the execution-time scenarios."""

import numpy as np
import pytest

from repro.model import MCTask
from repro.sched import (
    FaultyScenario,
    HonestScenario,
    LevelScenario,
    RandomScenario,
)
from repro.types import SimulationError


@pytest.fixture
def hi_task():
    return MCTask(wcets=(2.0, 5.0, 9.0), period=20.0)


@pytest.fixture
def lo_task():
    return MCTask(wcets=(4.0,), period=20.0)


class TestHonest:
    def test_full_lo_budget(self, hi_task, rng):
        assert HonestScenario().draw(hi_task, rng) == 2.0

    def test_fraction(self, hi_task, rng):
        assert HonestScenario(0.5).draw(hi_task, rng) == 1.0

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.1])
    def test_invalid_fraction(self, fraction):
        with pytest.raises(SimulationError):
            HonestScenario(fraction)


class TestLevel:
    def test_targets_requested_level(self, hi_task, rng):
        assert LevelScenario(2).draw(hi_task, rng) == 5.0

    def test_caps_at_own_criticality(self, lo_task, rng):
        assert LevelScenario(3).draw(lo_task, rng) == 4.0

    def test_invalid_target(self):
        with pytest.raises(SimulationError):
            LevelScenario(0)


class TestRandom:
    def test_zero_probability_stays_in_lo_band(self, hi_task, rng):
        scenario = RandomScenario(overrun_prob=0.0)
        for _ in range(50):
            assert 0.0 < scenario.draw(hi_task, rng) <= 2.0

    def test_one_probability_always_escalates_to_top(self, hi_task, rng):
        scenario = RandomScenario(overrun_prob=1.0)
        for _ in range(50):
            e = scenario.draw(hi_task, rng)
            assert 5.0 < e <= 9.0  # strictly above the level-2 budget

    def test_never_exceeds_own_wcet(self, hi_task, rng):
        scenario = RandomScenario(overrun_prob=0.5)
        draws = [scenario.draw(hi_task, rng) for _ in range(300)]
        assert max(draws) <= hi_task.wcet(3)
        assert min(draws) > 0.0

    def test_escalation_band_boundaries_respected(self, hi_task, rng):
        # Every draw must be a genuine member of exactly one band:
        # either <= c(1), in (c(1), c(2)], or in (c(2), c(3)].
        scenario = RandomScenario(overrun_prob=0.5)
        for _ in range(300):
            e = scenario.draw(hi_task, rng)
            assert e <= 2.0 or 2.0 < e <= 5.0 or 5.0 < e <= 9.0

    def test_escalated_band_excludes_lower_budget(self, hi_task):
        # Regression pin for the half-open band semantics: a draw that
        # escalated into band k must be a *strict* overrun of c(k-1) —
        # landing exactly on the previous budget would not constitute
        # an overrun.  Seeded so the stream is reproducible.
        scenario = RandomScenario(overrun_prob=1.0)
        rng = np.random.default_rng(0x5EED)
        for _ in range(2000):
            e = scenario.draw(hi_task, rng)
            assert 5.0 < e <= 9.0

    def test_draw_matches_seeded_value_stream(self, hi_task):
        # Pin the exact transformation e = c(k) - U(0, c(k) - c(k-1)),
        # which realises (c(k-1), c(k)] because `uniform` draws from the
        # half-open [0, width).  A change back to `uniform(low, high)`
        # (which can return `low` but never `high`) breaks this.
        scenario = RandomScenario(overrun_prob=1.0)
        rng = np.random.default_rng(99)
        shadow = np.random.default_rng(99)
        for _ in range(50):
            e = scenario.draw(hi_task, rng)
            shadow.random()  # escalation flip 1 -> 2
            shadow.random()  # escalation flip 2 -> 3
            assert e == 9.0 - shadow.uniform(0.0, 9.0 - 5.0)

    def test_invalid_probability(self):
        with pytest.raises(SimulationError):
            RandomScenario(-0.1)
        with pytest.raises(SimulationError):
            RandomScenario(1.5)


class TestFaulty:
    def test_exceeds_top_wcet(self, hi_task, rng):
        assert FaultyScenario(excess=0.5).draw(hi_task, rng) == pytest.approx(13.5)

    def test_invalid_excess(self):
        with pytest.raises(SimulationError):
            FaultyScenario(excess=0.0)
