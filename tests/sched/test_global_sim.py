"""Tests for the global multiprocessor simulator."""

import numpy as np
import pytest

from repro.model import MCTask, MCTaskSet
from repro.sched import (
    GlobalSimulator,
    HonestScenario,
    LevelScenario,
    SporadicReleases,
    dual_global_plan,
)
from repro.types import ModelError, SimulationError


def dual(rows):
    return MCTaskSet([MCTask(wcets=w, period=p) for w, p in rows], levels=2)


def sim(ts, processors, scenario, horizon=400.0, x=0.5, seed=0, releases=None):
    return GlobalSimulator(
        ts,
        processors,
        dual_global_plan(ts, x),
        scenario,
        np.random.default_rng(seed),
        horizon,
        releases=releases,
    )


class TestBasics:
    def test_two_processors_run_in_parallel(self):
        # Two always-ready tasks, one CPU each: both complete everything.
        ts = dual([((5.0,), 10.0), ((5.0,), 10.0)])
        report = sim(ts, 2, HonestScenario(), 100.0).run()
        assert report.miss_count == 0
        assert report.busy_time == pytest.approx(100.0)

    def test_uniprocessor_case_matches_load(self):
        ts = dual([((2.0,), 10.0), ((3.0,), 15.0)])
        report = sim(ts, 1, HonestScenario(), 300.0).run()
        assert report.miss_count == 0
        assert report.busy_time == pytest.approx(300.0 * (0.2 + 0.2))

    def test_dhall_effect_observable(self):
        # Classic Dhall pathology: m short-deadline light tasks occupy
        # all CPUs at t=0, so the heavy task (deadline 11, demand 10)
        # starts at t=2 and completes at 12 > 11 — a miss despite total
        # utilization 1.31 << m=2.  GFB correctly rejects this set.
        from repro.analysis import gfb_edf_schedulable

        ts = dual(
            [
                ((2.0,), 10.0),
                ((2.0,), 10.0),
                ((10.0,), 11.0),
            ]
        )
        assert not gfb_edf_schedulable(
            [t.max_utilization for t in ts], 2
        )
        report = sim(ts, 2, HonestScenario(), 50.0, x=1.0).run()
        assert report.miss_count >= 1
        assert any(m.task_index == 2 for m in report.misses)

    def test_invalid_processor_count(self):
        ts = dual([((1.0,), 10.0)])
        with pytest.raises(SimulationError):
            GlobalSimulator(
                ts, 0, dual_global_plan(ts, 0.5), HonestScenario(),
                np.random.default_rng(0), 10.0,
            )

    def test_plan_level_mismatch(self):
        ts = dual([((1.0,), 10.0)])
        three = MCTaskSet([MCTask(wcets=(1.0, 2.0, 3.0), period=10.0)], levels=3)
        plan = dual_global_plan(ts, 0.5)
        with pytest.raises(SimulationError):
            GlobalSimulator(
                three, 2, plan, HonestScenario(), np.random.default_rng(0), 10.0
            )

    def test_bad_x_factor(self):
        ts = dual([((1.0,), 10.0)])
        with pytest.raises(ModelError):
            dual_global_plan(ts, 0.0)
        with pytest.raises(ModelError):
            dual_global_plan(ts, 1.5)


class TestModeBehaviour:
    def overload_set(self):
        return dual(
            [
                ((2.0,), 10.0),
                ((2.0,), 15.0),
                ((2.0, 5.0), 20.0),
                ((2.0, 6.0), 25.0),
            ]
        )

    def test_system_wide_mode_switch_drops_lo(self):
        report = sim(self.overload_set(), 2, LevelScenario(2), 1000.0).run()
        assert report.mode_switches >= 1
        assert report.dropped >= 1
        assert report.max_mode == 2
        assert report.miss_count == 0

    def test_idle_reset_recovers(self):
        report = sim(self.overload_set(), 2, LevelScenario(2), 1000.0).run()
        assert report.idle_resets >= 1

    def test_honest_never_switches(self):
        report = sim(self.overload_set(), 2, HonestScenario(), 1000.0).run()
        assert report.mode_switches == 0
        assert report.miss_count == 0

    def test_sporadic_releases_supported(self):
        report = sim(
            self.overload_set(),
            2,
            LevelScenario(2),
            1000.0,
            releases=SporadicReleases(max_delay=0.4),
        ).run()
        assert report.miss_count == 0
        assert report.released > 0
