"""Unit tests for the single-core EDF-VD/AMC simulator."""

import numpy as np
import pytest

from repro.analysis import assign_virtual_deadlines
from repro.model import MCTask, MCTaskSet
from repro.sched import (
    CoreSimulator,
    FaultyScenario,
    HonestScenario,
    LevelScenario,
    RandomScenario,
)
from repro.types import SimulationError


def make_sim(tasks, scenario, horizon=1000.0, levels=None, seed=1):
    subset = MCTaskSet(tasks, levels=levels)
    plan = assign_virtual_deadlines(subset)
    assert plan is not None, "test subset must be feasible"
    return CoreSimulator(
        subset=subset,
        plan=plan,
        scenario=scenario,
        rng=np.random.default_rng(seed),
        horizon=horizon,
    )


class TestBasics:
    def test_single_task_runs_all_jobs(self):
        sim = make_sim([MCTask(wcets=(2.0,), period=10.0)], HonestScenario(), 100.0)
        report = sim.run()
        assert report.released == 10
        assert report.completed == 10
        assert report.miss_count == 0
        assert report.busy_time == pytest.approx(20.0)
        assert report.mode_switches == 0

    def test_two_tasks_edf_no_misses(self):
        sim = make_sim(
            [MCTask(wcets=(3.0,), period=10.0), MCTask(wcets=(8.0,), period=20.0)],
            HonestScenario(),
            200.0,
        )
        report = sim.run()
        assert report.miss_count == 0
        # utilization 0.3 + 0.4 over 200 time units
        assert report.busy_time == pytest.approx(200.0 * 0.7)

    def test_fraction_scales_demand(self):
        sim = make_sim(
            [MCTask(wcets=(4.0,), period=10.0)], HonestScenario(fraction=0.5), 100.0
        )
        report = sim.run()
        assert report.busy_time == pytest.approx(20.0)

    def test_invalid_horizon(self):
        subset = MCTaskSet([MCTask(wcets=(1.0,), period=10.0)])
        plan = assign_virtual_deadlines(subset)
        with pytest.raises(SimulationError):
            CoreSimulator(subset, plan, HonestScenario(), np.random.default_rng(), 0.0)

    def test_full_utilization_edf_meets_everything(self):
        # Two tasks with total utilization exactly 1 under EDF.
        sim = make_sim(
            [MCTask(wcets=(5.0,), period=10.0), MCTask(wcets=(10.0,), period=20.0)],
            HonestScenario(),
            400.0,
        )
        report = sim.run()
        assert report.miss_count == 0
        assert report.busy_time == pytest.approx(400.0)


class TestModeSwitches:
    def dual(self):
        # LO: u=0.3; HI: u(1)=0.2, u(2)=0.4 -> Eq.(7) demand
        # 0.3 + min(0.4, 0.2/0.6) = 0.6333 feasible.
        return [
            MCTask(wcets=(3.0,), period=10.0, name="lo"),
            MCTask(wcets=(4.0, 8.0), period=20.0, name="hi"),
        ]

    def test_honest_run_never_switches(self):
        report = make_sim(self.dual(), HonestScenario(), 400.0).run()
        assert report.mode_switches == 0
        assert report.max_mode == 1
        assert report.miss_count == 0

    def test_overrun_triggers_switch_and_drops_lo(self):
        report = make_sim(self.dual(), LevelScenario(target=2), 400.0).run()
        assert report.mode_switches >= 1
        assert report.max_mode == 2
        assert report.dropped >= 1
        assert report.miss_count == 0  # HI jobs all meet original deadlines

    def test_idle_reset_returns_to_low_mode(self):
        report = make_sim(self.dual(), LevelScenario(target=2), 400.0).run()
        # Total HI-mode utilization is far below 1, so the core idles and
        # resets between bursts; LO jobs released after a reset run again.
        assert report.idle_resets >= 1
        assert report.mode_switches >= 2  # switches happen repeatedly

    def test_random_scenario_within_model_never_misses(self):
        report = make_sim(
            self.dual(), RandomScenario(overrun_prob=0.4), 2000.0, seed=7
        ).run()
        assert report.miss_count == 0


class TestBudgetBoundaries:
    """Exact-boundary workloads pinning the TIME_EPS comparison policy."""

    def fixed_priority(self):
        # Static priorities (index order) keep the dispatch order exact:
        # t0 (LO, period 5) always preempts t1 (HI).  With LevelScenario
        # t1 draws 9.0 against a level-1 budget of 4.0, so it runs
        # [1, 5) and hits the budget at t=5.0 — exactly the instant of
        # t0's second release (1.0 + 4.0 == 5.0 in floats).
        subset = MCTaskSet(
            [
                MCTask(wcets=(1.0,), period=5.0, name="lo"),
                MCTask(wcets=(4.0, 9.0), period=30.0, name="hi"),
            ],
            levels=2,
        )
        plan = assign_virtual_deadlines(subset)
        assert plan is not None
        return CoreSimulator(
            subset=subset,
            plan=plan,
            scenario=LevelScenario(target=2),
            rng=np.random.default_rng(0),
            horizon=30.0,
            record_trace=True,
            priority_fn=lambda job, mode: job.task_index,
        )

    def test_release_at_budget_instant_sees_raised_mode(self):
        # Regression: when the budget trigger coincided with a release,
        # the mode raise was deferred until after the release was
        # admitted at the *old* mode, so the LO job ran to completion
        # instead of being dropped at release.
        report = self.fixed_priority().run()
        from repro.sched.trace import EventKind

        mode_ups = report.trace.events_of(EventKind.MODE_UP)
        assert [e.time for e in mode_ups] == pytest.approx([5.0])
        # LO releases at t=5 (raised mode) and t=10 (mode still high,
        # dropped just before the idle reset) must both be dropped.
        assert report.dropped == 2
        # No execution slice of the LO task may start at or after t=5
        # until the idle reset at t=10 returns the core to mode 1.
        lo_after = [
            s for s in report.trace.slices
            if s.task_index == 0 and 5.0 - 1e-9 <= s.start < 10.0
        ]
        assert lo_after == []

    def test_demand_equal_to_budget_completes_without_switch(self):
        # completion == budget: a HI job whose demand equals its level-1
        # budget exactly completes at the boundary and must not raise
        # the mode (overruns within TIME_EPS count as completions).
        subset = MCTaskSet(
            [MCTask(wcets=(4.0, 9.0), period=10.0, name="hi")], levels=2
        )
        plan = assign_virtual_deadlines(subset)
        report = CoreSimulator(
            subset, plan, HonestScenario(), np.random.default_rng(0), 100.0
        ).run()
        assert report.mode_switches == 0
        assert report.completed == report.released
        assert report.miss_count == 0

    def test_overrun_within_eps_of_budget_is_a_completion(self):
        from repro.sched.core_sim import TIME_EPS

        class _EpsOver:
            def draw(self, task, rng):
                return task.wcet(1) + TIME_EPS / 2

        subset = MCTaskSet(
            [MCTask(wcets=(4.0, 9.0), period=10.0, name="hi")], levels=2
        )
        plan = assign_virtual_deadlines(subset)
        report = CoreSimulator(
            subset, plan, _EpsOver(), np.random.default_rng(0), 100.0
        ).run()
        assert report.mode_switches == 0
        assert report.miss_count == 0


class TestMissAccounting:
    def test_overloaded_plain_edf_misses(self):
        # Deliberately infeasible single-level set (u = 1.3) with an
        # identity plan: misses must be detected.
        subset = MCTaskSet(
            [MCTask(wcets=(7.0,), period=10.0), MCTask(wcets=(6.0,), period=10.0)],
            levels=1,
        )
        from repro.analysis import VirtualDeadlineAssignment

        plan = VirtualDeadlineAssignment(
            k_star=1, lambdas=(0.0,), top_level_scale=1.0, levels=1
        )
        report = CoreSimulator(
            subset, plan, HonestScenario(), np.random.default_rng(0), 200.0
        ).run()
        assert report.miss_count > 0
        lateness = [m.lateness for m in report.misses if np.isfinite(m.lateness)]
        assert all(lat > 0 for lat in lateness)

    def test_faulty_scenario_can_defeat_guarantee(self):
        # A task exceeding its own top-level WCET voids the model; with
        # enough excess on a loaded core, misses appear.
        subset = MCTaskSet(
            [
                MCTask(wcets=(4.0,), period=10.0),
                MCTask(wcets=(5.0,), period=10.0),
            ],
            levels=1,
        )
        plan = assign_virtual_deadlines(subset)
        report = CoreSimulator(
            subset, plan, FaultyScenario(excess=0.5), np.random.default_rng(0), 200.0
        ).run()
        assert report.miss_count > 0

    def test_censored_jobs_counted(self):
        # Horizon cuts the last deadline: released near the end.
        report = make_sim([MCTask(wcets=(2.0,), period=10.0)], HonestScenario(), 95.0).run()
        assert report.censored >= 1
        assert report.miss_count == 0
