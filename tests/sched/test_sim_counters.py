"""Reconciliation properties between trace, report, counters, and timeline.

Satellite property tests: for randomly generated dual-criticality
subsets, the event tallies recorded three different ways — the
``Trace``, the ``CoreReport``, and the obs ``sim.*`` counters — must
agree exactly, and the rendered ASCII timeline's mode row must match a
recomputation from the raw trace events.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.analysis import assign_virtual_deadlines
from repro.model import MCTask, MCTaskSet
from repro.sched import CoreSimulator, HonestScenario, LevelScenario, RandomScenario
from repro.sched.trace import EventKind, render_timeline


@st.composite
def feasible_subsets(draw):
    """A small dual-criticality subset that passes EDF-VD analysis."""
    n = draw(st.integers(min_value=1, max_value=4))
    tasks = []
    for i in range(n):
        period = draw(st.sampled_from([8.0, 10.0, 16.0, 20.0]))
        lo = draw(st.floats(min_value=0.02, max_value=0.15))
        if draw(st.booleans()):
            hi = lo * draw(st.floats(min_value=1.5, max_value=3.0))
            wcets = (lo * period, hi * period)
        else:
            wcets = (lo * period,)
        tasks.append(MCTask(wcets=wcets, period=period, name=f"t{i}"))
    subset = MCTaskSet(tasks, levels=2)
    plan = assign_virtual_deadlines(subset)
    # Rare at these utilizations; discard infeasible draws.
    assume(plan is not None)
    return subset, plan


def _run(subset, plan, scenario, seed, horizon=200.0):
    with obs.instrument() as state:
        report = CoreSimulator(
            subset=subset,
            plan=plan,
            scenario=scenario,
            rng=np.random.default_rng(seed),
            horizon=horizon,
            record_trace=True,
        ).run()
        counters = state.registry.snapshot()["counters"]
    return report, counters


SCENARIOS = [HonestScenario(), LevelScenario(target=2), RandomScenario()]


class TestTraceReconciliation:
    @settings(max_examples=30, deadline=None)
    @given(feasible_subsets(), st.integers(min_value=0, max_value=2**31), st.integers(0, 2))
    def test_trace_counts_match_report_and_counters(self, sp, seed, scenario_i):
        subset, plan = sp
        report, counters = _run(subset, plan, SCENARIOS[scenario_i], seed)
        counts = report.trace.counts()

        # Trace <-> report: every protocol tally recorded both ways.
        assert counts["release"] == report.released
        assert counts["complete"] == report.completed
        assert counts["drop"] == report.dropped
        assert counts["mode_up"] == report.mode_switches
        assert counts["idle_reset"] == report.idle_resets
        # MISS trace events cover only completed-late jobs; the report
        # additionally counts jobs still pending at the horizon.
        pending = sum(1 for m in report.misses if m.lateness == float("inf"))
        assert counts["miss"] == report.miss_count - pending

        # Report <-> obs counters (zero-valued counters are absent).
        expected = {
            "sim.cores_simulated": 1,
            "sim.released": report.released,
            "sim.completed": report.completed,
            "sim.dropped": report.dropped,
            "sim.pending": report.pending,
            "sim.censored": report.censored,
            "sim.mode_up": report.mode_switches,
            "sim.idle_reset": report.idle_resets,
            "sim.deadline_miss": report.miss_count,
        }
        for name, value in expected.items():
            assert counters.get(name, 0) == value, name

    @settings(max_examples=30, deadline=None)
    @given(feasible_subsets(), st.integers(min_value=0, max_value=2**31), st.integers(0, 2))
    def test_conservation_released_splits_into_outcomes(self, sp, seed, scenario_i):
        subset, plan = sp
        report, _ = _run(subset, plan, SCENARIOS[scenario_i], seed)
        pending = report.released - report.completed - report.dropped
        assert pending == report.pending
        assert pending >= 0
        # Jobs still pending at the horizon either have a deadline past
        # it (censored) or are late (counted among the misses).
        horizon_misses = sum(
            1 for m in report.misses if m.lateness == float("inf")
        )
        assert pending <= report.censored + horizon_misses

    @settings(max_examples=30, deadline=None)
    @given(feasible_subsets(), st.integers(min_value=0, max_value=2**31))
    def test_timeline_mode_row_matches_trace_events(self, sp, seed):
        subset, plan = sp
        report, _ = _run(subset, plan, LevelScenario(target=2), seed)
        trace = report.trace
        until, width = 200.0, 80
        rendered = render_timeline(trace, len(subset), until, width=width)
        mode_line = next(
            line for line in rendered.splitlines() if line.startswith("mode|")
        )
        mode_row = mode_line[len("mode|") : len("mode|") + width]

        # Recompute each column's final marker from the raw events (the
        # renderer overwrites earlier markers in the same column).
        expected = [" "] * width
        scale = until / width
        for e in trace.events:
            if e.time >= until:
                continue
            col = min(int(e.time / scale), width - 1)
            if e.kind is EventKind.MODE_UP:
                expected[col] = "^"
            elif e.kind is EventKind.IDLE_RESET:
                expected[col] = "v"
        assert mode_row == "".join(expected)

    @settings(max_examples=20, deadline=None)
    @given(feasible_subsets(), st.integers(min_value=0, max_value=2**31))
    def test_trace_busy_time_matches_report(self, sp, seed):
        subset, plan = sp
        report, _ = _run(subset, plan, RandomScenario(), seed)
        np.testing.assert_allclose(
            report.trace.busy_time(), report.busy_time, rtol=1e-9, atol=1e-9
        )
