"""Tests for validated runtime event injection (repro.sched.events)."""

import numpy as np
import pytest

from repro.model import MCTask, MCTaskSet, Partition
from repro.sched import (
    EventInjectionRuntime,
    HonestScenario,
    LevelScenario,
    SporadicReleases,
    SystemSimulator,
    core_failure,
    core_hotplug,
    default_horizon,
    mode_recovery,
    task_arrival,
    task_departure,
    wcet_burst,
)
from repro.sched import events as events_mod
from repro.sched.core_sim import TIME_EPS
from repro.sched.events import SimEvent
from repro.types import SimulationError


def small_partition(cores=2):
    """Two light tasks per core: plenty of idle, always schedulable."""
    ts = MCTaskSet(
        [
            MCTask(wcets=(1.0,), period=10.0, name="lo0"),
            MCTask(wcets=(1.0, 2.0), period=20.0, name="hi0"),
            MCTask(wcets=(1.0,), period=10.0, name="lo1"),
            MCTask(wcets=(1.0, 2.0), period=20.0, name="hi1"),
        ],
        levels=2,
    )
    assignment = [0, 0, 1, 1] if cores == 2 else [0, 0, 0, 0]
    return Partition.from_assignment(ts, cores, assignment[: len(ts)])


class TestTimeEps:
    def test_mirrors_core_sim_tolerance(self):
        # events.py re-declares the tolerance privately (importing it
        # from core_sim would be a cycle); the two must never drift.
        assert events_mod._TIME_EPS == TIME_EPS


class TestStructuralValidation:
    def test_unknown_kind(self):
        with pytest.raises(SimulationError, match="unknown event kind"):
            SimEvent(kind="quake", start=0.0, end=0.0)

    def test_negative_start(self):
        with pytest.raises(SimulationError, match="before time 0"):
            wcet_burst(-1.0, 5.0, 2.0)

    def test_negative_duration(self):
        with pytest.raises(SimulationError, match="negative duration"):
            wcet_burst(10.0, 5.0, 2.0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_markers(self, bad):
        with pytest.raises(SimulationError, match="finite"):
            mode_recovery(0.0, bad)

    def test_instant_kind_with_window(self):
        with pytest.raises(SimulationError, match="instantaneous"):
            SimEvent(kind="core_failure", start=1.0, end=2.0, core=0)

    @pytest.mark.parametrize("factor", [0.0, -2.0])
    def test_burst_factor_must_be_positive(self, factor):
        with pytest.raises(SimulationError, match="factor"):
            wcet_burst(0.0, 1.0, factor)

    def test_burst_requires_factor(self):
        with pytest.raises(SimulationError, match="factor"):
            SimEvent(kind="wcet_burst", start=0.0, end=1.0)

    def test_burst_negative_task_index(self):
        with pytest.raises(SimulationError, match=">= 0"):
            wcet_burst(0.0, 1.0, 2.0, tasks=[0, -1])

    def test_arrival_requires_task(self):
        with pytest.raises(SimulationError, match="MCTask"):
            SimEvent(kind="task_arrival", start=0.0, end=0.0)

    def test_departure_requires_index(self):
        with pytest.raises(SimulationError, match="task_index"):
            SimEvent(kind="task_departure", start=0.0, end=0.0)

    def test_failure_requires_core(self):
        with pytest.raises(SimulationError, match="core"):
            SimEvent(kind="core_failure", start=0.0, end=0.0)


class TestRuntimeValidation:
    def test_event_past_horizon_rejected(self):
        with pytest.raises(SimulationError, match="past the horizon"):
            EventInjectionRuntime([wcet_burst(0.0, 200.0, 2.0)], horizon=100.0)

    def test_non_positive_horizon_rejected(self):
        with pytest.raises(SimulationError, match="horizon"):
            EventInjectionRuntime([], horizon=0.0)

    def test_events_sorted_by_start(self):
        rt = EventInjectionRuntime(
            [task_departure(50.0, 0), wcet_burst(10.0, 20.0, 2.0)],
            horizon=100.0,
        )
        assert [e.start for e in rt.events] == [10.0, 50.0]

    def test_burst_unknown_task(self):
        part = small_partition()
        rt = EventInjectionRuntime(
            [wcet_burst(0.0, 10.0, 2.0, tasks=[99])], horizon=100.0
        )
        with pytest.raises(SimulationError, match="unknown task 99"):
            rt.validate_against(part)

    def test_arrival_criticality_above_k(self):
        part = small_partition()
        deep = MCTask(wcets=(1.0, 2.0, 3.0), period=50.0)
        rt = EventInjectionRuntime([task_arrival(5.0, deep)], horizon=100.0)
        with pytest.raises(SimulationError, match="criticality"):
            rt.validate_against(part)

    def test_departure_unknown_task(self):
        part = small_partition()
        rt = EventInjectionRuntime([task_departure(5.0, 42)], horizon=100.0)
        with pytest.raises(SimulationError, match="unknown task 42"):
            rt.validate_against(part)

    def test_double_departure(self):
        part = small_partition()
        rt = EventInjectionRuntime(
            [task_departure(5.0, 0), task_departure(9.0, 0)], horizon=100.0
        )
        with pytest.raises(SimulationError, match="departs twice"):
            rt.validate_against(part)

    def test_failure_unknown_core(self):
        part = small_partition()
        rt = EventInjectionRuntime([core_failure(5.0, 7)], horizon=100.0)
        with pytest.raises(SimulationError, match="unknown core 7"):
            rt.validate_against(part)

    def test_failure_of_offline_core(self):
        part = small_partition()
        rt = EventInjectionRuntime(
            [core_failure(5.0, 1), core_failure(9.0, 1)], horizon=100.0
        )
        with pytest.raises(SimulationError, match="already"):
            rt.validate_against(part)

    def test_hotplug_of_online_core(self):
        part = small_partition()
        rt = EventInjectionRuntime([core_hotplug(5.0, 0)], horizon=100.0)
        with pytest.raises(SimulationError, match="already online"):
            rt.validate_against(part)

    def test_validation_happens_at_simulator_construction(self):
        part = small_partition()
        rt = EventInjectionRuntime([task_departure(5.0, 42)], horizon=100.0)
        with pytest.raises(SimulationError, match="unknown task 42"):
            SystemSimulator(part, HonestScenario(), horizon=100.0, events=rt)

    def test_horizon_mismatch_rejected(self):
        part = small_partition()
        rt = EventInjectionRuntime([], horizon=100.0)
        with pytest.raises(SimulationError, match="horizon"):
            SystemSimulator(part, HonestScenario(), horizon=50.0, events=rt)

    def test_events_with_release_model_rejected(self):
        part = small_partition()
        rt = EventInjectionRuntime([], horizon=100.0)
        with pytest.raises(SimulationError, match="release"):
            SystemSimulator(
                part,
                HonestScenario(),
                horizon=100.0,
                releases=SporadicReleases(max_delay=0.1),
                events=rt,
            )


class TestTrivialPath:
    def test_empty_runtime_is_trivial(self):
        part = small_partition()
        rt = EventInjectionRuntime([], horizon=100.0)
        assert rt.compile(part).is_trivial

    def test_empty_runtime_bit_identical_to_plain_run(self):
        part = small_partition()
        seed = np.random.SeedSequence(7)
        plain = SystemSimulator(part, HonestScenario(), horizon=200.0).run(
            seed=seed
        )
        rt = EventInjectionRuntime([], horizon=200.0)
        evented = SystemSimulator(
            part, HonestScenario(), horizon=200.0, events=rt
        ).run(seed=seed)
        assert plain.telemetry() == evented.telemetry()
        for a, b in zip(plain.core_reports, evented.core_reports):
            if a is None:
                assert b is None
                continue
            assert a.busy_time == b.busy_time
            assert a.max_mode == b.max_mode
        assert evented.events is not None
        assert evented.events.counters["injected"] == 0
        assert plain.events is None

    def test_zero_length_burst_is_a_noop(self):
        # A zero-length window matches no release (start <= r < end is
        # empty), so the run must be indistinguishable from plain.
        part = small_partition()
        seed = np.random.SeedSequence(11)
        plain = SystemSimulator(part, HonestScenario(), horizon=200.0).run(
            seed=seed
        )
        rt = EventInjectionRuntime(
            [wcet_burst(50.0, 50.0, 9.0)], horizon=200.0
        )
        evented = SystemSimulator(
            part, HonestScenario(), horizon=200.0, events=rt
        ).run(seed=seed)
        assert plain.telemetry() == evented.telemetry()
        assert evented.events.counters["burst_jobs"] == 0

    def test_factor_one_burst_changes_nothing(self):
        part = small_partition()
        seed = np.random.SeedSequence(13)
        plain = SystemSimulator(part, HonestScenario(), horizon=200.0).run(
            seed=seed
        )
        rt = EventInjectionRuntime(
            [wcet_burst(0.0, 200.0, 1.0)], horizon=200.0
        )
        evented = SystemSimulator(
            part, HonestScenario(), horizon=200.0, events=rt
        ).run(seed=seed)
        assert plain.telemetry() == evented.telemetry()
        assert evented.events.counters["burst_jobs"] == 0


class TestBurst:
    def one_core_partition(self):
        ts = MCTaskSet(
            [
                MCTask(wcets=(2.0, 4.0), period=10.0, name="hi"),
                MCTask(wcets=(3.0,), period=20.0, name="lo"),
            ],
            levels=2,
        )
        return Partition.from_assignment(ts, 1, [0, 0])

    def test_burst_inflates_demand_and_counts_jobs(self):
        part = self.one_core_partition()
        horizon = 200.0
        rt = EventInjectionRuntime(
            [wcet_burst(40.0, 160.0, 5.0)], horizon=horizon
        )
        report = SystemSimulator(
            part,
            HonestScenario(),
            horizon=horizon,
            allow_infeasible=True,
            events=rt,
        ).run(seed=1)
        ev = report.events.counters
        assert ev["burst_jobs"] > 0
        # Quintupled demand on a busy core must leave a mark: a mode
        # switch, a miss, or backlog at the horizon.
        assert (
            report.mode_switches > 0
            or report.miss_count > 0
            or report.pending > 0
        )

    def test_burst_task_filter_only_hits_named_tasks(self):
        part = self.one_core_partition()
        horizon = 200.0
        rt = EventInjectionRuntime(
            [wcet_burst(0.0, 200.0, 1.5, tasks=[1])], horizon=horizon
        )
        report = SystemSimulator(
            part, HonestScenario(), horizon=horizon, events=rt
        ).run(seed=1)
        # Task 1 (period 20) releases 10 jobs in [0, 200); each is
        # multiplied, the other task's 20 jobs are not.
        assert report.events.counters["burst_jobs"] == 10

    def test_overlapping_burst_factors_multiply(self):
        part = self.one_core_partition()
        rt = EventInjectionRuntime(
            [wcet_burst(0.0, 100.0, 2.0), wcet_burst(50.0, 100.0, 3.0)],
            horizon=200.0,
        )
        compiled = rt.compile(part)
        view = compiled.core_view(0, compiled.fresh_tallies())
        assert view.burst.factor(0, 10.0) == 2.0
        assert view.burst.factor(0, 60.0) == 6.0
        assert view.burst.factor(0, 150.0) == 1.0


class TestArrivalDeparture:
    def test_arrival_admitted_and_released(self):
        part = small_partition()
        horizon = 200.0
        newcomer = MCTask(wcets=(1.0,), period=10.0, name="new")
        rt = EventInjectionRuntime(
            [task_arrival(100.0, newcomer)], horizon=horizon
        )
        baseline = SystemSimulator(
            part, HonestScenario(), horizon=horizon
        ).run(seed=3)
        report = SystemSimulator(
            part, HonestScenario(), horizon=horizon, events=rt
        ).run(seed=3)
        ev = report.events.counters
        assert ev["arrival_admitted"] == 1
        assert ev["arrival_rejected"] == 0
        # 10 extra releases: t = 100, 110, ..., 190.
        assert report.released == baseline.released + 10
        (record,) = report.events.arrivals
        assert record["core"] in (0, 1)

    def test_arrival_rejected_when_no_core_fits(self):
        ts = MCTaskSet(
            [MCTask(wcets=(9.0,), period=10.0, name="hog")], levels=1
        )
        part = Partition.from_assignment(ts, 1, [0])
        giant = MCTask(wcets=(8.0,), period=10.0, name="giant")
        rt = EventInjectionRuntime([task_arrival(50.0, giant)], horizon=100.0)
        report = SystemSimulator(
            part, HonestScenario(), horizon=100.0, events=rt
        ).run(seed=0)
        ev = report.events.counters
        assert ev["arrival_admitted"] == 0
        assert ev["arrival_rejected"] == 1
        (record,) = report.events.arrivals
        assert record["core"] is None

    def test_departure_stops_releases(self):
        part = small_partition()
        horizon = 200.0
        rt = EventInjectionRuntime(
            [task_departure(100.0, 0)], horizon=horizon
        )
        baseline = SystemSimulator(
            part, HonestScenario(), horizon=horizon
        ).run(seed=3)
        report = SystemSimulator(
            part, HonestScenario(), horizon=horizon, events=rt
        ).run(seed=3)
        assert report.events.counters["departures"] == 1
        # Task 0 (period 10) loses its releases at t = 100 .. 190.
        assert report.released == baseline.released - 10


class TestFailureHotplug:
    def test_failure_displaces_and_repartitions(self):
        part = small_partition(cores=2)
        horizon = 200.0
        rt = EventInjectionRuntime([core_failure(100.0, 1)], horizon=horizon)
        report = SystemSimulator(
            part,
            HonestScenario(),
            horizon=horizon,
            allow_infeasible=True,
            events=rt,
        ).run(seed=5)
        ev = report.events.counters
        assert ev["core_failures"] == 1
        assert ev["displaced"] == 2  # both residents of core 1
        assert ev["displaced"] == ev["replaced"] + ev["repartition_lost"]
        (record,) = report.events.repartitions
        assert record["core"] == 1
        assert record["lambda_before"] >= 0.0
        assert record["lambda_after"] >= 0.0

    def test_failure_then_hotplug_runs_clean(self):
        part = small_partition(cores=2)
        horizon = 200.0
        rt = EventInjectionRuntime(
            [core_failure(80.0, 1), core_hotplug(160.0, 1)], horizon=horizon
        )
        report = SystemSimulator(
            part,
            HonestScenario(),
            horizon=horizon,
            allow_infeasible=True,
            events=rt,
        ).run(seed=5)
        ev = report.events.counters
        assert ev["core_failures"] == 1
        assert ev["core_hotplugs"] == 1
        # Job conservation holds through displacement.
        assert (
            report.released
            == report.completed + report.dropped + report.pending
        )


class TestModeRecovery:
    def escalating_partition(self):
        ts = MCTaskSet(
            [
                MCTask(wcets=(1.0, 2.0), period=10.0, name="hi"),
                MCTask(wcets=(1.0,), period=10.0, name="lo"),
            ],
            levels=2,
        )
        return Partition.from_assignment(ts, 1, [0, 0])

    def test_window_applied_at_idle_instant(self):
        part = self.escalating_partition()
        horizon = 200.0
        rt = EventInjectionRuntime(
            [mode_recovery(0.0, 200.0)], horizon=horizon
        )
        # LevelScenario(2) exhausts the level-2 budget: the core
        # escalates, idles eventually, and the window sanctions the
        # reset.
        report = SystemSimulator(
            part, LevelScenario(2), horizon=horizon, events=rt
        ).run(seed=2)
        ev = report.events.counters
        assert ev["mode_recovery_applied"] == 1
        assert report.idle_resets == 1
        assert report.max_mode == 2

    def test_windows_suppress_automatic_resets(self):
        part = self.escalating_partition()
        horizon = 200.0
        plain = SystemSimulator(
            part, LevelScenario(2), horizon=horizon
        ).run(seed=2)
        # Window [0, 1] is consumed by (or before) the first idle
        # instant; every later idle instant has no window left, so no
        # automatic resets happen.
        rt = EventInjectionRuntime([mode_recovery(0.0, 1.0)], horizon=horizon)
        gated = SystemSimulator(
            part, LevelScenario(2), horizon=horizon, events=rt
        ).run(seed=2)
        assert gated.idle_resets <= 1
        assert plain.idle_resets > gated.idle_resets

    def test_recovery_accounting_is_conserved(self):
        part = self.escalating_partition()
        horizon = 200.0
        rt = EventInjectionRuntime(
            [mode_recovery(0.0, 50.0), mode_recovery(60.0, 80.0)],
            horizon=horizon,
        )
        report = SystemSimulator(
            part, LevelScenario(2), horizon=horizon, events=rt
        ).run(seed=2)
        ev = report.events.counters
        resolved = (
            ev["mode_recovery_applied"]
            + ev["mode_recovery_noop"]
            + ev["mode_recovery_missed"]
        )
        assert resolved == 2 * report.telemetry()["sim.cores_simulated"]

    def test_recovery_during_active_burst(self):
        # Regression: an idle instant inside a live WCET burst must
        # still honour the recovery window — the reset re-admits
        # dropped low-criticality tasks even while demand is inflated.
        part = self.escalating_partition()
        horizon = 400.0
        rt = EventInjectionRuntime(
            [
                wcet_burst(0.0, 300.0, 1.9),
                mode_recovery(100.0, 300.0),
            ],
            horizon=horizon,
        )
        report = SystemSimulator(
            part,
            HonestScenario(),
            horizon=horizon,
            allow_infeasible=True,
            events=rt,
        ).run(seed=4)
        ev = report.events.counters
        # The burst (1.9 * 1.0 = 1.9 > wcet(1)) escalates the core;
        # the window then brings it back down mid-burst.
        assert report.mode_switches >= 1
        assert ev["mode_recovery_applied"] == 1
        assert report.idle_resets == 1
        # Low-criticality releases resume after the in-burst reset.
        assert report.completed > 0
        assert (
            report.released
            == report.completed + report.dropped + report.pending
        )


class TestAllKindsTogether:
    def test_conservation_with_full_script(self):
        part = small_partition(cores=2)
        horizon = default_horizon(part, cycles=10.0)
        newcomer = MCTask(wcets=(0.5,), period=10.0, name="new")
        rt = EventInjectionRuntime(
            [
                wcet_burst(0.25 * horizon, 0.6 * horizon, 3.0),
                mode_recovery(0.3 * horizon, 0.7 * horizon),
                task_arrival(0.2 * horizon, newcomer),
                task_departure(0.5 * horizon, 0),
                core_failure(0.4 * horizon, 1),
                core_hotplug(0.8 * horizon, 1),
            ],
            horizon=horizon,
        )
        report = SystemSimulator(
            part,
            LevelScenario(2),
            horizon=horizon,
            allow_infeasible=True,
            events=rt,
        ).run(seed=9)
        ev = report.events.counters
        assert ev["injected"] == 6
        assert (
            report.released
            == report.completed + report.dropped + report.pending
        )
        assert ev["displaced"] == ev["replaced"] + ev["repartition_lost"]
        assert ev["arrival_admitted"] + ev["arrival_rejected"] == 1
        telemetry = report.event_telemetry()
        assert telemetry["sim.event.injected"] == 6

    def test_deterministic_across_runs(self):
        part = small_partition(cores=2)
        horizon = 100.0
        script = [
            wcet_burst(20.0, 60.0, 2.0),
            core_failure(40.0, 1),
            mode_recovery(50.0, 90.0),
        ]

        def run():
            rt = EventInjectionRuntime(script, horizon=horizon)
            return SystemSimulator(
                part,
                LevelScenario(2),
                horizon=horizon,
                allow_infeasible=True,
                events=rt,
            ).run(seed=42)

        a, b = run(), run()
        assert a.telemetry() == b.telemetry()
        assert a.event_telemetry() == b.event_telemetry()
