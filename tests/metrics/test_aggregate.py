"""Tests for per-scheme result aggregation."""

import math

import pytest

from repro.metrics import SchemeAccumulator
from repro.model import MCTask, MCTaskSet
from repro.partition import CATPA, FirstFitDecreasing
from repro.types import ModelError


def result_for(us, cores=2, scheme=FirstFitDecreasing):
    ts = MCTaskSet(
        [MCTask.from_utilizations([u], 10.0) for u in us], levels=1
    )
    return scheme().partition(ts, cores=cores)


class TestAccumulator:
    def test_counts_and_ratio(self):
        acc = SchemeAccumulator("ffd")
        acc.add(result_for([0.5, 0.4]))          # schedulable
        acc.add(result_for([0.9, 0.9, 0.9]))     # infeasible on 2 cores
        stats = acc.finalize()
        assert stats.total_sets == 2
        assert stats.schedulable_sets == 1
        assert stats.sched_ratio == pytest.approx(0.5)

    def test_quality_metrics_over_schedulable_only(self):
        acc = SchemeAccumulator("ffd")
        acc.add(result_for([0.5, 0.4]))          # FFD packs both on core 0
        acc.add(result_for([0.9, 0.9, 0.9]))     # failed: must not pollute means
        stats = acc.finalize()
        assert stats.u_sys == pytest.approx(0.9)
        assert stats.u_avg == pytest.approx(0.45)
        # Loaded-core Lambda: the idle second core is excluded, and a
        # single loaded core is perfectly balanced.
        assert stats.imbalance == pytest.approx(0.0)

    def test_empty_schedulable_gives_nan(self):
        acc = SchemeAccumulator("ffd")
        acc.add(result_for([0.9, 0.9, 0.9]))
        stats = acc.finalize()
        assert math.isnan(stats.u_sys)
        assert stats.sched_ratio == 0.0

    def test_no_sets_gives_nan_ratio(self):
        stats = SchemeAccumulator("ffd").finalize()
        assert math.isnan(stats.sched_ratio)

    def test_scheme_mismatch_rejected(self):
        acc = SchemeAccumulator("ca-tpa")
        with pytest.raises(ModelError):
            acc.add(result_for([0.5]))

    def test_merge(self):
        a = SchemeAccumulator("ffd")
        b = SchemeAccumulator("ffd")
        a.add(result_for([0.5, 0.4]))
        b.add(result_for([0.3]))
        b.add(result_for([0.9, 0.9, 0.9]))
        a.merge(b)
        stats = a.finalize()
        assert stats.total_sets == 3
        assert stats.schedulable_sets == 2

    def test_merge_mismatch_rejected(self):
        a = SchemeAccumulator("ffd")
        with pytest.raises(ModelError):
            a.merge(SchemeAccumulator("wfd"))

    def test_works_with_catpa_cached_utils(self):
        acc = SchemeAccumulator("ca-tpa")
        acc.add(result_for([0.4, 0.4], scheme=CATPA))
        stats = acc.finalize()
        assert stats.schedulable_sets == 1
        assert 0.0 <= stats.u_sys <= 1.0


class TestJsonRoundTrip:
    """The engine checkpoints accumulators and stats as strict JSON."""

    def _loaded(self):
        acc = SchemeAccumulator("ffd")
        acc.add(result_for([0.5, 0.4]))
        acc.add(result_for([0.9, 0.9, 0.9]))
        acc.add(result_for([0.3]))
        return acc

    def test_accumulator_round_trip_is_bit_identical(self):
        import json

        acc = self._loaded()
        restored = SchemeAccumulator.from_dict(json.loads(json.dumps(acc.to_dict())))
        assert restored == acc
        assert restored.finalize() == acc.finalize()

    def test_stats_round_trip_is_bit_identical(self):
        import json

        stats = self._loaded().finalize()
        restored = type(stats).from_dict(json.loads(json.dumps(stats.to_dict())))
        assert restored == stats

    def test_nan_means_map_to_null_and_back(self):
        import json

        acc = SchemeAccumulator("ffd")
        acc.add(result_for([0.9, 0.9, 0.9]))  # unschedulable on 2 cores
        stats = acc.finalize()
        data = stats.to_dict()
        json.dumps(data, allow_nan=False)  # strict JSON must accept it
        assert data["u_sys"] is None and data["sched_ratio"] == 0.0
        restored = type(stats).from_dict(data)
        assert math.isnan(restored.u_sys)
        assert restored.to_dict() == data
