"""Tests for the partition-quality metrics."""

import numpy as np
import pytest

from repro.metrics import (
    average_core_utilization,
    core_utilizations,
    imbalance_factor,
    partition_metrics,
    system_utilization,
)
from repro.model import MCTask, MCTaskSet, Partition
from repro.types import ModelError


@pytest.fixture
def partition():
    ts = MCTaskSet(
        [
            MCTask.from_utilizations([0.6], 10.0),
            MCTask.from_utilizations([0.2], 10.0),
        ],
        levels=1,
    )
    part = Partition(ts, cores=2)
    part.assign(0, 0)
    part.assign(1, 1)
    return part


class TestVectorMetrics:
    def test_system_utilization_is_max(self):
        assert system_utilization(np.array([0.2, 0.9, 0.5])) == 0.9

    def test_average(self):
        assert average_core_utilization(np.array([0.2, 0.4])) == pytest.approx(0.3)

    def test_imbalance(self):
        assert imbalance_factor(np.array([0.8, 0.4])) == pytest.approx(0.5)

    def test_imbalance_balanced_is_zero(self):
        assert imbalance_factor(np.array([0.5, 0.5])) == 0.0

    def test_imbalance_idle_system_is_zero(self):
        assert imbalance_factor(np.zeros(4)) == 0.0

    def test_imbalance_excludes_empty_cores(self):
        # Loaded-core convention (matches the CA-TPA Eq.-(16) override):
        # idle cores do not pin Lambda at 1.
        assert imbalance_factor(np.array([0.8, 0.4, 0.0])) == pytest.approx(0.5)

    def test_imbalance_single_loaded_core_is_zero(self):
        assert imbalance_factor(np.array([0.7, 0.0])) == 0.0


class TestPartitionMetrics:
    def test_core_utilizations(self, partition):
        np.testing.assert_allclose(core_utilizations(partition), [0.6, 0.2])

    def test_partition_metrics_dict(self, partition):
        m = partition_metrics(partition)
        assert m["u_sys"] == pytest.approx(0.6)
        assert m["u_avg"] == pytest.approx(0.4)
        assert m["imbalance"] == pytest.approx((0.6 - 0.2) / 0.6)

    def test_accepts_precomputed_utils(self, partition):
        m = partition_metrics(partition, utils=np.array([0.6, 0.2]))
        assert m["u_sys"] == pytest.approx(0.6)

    def test_rejects_wrong_shape(self, partition):
        with pytest.raises(ModelError):
            partition_metrics(partition, utils=np.array([0.6, 0.2, 0.1]))
