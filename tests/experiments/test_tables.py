"""Tests for the worked-example (Tables I-III) reproduction."""

import numpy as np
import pytest

from repro.experiments import (
    allocation_trace,
    paper_example_taskset,
    table1_rows,
)
from repro.partition import CATPA, FirstFitDecreasing


class TestExampleInstance:
    def test_shape(self):
        ts = paper_example_taskset()
        assert len(ts) == 5
        assert ts.levels == 2
        assert int((ts.criticalities == 2).sum()) >= 2

    def test_exhibits_the_phenomenon(self):
        ts = paper_example_taskset()
        assert not FirstFitDecreasing().partition(ts, 2).schedulable
        assert CATPA().partition(ts, 2).schedulable

    def test_cached_instance_is_stable(self):
        assert paper_example_taskset() is paper_example_taskset()


class TestTable1:
    def test_rows_cover_all_tasks(self):
        ts = paper_example_taskset()
        rows = table1_rows(ts)
        assert len(rows) == 5
        for row, task in zip(rows, ts):
            assert row["period"] == task.period
            assert row["criticality"] == task.criticality

    def test_contribution_matches_analysis(self):
        from repro.analysis import utilization_contributions

        ts = paper_example_taskset()
        rows = table1_rows(ts)
        contribs = utilization_contributions(ts)
        for i, row in enumerate(rows):
            assert row["contribution"] == pytest.approx(contribs[i])


class TestAllocationTrace:
    def test_ffd_trace_ends_in_failure(self):
        ts = paper_example_taskset()
        steps = allocation_trace(FirstFitDecreasing(), ts, cores=2)
        assert steps[-1].core is None
        # intermediate steps have an assigned core
        assert all(s.core is not None for s in steps[:-1])

    def test_catpa_trace_places_everything(self):
        ts = paper_example_taskset()
        steps = allocation_trace(CATPA(), ts, cores=2)
        assert len(steps) == 5
        assert all(s.core is not None for s in steps)

    def test_trace_matrices_accumulate(self):
        ts = paper_example_taskset()
        steps = allocation_trace(CATPA(), ts, cores=2)
        # Final matrices must equal the real partitioner's result.
        result = CATPA().partition(ts, cores=2)
        for m in range(2):
            np.testing.assert_allclose(
                steps[-1].core_levels[m], result.partition.level_matrix(m)
            )

    def test_trace_matches_partition_assignment(self):
        ts = paper_example_taskset()
        result = CATPA().partition(ts, cores=2)
        steps = allocation_trace(CATPA(), ts, cores=2)
        for step in steps:
            assert result.partition.core_of(step.task_index) == step.core
