"""CLI smoke tests: parser round-trips and tiny end-to-end runs."""

import dataclasses
import json
from pathlib import Path

import pytest

from repro import cli
from repro._version import __version__
from repro.engine import SweepArtifact
from repro.experiments import sweeps
from repro.obs import load_manifest

SUBCOMMANDS = ["fig1", "fig2", "fig3", "fig4", "fig5", "tables", "all", "validate"]


def _tiny_fig1():
    d = sweeps.figure1_nsu(nsu_values=(0.5,))
    base_point = d.point

    def small_point(v):
        config, schemes = base_point(v)
        return config.with_(cores=2, task_count_range=(5, 6)), schemes

    return dataclasses.replace(d, point=small_point)


@pytest.fixture
def tiny_fig1(monkeypatch, tmp_path):
    """Shrink fig1 and sandbox the checkpoint store."""
    monkeypatch.setitem(cli.FIGURES, "fig1", _tiny_fig1)
    monkeypatch.setenv("REPRO_MC_STORE", str(tmp_path / "store"))
    return tmp_path


class TestParser:
    @pytest.mark.parametrize("name", SUBCOMMANDS)
    def test_every_subcommand_round_trips(self, name):
        args = cli.build_parser().parse_args([name, "--sets", "2", "--jobs", "2"])
        assert args.experiment == name
        assert args.sets == 2
        assert args.jobs == 2

    def test_defaults(self):
        args = cli.build_parser().parse_args(["fig1"])
        assert args.sets == 500
        assert args.seed == 2016
        assert args.jobs == 1
        assert args.csv is None
        assert args.json is None
        assert args.store is None
        assert not args.no_store
        assert not args.progress

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["fig9"])

    def test_store_flags_round_trip(self, tmp_path):
        args = cli.build_parser().parse_args(
            ["fig2", "--store", str(tmp_path), "--progress"]
        )
        assert args.store == str(tmp_path)
        assert args.progress

    def test_no_store_round_trips(self):
        assert cli.build_parser().parse_args(["all", "--no-store"]).no_store

    def test_version_prints_and_exits(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli.build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert f"repro-mc {__version__}" in out

    def test_obs_flags_round_trip(self):
        args = cli.build_parser().parse_args(
            ["fig1", "--log-json", "events.jsonl", "--metrics", "m.json"]
        )
        assert args.log_json == "events.jsonl"
        assert args.metrics == "m.json"

    def test_inspect_accepts_paths(self):
        args = cli.build_parser().parse_args(["inspect", "a.json", "b.json"])
        assert args.experiment == "inspect"
        assert args.paths == ["a.json", "b.json"]

    def test_trace_flags_round_trip(self):
        args = cli.build_parser().parse_args(
            [
                "trace",
                "events.jsonl",
                "--report",
                "--folded",
                "out.folded",
                "--chrome",
                "out.json",
                "--top",
                "5",
            ]
        )
        assert args.experiment == "trace"
        assert args.paths == ["events.jsonl"]
        assert args.report
        assert args.folded == "out.folded"
        assert args.chrome == "out.json"
        assert args.top == 5

    def test_bench_flags_round_trip(self):
        args = cli.build_parser().parse_args(
            [
                "bench",
                "compare",
                "--gate-ratio",
                "0.5",
                "--overhead-gate",
                "1.2",
                "--baseline-dir",
                "baselines",
            ]
        )
        assert args.experiment == "bench"
        assert args.paths == ["compare"]
        assert args.gate_ratio == 0.5
        assert args.overhead_gate == 1.2
        assert args.baseline_dir == "baselines"

    def test_probe_impl_round_trips(self):
        args = cli.build_parser().parse_args(
            ["fig1", "--probe-impl", "incremental"]
        )
        assert args.probe_impl == "incremental"
        # Default: defer to the library's contextvar default.
        assert cli.build_parser().parse_args(["fig1"]).probe_impl is None


class TestProbeImpl:
    def test_unknown_backend_exits_two_with_clean_message(self, capsys):
        assert cli.main(["fig1", "--sets", "2", "--probe-impl", "simd"]) == 2
        err = capsys.readouterr().err
        assert "unknown probe implementation 'simd'" in err
        assert "available" in err
        assert "Traceback" not in err

    @pytest.mark.parametrize("impl", ["scalar", "incremental"])
    def test_backend_artifact_matches_default_run(self, tiny_fig1, capsys, impl):
        base_dir = tiny_fig1 / "default"
        impl_dir = tiny_fig1 / impl
        argv = ["fig1", "--sets", "2", "--no-store", "--json"]
        assert cli.main(argv + [str(base_dir)]) == 0
        assert cli.main(argv + [str(impl_dir), "--probe-impl", impl]) == 0
        assert (base_dir / "fig1.json").read_text() == (
            impl_dir / "fig1.json"
        ).read_text()

    def test_validate_accepts_probe_impl(self, capsys):
        assert (
            cli.main(
                [
                    "validate",
                    "--sets",
                    "2",
                    "--seed",
                    "0",
                    "--no-store",
                    "--probe-impl",
                    "incremental",
                ]
            )
            == 0
        )
        assert "all green" in capsys.readouterr().out


class TestMain:
    def test_fig1_tiny_run_exits_zero_with_markers(self, tiny_fig1, capsys):
        assert cli.main(["fig1", "--sets", "2"]) == 0
        out = capsys.readouterr().out
        assert "FIG1: Performance of the algorithms with varying NSU" in out
        assert "(2 task sets per data point, seed 2016)" in out
        assert "(a) Schedulability ratio" in out
        assert "(d) Workload imbalance Lambda" in out
        assert "[fig1 regenerated in" in out

    def test_tables_run_exits_zero_with_markers(self, capsys):
        assert cli.main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I: timing parameters" in out
        assert "Table II: allocations under FFD" in out
        assert "Table III: allocations under CA-TPA" in out

    def test_progress_reports_cache_hits_on_rerun(self, tiny_fig1, capsys):
        assert cli.main(["fig1", "--sets", "2", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "[fig1 NSU=0.5]" in err
        assert "computed in" in err
        assert "1 misses" in err

        assert cli.main(["fig1", "--sets", "2", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "cache hit" in err
        assert "1 cache hits, 0 misses, 0 computed" in err

    def test_no_store_disables_checkpointing(self, tiny_fig1, capsys):
        assert cli.main(["fig1", "--sets", "2", "--no-store"]) == 0
        assert not (tiny_fig1 / "store").exists()

    def test_json_flag_writes_loadable_artifact(self, tiny_fig1, capsys):
        out_dir = tiny_fig1 / "artifacts"
        assert cli.main(["fig1", "--sets", "2", "--json", str(out_dir)]) == 0
        artifact = SweepArtifact.from_json((out_dir / "fig1.json").read_text())
        assert artifact.figure == "fig1"
        assert artifact.sets_per_point == 2
        assert artifact.values == (0.5,)

    def test_store_flag_overrides_env(self, tiny_fig1, capsys):
        custom = tiny_fig1 / "custom-store"
        assert cli.main(["fig1", "--sets", "2", "--store", str(custom)]) == 0
        assert custom.exists()
        assert not (tiny_fig1 / "store").exists()

    def test_stray_paths_on_figure_subcommand_rejected(self, capsys):
        assert cli.main(["fig1", "whoops.json"]) == 2
        assert "inspect subcommand" in capsys.readouterr().err


class TestObservability:
    def test_json_flag_also_writes_manifest(self, tiny_fig1, capsys):
        out_dir = tiny_fig1 / "artifacts"
        argv = ["fig1", "--sets", "2", "--jobs", "2", "--json", str(out_dir)]
        assert cli.main(argv) == 0
        manifest = load_manifest(out_dir / "fig1.manifest.json")
        assert manifest["figure"] == "fig1"
        assert manifest["sets"] == 2
        assert manifest["seed"] == 2016
        assert manifest["command"] == argv
        assert manifest["repro_version"] == __version__
        assert manifest["artifact"]["path"] == "fig1.json"
        assert manifest["engine"]["shards_computed"] > 0
        assert manifest["engine"]["shard_seconds"]["count"] > 0
        # Workload counters survived the worker-process boundary.
        counters = manifest["metrics"]["counters"]
        assert any(name.startswith("probe.") for name in counters)

    def test_metrics_flag_writes_merged_snapshot(self, tiny_fig1, capsys):
        metrics_path = tiny_fig1 / "out" / "metrics.json"
        assert (
            cli.main(
                ["fig1", "--sets", "2", "--no-store", "--metrics", str(metrics_path)]
            )
            == 0
        )
        payload = json.loads(metrics_path.read_text())
        assert payload["run_id"].startswith("r-")
        assert payload["metrics"]["counters"]["engine.shards_computed"] >= 1
        assert payload["metrics"]["summaries"]["engine.shard_seconds"]["count"] >= 1

    def test_log_json_streams_engine_events(self, tiny_fig1, capsys):
        log = tiny_fig1 / "events.jsonl"
        assert cli.main(["fig1", "--sets", "2", "--log-json", str(log)]) == 0
        events = [json.loads(line) for line in log.read_text().splitlines()]
        names = [e["event"] for e in events]
        assert names[0] == "cli.figure_start"
        assert "engine.point" in names
        assert "engine.shard" in names
        run_ids = {e["run_id"] for e in events}
        assert len(run_ids) == 1

    def test_instrumented_artifact_matches_plain_run(self, tiny_fig1, capsys):
        plain_dir = tiny_fig1 / "plain"
        inst_dir = tiny_fig1 / "instrumented"
        assert cli.main(["fig1", "--sets", "2", "--no-store", "--json", str(plain_dir)]) == 0
        # A --json run is itself instrumented; add every other flag too.
        assert (
            cli.main(
                [
                    "fig1",
                    "--sets",
                    "2",
                    "--no-store",
                    "--json",
                    str(inst_dir),
                    "--metrics",
                    str(tiny_fig1 / "m.json"),
                    "--log-json",
                    str(tiny_fig1 / "e.jsonl"),
                ]
            )
            == 0
        )
        assert (plain_dir / "fig1.json").read_text() == (
            inst_dir / "fig1.json"
        ).read_text()


class TestValidate:
    def test_green_campaign_exits_zero(self, capsys):
        assert cli.main(["validate", "--sets", "2", "--seed", "0", "--no-store"]) == 0
        out = capsys.readouterr().out
        assert "all green" in out
        assert "[validate done in" in out

    def test_failing_campaign_writes_shrunk_repro_and_exits_one(
        self, monkeypatch, tmp_path, capsys
    ):
        from repro import validate as validate_pkg
        from repro.gen import WorkloadConfig
        from repro.validate import CampaignResult, OracleFailure

        failure = OracleFailure(
            oracle="schedulable-no-miss",
            config=WorkloadConfig(cores=2, levels=2),
            schemes=(),
            seed=0,
            set_index=3,
            messages=("2 deadline miss(es)",),
            taskset_doc={},
        )
        result = CampaignResult(points=(), cases=1, checks=7, failures=(failure,))
        doc = {
            "oracle": "schedulable-no-miss",
            "seed": 0,
            "set_index": 3,
            "config": {"cores": 2, "levels": 2, "nsu": 0.6},
            "taskset": {"tasks": [{}, {}]},
        }
        monkeypatch.setattr(validate_pkg, "run_campaign", lambda *a, **k: result)
        monkeypatch.setattr(validate_pkg, "shrink_failure", lambda f: doc)
        repro_dir = tmp_path / "counterexamples"
        argv = ["validate", "--sets", "1", "--no-store", "--repro-dir", str(repro_dir)]
        assert cli.main(argv) == 1
        out = capsys.readouterr().out
        assert "1 FAILURE(S)" in out
        assert "2 deadline miss(es)" in out
        assert "(2 tasks)" in out
        written = list(repro_dir.glob("*.json"))
        assert len(written) == 1
        assert written[0].name == "schedulable-no-miss-seed0-set3-M2K2-nsu0p6.json"

    def test_metrics_snapshot_counts_validate_cases(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        argv = [
            "validate",
            "--sets",
            "1",
            "--seed",
            "0",
            "--no-store",
            "--metrics",
            str(metrics_path),
        ]
        assert cli.main(argv) == 0
        payload = json.loads(metrics_path.read_text())
        counters = payload["metrics"]["counters"]
        # 4 campaign configs x 1 set each, every registered oracle per case.
        from repro.validate import all_oracles

        assert counters["validate.cases"] == 4
        assert counters["validate.checks"] == 4 * len(all_oracles())


class TestTraceCommand:
    """End-to-end: instrumented run -> events.jsonl -> repro-mc trace."""

    def _traced_run(self, tiny_fig1, capsys, jobs="4"):
        log = tiny_fig1 / "events.jsonl"
        argv = [
            "fig1",
            "--sets",
            "2",
            "--jobs",
            jobs,
            "--no-store",
            "--log-json",
            str(log),
        ]
        assert cli.main(argv) == 0
        capsys.readouterr()
        return log

    def test_report_prints_rooted_critical_path(self, tiny_fig1, capsys):
        log = self._traced_run(tiny_fig1, capsys)
        assert cli.main(["trace", str(log), "--report"]) == 0
        out, err = capsys.readouterr()
        assert "Critical path" in out
        assert "cli.figure" in out
        assert "100.0%" in out
        assert "0 orphan(s)" in out
        assert "orphan span" not in err  # no warning emitted

    def test_critical_path_total_matches_wall_clock(self, tiny_fig1, capsys):
        from repro.obs import trace

        log = self._traced_run(tiny_fig1, capsys)
        tree = trace.load_tree(log)
        assert tree.orphans == []
        assert len(tree.roots) == 1
        # The events file brackets the run: its timestamp span is the
        # wall clock the root span must match within 5%.
        events = trace.read_events(log)
        wall = max(e["ts"] for e in events) - min(e["ts"] for e in events)
        root_seconds = trace.critical_path(tree)[0].seconds
        assert root_seconds == pytest.approx(wall, rel=0.05)

    def test_default_action_is_report(self, tiny_fig1, capsys):
        log = self._traced_run(tiny_fig1, capsys, jobs="1")
        assert cli.main(["trace", str(log)]) == 0
        assert "Critical path" in capsys.readouterr().out

    def test_folded_export(self, tiny_fig1, capsys):
        log = self._traced_run(tiny_fig1, capsys, jobs="1")
        folded_path = tiny_fig1 / "out" / "stacks.folded"
        assert cli.main(["trace", str(log), "--folded", str(folded_path)]) == 0
        lines = folded_path.read_text().splitlines()
        assert lines
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert stack.startswith("cli.figure")
            assert int(value) > 0

    def test_chrome_export_is_loadable(self, tiny_fig1, capsys):
        log = self._traced_run(tiny_fig1, capsys)
        chrome_path = tiny_fig1 / "out" / "trace.json"
        assert cli.main(["trace", str(log), "--chrome", str(chrome_path)]) == 0
        doc = json.loads(chrome_path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert slices
        assert all(
            e["ts"] >= 0 and e["dur"] >= 0 and isinstance(e["tid"], int)
            for e in slices
        )
        assert any(e["name"] == "cli.figure" for e in slices)

    def test_trace_without_path_errors(self, capsys):
        assert cli.main(["trace"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_trace_missing_file_errors(self, tmp_path, capsys):
        assert cli.main(["trace", str(tmp_path / "nope.jsonl")]) == 1
        assert "no such events file" in capsys.readouterr().err

    def test_trace_spanless_events_file_errors(self, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        log.write_text('{"event": "cli.figure_start", "run_id": "r-1"}\n')
        assert cli.main(["trace", str(log)]) == 1
        assert "no span events" in capsys.readouterr().err


class TestBenchCommand:
    def test_compare_passes_with_loose_gates(self, capsys):
        repo_root = Path(cli.__file__).resolve().parents[2]
        argv = [
            "bench",
            "compare",
            "--sets",
            "1",
            "--gate-ratio",
            "0.000001",
            "--overhead-gate",
            "1000",
            "--baseline-dir",
            str(repo_root),
        ]
        assert cli.main(argv) == 0
        assert "all gates passed" in capsys.readouterr().out

    def test_compare_fails_on_impossible_gate(self, capsys):
        repo_root = Path(cli.__file__).resolve().parents[2]
        argv = [
            "bench",
            "compare",
            "--sets",
            "1",
            "--gate-ratio",
            "1000000",
            "--baseline-dir",
            str(repo_root),
        ]
        assert cli.main(argv) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_bench_without_compare_action_errors(self, capsys):
        assert cli.main(["bench"]) == 2
        assert "compare" in capsys.readouterr().err


class TestInspect:
    def test_inspect_pretty_prints_manifest(self, tiny_fig1, capsys):
        out_dir = tiny_fig1 / "artifacts"
        assert cli.main(["fig1", "--sets", "2", "--json", str(out_dir)]) == 0
        capsys.readouterr()
        assert cli.main(["inspect", str(out_dir / "fig1.json")]) == 0
        out = capsys.readouterr().out
        assert "Run manifest (v1)" in out
        assert "figure        fig1" in out
        assert "Counters" in out

    def test_inspect_accepts_manifest_path_directly(self, tiny_fig1, capsys):
        out_dir = tiny_fig1 / "artifacts"
        assert cli.main(["fig1", "--sets", "2", "--json", str(out_dir)]) == 0
        capsys.readouterr()
        assert cli.main(["inspect", str(out_dir / "fig1.manifest.json")]) == 0
        assert "Run manifest (v1)" in capsys.readouterr().out

    def test_inspect_without_paths_errors(self, capsys):
        assert cli.main(["inspect"]) == 2
        assert "at least one" in capsys.readouterr().err

    def test_inspect_missing_manifest_errors(self, tmp_path, capsys):
        assert cli.main(["inspect", str(tmp_path / "nope.json")]) == 1
        assert "cannot read" in capsys.readouterr().err


class TestLazyOut:
    """Regression: ``--out`` used ``argparse.FileType("w")``, which
    created/truncated the target at *parse* time — a command that then
    failed had already destroyed the previous report."""

    def test_failing_command_leaves_existing_out_untouched(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        out.write_text("previous good report\n")
        rc = cli.main(["inspect", str(tmp_path / "nope.json"), "--out", str(out)])
        capsys.readouterr()
        assert rc == 1
        assert out.read_text() == "previous good report\n"

    def test_parse_error_does_not_create_out(self, tmp_path, capsys):
        out = tmp_path / "never.txt"
        with pytest.raises(SystemExit):
            cli.main(["no-such-experiment", "--out", str(out)])
        capsys.readouterr()
        assert not out.exists()

    def test_successful_command_writes_out(self, tmp_path, capsys):
        out = tmp_path / "tables.txt"
        out.write_text("stale content")
        assert cli.main(["tables", "--out", str(out)]) == 0
        capsys.readouterr()
        text = out.read_text()
        assert "Table I" in text and "stale content" not in text


class TestServeParser:
    def test_serve_options_parse(self):
        args = cli.build_parser().parse_args(
            [
                "serve",
                "--cores", "8",
                "--levels", "3",
                "--port", "0",
                "--window-ms", "2.5",
                "--max-batch", "16",
                "--backlog", "32",
            ]
        )
        assert args.experiment == "serve"
        assert (args.cores, args.levels, args.port) == (8, 3, 0)
        assert (args.window_ms, args.max_batch, args.backlog) == (2.5, 16, 32)

    def test_serve_defaults(self):
        args = cli.build_parser().parse_args(["serve"])
        assert args.cores == 4 and args.port == 8787
        assert args.window_ms == 1.0 and args.backlog == 256


class TestServeSloFlags:
    def test_slo_rules_round_trip(self):
        args = cli.build_parser().parse_args(
            [
                "serve",
                "--slo",
                "p95(serve.place.seconds) < 5ms",
                "--slo",
                "rate(serve.rejected_503) == 0",
            ]
        )
        assert args.slo == [
            "p95(serve.place.seconds) < 5ms",
            "rate(serve.rejected_503) == 0",
        ]

    def test_no_slo_flag_defaults_to_none(self):
        assert cli.build_parser().parse_args(["serve"]).slo is None

    def test_bad_slo_rule_exits_two_before_binding(self, capsys):
        assert cli.main(["serve", "--slo", "p95(x) ~ 1"]) == 2
        assert "bad SLO rule" in capsys.readouterr().err


class TestTopCommand:
    def test_flags_round_trip(self):
        args = cli.build_parser().parse_args(
            ["top", "http://127.0.0.1:8787", "--interval", "0.5", "--once"]
        )
        assert args.experiment == "top"
        assert args.paths == ["http://127.0.0.1:8787"]
        assert args.interval == 0.5
        assert args.once

    def test_requires_exactly_one_target(self, capsys):
        assert cli.main(["top"]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert cli.main(["top", "a", "b"]) == 2

    def test_renders_once_from_sweep_events(self, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        log.write_text(
            json.dumps(
                {
                    "run_id": "r1",
                    "seq": 1,
                    "ts": 100.0,
                    "event": "engine.run_plan",
                    "figure": "fig1",
                    "points": 1,
                    "sets_per_point": 2,
                }
            )
            + "\n"
        )
        assert cli.main(["top", str(log), "--once"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "\x1b" not in out

    def test_missing_events_file_exits_one(self, tmp_path, capsys):
        assert cli.main(["top", str(tmp_path / "nope.jsonl"), "--once"]) == 1
        assert "no events file" in capsys.readouterr().err


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


class TestSimulateCommand:
    def _args(self, *extra):
        return [
            "simulate",
            "--taskset",
            str(EXAMPLES / "taskset_demo.json"),
            "--cores",
            "2",
            "--scenario",
            "honest",
            *extra,
        ]

    def test_flags_round_trip(self):
        args = cli.build_parser().parse_args(
            [
                "simulate",
                "--taskset",
                "t.json",
                "--events",
                "e.json",
                "--scheme",
                "ffd",
                "--scenario",
                "level",
                "--overrun-prob",
                "0.3",
                "--cycles",
                "5",
                "--allow-infeasible",
            ]
        )
        assert args.experiment == "simulate"
        assert args.taskset == "t.json"
        assert args.events == "e.json"
        assert args.scheme == "ffd"
        assert args.scenario == "level"
        assert args.overrun_prob == 0.3
        assert args.cycles == 5.0
        assert args.allow_infeasible

    def test_requires_taskset(self, capsys):
        assert cli.main(["simulate"]) == 2
        assert "--taskset PATH is required" in capsys.readouterr().err

    def test_stray_paths_rejected(self, capsys):
        assert cli.main(self._args()[:1] + ["whoops.json"]) == 2
        err = capsys.readouterr().err
        assert "unexpected positional arguments" in err

    def test_plain_run_prints_telemetry(self, capsys):
        assert cli.main(self._args()) == 0
        out = capsys.readouterr().out
        assert "simulate: 6 tasks on 2 cores (ca-tpa)" in out
        assert "schedulable offline: True" in out
        assert "sim.released:" in out
        assert "sim.event." not in out  # no script attached

    def test_events_run_reports_event_counters(self, capsys):
        assert cli.main(
            self._args("--events", str(EXAMPLES / "events_demo.json"))
        ) == 0
        out = capsys.readouterr().out
        assert "sim.event.injected: 6" in out
        assert "sim.event.core_failures: 1" in out
        assert "sim.event.arrival_admitted" in out

    def test_events_metrics_snapshot_matches_stdout(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        assert cli.main(
            self._args(
                "--events",
                str(EXAMPLES / "events_demo.json"),
                "--metrics",
                str(metrics),
            )
        ) == 0
        doc = json.loads(metrics.read_text())
        counters = doc["metrics"]["counters"]
        assert counters["sim.event.injected"] == 6
        summaries = doc["metrics"]["summaries"]
        assert "cli.simulate.seconds" in summaries
        assert "sim.events.compile.seconds" in summaries

    def test_unschedulable_partition_needs_allow_infeasible(
        self, tmp_path, capsys
    ):
        # One core cannot hold the demo set; the honest message tells
        # the user which gate tripped.
        rc = cli.main(
            [
                "simulate",
                "--taskset",
                str(EXAMPLES / "taskset_demo.json"),
                "--cores",
                "1",
                "--scenario",
                "honest",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert (
            "could not place every task" in captured.err
            or "fails the schedulability analysis" in captured.err
        )


class TestDynamicCommand:
    def test_burst_factors_round_trip(self):
        args = cli.build_parser().parse_args(
            ["dynamic", "--burst-factors", "1.0,2.5"]
        )
        assert args.experiment == "dynamic"
        assert args.burst_factors == "1.0,2.5"

    def test_bad_burst_factors_exit_two(self, capsys):
        assert cli.main(["dynamic", "--burst-factors", "1.0,oops"]) == 2
        assert "comma-separated float list" in capsys.readouterr().err
        assert cli.main(["dynamic", "--burst-factors", ","]) == 2
        assert "is empty" in capsys.readouterr().err

    def test_tiny_run_prints_table_and_json(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        assert (
            cli.main(
                [
                    "dynamic",
                    "--sets",
                    "1",
                    "--burst-factors",
                    "2.0",
                    "--no-store",
                    "--json",
                    str(out_dir),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Dynamic scenario sweep" in out
        assert "[dynamic regenerated in" in out
        doc = json.loads((out_dir / "dynamic.json").read_text())
        assert doc["figure"] == "dynamic"
        assert doc["factors"] == [2.0]
        assert doc["rows"][0]["simulated"] == 1
