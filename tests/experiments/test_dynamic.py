"""Tests for the dynamic-scenario resilience sweep (shard kind dynsim)."""

import pytest

from repro.engine import ResultStore
from repro.experiments.dynamic import (
    DEFAULT_BURST_FACTORS,
    DynamicSweepResult,
    dynamic_point,
    format_dynamic,
    run_dynamic_sweep,
    standard_event_script,
)
from repro.gen.generator import generate_taskset
from repro.gen.params import WorkloadConfig


@pytest.fixture
def tiny_config():
    return WorkloadConfig(cores=2, levels=2, nsu=0.4, task_count_range=(5, 5))


def _tiny_sweep(tiny_config, **kwargs):
    defaults = dict(
        factors=(1.0, 3.0), sets=4, seed=11, jobs=1, config=tiny_config
    )
    defaults.update(kwargs)
    return run_dynamic_sweep(**defaults)


class TestEventScript:
    def test_covers_every_family(self, tiny_config, rng):
        taskset = generate_taskset(tiny_config, rng)
        events = standard_event_script(taskset, 2, 1000.0, 2.0, rng)
        kinds = {e.kind for e in events}
        assert kinds == {
            "wcet_burst",
            "task_arrival",
            "task_departure",
            "mode_recovery",
            "core_failure",
            "core_hotplug",
        }
        assert all(0.0 <= e.start and e.end <= 1000.0 for e in events)

    def test_single_core_skips_failure(self, tiny_config, rng):
        taskset = generate_taskset(tiny_config, rng)
        kinds = {e.kind for e in standard_event_script(taskset, 1, 500.0, 2.0, rng)}
        assert "core_failure" not in kinds and "core_hotplug" not in kinds

    def test_burst_factor_passed_through(self, tiny_config, rng):
        taskset = generate_taskset(tiny_config, rng)
        (burst,) = [
            e
            for e in standard_event_script(taskset, 2, 500.0, 3.5, rng)
            if e.kind == "wcet_burst"
        ]
        assert burst.factor == 3.5


class TestSweep:
    def test_point_spec_carries_factor(self):
        point = dynamic_point(2.5, sets=10, seed=3)
        assert point.kind == "dynsim"
        assert dict(point.params) == {"burst_factor": 2.5}
        assert point.sets == 10 and point.seed == 3

    def test_sweep_shape_and_conservation(self, tiny_config):
        result = _tiny_sweep(tiny_config)
        assert result.factors == (1.0, 3.0)
        assert len(result.tallies) == 2
        for t in result.tallies:
            assert t["sets"] == 4
            assert t["simulated"] + t["unschedulable"] == t["sets"]
            assert (
                t["completed"] + t["dropped"] + t["pending"] == t["released"]
            )

    def test_control_factor_injects_no_burst_jobs(self, tiny_config):
        # factor 1.0 multiplies demand by 1 — the tally must show the
        # burst touched nothing.
        result = _tiny_sweep(tiny_config, factors=(1.0,))
        assert result.tallies[0]["burst_jobs"] == 0

    def test_deterministic(self, tiny_config):
        first = _tiny_sweep(tiny_config)
        second = _tiny_sweep(tiny_config)
        assert first.tallies == second.tallies

    def test_warm_store_run_matches_cold(self, tiny_config, tmp_path):
        store = ResultStore(tmp_path / "store")
        cold = _tiny_sweep(tiny_config, store=store)
        warm = _tiny_sweep(tiny_config, store=store)
        assert cold.tallies == warm.tallies
        assert cold.tallies == _tiny_sweep(tiny_config).tallies

    def test_row_and_dict(self, tiny_config):
        result = _tiny_sweep(tiny_config, factors=(2.0,))
        row = result.row(0)
        assert row["burst_factor"] == 2.0
        assert 0.0 <= row["miss_rate"] <= 1.0
        assert 0.0 <= row["dropped_fraction"] <= 1.0
        doc = result.to_dict()
        assert doc["figure"] == "dynamic"
        assert doc["factors"] == [2.0]
        assert doc["rows"][0] == row

    def test_format_renders_every_factor(self, tiny_config):
        result = _tiny_sweep(tiny_config)
        text = format_dynamic(result)
        assert "Dynamic scenario sweep" in text
        assert "ca-tpa" in text
        assert "  1.00" in text and "  3.00" in text


class TestDefaults:
    def test_default_factors_start_at_control(self):
        assert DEFAULT_BURST_FACTORS[0] == 1.0
        assert list(DEFAULT_BURST_FACTORS) == sorted(DEFAULT_BURST_FACTORS)

    def test_result_defaults(self):
        result = DynamicSweepResult(factors=(), tallies=())
        assert result.scheme == "ca-tpa"
        assert result.config.nsu == 0.5
