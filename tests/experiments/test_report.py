"""Tests for text rendering of figures and tables."""

import dataclasses

import pytest

from repro.experiments import (
    allocation_trace,
    figure1_nsu,
    format_allocation_trace,
    format_panel,
    format_sweep,
    format_table1,
    paper_example_taskset,
    run_sweep,
)
from repro.partition import CATPA, FirstFitDecreasing


@pytest.fixture(scope="module")
def tiny_result():
    d = figure1_nsu(nsu_values=(0.4, 0.8))
    base_point = d.point

    def small_point(v):
        config, schemes = base_point(v)
        return config.with_(cores=2, task_count_range=(6, 10)), schemes

    return run_sweep(dataclasses.replace(d, point=small_point), sets=6, seed=2)


class TestSweepRendering:
    def test_all_panels_present(self, tiny_result):
        text = format_sweep(tiny_result)
        for marker in (
            "(a) Schedulability ratio",
            "(b) System utilization",
            "(c) Average core utilization",
            "(d) Workload imbalance",
        ):
            assert marker in text

    def test_values_and_schemes_in_panel(self, tiny_result):
        text = format_panel(tiny_result, "sched_ratio", "(a) ratio")
        assert "0.4" in text and "0.8" in text
        for scheme in ("ca-tpa", "ffd", "bfd", "wfd", "hybrid"):
            assert scheme in text

    def test_nan_rendered_as_dash(self, tiny_result):
        # At NSU=0.8 on 2 cores nothing is schedulable with these sizes;
        # quality panels show '-' rather than 'nan'.
        text = format_sweep(tiny_result)
        assert "nan" not in text

    def test_header_mentions_sets_and_seed(self, tiny_result):
        text = format_sweep(tiny_result)
        assert "6 task sets" in text
        assert "seed 2" in text


class TestTableRendering:
    def test_table1_lists_tasks(self):
        ts = paper_example_taskset()
        text = format_table1(ts)
        for i in range(1, 6):
            assert f"tau_{i}" in text
        assert "C_i" in text

    def test_ffd_trace_shows_failure(self):
        ts = paper_example_taskset()
        steps = allocation_trace(FirstFitDecreasing(), ts, cores=2)
        text = format_allocation_trace("Table II", ts, steps)
        assert "FAILS" in text

    def test_catpa_trace_shows_cores(self):
        ts = paper_example_taskset()
        steps = allocation_trace(CATPA(), ts, cores=2)
        text = format_allocation_trace("Table III", ts, steps)
        assert "FAILS" not in text
        assert "-> P1" in text and "-> P2" in text


class TestCLI:
    def test_tables_subcommand(self, capsys):
        from repro.cli import main

        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table III" in out

    def test_figure_subcommand_small(self, capsys, monkeypatch):
        from repro import cli
        from repro.experiments import sweeps

        # Shrink fig1 for the test.
        def tiny_fig1():
            d = sweeps.figure1_nsu(nsu_values=(0.5,))
            base_point = d.point

            def small_point(v):
                config, schemes = base_point(v)
                return config.with_(cores=2, task_count_range=(6, 8)), schemes

            return dataclasses.replace(d, point=small_point)

        monkeypatch.setitem(cli.FIGURES, "fig1", tiny_fig1)
        assert cli.main(["fig1", "--sets", "4"]) == 0
        out = capsys.readouterr().out
        assert "FIG1" in out
        assert "Schedulability ratio" in out

    def test_unknown_experiment_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["not-a-figure"])


class TestCLIOutput:
    def test_out_flag_writes_file(self, tmp_path, monkeypatch):
        import dataclasses as dc

        from repro import cli
        from repro.experiments import sweeps

        def tiny_fig2():
            d = sweeps.figure2_ifc(ifc_values=(0.3,))
            base_point = d.point

            def small_point(v):
                config, schemes = base_point(v)
                return config.with_(cores=2, task_count_range=(5, 6)), schemes

            return dc.replace(d, point=small_point)

        monkeypatch.setitem(cli.FIGURES, "fig2", tiny_fig2)
        out = tmp_path / "fig2.txt"
        assert cli.main(["fig2", "--sets", "3", "--out", str(out)]) == 0
        text = out.read_text()
        assert "FIG2" in text and "regenerated" in text

    def test_jobs_zero_means_all_cores(self, capsys, monkeypatch):
        import dataclasses as dc

        from repro import cli
        from repro.experiments import sweeps

        def tiny_fig1():
            d = sweeps.figure1_nsu(nsu_values=(0.5,))
            base_point = d.point

            def small_point(v):
                config, schemes = base_point(v)
                return config.with_(cores=2, task_count_range=(5, 6)), schemes

            return dc.replace(d, point=small_point)

        monkeypatch.setitem(cli.FIGURES, "fig1", tiny_fig1)
        assert cli.main(["fig1", "--sets", "2", "--jobs", "0"]) == 0
        assert "FIG1" in capsys.readouterr().out
