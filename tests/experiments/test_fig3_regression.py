"""Regression pin for the corrected Fig.-3 (alpha sweep) numbers.

The Eq.-(16) override used to see ``Lambda = 1`` whenever any core was
still idle, so for every ``alpha < 1`` the min-utilization rule — not
Algorithm 1's min-increment rule — placed the first ``M`` tasks (and
kept firing until the least-loaded core caught up).  With idle cores
excluded from the ``min``, CA-TPA packs by minimum increment until the
*loaded* cores drift apart by more than ``alpha``.

These are the corrected CA-TPA figures at a reduced-scale Fig.-3 data
point (paper defaults, 30 task sets, seed 2016).  The schedulable-set
counts are exact integers and must never move; the quality means are
pinned tightly.  If an intentional algorithm change moves them, re-pin
*and* regenerate ``benchmarks/output/fig3_alpha.txt``.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import SchemeSpec, evaluate_point
from repro.gen.params import WorkloadConfig

# alpha -> (schedulable_sets out of 30, mean U_sys, mean Lambda)
PINNED = {
    0.1: (6, 0.9996907993479159, 0.07476411767161363),
    0.3: (6, 0.9993211507017369, 0.09458496700231966),
    0.5: (7, 0.9990612698425901, 0.0820285398006917),
}


@pytest.mark.parametrize("alpha", sorted(PINNED))
def test_fig3_catpa_numbers_pinned(alpha):
    expected_count, expected_u_sys, expected_imbalance = PINNED[alpha]
    stats = evaluate_point(
        WorkloadConfig(),
        schemes=[SchemeSpec.make("ca-tpa", alpha=alpha)],
        sets=30,
        seed=2016,
    )["ca-tpa"]
    assert stats.schedulable_sets == expected_count
    assert stats.u_sys == pytest.approx(expected_u_sys, rel=1e-9)
    assert stats.imbalance == pytest.approx(expected_imbalance, rel=1e-9)


def test_imbalance_stays_roughly_bounded_by_alpha():
    # The override's whole point: with a tight threshold the *final*
    # imbalance over loaded cores stays small even while packing.
    stats = evaluate_point(
        WorkloadConfig(),
        schemes=[SchemeSpec.make("ca-tpa", alpha=0.1)],
        sets=30,
        seed=2016,
    )["ca-tpa"]
    assert stats.imbalance < 0.25
