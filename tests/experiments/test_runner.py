"""Tests for the batch evaluation runner."""

import dataclasses
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro.engine import core as engine_core
from repro.experiments import SchemeSpec, default_schemes, evaluate_point
from repro.gen import WorkloadConfig
from repro.partition.probe import use_probe_implementation
from repro.types import ReproError


SMALL = WorkloadConfig(cores=2, levels=2, nsu=0.6, task_count_range=(8, 12))


class _BrokenFuture:
    def result(self):
        raise BrokenProcessPool("a child process terminated abruptly")


class _BrokenPool:
    """ProcessPoolExecutor stand-in whose workers always crash."""

    def __init__(self, *args, **kwargs):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, fn, *args, **kwargs):
        return _BrokenFuture()


class TestSchemeSpec:
    def test_label_defaults_to_name(self):
        assert SchemeSpec.make("ffd").label == "ffd"

    def test_kwargs_forwarded(self):
        spec = SchemeSpec.make("ca-tpa", alpha=0.3)
        assert spec.build().alpha == 0.3

    def test_custom_label(self):
        spec = SchemeSpec.make("ca-tpa", label="ca-0.1", alpha=0.1)
        assert spec.label == "ca-0.1"

    def test_specs_are_picklable(self):
        import pickle

        spec = SchemeSpec.make("ca-tpa", alpha=0.5)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_default_schemes_are_the_papers_five(self):
        labels = [s.label for s in default_schemes()]
        assert labels == ["ca-tpa", "ffd", "bfd", "wfd", "hybrid"]


class TestEvaluatePoint:
    def test_returns_stats_per_scheme(self):
        stats = evaluate_point(SMALL, sets=10, seed=1)
        assert set(stats) == {"ca-tpa", "ffd", "bfd", "wfd", "hybrid"}
        for s in stats.values():
            assert s.total_sets == 10
            assert 0.0 <= s.sched_ratio <= 1.0

    def test_reproducible(self):
        a = evaluate_point(SMALL, sets=15, seed=3)
        b = evaluate_point(SMALL, sets=15, seed=3)
        assert a == b

    def test_seed_changes_results(self):
        a = evaluate_point(SMALL, sets=15, seed=3)
        b = evaluate_point(SMALL, sets=15, seed=4)
        assert a != b

    def test_parallel_matches_serial_bit_exact(self):
        # The docstring promises bit-reproducibility "regardless of the
        # worker count": finalize() sums per-set values with math.fsum
        # (exactly rounded, order-independent), so SchemeStats compare
        # *equal*, not merely approximately.
        serial = evaluate_point(SMALL, sets=12, seed=5, jobs=1)
        parallel = evaluate_point(SMALL, sets=12, seed=5, jobs=4)
        assert serial == parallel

    def test_scalar_probe_path_reproduces_batch_numbers(self):
        # The vectorized probe engine must not move any reference number:
        # a full evaluation under either implementation is identical.
        with use_probe_implementation("batch"):
            batch = evaluate_point(SMALL, sets=10, seed=7)
        with use_probe_implementation("scalar"):
            scalar = evaluate_point(SMALL, sets=10, seed=7)
        assert batch == scalar

    def test_custom_scheme_list(self):
        specs = [
            SchemeSpec.make("ca-tpa", label="ca-a", alpha=0.1),
            SchemeSpec.make("ca-tpa", label="ca-b", alpha=None),
        ]
        stats = evaluate_point(SMALL, schemes=specs, sets=8, seed=1)
        assert set(stats) == {"ca-a", "ca-b"}

    def test_duplicate_labels_rejected(self):
        specs = [SchemeSpec.make("ffd"), SchemeSpec.make("ffd")]
        with pytest.raises(ReproError, match="duplicate"):
            evaluate_point(SMALL, schemes=specs, sets=4)

    def test_zero_sets_rejected(self):
        with pytest.raises(ReproError):
            evaluate_point(SMALL, sets=0)

    def test_quality_metrics_only_when_schedulable(self):
        # Overloaded config: nothing schedulable -> nan quality metrics.
        heavy = WorkloadConfig(cores=2, levels=2, nsu=2.5, task_count_range=(8, 10))
        stats = evaluate_point(heavy, sets=5, seed=1)
        for s in stats.values():
            assert s.sched_ratio == 0.0
            assert np.isnan(s.u_sys)


class TestWorkerCrashRecovery:
    def test_broken_pool_shards_are_rerun_inline(self, monkeypatch):
        expected = evaluate_point(SMALL, sets=10, seed=9, jobs=1)
        monkeypatch.setattr(engine_core, "ProcessPoolExecutor", _BrokenPool)
        recovered = evaluate_point(SMALL, sets=10, seed=9, jobs=3)
        # Every shard fell back to the inline path; the self-seeded
        # shards make the recovery bit-identical to a clean run.
        assert recovered == expected

    def test_double_failure_raises_repro_error_naming_shard(self, monkeypatch):
        monkeypatch.setattr(engine_core, "ProcessPoolExecutor", _BrokenPool)

        def explode(*args, **kwargs):
            raise RuntimeError("inline retry also died")

        stats_kind = engine_core._SHARD_KINDS["stats"]
        monkeypatch.setitem(
            engine_core._SHARD_KINDS,
            "stats",
            dataclasses.replace(stats_kind, run=explode),
        )
        with pytest.raises(ReproError, match=r"shard \[0, 3\)"):
            evaluate_point(SMALL, sets=10, seed=9, jobs=3)
