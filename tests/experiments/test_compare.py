"""Tests for the head-to-head comparison harness."""

import pytest

from repro.experiments import SchemeSpec, format_head_to_head, head_to_head
from repro.gen import WorkloadConfig
from repro.types import ReproError


@pytest.fixture(scope="module")
def result():
    cfg = WorkloadConfig(cores=2, levels=2, nsu=0.8, task_count_range=(6, 8))
    specs = [SchemeSpec.make(n) for n in ("ca-tpa", "ffd", "wfd")]
    return head_to_head(cfg, specs, sets=30, seed=1)


class TestHeadToHead:
    def test_counts_consistent(self, result):
        for a in result.labels:
            assert 0 <= result.accepted[a] <= result.sets
            for b in result.labels:
                if a == b:
                    continue
                # wins(a,b) - wins(b,a) == accepted(a) - accepted(b)
                diff = result.wins[a][b] - result.wins[b][a]
                assert diff == result.accepted[a] - result.accepted[b]

    def test_ratio(self, result):
        for a in result.labels:
            assert result.ratio(a) == pytest.approx(
                result.accepted[a] / result.sets
            )

    def test_reproducible(self, result):
        cfg = WorkloadConfig(cores=2, levels=2, nsu=0.8, task_count_range=(6, 8))
        specs = [SchemeSpec.make(n) for n in ("ca-tpa", "ffd", "wfd")]
        again = head_to_head(cfg, specs, sets=30, seed=1)
        assert again == result

    def test_duplicate_labels_rejected(self):
        cfg = WorkloadConfig(cores=2, levels=2)
        with pytest.raises(ReproError):
            head_to_head(cfg, [SchemeSpec.make("ffd"), SchemeSpec.make("ffd")], sets=2)

    def test_zero_sets_rejected(self):
        cfg = WorkloadConfig(cores=2, levels=2)
        with pytest.raises(ReproError):
            head_to_head(cfg, [SchemeSpec.make("ffd")], sets=0)

    def test_formatting(self, result):
        text = format_head_to_head(result)
        assert "ca-tpa" in text and "ffd" in text
        assert "ratio" in text
        assert str(result.sets) in text


class TestHyperperiod:
    def test_integer_periods(self):
        from repro.model import MCTask, MCTaskSet

        ts = MCTaskSet([MCTask((1.0,), 12.0), MCTask((1.0,), 18.0)])
        assert ts.hyperperiod() == 36.0

    def test_non_integer_periods_give_none(self):
        from repro.model import MCTask, MCTaskSet

        ts = MCTaskSet([MCTask((1.0,), 12.5)])
        assert ts.hyperperiod() is None

    def test_generated_workloads_have_hyperperiods(self, rng):
        from repro.gen import WorkloadConfig, generate_taskset

        ts = generate_taskset(
            WorkloadConfig(task_count_range=(5, 8)), rng
        )
        assert ts.hyperperiod() is not None
        for t in ts:
            assert (ts.hyperperiod() / t.period) == int(ts.hyperperiod() / t.period)
