"""Tests for CSV export of sweep results."""

import csv
import dataclasses
import io

import pytest

from repro.experiments import figure1_nsu, run_sweep, save_sweep_csv, sweep_to_csv


@pytest.fixture(scope="module")
def tiny_result():
    d = figure1_nsu(nsu_values=(0.4, 0.6))
    base_point = d.point

    def small_point(v):
        config, schemes = base_point(v)
        return config.with_(cores=2, task_count_range=(6, 8)), schemes

    return run_sweep(dataclasses.replace(d, point=small_point), sets=5, seed=9)


class TestCsvExport:
    def test_row_count(self, tiny_result):
        rows = list(csv.DictReader(io.StringIO(sweep_to_csv(tiny_result))))
        # 2 values x 5 schemes x 4 metrics
        assert len(rows) == 40

    def test_columns(self, tiny_result):
        rows = list(csv.DictReader(io.StringIO(sweep_to_csv(tiny_result))))
        assert set(rows[0]) == {
            "figure",
            "parameter",
            "value",
            "scheme",
            "metric",
            "result",
            "sets_per_point",
            "seed",
        }

    def test_values_match_stats(self, tiny_result):
        rows = list(csv.DictReader(io.StringIO(sweep_to_csv(tiny_result))))
        wanted = [
            r
            for r in rows
            if r["scheme"] == "ffd"
            and r["metric"] == "sched_ratio"
            and r["value"] == "0.4"
        ]
        assert len(wanted) == 1
        assert float(wanted[0]["result"]) == pytest.approx(
            tiny_result.rows[0]["ffd"].sched_ratio
        )

    def test_save_to_file(self, tiny_result, tmp_path):
        path = tmp_path / "fig.csv"
        save_sweep_csv(tiny_result, path)
        assert path.read_text().startswith("figure,parameter,value,scheme")


class TestCliCsvFlag:
    def test_cli_writes_csv(self, tmp_path, capsys, monkeypatch):
        import dataclasses as dc

        from repro import cli
        from repro.experiments import sweeps

        def tiny_fig1():
            d = sweeps.figure1_nsu(nsu_values=(0.5,))
            base_point = d.point

            def small_point(v):
                config, schemes = base_point(v)
                return config.with_(cores=2, task_count_range=(5, 6)), schemes

            return dc.replace(d, point=small_point)

        monkeypatch.setitem(cli.FIGURES, "fig1", tiny_fig1)
        monkeypatch.setenv("REPRO_MC_STORE", str(tmp_path / "store"))
        assert cli.main(["fig1", "--sets", "3", "--csv", str(tmp_path / "csv")]) == 0
        out = (tmp_path / "csv" / "fig1.csv").read_text()
        assert "sched_ratio" in out


class TestWeightedSchedulability:
    def test_summary_values(self, tiny_result):
        from repro.experiments import weighted_schedulability

        summary = weighted_schedulability(tiny_result)
        assert set(summary) == set(tiny_result.schemes)
        for scheme, value in summary.items():
            ratios = tiny_result.series("sched_ratio")[scheme]
            assert min(ratios) - 1e-12 <= value <= max(ratios) + 1e-12

    def test_hand_computed(self, tiny_result):
        from repro.experiments import weighted_schedulability

        ratios = tiny_result.series("sched_ratio")["ffd"]
        expected = (0.4 * ratios[0] + 0.6 * ratios[1]) / 1.0
        assert weighted_schedulability(tiny_result)["ffd"] == pytest.approx(expected)

    def test_nonnumeric_values_rejected(self, tiny_result):
        import dataclasses

        from repro.experiments import weighted_schedulability
        from repro.types import ReproError

        broken = dataclasses.replace(tiny_result, values=("a", "b"))
        with pytest.raises(ReproError):
            weighted_schedulability(broken)
