"""Tests for the figure sweep definitions."""

import pytest

from repro.experiments import (
    FIGURES,
    figure1_nsu,
    figure3_alpha,
    figure4_cores,
    figure5_levels,
    run_sweep,
)


class TestDefinitions:
    def test_all_five_figures_registered(self):
        assert set(FIGURES) == {"fig1", "fig2", "fig3", "fig4", "fig5"}

    def test_fig1_points_vary_nsu(self):
        d = figure1_nsu()
        assert d.values == (0.4, 0.5, 0.6, 0.7, 0.8)
        config, schemes = d.point(0.7)
        assert config.nsu == 0.7
        assert len(schemes) == 5

    def test_fig3_points_vary_alpha_only_in_catpa(self):
        d = figure3_alpha()
        config, schemes = d.point(0.2)
        assert config.nsu == 0.6  # defaults untouched
        ca = [s for s in schemes if s.name == "ca-tpa"][0]
        assert dict(ca.kwargs)["alpha"] == 0.2

    def test_fig4_core_values_match_table_iv(self):
        assert figure4_cores().values == (2, 4, 8, 16, 32)

    def test_fig5_level_range(self):
        assert figure5_levels().values == (2, 3, 4, 5, 6)

    def test_custom_values(self):
        d = figure1_nsu(nsu_values=[0.5])
        assert d.values == (0.5,)


class TestRunSweep:
    @pytest.fixture(scope="class")
    def tiny_result(self):
        d = figure1_nsu(nsu_values=(0.4, 0.6))
        # shrink the workload so the test is fast
        base_point = d.point

        def small_point(v):
            config, schemes = base_point(v)
            return config.with_(cores=2, task_count_range=(8, 12)), schemes

        import dataclasses

        d = dataclasses.replace(d, point=small_point)
        return run_sweep(d, sets=10, seed=1)

    def test_rows_align_with_values(self, tiny_result):
        assert len(tiny_result.rows) == 2
        assert tiny_result.schemes == ["ca-tpa", "ffd", "bfd", "wfd", "hybrid"]

    def test_series_extraction(self, tiny_result):
        series = tiny_result.series("sched_ratio")
        assert set(series) == set(tiny_result.schemes)
        assert all(len(v) == 2 for v in series.values())

    def test_ratio_declines_with_load(self, tiny_result):
        series = tiny_result.series("sched_ratio")
        for scheme, values in series.items():
            assert values[0] >= values[1], scheme
