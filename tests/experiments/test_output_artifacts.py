"""Renderer-drift guard for the committed benchmark outputs.

``benchmarks/output/<figure>.txt`` is rendered from
``benchmarks/output/<figure>.artifact.json`` by ``format_sweep``.  These
tests re-render each committed artifact and require the committed text
to match byte-for-byte — so a renderer change that would silently alter
the published figures fails here without re-running any sweep.
"""

from pathlib import Path

import pytest

from repro.engine import SCHEMA_VERSION, SweepArtifact
from repro.experiments import format_sweep, sweep_to_csv

OUTPUT_DIR = Path(__file__).resolve().parents[2] / "benchmarks" / "output"
ARTIFACTS = sorted(OUTPUT_DIR.glob("*.artifact.json"))
FIGURE_NAMES = ("fig1_nsu", "fig2_ifc", "fig3_alpha", "fig4_cores", "fig5_levels")


def test_every_figure_has_a_committed_artifact():
    names = {p.name[: -len(".artifact.json")] for p in ARTIFACTS}
    assert set(FIGURE_NAMES) <= names


@pytest.mark.parametrize("path", ARTIFACTS, ids=lambda p: p.name)
def test_committed_text_matches_rendered_artifact(path):
    artifact = SweepArtifact.from_json(path.read_text())
    assert artifact.schema_version == SCHEMA_VERSION
    committed = path.with_name(path.name.replace(".artifact.json", ".txt"))
    assert committed.read_text() == format_sweep(artifact) + "\n"


@pytest.mark.parametrize("path", ARTIFACTS, ids=lambda p: p.name)
def test_committed_artifacts_round_trip_and_export(path):
    artifact = SweepArtifact.from_json(path.read_text())
    assert SweepArtifact.from_json(artifact.to_json()).to_json() == artifact.to_json()
    # The CSV exporter must accept every committed artifact too.
    csv_text = sweep_to_csv(artifact)
    lines = csv_text.strip().splitlines()
    # header + values x schemes x 4 metrics
    expected = len(artifact.values) * len(artifact.schemes) * 4
    assert len(lines) == expected + 1
