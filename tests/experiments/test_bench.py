"""Unit tests for the bench-compare gate logic (no timing involved)."""

from __future__ import annotations

import json

import pytest

from repro import bench


def _measured(
    pps=10_000.0,
    speedup=3.0,
    overhead=1.01,
    inc_pps=3_000_000.0,
    inc_speedup=3.2,
    serve_qps=1_000.0,
    serve_p95=0.005,
):
    return {
        "serve": {
            "benchmark": "serve-burst",
            "places": 256,
            "qps": serve_qps,
            "place_p95_s": serve_p95,
        },
        "benchmark": "probe-throughput-quick",
        "sets": 2,
        "seed": 2016,
        "probes": 100,
        "batch": {"seconds": 0.01, "probes_per_sec": pps},
        "scalar": {"seconds": 0.03, "probes_per_sec": pps / speedup},
        "speedup": speedup,
        "placement": {
            "benchmark": "placement-loop",
            "sets": 2,
            "seed": 2016,
            "task_count_range": list(bench.PLACEMENT_TASK_RANGE),
            "hypotheses": 100_000,
            "batch": {
                "seconds": 0.1,
                "probes_per_sec": inc_pps / inc_speedup,
            },
            "incremental": {"seconds": 0.03, "probes_per_sec": inc_pps},
            "speedup": inc_speedup,
        },
        "disabled_overhead_ratio": overhead,
        "overhead_samples": 8,
    }


@pytest.fixture
def baselines(tmp_path):
    """Committed-baseline stand-ins: 12000 pps, 3x speedup, 1.01 overhead."""
    (tmp_path / bench.PARTITION_BASELINE).write_text(
        json.dumps(
            {
                "probe": {
                    "batch": {"probes_per_sec": 12_000.0},
                    "speedup": 3.0,
                },
                "placement": {
                    "incremental": {"probes_per_sec": 3_000_000.0},
                    "speedup": 3.2,
                },
            }
        )
    )
    (tmp_path / bench.OVERHEAD_BASELINE).write_text(
        json.dumps({"disabled_overhead_ratio": 1.01, "gate": 1.02})
    )
    (tmp_path / bench.SERVE_BASELINE).write_text(
        json.dumps({"qps": 1_000.0, "place_p95_s": 0.005})
    )
    return tmp_path


class TestCompare:
    def test_all_gates_pass(self, baselines):
        failures, lines = bench.compare_against_baselines(
            _measured(), baselines, gate_ratio=0.5, overhead_gate=1.10
        )
        assert failures == []
        assert any("all gates passed" in line for line in lines)

    def test_throughput_regression_fails(self, baselines):
        failures, _ = bench.compare_against_baselines(
            _measured(pps=1_000.0), baselines, gate_ratio=0.5, overhead_gate=1.10
        )
        assert any("batch probes/sec" in f for f in failures)

    def test_speedup_regression_fails(self, baselines):
        failures, _ = bench.compare_against_baselines(
            _measured(speedup=1.0), baselines, gate_ratio=0.5, overhead_gate=1.10
        )
        assert any("speedup" in f for f in failures)

    def test_overhead_regression_fails(self, baselines):
        failures, _ = bench.compare_against_baselines(
            _measured(overhead=1.5), baselines, gate_ratio=0.5, overhead_gate=1.10
        )
        assert any("disabled overhead" in f for f in failures)

    def test_gate_ratio_is_configurable(self, baselines):
        # 6000 pps vs 12000 committed: fails at 0.9, passes at 0.4.
        strict, _ = bench.compare_against_baselines(
            _measured(pps=6_000.0), baselines, gate_ratio=0.9, overhead_gate=1.10
        )
        loose, _ = bench.compare_against_baselines(
            _measured(pps=6_000.0), baselines, gate_ratio=0.4, overhead_gate=1.10
        )
        assert strict and not loose

    def test_incremental_throughput_regression_fails(self, baselines):
        failures, _ = bench.compare_against_baselines(
            _measured(inc_pps=100_000.0),
            baselines,
            gate_ratio=0.5,
            overhead_gate=1.10,
        )
        assert any("incremental probes/sec" in f for f in failures)

    def test_incremental_slower_than_batch_fails(self, baselines):
        # 0.9x "speedup" clears gate_ratio x committed (0.4 x 3.2) but
        # not the absolute incremental >= batch floor.
        failures, _ = bench.compare_against_baselines(
            _measured(inc_speedup=0.9),
            baselines,
            gate_ratio=0.4,
            overhead_gate=1.10,
        )
        assert any("incremental/batch speedup" in f for f in failures)

    def test_missing_placement_section_is_a_failure(self, baselines):
        stale = json.loads(
            (baselines / bench.PARTITION_BASELINE).read_text()
        )
        del stale["placement"]
        (baselines / bench.PARTITION_BASELINE).write_text(json.dumps(stale))
        failures, _ = bench.compare_against_baselines(
            _measured(), baselines, gate_ratio=0.5, overhead_gate=1.10
        )
        assert any("placement" in f for f in failures)

    def test_missing_baselines_are_failures(self, tmp_path):
        failures, lines = bench.compare_against_baselines(
            _measured(), tmp_path, gate_ratio=0.5, overhead_gate=1.10
        )
        assert any(bench.PARTITION_BASELINE in f for f in failures)
        assert any(bench.OVERHEAD_BASELINE in f for f in failures)
        assert any(bench.SERVE_BASELINE in f for f in failures)

    def test_serve_qps_regression_fails(self, baselines):
        failures, _ = bench.compare_against_baselines(
            _measured(serve_qps=100.0),
            baselines,
            gate_ratio=0.5,
            overhead_gate=1.10,
        )
        assert any("serve qps" in f for f in failures)

    def test_serve_p95_latency_regression_fails(self, baselines):
        # Ceiling is committed / gate_ratio = 0.005 / 0.5 = 0.010s.
        failures, _ = bench.compare_against_baselines(
            _measured(serve_p95=0.011),
            baselines,
            gate_ratio=0.5,
            overhead_gate=1.10,
        )
        assert any("serve place p95" in f for f in failures)

    def test_serve_p95_just_under_ceiling_passes(self, baselines):
        failures, _ = bench.compare_against_baselines(
            _measured(serve_p95=0.009),
            baselines,
            gate_ratio=0.5,
            overhead_gate=1.10,
        )
        assert not any("serve" in f for f in failures)

    def test_report_lines_mark_failures(self, baselines):
        _, lines = bench.compare_against_baselines(
            _measured(pps=1.0), baselines, gate_ratio=0.5, overhead_gate=1.10
        )
        report = "\n".join(lines)
        assert "FAIL" in report
        assert "gate(s) FAILED" in report


class TestRunProbeBench:
    def test_tiny_measurement_has_expected_shape(self):
        measured = bench.run_probe_bench(sets=1)
        assert measured["probes"] > 0
        assert measured["batch"]["probes_per_sec"] > 0
        assert measured["scalar"]["probes_per_sec"] > 0
        assert measured["speedup"] > 0
        assert measured["disabled_overhead_ratio"] > 0
        placement = measured["placement"]
        assert placement["hypotheses"] > 0
        assert placement["batch"]["probes_per_sec"] > 0
        assert placement["incremental"]["probes_per_sec"] > 0
        assert placement["speedup"] > 0
        serve = measured["serve"]
        assert serve["qps"] > 0
        assert serve["accepted"] > 0
        assert 0 < serve["place_p50_s"] <= serve["place_p95_s"]
