"""Tests for the shared types module and the public package surface."""

import math

import pytest

import repro
from repro.types import (
    EPS,
    INFEASIBLE,
    GenerationError,
    ModelError,
    PartitionError,
    ReproError,
    SimulationError,
)


class TestConstants:
    def test_eps_is_small_positive(self):
        assert 0.0 < EPS < 1e-6

    def test_infeasible_is_positive_infinity(self):
        assert math.isinf(INFEASIBLE) and INFEASIBLE > 0


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc", [ModelError, PartitionError, GenerationError, SimulationError]
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_catch_all(self):
        with pytest.raises(ReproError):
            raise PartitionError("x")


class TestPublicSurface:
    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_dunder_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.model",
            "repro.analysis",
            "repro.partition",
            "repro.gen",
            "repro.sched",
            "repro.metrics",
            "repro.experiments",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        import importlib

        mod = importlib.import_module(module)
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.{name}"

    def test_partition_taskset_forwards_kwargs(self):
        from repro.model import MCTask, MCTaskSet

        ts = MCTaskSet([MCTask(wcets=(1.0,), period=10.0)], levels=1)
        res = repro.partition_taskset(ts, cores=1, scheme="ca-tpa", alpha=0.2)
        assert res.schedulable
