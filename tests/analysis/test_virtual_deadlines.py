"""Tests for the virtual-deadline assignment protocol."""

import pytest

from repro.analysis import assign_virtual_deadlines, lambda_factors
from repro.model import MCTask, MCTaskSet
from repro.types import ModelError


def dual_set(lo_lo=0.3, hi_lo=0.2, hi_hi=0.5):
    return MCTaskSet(
        [
            MCTask.from_utilizations([lo_lo], 10.0, name="lo"),
            MCTask.from_utilizations([hi_lo, hi_hi], 20.0, name="hi"),
        ],
        levels=2,
    )


class TestDualAssignment:
    def test_feasible_set_gets_plan(self):
        plan = assign_virtual_deadlines(dual_set())
        assert plan is not None
        assert plan.k_star == 1
        assert plan.levels == 2

    def test_infeasible_set_gets_none(self):
        assert assign_virtual_deadlines(dual_set(0.9, 0.6, 0.95)) is None

    def test_min_picks_own_level_runs_plain_edf(self):
        # U_2(2) = 0.5 < U_2(1)/(1-U_2(2)) = 0.3/0.5 = 0.6: the min term
        # selects U_2(2) and no deadline shrinking is needed at all.
        plan = assign_virtual_deadlines(dual_set(0.4, 0.3, 0.5))
        assert plan.top_level_restores
        assert plan.scale(task_level=2, mode=1) == 1.0
        assert plan.scale(task_level=2, mode=2) == 1.0
        assert plan.scale(task_level=1, mode=1) == 1.0

    def test_ratio_branch_scales_hi_by_one_minus_u22(self):
        # ratio = 0.1/(1-0.8) = 0.5 < 0.8 = U_2(2): the min term selects
        # the ratio; HI deadlines are scaled by 1 - U_2(2) (ESA'11 choice)
        # in every mode.
        ts = dual_set(0.4, 0.1, 0.8)
        plan = assign_virtual_deadlines(ts)
        assert not plan.top_level_restores
        assert plan.scale(task_level=2, mode=1) == pytest.approx(1.0 - 0.8)
        assert plan.scale(task_level=2, mode=2) == pytest.approx(1.0 - 0.8)
        assert plan.scale(task_level=1, mode=1) == 1.0

    def test_scaled_demand_fits_under_ratio_branch(self):
        # The whole point of the 1-U_2(2) scale: LO-mode demand of HI
        # tasks under shrunk deadlines is U_2(1)/(1-U_2(2)); with the LO
        # tasks the core is exactly the Eq. (7) demand, which fits.
        lo_lo, hi_lo, hi_hi = 0.4, 0.1, 0.8
        plan = assign_virtual_deadlines(dual_set(lo_lo, hi_lo, hi_hi))
        scale = plan.scale(2, 1)
        assert lo_lo + hi_lo / scale <= 1.0 + 1e-12

    def test_dropped_task_query_rejected(self):
        plan = assign_virtual_deadlines(dual_set())
        with pytest.raises(ModelError):
            plan.scale(task_level=1, mode=2)

    def test_bad_mode_rejected(self):
        plan = assign_virtual_deadlines(dual_set())
        with pytest.raises(ModelError):
            plan.scale(task_level=2, mode=3)
        with pytest.raises(ModelError):
            plan.scale(task_level=2, mode=0)

    def test_level_above_system_rejected(self):
        plan = assign_virtual_deadlines(dual_set())
        with pytest.raises(ModelError):
            plan.scale(task_level=3, mode=1)


class TestMultiLevel:
    def make_k1_fails(self):
        """K=3 subset where condition k=1 fails but k=2 holds (k* = 2)."""
        return MCTaskSet(
            [
                MCTask.from_utilizations([0.90], 50.0),
                MCTask.from_utilizations([0.010, 0.15], 60.0),
                MCTask.from_utilizations([0.005, 0.01, 0.05], 70.0),
            ],
            levels=3,
        )

    def test_pivot_two_uses_lambda_shrink_below(self):
        ts = self.make_k1_fails()
        plan = assign_virtual_deadlines(ts)
        assert plan is not None and plan.k_star == 2
        lambdas = lambda_factors(ts.level_matrix())
        # Mode 1 (< k*): tasks of level > 1 scale by lambda_2.
        assert plan.scale(3, 1) == pytest.approx(lambdas[1])
        assert plan.scale(2, 1) == pytest.approx(lambdas[1])
        assert plan.scale(1, 1) == 1.0
        # Mode 2 (= k*): L_2 restored; L_3 per the min-term branch.
        assert plan.scale(2, 2) == 1.0

    def test_own_level_task_never_scaled_below_pivot(self):
        plan = assign_virtual_deadlines(self.make_k1_fails())
        assert plan.scale(1, 1) == 1.0  # mode 1 < k*: own level runs full

    def test_easy_three_level_restores_everything(self):
        ts = MCTaskSet(
            [
                MCTask.from_utilizations([0.2], 50.0),
                MCTask.from_utilizations([0.1, 0.2], 60.0),
                MCTask.from_utilizations([0.1, 0.15, 0.3], 70.0),
            ],
            levels=3,
        )
        plan = assign_virtual_deadlines(ts)
        assert plan.k_star == 1
        # min term: U_3(3)=0.3 vs U_3(2)/(1-U_3(3)) = 0.15/0.7 ~ 0.214:
        # ratio is smaller -> L_3 scaled by 1-U_3(3)=0.7, others full.
        assert not plan.top_level_restores
        assert plan.scale(3, 1) == pytest.approx(0.7)
        assert plan.scale(2, 1) == 1.0
        assert plan.scale(2, 2) == 1.0
        assert plan.scale(3, 3) == pytest.approx(0.7)

    def test_single_level_plain_edf(self):
        ts = MCTaskSet([MCTask.from_utilizations([0.5], 10.0)], levels=1)
        plan = assign_virtual_deadlines(ts)
        assert plan.k_star == 1
        assert plan.scale(1, 1) == 1.0

    def test_single_level_overload_is_none(self):
        ts = MCTaskSet([MCTask.from_utilizations([1.2], 10.0)], levels=1)
        assert assign_virtual_deadlines(ts) is None

    def test_scales_positive_and_at_most_one(self, rng):
        from tests.conftest import random_taskset

        plans = 0
        for _ in range(80):
            ts = random_taskset(rng, n=6, levels=4, max_u=0.15)
            plan = assign_virtual_deadlines(ts)
            if plan is None:
                continue
            plans += 1
            for mode in range(1, 5):
                for level in range(mode, 5):
                    s = plan.scale(level, mode)
                    assert 0.0 < s <= 1.0
        assert plans > 10
