"""Tests for utilization contributions and the CA-TPA ordering rules."""

import numpy as np
import pytest

from repro.analysis import (
    contribution_matrix,
    contribution_order,
    utilization_contributions,
)
from repro.model import MCTask, MCTaskSet


def ts_from_utils(rows, period=100.0, levels=None):
    tasks = [MCTask.from_utilizations([u for u in row if u > 0] or [1e-9], period)
             for row in rows]
    return MCTaskSet(tasks, levels=levels)


class TestContributionMatrix:
    def test_shares_sum_to_one_per_level(self):
        ts = MCTaskSet(
            [
                MCTask.from_utilizations([0.2], 10.0),
                MCTask.from_utilizations([0.1, 0.3], 10.0),
                MCTask.from_utilizations([0.3, 0.5], 10.0),
            ],
            levels=2,
        )
        contrib = contribution_matrix(ts)
        # Level-1 shares over all tasks, level-2 shares over HI tasks.
        np.testing.assert_allclose(contrib[:, 0].sum(), 1.0)
        np.testing.assert_allclose(contrib[:, 1].sum(), 1.0)
        # Hand values: U(1) = 0.6, U(2) = 0.8
        assert contrib[0, 0] == pytest.approx(0.2 / 0.6)
        assert contrib[2, 1] == pytest.approx(0.5 / 0.8)

    def test_zero_total_level_contributes_zero(self):
        # K=2 but no HI tasks at all: U(2) = 0, shares must be 0 (not nan).
        ts = MCTaskSet([MCTask.from_utilizations([0.2], 10.0)], levels=2)
        contrib = contribution_matrix(ts)
        assert contrib[0, 1] == 0.0
        assert np.isfinite(contrib).all()

    def test_overall_is_rowwise_max(self):
        ts = MCTaskSet(
            [
                MCTask.from_utilizations([0.1, 0.6], 10.0),
                MCTask.from_utilizations([0.4], 10.0),
            ],
            levels=2,
        )
        # U(1) = 0.5, U(2) = 0.6
        overall = utilization_contributions(ts)
        assert overall[0] == pytest.approx(max(0.1 / 0.5, 0.6 / 0.6))
        assert overall[1] == pytest.approx(0.4 / 0.5)


class TestOrdering:
    def test_descending_contribution(self):
        ts = MCTaskSet(
            [
                MCTask.from_utilizations([0.1], 10.0),
                MCTask.from_utilizations([0.5], 10.0),
                MCTask.from_utilizations([0.2], 10.0),
            ],
            levels=1,
        )
        assert contribution_order(ts) == [1, 2, 0]

    def test_tie_broken_by_criticality(self):
        # Two tasks with identical overall contribution, different levels.
        ts = MCTaskSet(
            [
                MCTask.from_utilizations([0.3], 10.0),  # C = 0.3/0.6 = 0.5, l=1
                MCTask.from_utilizations([0.3, 0.4], 10.0),  # C = max(0.5, 1.0)=1, l=2
                MCTask.from_utilizations([0.3], 10.0),
            ],
            levels=2,
        )
        order = contribution_order(ts)
        assert order[0] == 1  # highest contribution first
        # remaining two tie at 0.5 with equal level -> index order
        assert order[1:] == [0, 2]

    def test_tie_on_contribution_prefers_higher_level(self):
        # Engineer an exact tie across levels: task A (l=1) and task B
        # (l=2) both contribute exactly 0.5 overall.
        # Binary fractions so the tie is exact in floating point:
        # U(1) = 0.25 + 0.125 + 0.125 = 0.5, U(2) = 0.25 + 0.25 = 0.5.
        ts = MCTaskSet(
            [
                MCTask.from_utilizations([0.25], 10.0),         # share1 = 0.5
                MCTask.from_utilizations([0.125, 0.25], 10.0),  # share2 = 0.5
                MCTask.from_utilizations([0.125, 0.25], 10.0),
            ],
            levels=2,
        )
        contrib = utilization_contributions(ts)
        assert contrib[0] == contrib[1] == 0.5
        order = contribution_order(ts)
        # B (l=2) outranks A (l=1) despite equal contribution; equal pair
        # of HI tasks keeps index order.
        assert order == [1, 2, 0]

    def test_order_is_permutation(self, rng):
        from tests.conftest import random_taskset

        for _ in range(20):
            ts = random_taskset(rng, n=12, levels=4)
            order = contribution_order(ts)
            assert sorted(order) == list(range(12))
