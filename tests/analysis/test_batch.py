"""Batch-vs-scalar equivalence of the vectorized Theorem-1 machinery.

The batch engine promises *bit-identical* results to the scalar path —
including the awkward corners: undefined (NaN) lambda chains, infeasible
matrices (``inf`` core utilization), and the ``K = 1`` degenerate case.
These properties are what lets the partitioners switch paths without
changing a single placement decision.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    available_utilizations,
    batch_available_utilizations,
    batch_capacity_terms,
    batch_core_utilization,
    batch_demand_terms,
    batch_is_feasible_core,
    batch_lambda_factors,
    batch_worst_case_load,
    capacity_terms,
    core_utilization,
    demand_terms,
    is_feasible_core,
    lambda_factors,
    worst_case_load,
)
from repro.types import ModelError

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
# Entries up to ~1.6 routinely produce undefined lambda factors
# (denominator <= 0), failed conditions, and infeasible matrices, so the
# NaN/-inf/inf code paths all get exercised.


@st.composite
def level_matrix_stacks(draw):
    k = draw(st.integers(min_value=1, max_value=6))
    m = draw(st.integers(min_value=1, max_value=8))
    entries = st.floats(min_value=0.0, max_value=1.6, allow_nan=False)
    flat = draw(
        st.lists(entries, min_size=m * k * k, max_size=m * k * k)
    )
    mats = np.array(flat, dtype=np.float64).reshape(m, k, k)
    # Level matrices are lower-triangular by construction (no utilization
    # above a task's own criticality); zero the strict upper triangle on
    # half the stacks so both shapes are covered.
    if draw(st.booleans()):
        mats *= np.tril(np.ones((k, k)))
    return mats


STACK_SETTINGS = settings(max_examples=150, deadline=None)


# ----------------------------------------------------------------------
# Element-wise equivalence (bit-identical, NaN-aware)
# ----------------------------------------------------------------------
class TestBatchMatchesScalar:
    @STACK_SETTINGS
    @given(level_matrix_stacks())
    def test_lambda_factors(self, mats):
        batch = batch_lambda_factors(mats)
        scalar = np.stack([lambda_factors(mat) for mat in mats])
        np.testing.assert_array_equal(batch, scalar)

    @STACK_SETTINGS
    @given(level_matrix_stacks())
    def test_demand_terms(self, mats):
        batch = batch_demand_terms(mats)
        scalar = np.stack([demand_terms(mat) for mat in mats])
        np.testing.assert_array_equal(batch, scalar)

    @STACK_SETTINGS
    @given(level_matrix_stacks())
    def test_capacity_terms(self, mats):
        batch = batch_capacity_terms(mats)
        scalar = np.stack([capacity_terms(mat) for mat in mats])
        np.testing.assert_array_equal(batch, scalar)

    @STACK_SETTINGS
    @given(level_matrix_stacks())
    def test_available_utilizations(self, mats):
        batch = batch_available_utilizations(mats)
        scalar = np.stack([available_utilizations(mat) for mat in mats])
        np.testing.assert_array_equal(batch, scalar)

    @STACK_SETTINGS
    @given(level_matrix_stacks(), st.sampled_from(["max", "min"]))
    def test_core_utilization(self, mats, rule):
        batch = batch_core_utilization(mats, rule=rule)
        scalar = np.array([core_utilization(mat, rule=rule) for mat in mats])
        np.testing.assert_array_equal(batch, scalar)

    @STACK_SETTINGS
    @given(level_matrix_stacks())
    def test_worst_case_load(self, mats):
        batch = batch_worst_case_load(mats)
        scalar = np.array([worst_case_load(mat) for mat in mats])
        np.testing.assert_array_equal(batch, scalar)

    @STACK_SETTINGS
    @given(level_matrix_stacks())
    def test_is_feasible_core(self, mats):
        batch = batch_is_feasible_core(mats)
        scalar = np.array([is_feasible_core(mat) for mat in mats])
        np.testing.assert_array_equal(batch, scalar)


# ----------------------------------------------------------------------
# Targeted corners
# ----------------------------------------------------------------------
class TestCorners:
    def test_undefined_lambda_chain_is_nan_from_first_failure(self):
        # U_1(1) >= 1 kills the j = 2 denominator: every later lambda
        # must be NaN even if its own denominator would be fine.
        mat = np.zeros((3, 3))
        mat[0, 0] = 1.0
        stack = np.stack([mat, np.zeros((3, 3))])
        lambdas = batch_lambda_factors(stack)
        assert np.isnan(lambdas[0, 1]) and np.isnan(lambdas[0, 2])
        np.testing.assert_array_equal(lambdas[1], np.array([0.0, 0.0, 0.0]))

    def test_infeasible_rows_are_inf_feasible_rows_finite(self):
        heavy = np.full((2, 2), 2.0)
        light = np.array([[0.1, 0.0], [0.1, 0.3]])
        utils = batch_core_utilization(np.stack([heavy, light]))
        assert np.isinf(utils[0])
        assert np.isfinite(utils[1])
        assert utils[1] == core_utilization(light)

    def test_k1_degenerates_to_plain_edf(self):
        stack = np.array([[[0.4]], [[1.2]]])
        utils = batch_core_utilization(stack)
        assert utils[0] == pytest.approx(0.4)
        assert np.isinf(utils[1])

    def test_bad_shapes_rejected(self):
        with pytest.raises(ModelError):
            batch_lambda_factors(np.zeros((2, 2)))
        with pytest.raises(ModelError):
            batch_core_utilization(np.zeros((2, 3, 2)))
        with pytest.raises(ModelError):
            batch_core_utilization(np.zeros((1, 2, 2)), rule="median")

    def test_empty_stack_allowed(self):
        # Zero matrices in, zero answers out — the Partition cache feeds
        # exactly the stale subset, which may be anything from 0 to M.
        out = batch_core_utilization(np.zeros((0, 3, 3)))
        assert out.shape == (0,)
