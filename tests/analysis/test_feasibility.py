"""Tests for the feasibility facade and the simple Eq. (4) test."""

import numpy as np
import pytest

from repro.analysis import (
    is_feasible_core,
    is_feasible_partition,
    is_feasible_plain_edf,
    is_feasible_simple,
    infeasible_cores,
    worst_case_load,
)
from repro.model import MCTask, MCTaskSet, Partition
from repro.types import ModelError


class TestSimple:
    def test_worst_case_load_is_trace(self):
        mat = np.array([[0.2, 0.0], [0.3, 0.5]])
        assert worst_case_load(mat) == pytest.approx(0.7)

    def test_eq4_accepts_at_one(self):
        assert is_feasible_simple(np.array([[0.4, 0.0], [0.1, 0.6]]))

    def test_eq4_rejects_above_one(self):
        assert not is_feasible_simple(np.array([[0.5, 0.0], [0.1, 0.6]]))

    def test_rejects_non_square(self):
        with pytest.raises(ModelError):
            worst_case_load(np.zeros((1, 2)))

    def test_plain_edf(self):
        assert is_feasible_plain_edf([0.5, 0.5])
        assert not is_feasible_plain_edf([0.6, 0.5])


class TestPartitionFeasibility:
    @pytest.fixture
    def ts(self):
        return MCTaskSet(
            [
                MCTask.from_utilizations([0.6], 10.0),
                MCTask.from_utilizations([0.3, 0.7], 10.0),
                MCTask.from_utilizations([0.5], 10.0),
            ],
            levels=2,
        )

    def test_good_partition(self, ts):
        part = Partition(ts, cores=2)
        part.assign(0, 0)  # core 0: 0.6
        part.assign(2, 0)  # core 0: 1.1 -> infeasible!
        part.assign(1, 1)
        assert infeasible_cores(part) == [0]
        assert not is_feasible_partition(part)

    def test_feasible_split(self, ts):
        part = Partition(ts, cores=2)
        part.assign(0, 0)
        part.assign(1, 1)
        part.assign(2, 1)
        # core 1: U_1(1)=0.5, U_2(1)=0.3, U_2(2)=0.7
        # Eq.(7): 0.5 + min(0.7, 0.3/0.3=1.0) = 1.2 > 1 -> infeasible
        assert infeasible_cores(part) == [1]
        part2 = Partition(ts, cores=2)
        part2.assign(0, 0)
        part2.assign(2, 0)  # 1.1 > 1 still bad; try the only good split
        part2.assign(1, 1)
        assert not is_feasible_partition(part2)
        part3 = Partition(ts, cores=3)
        part3.assign(0, 0)
        part3.assign(1, 1)
        part3.assign(2, 2)
        assert is_feasible_partition(part3)

    def test_empty_cores_ignored(self, ts):
        part = Partition(ts, cores=4)
        part.assign(0, 0)
        part.assign(2, 1)
        assert infeasible_cores(part) == []

    def test_core_facade_matches_components(self, rng):
        from tests.conftest import random_taskset
        from repro.analysis import is_feasible_theorem1

        for _ in range(200):
            ts = random_taskset(rng, n=5, levels=3, max_u=0.3)
            mat = ts.level_matrix()
            assert is_feasible_core(mat) == (
                is_feasible_simple(mat) or is_feasible_theorem1(mat)
            )
