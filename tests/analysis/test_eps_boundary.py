"""Regression: every unit-capacity test measures the boundary the same way.

Hypothesis found a real disagreement at ``v = 1.000000000001``: the old
phrasing ``v <= 1.0 + EPS`` accepts it (``1.0 + EPS`` rounds to exactly
that float), while Theorem 1's slack chain computes ``1.0 - v`` exactly
(Sterbenz) and rejects it.  All admission comparisons now go through
:func:`repro.types.fits_unit_capacity`, so Eq. (4), Eq. (7) and
Theorem 1 agree bit-for-bit on the boundary.
"""

import numpy as np

from repro.analysis.batch import batch_is_feasible_core
from repro.analysis.dual import DualUtilizations, is_feasible_dual
from repro.analysis.edfvd import is_feasible_theorem1
from repro.analysis.feasibility import is_feasible_core
from repro.analysis.simple import is_feasible_plain_edf, is_feasible_simple
from repro.types import EPS, fits_unit_capacity

#: The falsifying example: the float just above 1 whose distance to 1.0
#: exceeds EPS, but which the rounded constant ``1.0 + EPS`` equals.
JUST_ABOVE = 1.000000000001


class TestFitsUnitCapacity:
    def test_boundary_uses_exact_subtraction(self):
        assert JUST_ABOVE - 1.0 > EPS  # genuinely over capacity
        assert not fits_unit_capacity(JUST_ABOVE)
        assert fits_unit_capacity(1.0)
        assert fits_unit_capacity(1.0 + 0.5 * EPS)
        assert fits_unit_capacity(0.0)

    def test_elementwise_on_arrays(self):
        out = fits_unit_capacity(np.array([0.5, 1.0, JUST_ABOVE, 2.0]))
        assert out.tolist() == [True, True, False, False]


class TestBoundaryAgreement:
    def test_dual_eq7_matches_theorem1_at_falsifying_example(self):
        u = DualUtilizations(lo_lo=0.0, hi_lo=0.0, hi_hi=JUST_ABOVE)
        mat = np.array([[0.0, 0.0], [0.0, JUST_ABOVE]])
        assert is_feasible_dual(u) == is_feasible_theorem1(mat) is False

    def test_eq4_fast_path_matches_theorem1_at_boundary(self):
        # A core whose trace is the falsifying value: Eq. (4) must not
        # admit what the Theorem-1 chain rejects, or is_feasible_core's
        # "fast path never changes the answer" contract breaks.
        mat = np.array([[0.0, 0.0], [0.0, JUST_ABOVE]])
        assert not is_feasible_simple(mat)
        assert not is_feasible_core(mat)
        assert not batch_is_feasible_core(mat[None, :, :])[0]

    def test_plain_edf_boundary(self):
        assert is_feasible_plain_edf([1.0])
        assert not is_feasible_plain_edf([JUST_ABOVE])
