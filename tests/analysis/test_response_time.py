"""Tests for the AMC-rtb fixed-priority analysis."""

import numpy as np
import pytest

from repro.analysis import (
    amc_rtb_schedulable,
    audsley_assignment,
    deadline_monotonic_order,
    response_time_hi,
    response_time_lo,
)
from repro.model import MCTask, MCTaskSet
from repro.types import ModelError


def dual(rows):
    return MCTaskSet([MCTask(wcets=w, period=p) for w, p in rows], levels=2)


class TestResponseTimeLo:
    def test_single_task(self):
        ts = dual([((3.0,), 10.0)])
        assert response_time_lo(ts, [0], 0) == pytest.approx(3.0)

    def test_classic_two_task_rta(self):
        # hp: c=2, p=5; lp: c=3, p=20 -> hp runs [0,2], lp runs [2,5]:
        # the fixed point of R = 3 + ceil(R/5)*2 is exactly 5.
        ts = dual([((2.0,), 5.0), ((3.0,), 20.0)])
        assert response_time_lo(ts, [0, 1], 1) == pytest.approx(5.0)

    def test_interference_past_boundary(self):
        # lp c=4: R = 4 + ceil(R/5)*2 -> 6 -> 8 -> 8 (two hp jobs).
        ts = dual([((2.0,), 5.0), ((4.0,), 20.0)])
        assert response_time_lo(ts, [0, 1], 1) == pytest.approx(8.0)

    def test_unschedulable_returns_none(self):
        ts = dual([((4.0,), 5.0), ((3.0,), 10.0)])
        # R_1 = 3 + ceil(R/5)*4 -> 7 -> 11 > 10
        assert response_time_lo(ts, [0, 1], 1) is None

    def test_priority_order_matters(self):
        ts = dual([((2.0,), 5.0), ((3.0,), 20.0)])
        # Give the long task top priority: short task R = 2 + 3 = 5 <= 5.
        assert response_time_lo(ts, [1, 0], 0) == pytest.approx(5.0)

    def test_exact_multiple_boundary(self):
        # Interference window exactly k periods: ceil must not over-count.
        ts = dual([((2.0,), 4.0), ((2.0,), 8.0)])
        # R = 2 + ceil(R/4)*2 -> 4 -> 2+2*... : R=4: ceil(4/4)=1 -> 4 ok.
        assert response_time_lo(ts, [0, 1], 1) == pytest.approx(4.0)


class TestResponseTimeHi:
    def test_hi_only_core(self):
        ts = dual([((2.0, 5.0), 20.0)])
        r_lo = response_time_lo(ts, [0], 0)
        assert response_time_hi(ts, [0], 0, r_lo) == pytest.approx(5.0)

    def test_lo_interference_frozen_at_rlo(self):
        # LO task at top priority interferes only within R^LO.
        ts = dual([((2.0,), 10.0), ((3.0, 6.0), 20.0)])
        r_lo = response_time_lo(ts, [0, 1], 1)  # 3 + 2 = 5
        assert r_lo == pytest.approx(5.0)
        # R^HI = 6 + ceil(5/10)*2 = 8 <= 20.
        assert response_time_hi(ts, [0, 1], 1, r_lo) == pytest.approx(8.0)

    def test_hi_interference_uses_hi_budgets(self):
        ts = dual([((1.0, 4.0), 10.0), ((2.0, 5.0), 30.0)])
        r_lo = response_time_lo(ts, [0, 1], 1)  # 2 + 1 = 3
        # R^HI = 5 + ceil(R/10)*4 -> 9 -> 9 (ceil(9/10)=1).
        assert response_time_hi(ts, [0, 1], 1, r_lo) == pytest.approx(9.0)

    def test_lo_task_rejected(self):
        ts = dual([((2.0,), 10.0)])
        with pytest.raises(ModelError):
            response_time_hi(ts, [0], 0, 2.0)


class TestSchedulability:
    def test_whole_set(self):
        ts = dual([((2.0,), 10.0), ((3.0, 6.0), 20.0), ((2.0,), 25.0)])
        order = deadline_monotonic_order(ts)
        assert amc_rtb_schedulable(ts, order)

    def test_bad_priorities_rejected(self):
        ts = dual([((2.0,), 10.0)])
        with pytest.raises(ModelError):
            amc_rtb_schedulable(ts, [0, 0])

    def test_k3_rejected(self):
        ts = MCTaskSet([MCTask(wcets=(1.0, 2.0, 3.0), period=10.0)], levels=3)
        with pytest.raises(ModelError):
            amc_rtb_schedulable(ts, [0])

    def test_dm_order_ties(self):
        ts = dual([((1.0,), 10.0), ((1.0, 2.0), 10.0)])
        # equal periods: higher criticality first
        assert deadline_monotonic_order(ts) == [1, 0]


class TestAudsley:
    def test_finds_assignment_dm_misses(self):
        # Classic: DM can fail where Audsley succeeds under AMC-rtb.
        # Rather than hand-crafting, assert dominance on random sets.
        pass

    def test_dominates_dm_on_random_sets(self, rng):
        from tests.conftest import random_taskset

        dm_ok = aud_ok = 0
        for _ in range(120):
            ts = random_taskset(rng, n=5, levels=2, max_u=0.3)
            dm = amc_rtb_schedulable(ts, deadline_monotonic_order(ts))
            aud = audsley_assignment(ts)
            dm_ok += dm
            aud_ok += aud is not None
            if dm:
                assert aud is not None  # Audsley is optimal
        assert aud_ok >= dm_ok

    def test_assignment_is_schedulable(self, rng):
        from tests.conftest import random_taskset

        found = 0
        for _ in range(40):
            ts = random_taskset(rng, n=5, levels=2, max_u=0.25)
            a = audsley_assignment(ts)
            if a is not None:
                found += 1
                assert amc_rtb_schedulable(ts, list(a.priorities))
                assert a.priority_of(a.priorities[0]) == 0
        assert found > 10

    def test_returns_none_on_overload(self):
        ts = dual([((8.0,), 10.0), ((7.0,), 10.0)])
        assert audsley_assignment(ts) is None


class TestSimulationValidation:
    def test_accepted_sets_never_miss_under_fp(self, rng):
        from repro.sched import LevelScenario, RandomScenario
        from repro.sched.fp_sim import fp_core_simulator
        from tests.conftest import random_taskset

        validated = 0
        for trial in range(25):
            ts = random_taskset(rng, n=4, levels=2, max_u=0.25)
            a = audsley_assignment(ts)
            if a is None:
                continue
            validated += 1
            horizon = 25.0 * max(t.period for t in ts)
            for scenario in (LevelScenario(2), RandomScenario(0.5)):
                report = fp_core_simulator(
                    ts, a, scenario, np.random.default_rng(trial), horizon
                ).run()
                assert report.miss_count == 0
        assert validated > 8
