"""Tests for the DBF-based dual-criticality analysis (extension)."""

import numpy as np
import pytest

from repro.analysis import is_feasible_theorem1
from repro.analysis.dbf import (
    DualPerTaskPlan,
    dbf_step,
    demand_horizon,
    hi_mode_demand,
    is_feasible_dbf,
    lo_mode_demand,
    tune_virtual_deadlines,
)
from repro.model import MCTask, MCTaskSet
from repro.types import ModelError


def dual_set(rows, levels=2):
    """rows: list of (wcets tuple, period)."""
    return MCTaskSet(
        [MCTask(wcets=w, period=p) for w, p in rows], levels=levels
    )


class TestDbfStep:
    def test_zero_before_first_deadline(self):
        assert dbf_step(4.9, period=10.0, deadline=5.0, wcet=2.0) == 0.0

    def test_steps_at_deadlines(self):
        assert dbf_step(5.0, 10.0, 5.0, 2.0) == 2.0
        assert dbf_step(14.9, 10.0, 5.0, 2.0) == 2.0
        assert dbf_step(15.0, 10.0, 5.0, 2.0) == 4.0
        assert dbf_step(35.0, 10.0, 5.0, 2.0) == 8.0

    def test_implicit_deadline_classic(self):
        # dbf(t) = floor(t/p) * c for deadline = period.
        assert dbf_step(19.0, 10.0, 10.0, 3.0) == 3.0
        assert dbf_step(20.0, 10.0, 10.0, 3.0) == 6.0


class TestHorizon:
    def test_rejects_saturated_utilization(self):
        assert demand_horizon(1.0, 5.0, 10.0) is None
        assert demand_horizon(1.2, 5.0, 10.0) is None

    def test_rejects_pathological_bound(self):
        assert demand_horizon(1.0 - 1e-8, 5.0, 10.0) is None

    def test_normal_bound(self):
        assert demand_horizon(0.5, 5.0, 10.0) == pytest.approx(10.0)
        assert demand_horizon(0.9, 5.0, 1.0) == pytest.approx(50.0)


class TestModeDemands:
    def test_lo_demand_counts_everyone_at_lo_budgets(self):
        ts = dual_set([((2.0,), 10.0), ((1.0, 4.0), 10.0)])
        deadlines = [10.0, 5.0]
        # at t=10: LO task 1 job (2.0); HI task jobs with vd 5: floor((10-5)/10)+1 = 1 -> 1.0
        assert lo_mode_demand(ts, deadlines, 10.0) == pytest.approx(3.0)

    def test_hi_demand_counts_hi_tasks_at_hi_budgets(self):
        ts = dual_set([((2.0,), 10.0), ((1.0, 4.0), 10.0)])
        deadlines = [10.0, 6.0]
        # offset = 10 - 6 = 4; at t=4 one job of c(2)=4
        assert hi_mode_demand(ts, deadlines, 4.0) == pytest.approx(4.0)
        assert hi_mode_demand(ts, deadlines, 3.9) == 0.0

    def test_wrong_levels_rejected(self):
        three = dual_set([((1.0, 2.0, 3.0), 10.0)], levels=3)
        with pytest.raises(ModelError):
            lo_mode_demand(three, [10.0], 5.0)


class TestFeasibility:
    def test_easy_set_passes_with_reasonable_deadlines(self):
        ts = dual_set([((2.0,), 10.0), ((1.0, 3.0), 10.0)])
        assert is_feasible_dbf(ts, [10.0, 6.0])

    def test_full_deadlines_fail_with_hi_tasks(self):
        # d_i = p_i gives HI carry-over demand at t=0+: always infeasible
        # in HI mode when a HI task exists.
        ts = dual_set([((1.0, 3.0), 10.0)])
        assert not is_feasible_dbf(ts, [10.0])

    def test_deadline_validation(self):
        ts = dual_set([((2.0,), 10.0)])
        with pytest.raises(ModelError):
            is_feasible_dbf(ts, [0.0])
        with pytest.raises(ModelError):
            is_feasible_dbf(ts, [11.0])
        with pytest.raises(ModelError):
            is_feasible_dbf(ts, [5.0, 5.0])


class TestTuning:
    def test_tunes_a_feasible_set(self):
        ts = dual_set([((2.0,), 10.0), ((1.0, 3.0), 10.0), ((2.0, 5.0), 20.0)])
        plan = tune_virtual_deadlines(ts)
        assert plan is not None
        for i, t in enumerate(ts):
            assert 0 < plan.deadlines[i] <= t.period
        # LO-only tasks keep their full deadlines.
        assert plan.deadlines[0] == 10.0

    def test_rejects_overload(self):
        ts = dual_set([((6.0,), 10.0), ((3.0, 8.0), 10.0)])
        assert tune_virtual_deadlines(ts) is None

    def test_dbf_dominates_theorem1_on_random_sets(self, rng):
        """Wherever Theorem 1 accepts, the tuned DBF test almost always
        accepts too, and it accepts strictly more overall."""
        from repro.gen import WorkloadConfig, generate_taskset

        cfg = WorkloadConfig(cores=1, levels=2, nsu=0.75, task_count_range=(6, 6))
        dbf_only = thm_only = agree = 0
        for i in range(80):
            r = np.random.default_rng(np.random.SeedSequence(3, spawn_key=(i,)))
            ts = generate_taskset(cfg, r)
            thm = is_feasible_theorem1(ts.level_matrix())
            dbf = tune_virtual_deadlines(ts) is not None
            dbf_only += dbf and not thm
            thm_only += thm and not dbf
            agree += thm == dbf
        assert dbf_only > thm_only
        assert agree > 40

    def test_tuned_plans_survive_simulation(self, rng):
        """DBF-accepted subsets never miss under in-model scenarios."""
        from repro.gen import WorkloadConfig, generate_taskset
        from repro.sched import CoreSimulator, LevelScenario, RandomScenario

        cfg = WorkloadConfig(cores=1, levels=2, nsu=0.7, task_count_range=(5, 5))
        simulated = 0
        for i in range(30):
            r = np.random.default_rng(np.random.SeedSequence(11, spawn_key=(i,)))
            ts = generate_taskset(cfg, r)
            plan = tune_virtual_deadlines(ts)
            if plan is None:
                continue
            simulated += 1
            horizon = 25.0 * max(t.period for t in ts)
            for scenario in (LevelScenario(2), RandomScenario(0.4)):
                report = CoreSimulator(
                    ts, plan, scenario, np.random.default_rng(i), horizon
                ).run()
                assert report.miss_count == 0
        assert simulated > 5


class TestPerTaskPlan:
    def test_scales(self):
        plan = DualPerTaskPlan(deadlines=(5.0, 10.0), periods=(10.0, 10.0))
        assert plan.task_scale(0, 2, 1) == pytest.approx(0.5)
        assert plan.task_scale(0, 2, 2) == 1.0
        assert plan.task_scale(1, 1, 1) == 1.0

    def test_dropped_task_rejected(self):
        plan = DualPerTaskPlan(deadlines=(5.0,), periods=(10.0,))
        with pytest.raises(ModelError):
            plan.task_scale(0, 1, 2)
        with pytest.raises(ModelError):
            plan.task_scale(0, 2, 3)
