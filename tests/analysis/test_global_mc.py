"""Tests for the global scheduling admission tests."""

import numpy as np
import pytest

from repro.analysis import (
    gfb_edf_schedulable,
    global_edfvd_admission,
)
from repro.model import MCTask, MCTaskSet
from repro.types import ModelError


def dual(rows):
    return MCTaskSet([MCTask(wcets=w, period=p) for w, p in rows], levels=2)


class TestGFB:
    def test_empty_set(self):
        assert gfb_edf_schedulable([], 2)

    def test_uniprocessor_reduces_to_edf_bound(self):
        assert gfb_edf_schedulable([0.5, 0.5], 1)
        assert not gfb_edf_schedulable([0.6, 0.5], 1)

    def test_classic_bound(self):
        # m=2, d_max=0.5: bound = 2 - 1*0.5 = 1.5
        assert gfb_edf_schedulable([0.5, 0.5, 0.5], 2)
        assert not gfb_edf_schedulable([0.5, 0.5, 0.5, 0.1], 2)

    def test_heavy_task_hurts(self):
        # Same sum, bigger d_max -> rejected (Dhall-style effect).
        assert gfb_edf_schedulable([0.4] * 3, 2)
        assert not gfb_edf_schedulable([0.9, 0.15, 0.15], 2)

    def test_density_above_one_rejected(self):
        assert not gfb_edf_schedulable([1.2], 4)

    def test_invalid_inputs(self):
        with pytest.raises(ModelError):
            gfb_edf_schedulable([0.5], 0)
        with pytest.raises(ModelError):
            gfb_edf_schedulable([-0.1], 2)


class TestGlobalAdmission:
    def test_light_set_accepted(self):
        ts = dual([((1.0,), 10.0), ((1.0, 2.0), 10.0), ((1.0,), 20.0)])
        adm = global_edfvd_admission(ts, processors=2)
        assert adm.schedulable
        assert adm.x_factor is not None

    def test_overload_rejected(self):
        ts = dual([((9.0,), 10.0), ((5.0, 9.0), 10.0), ((9.0,), 10.0)])
        adm = global_edfvd_admission(ts, processors=2)
        assert not adm.schedulable
        assert adm.x_factor is None

    def test_x_equal_one_branch(self):
        # A set schedulable on worst-case budgets with no scaling.
        ts = dual([((1.0, 2.0), 10.0)])
        adm = global_edfvd_admission(ts, processors=1, x_grid=[1.0])
        assert adm.schedulable
        assert adm.x_factor == 1.0

    def test_k3_rejected(self):
        ts = MCTaskSet([MCTask(wcets=(1.0, 2.0, 3.0), period=10.0)], levels=3)
        with pytest.raises(ModelError):
            global_edfvd_admission(ts, 2)

    def test_bad_grid_rejected(self):
        ts = dual([((1.0,), 10.0)])
        with pytest.raises(ModelError):
            global_edfvd_admission(ts, 2, x_grid=[0.0])

    def test_more_processors_never_hurt(self, rng):
        from tests.conftest import random_taskset

        for _ in range(50):
            ts = random_taskset(rng, n=8, levels=2, max_u=0.4)
            small = global_edfvd_admission(ts, 2).schedulable
            if small:
                assert global_edfvd_admission(ts, 4).schedulable


class TestEmpiricalSoundness:
    def test_accepted_sets_simulate_clean(self, rng):
        """Every admitted set survives adversarial in-model scenarios on
        the global simulator (the empirical soundness contract of the
        adapted test — see module docstring)."""
        from repro.gen import WorkloadConfig, generate_taskset
        from repro.sched import (
            GlobalSimulator,
            LevelScenario,
            RandomScenario,
            dual_global_plan,
        )

        cfg = WorkloadConfig(cores=3, levels=2, nsu=0.55, task_count_range=(8, 12))
        validated = 0
        for i in range(25):
            r = np.random.default_rng(np.random.SeedSequence(8, spawn_key=(i,)))
            ts = generate_taskset(cfg, r)
            adm = global_edfvd_admission(ts, 3)
            if not adm.schedulable:
                continue
            validated += 1
            plan = dual_global_plan(ts, adm.x_factor)
            horizon = 15.0 * max(t.period for t in ts)
            for scenario in (LevelScenario(2), RandomScenario(0.5)):
                report = GlobalSimulator(
                    ts, 3, plan, scenario, np.random.default_rng(i), horizon
                ).run()
                assert report.miss_count == 0
        assert validated > 5
