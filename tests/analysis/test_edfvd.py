"""Unit tests for the Theorem-1 EDF-VD machinery."""

import numpy as np
import pytest

from repro.analysis import (
    available_utilizations,
    capacity_terms,
    core_utilization,
    demand_terms,
    first_feasible_condition,
    is_feasible_simple,
    is_feasible_theorem1,
    lambda_factors,
)
from repro.types import INFEASIBLE, ModelError
from tests.conftest import random_taskset


def dual_matrix(lo_lo, hi_lo, hi_hi):
    """(2,2) level matrix from the three dual-criticality aggregates."""
    return np.array([[lo_lo, 0.0], [hi_lo, hi_hi]])


class TestLambdaFactors:
    def test_lambda1_is_zero(self):
        lambdas = lambda_factors(dual_matrix(0.3, 0.2, 0.5))
        assert lambdas[0] == 0.0

    def test_dual_matches_x_factor(self):
        # lambda_2 must equal the classical x = U_2(1) / (1 - U_1(1)).
        lambdas = lambda_factors(dual_matrix(0.4, 0.3, 0.6))
        assert lambdas[1] == pytest.approx(0.3 / (1.0 - 0.4))

    def test_undefined_when_lo_saturates(self):
        # U_1(1) >= 1 makes the denominator non-positive.
        lambdas = lambda_factors(dual_matrix(1.2, 0.1, 0.2))
        assert np.isnan(lambdas[1])

    def test_undefined_when_factor_reaches_one(self):
        # numerator/denominator >= 1 -> no valid shrink factor.
        lambdas = lambda_factors(dual_matrix(0.5, 0.6, 0.7))
        assert np.isnan(lambdas[1])

    def test_zero_when_no_high_tasks(self):
        lambdas = lambda_factors(dual_matrix(0.5, 0.0, 0.0))
        assert lambdas[1] == 0.0

    def test_chain_stops_after_first_undefined(self):
        mat = np.zeros((3, 3))
        mat[0, 0] = 1.5  # lambda_2 undefined
        mat[2, 1] = 0.1
        lambdas = lambda_factors(mat)
        assert np.isnan(lambdas[1]) and np.isnan(lambdas[2])

    def test_three_level_recurrence_by_hand(self):
        # L[j-1, k-1] = U_j(k)
        mat = np.array(
            [
                [0.2, 0.0, 0.0],
                [0.1, 0.2, 0.0],
                [0.1, 0.15, 0.3],
            ]
        )
        lam2 = (0.1 + 0.1) / (1.0 - 0.2)
        p2 = 1.0 - lam2
        lam3 = (0.15 / p2) / (1.0 - 0.2 / p2)
        lambdas = lambda_factors(mat)
        assert lambdas[1] == pytest.approx(lam2)
        assert lambdas[2] == pytest.approx(lam3)

    def test_rejects_non_square(self):
        with pytest.raises(ModelError):
            lambda_factors(np.zeros((2, 3)))


class TestDemandAndCapacity:
    def test_dual_demand_is_eq7_lhs(self):
        mu = demand_terms(dual_matrix(0.3, 0.2, 0.5))
        expected = 0.3 + min(0.5, 0.2 / (1.0 - 0.5))
        assert mu.shape == (1,)
        assert mu[0] == pytest.approx(expected)

    def test_demand_saturated_top_level(self):
        mu = demand_terms(dual_matrix(0.1, 0.1, 1.2))
        assert mu[0] == pytest.approx(0.1 + 1.2)

    def test_demand_suffix_sums(self):
        mat = np.array(
            [
                [0.1, 0.0, 0.0],
                [0.05, 0.2, 0.0],
                [0.05, 0.1, 0.3],
            ]
        )
        min_term = min(0.3, 0.1 / (1.0 - 0.3))
        mu = demand_terms(mat)
        assert mu[0] == pytest.approx(0.1 + 0.2 + min_term)
        assert mu[1] == pytest.approx(0.2 + min_term)

    def test_capacity_is_cumprod_of_one_minus_lambda(self):
        mat = np.array(
            [
                [0.2, 0.0, 0.0],
                [0.1, 0.2, 0.0],
                [0.1, 0.15, 0.3],
            ]
        )
        lambdas = lambda_factors(mat)
        theta = capacity_terms(mat)
        assert theta[0] == pytest.approx(1.0)
        assert theta[1] == pytest.approx((1.0 - lambdas[1]))

    def test_single_level_degenerate(self):
        mat = np.array([[0.7]])
        assert demand_terms(mat)[0] == pytest.approx(0.7)
        assert capacity_terms(mat)[0] == pytest.approx(1.0)
        assert core_utilization(mat) == pytest.approx(0.7)

    def test_single_level_overload(self):
        assert core_utilization(np.array([[1.3]])) == INFEASIBLE


class TestCoreUtilization:
    def test_empty_core_is_zero(self):
        assert core_utilization(np.zeros((3, 3))) == pytest.approx(0.0)

    def test_paper_worked_value_tau4(self):
        # After allocating tau_4 (u(1)=0.339, u(2)=0.633, l=2) to P_1 the
        # paper computes U^{Psi_1} = 0 + min(0.633, 0.339/(1-0.633)).
        mat = dual_matrix(0.0, 0.339, 0.633)
        assert core_utilization(mat) == pytest.approx(
            min(0.633, 0.339 / (1.0 - 0.633))
        )

    def test_infeasible_is_inf(self):
        mat = dual_matrix(0.9, 0.5, 0.9)
        assert core_utilization(mat) == INFEASIBLE
        assert not is_feasible_theorem1(mat)

    def test_dual_equals_demand_when_feasible(self):
        # For K=2 there is a single condition with theta = 1, so the core
        # utilization equals the Eq. (7) demand.
        mat = dual_matrix(0.3, 0.2, 0.4)
        assert core_utilization(mat) == pytest.approx(demand_terms(mat)[0])

    def test_monotone_in_added_load_dual(self, rng):
        # For K=2 there is a single condition, so Eq. (9) is monotone in
        # added load.  (For K>=3 it need not be: adding load can knock out
        # the condition that attained the max.)
        for _ in range(100):
            ts = random_taskset(rng, n=6, levels=2, max_u=0.2)
            mat = ts.level_matrix()
            base = core_utilization(mat)
            bumped = mat.copy()
            bumped[1, :] += np.array([0.02, 0.05])
            grown = core_utilization(bumped)
            assert grown >= base - 1e-12


class TestFeasibility:
    def test_first_feasible_condition_none_when_infeasible(self):
        assert first_feasible_condition(dual_matrix(0.9, 0.8, 0.9)) is None

    def test_first_feasible_condition_k1(self):
        assert first_feasible_condition(dual_matrix(0.2, 0.1, 0.3)) == 1

    def test_later_condition_can_rescue(self):
        # Construct K=3 where condition k=1 fails but k=2 holds: big
        # level-1 own load inflates mu(1) past 1, while tiny level-1
        # utilizations of the higher-criticality tasks keep lambda_2 (and
        # hence the k=2 capacity loss) small.
        mat = np.array(
            [
                [0.90, 0.0, 0.0],
                [0.010, 0.15, 0.0],
                [0.005, 0.01, 0.05],
            ]
        )
        avail = available_utilizations(mat)
        assert avail[0] < 0 <= avail[1]
        assert first_feasible_condition(mat) == 2
        assert is_feasible_theorem1(mat)

    def test_eq4_implies_theorem1(self, rng):
        # DESIGN.md: Eq. (4) implies the k=1 condition of Theorem 1.
        checked = 0
        for _ in range(300):
            ts = random_taskset(rng, n=5, levels=int(rng.integers(2, 6)), max_u=0.06)
            mat = ts.level_matrix()
            if is_feasible_simple(mat):
                checked += 1
                assert available_utilizations(mat)[0] >= -1e-12
                assert is_feasible_theorem1(mat)
        assert checked > 20  # the property was actually exercised
