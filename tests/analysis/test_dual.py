"""Dual-criticality specialization tests + cross-checks against Theorem 1."""

import numpy as np
import pytest

from repro.analysis import (
    SPEEDUP_BOUND,
    DualUtilizations,
    deadline_scale_factor,
    is_feasible_dual,
    is_feasible_theorem1,
    lambda_factors,
    minimum_speed,
)
from repro.analysis.dual import is_feasible_classic
from repro.types import ModelError


def mat(lo_lo, hi_lo, hi_hi):
    return np.array([[lo_lo, 0.0], [hi_lo, hi_hi]])


def du(lo_lo, hi_lo, hi_hi):
    return DualUtilizations(lo_lo=lo_lo, hi_lo=hi_lo, hi_hi=hi_hi)


def random_dual(rng):
    lo_lo = float(rng.uniform(0.0, 1.1))
    hi_lo = float(rng.uniform(0.0, 0.8))
    hi_hi = hi_lo * float(rng.uniform(1.0, 2.5))
    return du(lo_lo, hi_lo, hi_hi)


class TestEq7:
    def test_easy_set_feasible(self):
        assert is_feasible_dual(du(0.3, 0.2, 0.5))

    def test_overloaded_set_infeasible(self):
        assert not is_feasible_dual(du(0.6, 0.5, 0.9))

    def test_ratio_branch(self):
        # min picks U_2(1)/(1-U_2(2)) = 0.2/0.4 = 0.5 < U_2(2) is false here;
        # construct a case where the ratio branch is the smaller one.
        u = du(0.4, 0.1, 0.8)
        # ratio = 0.1/0.2 = 0.5 < 0.8 -> demand 0.9 <= 1
        assert is_feasible_dual(u)

    def test_top_level_saturation(self):
        assert not is_feasible_dual(du(0.2, 0.2, 1.05))

    def test_boundary_exact_one(self):
        assert is_feasible_dual(du(0.5, 0.0, 0.5))

    def test_from_level_matrix(self):
        u = DualUtilizations.from_level_matrix(mat(0.1, 0.2, 0.3))
        assert (u.lo_lo, u.hi_lo, u.hi_hi) == (0.1, 0.2, 0.3)

    def test_from_level_matrix_wrong_shape(self):
        with pytest.raises(ModelError):
            DualUtilizations.from_level_matrix(np.zeros((3, 3)))


class TestCrossChecks:
    def test_eq7_equals_theorem1_on_random_instances(self, rng):
        agree_feasible = 0
        for _ in range(500):
            u = random_dual(rng)
            m = mat(u.lo_lo, u.hi_lo, u.hi_hi)
            assert is_feasible_dual(u) == is_feasible_theorem1(m)
            agree_feasible += is_feasible_dual(u)
        assert 0 < agree_feasible < 500  # both branches exercised

    def test_x_factor_equals_lambda2(self, rng):
        for _ in range(200):
            u = random_dual(rng)
            m = mat(u.lo_lo, u.hi_lo, u.hi_hi)
            lam2 = lambda_factors(m)[1]
            x = deadline_scale_factor(u)
            if x is None:
                assert np.isnan(lam2)
            else:
                assert lam2 == pytest.approx(x)

    def test_eq7_implies_classic(self, rng):
        # The JACM'15 x-factor test dominates Eq. (7).
        hits = 0
        for _ in range(500):
            u = random_dual(rng)
            if is_feasible_dual(u):
                hits += 1
                assert is_feasible_classic(u)
        assert hits > 50

    def test_classic_strictly_stronger_example(self):
        # Accepted by the x-factor test, rejected by Eq. (7).
        u = du(0.3, 0.2, 0.75)
        assert not is_feasible_dual(u)
        assert is_feasible_classic(u)


class TestScaleFactor:
    def test_zero_without_hi_tasks(self):
        assert deadline_scale_factor(du(0.5, 0.0, 0.0)) == 0.0

    def test_none_when_lo_saturated(self):
        assert deadline_scale_factor(du(1.0, 0.1, 0.2)) is None

    def test_none_when_factor_too_large(self):
        assert deadline_scale_factor(du(0.5, 0.6, 0.7)) is None

    def test_value(self):
        assert deadline_scale_factor(du(0.4, 0.3, 0.5)) == pytest.approx(0.5)


class TestSpeedup:
    def test_minimum_speed_feasible_set_is_at_most_one(self):
        assert minimum_speed(du(0.2, 0.1, 0.3)) <= 1.0 + 1e-6

    def test_speedup_bound_holds_on_clairvoyant_feasible_sets(self, rng):
        # Any instance with max(U_1(1)+U_2(1), U_2(2)) <= 1 is feasible on
        # a unit-speed clairvoyant scheduler; EDF-VD (x-factor test) needs
        # speed <= 4/3.
        for _ in range(300):
            lo_lo = float(rng.uniform(0.0, 1.0))
            hi_lo = float(rng.uniform(0.0, 1.0 - lo_lo))
            hi_hi = float(rng.uniform(hi_lo, 1.0))
            s = minimum_speed(du(lo_lo, hi_lo, hi_hi))
            assert s <= SPEEDUP_BOUND + 1e-6

    def test_eq7_exceeds_four_thirds_on_extreme_instance(self):
        # Documented in minimum_speed's docstring: Eq. (7) is weaker.
        s = minimum_speed(du(0.75, 0.25, 1.0), test=is_feasible_dual)
        assert s == pytest.approx(1.5, abs=1e-6)
        assert s > SPEEDUP_BOUND
