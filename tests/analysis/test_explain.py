"""Unit and property tests for the structured explanation layer."""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import is_feasible_core
from repro.analysis.explain import (
    EXPLAIN_VERSION,
    HEADROOM_MAX_SCALE,
    explain_admission,
    explain_level_matrix,
    explain_result,
    format_explanation,
    headroom_for_matrix,
    headroom_profile,
    place_rejection_reason,
    task_sensitivity,
)
from repro.model import MCTask, MCTaskSet
from repro.partition.probe import use_probe_implementation
from repro.partition.registry import PAPER_SCHEMES, get_partitioner
from repro.types import EPS
from tests.conftest import random_taskset


def heavy_task(scale: float = 1.0) -> MCTask:
    return MCTask(period=10.0, wcets=(6.0 * scale, 9.0 * scale))


def rejected_taskset() -> MCTaskSet:
    """Three tasks of which only two fit on two cores."""
    return MCTaskSet([heavy_task() for _ in range(3)])


class TestExplainLevelMatrix:
    def test_margin_sign_is_the_decision(self, rng):
        for _ in range(50):
            ts = random_taskset(rng, n=4, levels=3, max_u=0.6)
            mat = ts.level_matrix()
            ce = explain_level_matrix(mat)
            assert ce.feasible == is_feasible_core(mat)
            assert ce.feasible == (ce.margin >= -EPS)

    def test_eq4_margin_matches_load(self):
        mat = np.array([[0.3, 0.0], [0.2, 0.4]])
        ce = explain_level_matrix(mat)
        assert ce.load == pytest.approx(0.7)
        assert ce.eq4_margin == pytest.approx(0.3)
        assert ce.eq4_pass

    def test_first_failing_condition(self):
        # Saturated LO level: lambda_2 undefined, every condition fails.
        mat = np.array([[1.5, 0.0], [0.1, 0.2]])
        ce = explain_level_matrix(mat)
        assert not ce.feasible
        assert ce.first_feasible_condition is None
        assert ce.first_failing_condition == 1
        # theta(1) = 1 - lambda_1 = 1 is always defined; the failure is
        # a genuine demand excess, not an undefined lambda chain.
        assert ce.conditions[0].defined
        assert ce.conditions[0].margin < 0.0

    def test_undefined_condition_is_minus_inf(self):
        # K=3 with a saturated LO level: lambda_2 undefined makes the
        # k=2 capacity nan and its margin -inf.
        mat = np.zeros((3, 3))
        mat[0, 0] = 1.5
        mat[2, 1] = 0.1
        ce = explain_level_matrix(mat)
        assert not ce.conditions[1].defined
        assert ce.conditions[1].margin == float("-inf")

    def test_k1_plain_edf(self):
        ce = explain_level_matrix(np.array([[0.6]]))
        assert ce.feasible and ce.margin == pytest.approx(0.4)
        assert ce.conditions[0].k == 1
        assert ce.first_feasible_condition == 1


class TestExplainResult:
    def test_admitted_demo(self, rng):
        ts = random_taskset(rng, n=6, levels=2, max_u=0.3)
        result = get_partitioner("ca-tpa").partition(ts, 4)
        exp = explain_result(ts, 4, result)
        assert exp.version == EXPLAIN_VERSION
        assert exp.admitted == result.schedulable
        assert exp.assignment == tuple(result.partition.assignment.tolist())
        assert len(exp.core_explanations) == 4

    def test_rejected_carries_candidates_and_sensitivity(self):
        ts = rejected_taskset()
        exp = explain_admission(ts, 2)
        assert not exp.admitted
        assert exp.failed_task == 2
        assert exp.candidate_explanations is not None
        assert all(m < -EPS for m in exp.decision_margins())
        sens = exp.sensitivity
        assert sens is not None and sens.task == 2
        assert 0.0 < sens.best_scale < 1.0
        # Shrinking the failed task to just inside its reported scale
        # must admit it (best_scale itself is the boundary supremum, so
        # WCET rounding at exactly that scale can fall either way).
        part = get_partitioner("ca-tpa").partition(ts, 2).partition
        scale = sens.best_scale * (1.0 - 1e-9)
        shrunk = MCTask(
            period=10.0,
            wcets=tuple(w * scale for w in heavy_task().wcets),
        )
        mat = np.array(part.level_matrix(sens.best_core), copy=True)
        row = [shrunk.utilization(k) for k in range(1, 3)]
        mat[shrunk.criticality - 1, : shrunk.criticality] += row[
            : shrunk.criticality
        ]
        assert is_feasible_core(mat)

    def test_to_dict_is_json_safe(self):
        for ts in (rejected_taskset(), MCTaskSet([heavy_task(0.1)])):
            exp = explain_admission(ts, 2)
            doc = json.loads(json.dumps(exp.to_dict(), allow_nan=False))
            assert doc["version"] == EXPLAIN_VERSION
            for ce in doc["core_explanations"]:
                assert ce["margin"] is None or math.isfinite(ce["margin"])

    def test_format_explanation_renders(self):
        text = format_explanation(explain_admission(rejected_taskset(), 2))
        assert "REJECTED" in text
        assert "headroom" in text
        assert "candidate probes" in text


class TestBackendEquivalence:
    def test_all_backends_all_schemes(self, rng):
        for levels in (1, 2, 3):
            ts = random_taskset(rng, n=6, levels=levels, max_u=0.4)
            for scheme in PAPER_SCHEMES:
                docs = []
                for impl in ("scalar", "batch", "incremental"):
                    exp = explain_admission(
                        ts, 2, scheme, probe_impl=impl
                    )
                    assert exp.probe_impl == impl
                    doc = exp.to_dict()
                    doc.pop("probe_impl")
                    docs.append(doc)
                assert docs[0] == docs[1] == docs[2], (levels, scheme)

    def test_ambient_backend_is_recorded(self):
        ts = MCTaskSet([heavy_task(0.1)])
        with use_probe_implementation("scalar"):
            assert explain_admission(ts, 1).probe_impl == "scalar"
        assert explain_admission(ts, 1).probe_impl == "batch"


class TestHeadroom:
    def test_empty_partition_reports_clamp(self):
        ts = MCTaskSet([heavy_task(0.1)], levels=2)
        part = get_partitioner("ca-tpa").partition(ts, 2).partition
        prof = headroom_profile(part)
        assert prof.per_core[1] == HEADROOM_MAX_SCALE  # empty core
        assert prof.system == min(prof.per_core)

    def test_admitted_set_has_headroom_above_one(self):
        ts = MCTaskSet([heavy_task(0.2), heavy_task(0.2)])
        part = get_partitioner("ca-tpa").partition(ts, 2).partition
        assert headroom_profile(part).system > 1.0

    def test_rejected_core_has_headroom_below_one(self):
        mat = np.array([[0.0, 0.0], [1.2, 1.8]])
        assert headroom_for_matrix(mat) < 1.0

    @settings(max_examples=40, deadline=None)
    @given(
        lo=st.floats(0.05, 1.5),
        hi_lo=st.floats(0.05, 1.5),
        hi_hi=st.floats(0.05, 1.8),
    )
    def test_bisection_brackets_the_boundary(self, lo, hi_lo, hi_hi):
        """α·(1−ε) admits and α·(1+ε) rejects around the found scale."""
        mat = np.array([[lo, 0.0], [hi_lo, hi_hi]])
        alpha = headroom_for_matrix(mat)
        if alpha == HEADROOM_MAX_SCALE:
            assert is_feasible_core(alpha * mat)
            return
        assert alpha > 0.0
        eps = 1e-6
        assert is_feasible_core(alpha * (1.0 - eps) * mat)
        assert not is_feasible_core(alpha * (1.0 + eps) * mat)

    def test_monotone_in_scale(self, rng):
        ts = random_taskset(rng, n=5, levels=2, max_u=0.4)
        mat = ts.level_matrix()
        alpha = headroom_for_matrix(mat)
        scaled = headroom_for_matrix(2.0 * mat)
        assert scaled == pytest.approx(alpha / 2.0, rel=1e-6)


class TestSensitivity:
    def test_zero_scale_when_nothing_fits(self):
        # Even an infinitesimal slice of the newcomer cannot fit a
        # saturated core (load exactly 1 leaves EPS-level room only).
        ts = MCTaskSet([MCTask(period=1.0, wcets=(1.0, 1.0))])
        part = get_partitioner("ca-tpa").partition(ts, 1).partition
        sens = task_sensitivity(part, 0)
        assert sens.task == 0

    def test_shrink_candidates_admit_after_shrinking(self):
        ts = rejected_taskset()
        part = get_partitioner("ca-tpa").partition(ts, 2).partition
        sens = task_sensitivity(part, 2)
        assert sens.shrink_candidates
        cand = sens.shrink_candidates[0]
        assert 0.0 <= cand.max_scale < 1.0


class TestPlaceRejectionReason:
    def test_reason_shape(self):
        ts = MCTaskSet([heavy_task(), heavy_task()])
        part = get_partitioner("ca-tpa").partition(ts, 2).partition
        reason = place_rejection_reason(part, heavy_task())
        assert set(reason) == {"best_core", "best_margin", "cores"}
        assert reason["best_margin"] < 0.0
        assert len(reason["cores"]) == 2
        for entry in reason["cores"]:
            assert entry["first_failing_condition"] == 1
        json.dumps(reason, allow_nan=False)
