"""Setuptools shim.

Kept alongside pyproject.toml so that offline environments without the
`wheel` package can still do a legacy editable install:

    pip install -e . --no-use-pep517 --no-build-isolation
"""

from setuptools import setup

setup()
