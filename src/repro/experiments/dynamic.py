"""Dynamic-scenario resilience sweep (shard kind ``dynsim``).

Where Figures 1-5 measure *offline* schedulability, this figure asks
what happens to a CA-TPA partition at **run time** when the world
misbehaves: every task set is simulated under a standard injected-event
script (:mod:`repro.sched.events`) — a WCET burst whose factor is the
swept parameter, a task arrival admitted through the same Theorem-1
probe the daemon uses, a departure, a core failure with re-partitioning
of the displaced tasks, the core's later hotplug return, and a train of
quasi-periodic recovery-to-low windows.  The sweep reports how deadline
misses, drops,
mode switches, and admission outcomes degrade as the burst factor grows.

Each data point is a ``kind="dynsim"`` :class:`~repro.engine.PointSpec`
whose :attr:`~repro.engine.spec.PointSpec.params` carry the burst
factor, so shards ride the same content-addressed checkpoint store as
every other figure and a re-run resumes from completed shards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.core import Engine, ProgressHook, register_shard_kind
from repro.engine.spec import PointSpec, SchemeSpec
from repro.engine.store import ResultStore
from repro.gen.generator import generate_taskset
from repro.gen.params import WorkloadConfig
from repro.model.task import MCTask
from repro.types import ReproError

__all__ = [
    "DEFAULT_BURST_FACTORS",
    "DynamicSweepResult",
    "dynamic_config",
    "dynamic_point",
    "format_dynamic",
    "run_dynamic_sweep",
    "standard_event_script",
]


def dynamic_config() -> WorkloadConfig:
    """The figure's default workload: the paper shape at NSU 0.5.

    The Section IV-A default (NSU 0.6) leaves CA-TPA only ~10% of sets
    schedulable, and unschedulable sets carry no runtime guarantee to
    stress — at 0.5 nearly every generated set actually simulates.
    """
    return WorkloadConfig(nsu=0.5)


#: Swept WCET burst factors: 1.0 is the control (the burst multiplies
#: demand by 1, i.e. injects nothing abnormal), the rest escalate.
DEFAULT_BURST_FACTORS = (1.0, 1.5, 2.0, 3.0, 4.0)

#: Simulated horizon in multiples of the longest period.  Long enough
#: that every scripted event instant (0.2H .. 0.8H) sees several
#: releases of every task on both sides.
SIM_CYCLES = 12.0

#: Per-job overrun probability of the RandomScenario driving the runs.
#: Deliberately small: injected recovery windows suppress the automatic
#: idle reset, so a noisy baseline would pin every core at max mode
#: before the burst even starts and the swept factor would have nothing
#: left to degrade.  At 0.5% the baseline stays mostly in low mode and
#: escalation tracks the burst.
OVERRUN_PROB = 0.005

#: Integer tallies a dynsim shard accumulates; merge is plain summation.
_TALLY_KEYS = (
    "sets",
    "simulated",
    "unschedulable",
    "released",
    "completed",
    "dropped",
    "pending",
    "deadline_misses",
    "sets_with_miss",
    "mode_switches",
    "idle_resets",
    "burst_jobs",
    "failure_drops",
    "arrival_admitted",
    "arrival_rejected",
    "departures",
    "displaced",
    "replaced",
    "repartition_lost",
    "mode_recovery_applied",
    "mode_recovery_noop",
    "mode_recovery_missed",
)


def standard_event_script(
    taskset, cores: int, horizon: float, burst_factor: float, rng
) -> list:
    """The figure's canonical mid-run adversity, scaled by the factor.

    Instants are fixed fractions of the horizon so every set faces the
    same relative timeline; only the arrival clone, the departing task,
    and the failing core are drawn from ``rng``.
    """
    from repro.sched import (
        core_failure,
        core_hotplug,
        mode_recovery,
        task_arrival,
        task_departure,
        wcet_burst,
    )

    n = len(taskset)
    src = taskset[int(rng.integers(n))]
    arriving = MCTask(
        wcets=tuple(0.5 * w for w in src.wcets),
        period=src.period,
        name="dyn-arrival",
    )
    events = [
        wcet_burst(0.25 * horizon, 0.6 * horizon, burst_factor),
        task_arrival(0.2 * horizon, arriving),
        task_departure(0.5 * horizon, int(rng.integers(n))),
    ]
    # Quasi-periodic recovery: one claimable window per eighth of the
    # run.  Injected windows suppress the automatic idle reset, so with
    # a single late window one early escalation would pin the core at
    # high mode for most of the horizon and every burst factor would
    # saturate to the same drop count; periodic windows let cores come
    # back down, making time-at-high-mode (and with it the drop
    # fraction) track how quickly each burst factor re-escalates.
    for k in range(8):
        events.append(
            mode_recovery(
                (k + 0.35) * horizon / 8.0, (k + 0.85) * horizon / 8.0
            )
        )
    if cores > 1:
        core = int(rng.integers(cores))
        events.append(core_failure(0.4 * horizon, core))
        events.append(core_hotplug(0.8 * horizon, core))
    return events


def _run_dynsim_shard(
    config: WorkloadConfig,
    schemes: tuple[SchemeSpec, ...],
    seed: int,
    start: int,
    count: int,
    params: dict | None = None,
) -> dict:
    """Simulate task sets ``start .. start+count-1`` under the script.

    Only the first scheme partitions (the figure is about runtime
    resilience of one partitioner, not a scheme comparison); sets it
    cannot schedule are counted and skipped — there is no guarantee to
    stress.  Three decoupled seed streams per set (generation, script,
    simulation) keep every draw independent of the others' draw counts.
    """
    from repro.sched import RandomScenario, SystemSimulator, default_horizon
    from repro.sched.events import EventInjectionRuntime

    params = params or {}
    factor = float(params.get("burst_factor", 1.0))
    partitioner = schemes[0].build()
    tally = dict.fromkeys(_TALLY_KEYS, 0)
    for i in range(start, start + count):
        tally["sets"] += 1
        gen_rng = np.random.default_rng(
            np.random.SeedSequence(seed, spawn_key=(i,))
        )
        taskset = generate_taskset(config, gen_rng)
        result = partitioner.partition(taskset, config.cores)
        if not result.schedulable:
            tally["unschedulable"] += 1
            continue
        partition = result.partition
        horizon = default_horizon(partition, cycles=SIM_CYCLES)
        script_rng = np.random.default_rng(
            np.random.SeedSequence(seed, spawn_key=(i, 0xD1))
        )
        runtime = EventInjectionRuntime(
            standard_event_script(
                taskset, partition.cores, horizon, factor, script_rng
            ),
            horizon=horizon,
        )
        report = SystemSimulator(
            partition,
            RandomScenario(overrun_prob=OVERRUN_PROB),
            horizon=horizon,
            allow_infeasible=True,  # failure re-partitioning may overload
            events=runtime,
        ).run(seed=np.random.SeedSequence(seed, spawn_key=(i, 0xD2)))
        tally["simulated"] += 1
        tally["released"] += report.released
        tally["completed"] += report.completed
        tally["dropped"] += report.dropped
        tally["pending"] += report.pending
        tally["deadline_misses"] += report.miss_count
        tally["sets_with_miss"] += bool(report.miss_count)
        tally["mode_switches"] += report.mode_switches
        tally["idle_resets"] += report.idle_resets
        for key, value in report.events.counters.items():
            if key in tally:
                tally[key] += value
    return tally


def _encode_dynsim(result: dict) -> dict:
    return {"kind": "dynsim", "tally": dict(result)}


def _decode_dynsim(payload: dict) -> dict:
    if payload.get("kind") != "dynsim":
        raise ReproError(
            f"stored shard kind {payload.get('kind')!r} != requested 'dynsim'"
        )
    return {key: int(payload["tally"].get(key, 0)) for key in _TALLY_KEYS}


def _merge_dynsim(point: PointSpec, shards: list) -> dict:
    merged = dict.fromkeys(_TALLY_KEYS, 0)
    for shard in shards:
        for key in _TALLY_KEYS:
            merged[key] += int(shard.get(key, 0))
    return merged


register_shard_kind(
    "dynsim",
    run=_run_dynsim_shard,
    encode=_encode_dynsim,
    decode=_decode_dynsim,
    merge=_merge_dynsim,
)


def dynamic_point(
    burst_factor: float,
    config: WorkloadConfig | None = None,
    scheme: SchemeSpec | None = None,
    sets: int = 200,
    seed: int = 2016,
) -> PointSpec:
    """One dynsim data point at the given burst factor."""
    return PointSpec(
        config=config or dynamic_config(),
        schemes=(scheme or SchemeSpec.make("ca-tpa", alpha=0.7),),
        sets=sets,
        seed=seed,
        kind="dynsim",
        params=(("burst_factor", float(burst_factor)),),
    )


def _rate(num: int, den: int) -> float:
    return num / den if den else 0.0


@dataclass(frozen=True)
class DynamicSweepResult:
    """Merged tallies per swept burst factor, plus derived rates."""

    factors: tuple[float, ...]
    tallies: tuple[dict, ...]
    config: WorkloadConfig = field(default_factory=dynamic_config)
    sets: int = 200
    seed: int = 2016
    scheme: str = "ca-tpa"

    def row(self, index: int) -> dict:
        """Derived per-factor metrics for rendering/export."""
        t = self.tallies[index]
        return {
            "burst_factor": self.factors[index],
            "simulated": t["simulated"],
            "unschedulable": t["unschedulable"],
            "miss_rate": _rate(t["deadline_misses"], t["released"]),
            "miss_set_fraction": _rate(t["sets_with_miss"], t["simulated"]),
            "dropped_fraction": _rate(t["dropped"], t["released"]),
            "mode_switches_per_set": _rate(t["mode_switches"], t["simulated"]),
            "arrival_admit_rate": _rate(
                t["arrival_admitted"],
                t["arrival_admitted"] + t["arrival_rejected"],
            ),
            "replaced": t["replaced"],
            "repartition_lost": t["repartition_lost"],
            "recovery_applied": t["mode_recovery_applied"],
        }

    def to_dict(self) -> dict:
        return {
            "figure": "dynamic",
            "scheme": self.scheme,
            "config": self.config.to_dict(),
            "sets": self.sets,
            "seed": self.seed,
            "factors": list(self.factors),
            "tallies": [dict(t) for t in self.tallies],
            "rows": [self.row(i) for i in range(len(self.factors))],
        }


def run_dynamic_sweep(
    factors=DEFAULT_BURST_FACTORS,
    sets: int = 200,
    seed: int = 2016,
    jobs: int | None = 1,
    store: ResultStore | None = None,
    progress: ProgressHook | None = None,
    config: WorkloadConfig | None = None,
    scheme: SchemeSpec | None = None,
    probe_impl: str | None = None,
) -> DynamicSweepResult:
    """Evaluate the dynamic figure: one dynsim point per burst factor."""
    config = config or dynamic_config()
    scheme = scheme or SchemeSpec.make("ca-tpa", alpha=0.7)
    engine = Engine(
        jobs=jobs, store=store, progress=progress, probe_impl=probe_impl
    )
    tallies = []
    for factor in factors:
        point = dynamic_point(
            factor, config=config, scheme=scheme, sets=sets, seed=seed
        )
        tallies.append(engine.evaluate(point))
    return DynamicSweepResult(
        factors=tuple(float(f) for f in factors),
        tallies=tuple(tallies),
        config=config,
        sets=sets,
        seed=seed,
        scheme=scheme.label,
    )


def format_dynamic(result: DynamicSweepResult) -> str:
    """Plain-text table of the dynamic resilience sweep."""
    lines = [
        "Dynamic scenario sweep: runtime resilience under injected events",
        f"scheme={result.scheme}  M={result.config.cores}  "
        f"K={result.config.levels}  NSU={result.config.nsu}  "
        f"sets/point={result.sets}  seed={result.seed}",
        "",
        f"{'burst':>6} {'sims':>5} {'miss%':>7} {'miss-sets%':>10} "
        f"{'drop%':>7} {'mode-up/set':>11} {'admit%':>7} "
        f"{'replaced':>8} {'lost':>5} {'recov':>6}",
    ]
    for i in range(len(result.factors)):
        row = result.row(i)
        lines.append(
            f"{row['burst_factor']:>6.2f} {row['simulated']:>5d} "
            f"{100 * row['miss_rate']:>6.2f}% "
            f"{100 * row['miss_set_fraction']:>9.1f}% "
            f"{100 * row['dropped_fraction']:>6.2f}% "
            f"{row['mode_switches_per_set']:>11.2f} "
            f"{100 * row['arrival_admit_rate']:>6.1f}% "
            f"{row['replaced']:>8d} {row['repartition_lost']:>5d} "
            f"{row['recovery_applied']:>6d}"
        )
    return "\n".join(lines)
