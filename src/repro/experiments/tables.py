"""Reproduction of the paper's worked example (Tables I-III).

Tables I-III of Section III-C demonstrate, on a 5-task / 2-core
dual-criticality instance, that FFD fails to place the last task while
CA-TPA places all five.  The OCR of the paper lost the concrete numbers
of Table I (DESIGN.md "Substitutions"); what *is* recoverable from the
worked arithmetic is used as a cross-check elsewhere
(``tests/analysis/test_edfvd.py::test_paper_worked_value_tau4``), and
here we regenerate an equivalent instance by deterministic seeded
search: the first random 5-task instance on which FFD fails and CA-TPA
succeeds, exhibiting exactly the phenomenon the tables illustrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.analysis.contribution import (
    contribution_matrix,
    utilization_contributions,
)
from repro.gen.params import WorkloadConfig
from repro.gen.generator import generate_taskset
from repro.model.partition import Partition
from repro.model.taskset import MCTaskSet
from repro.partition.base import Partitioner
from repro.partition.catpa import CATPA
from repro.partition.classical import FirstFitDecreasing
from repro.types import ReproError

__all__ = [
    "paper_example_taskset",
    "search_paper_example",
    "AllocationStep",
    "allocation_trace",
    "table1_rows",
]

_SEARCH_SEED = 2016
_SEARCH_LIMIT = 20000
#: Spawn key of the first instance the seeded search accepts; pinned so
#: the canonical example regenerates in O(1).  ``search_paper_example``
#: re-derives it (the test suite checks they agree).
_EXAMPLE_SPAWN_KEY = 10486


def _example_config() -> WorkloadConfig:
    return WorkloadConfig(
        cores=2,
        levels=2,
        nsu=0.72,
        ifc=0.6,
        task_count_range=(5, 5),
        period_ranges=((50, 200),),
    )


def _example_accepted(ts: MCTaskSet) -> bool:
    """The Tables I-III phenomenon: >=2 HI tasks, FFD fails, CA-TPA wins."""
    if int((ts.criticalities == 2).sum()) < 2:
        return False  # the paper's instance mixes several HI tasks
    return (
        not FirstFitDecreasing().partition(ts, 2).schedulable
        and CATPA().partition(ts, 2).schedulable
    )


@lru_cache(maxsize=1)
def paper_example_taskset() -> MCTaskSet:
    """The canonical 5-task / 2-core / K=2 instance where FFD fails and
    CA-TPA succeeds (the Tables I-III phenomenon), regenerated from its
    pinned seed."""
    rng = np.random.default_rng(
        np.random.SeedSequence(_SEARCH_SEED, spawn_key=(_EXAMPLE_SPAWN_KEY,))
    )
    ts = generate_taskset(_example_config(), rng)
    if not _example_accepted(ts):  # pragma: no cover - pinned seed
        raise ReproError("pinned example seed no longer reproduces the instance")
    return ts


def search_paper_example(limit: int = _SEARCH_LIMIT) -> tuple[int, MCTaskSet]:
    """Deterministic seeded search for the example instance.

    Returns ``(spawn_key, taskset)`` of the first accepted instance;
    exists so the pinned :data:`_EXAMPLE_SPAWN_KEY` is auditable.
    """
    config = _example_config()
    for i in range(limit):
        rng = np.random.default_rng(
            np.random.SeedSequence(_SEARCH_SEED, spawn_key=(i,))
        )
        ts = generate_taskset(config, rng)
        if _example_accepted(ts):
            return i, ts
    raise ReproError(
        f"no Tables I-III instance within {limit} seeds; parameters drifted"
    )


@dataclass(frozen=True)
class AllocationStep:
    """One row of an allocation trace (Tables II/III format)."""

    task_index: int
    core: int | None  #: None when the scheme failed to place the task
    #: per-core (K, K) level matrices *after* this step
    core_levels: tuple


def allocation_trace(
    partitioner: Partitioner, taskset: MCTaskSet, cores: int
) -> list[AllocationStep]:
    """Replay a heuristic task by task, recording each intermediate state.

    This is exactly what Tables II and III tabulate: the task-to-core
    decisions in processing order with the evolving per-core level
    utilizations.
    """
    partition = Partition(taskset, cores)
    state: dict = {}
    steps: list[AllocationStep] = []
    for task_index in partitioner.order_tasks(taskset):
        target = partitioner.select_core(task_index, partition, state)
        if target is not None:
            partition.assign(task_index, target)
        steps.append(
            AllocationStep(
                task_index=task_index,
                core=target,
                core_levels=tuple(
                    partition.level_matrix(m).copy() for m in range(cores)
                ),
            )
        )
        if target is None:
            break
    return steps


def table1_rows(taskset: MCTaskSet) -> list[dict]:
    """Table I: per-task parameters, utilizations, and contributions."""
    contrib = contribution_matrix(taskset)
    overall = utilization_contributions(taskset)
    rows = []
    for i, task in enumerate(taskset):
        rows.append(
            {
                "task": task.name or f"tau_{i + 1}",
                "wcets": task.wcets,
                "period": task.period,
                "criticality": task.criticality,
                "utilizations": task.utilization_vector(taskset.levels),
                "contributions": tuple(contrib[i, : task.criticality]),
                "contribution": float(overall[i]),
            }
        )
    return rows
