"""Batch evaluation of partitioning schemes over random workloads.

One *data point* = (:class:`~repro.gen.WorkloadConfig`, list of scheme
specs, number of task sets).  For every generated task set each scheme
partitions it and the per-scheme accumulators collect the four paper
metrics.  The batch is sharded across a :class:`ProcessPoolExecutor`
(partitioning is pure CPU-bound Python/NumPy — process pools are the
right parallelism tool here; see the HPC guides), with per-set
``SeedSequence(seed, spawn_key=(i,))`` streams so results are
bit-reproducible regardless of the worker count.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import numpy as np

from repro.gen.generator import generate_taskset
from repro.gen.params import WorkloadConfig
from repro.metrics.aggregate import SchemeAccumulator, SchemeStats
from repro.partition.registry import get_partitioner
from repro.types import ReproError

__all__ = ["SchemeSpec", "evaluate_point", "default_schemes"]


@dataclass(frozen=True)
class SchemeSpec:
    """Picklable description of one scheme configuration.

    ``label`` is the reporting key (defaults to ``name``); ``kwargs``
    are forwarded to the registry factory.
    """

    name: str
    kwargs: tuple[tuple[str, object], ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        if not self.label:
            object.__setattr__(self, "label", self.name)

    @classmethod
    def make(cls, name: str, label: str = "", **kwargs) -> "SchemeSpec":
        return cls(name=name, kwargs=tuple(sorted(kwargs.items())), label=label)

    def build(self):
        return get_partitioner(self.name, **dict(self.kwargs))


def default_schemes(alpha: float = 0.7) -> list[SchemeSpec]:
    """The paper's five schemes: CA-TPA (with ``alpha``) + 4 baselines."""
    return [
        SchemeSpec.make("ca-tpa", alpha=alpha),
        SchemeSpec.make("ffd"),
        SchemeSpec.make("bfd"),
        SchemeSpec.make("wfd"),
        SchemeSpec.make("hybrid"),
    ]


def _run_shard(
    config: WorkloadConfig,
    schemes: tuple[SchemeSpec, ...],
    seed: int,
    start: int,
    count: int,
) -> list[SchemeAccumulator]:
    """Evaluate task sets ``start .. start+count-1`` of the batch."""
    partitioners = [(spec.label, spec.build()) for spec in schemes]
    accs = {label: SchemeAccumulator(label) for label, _ in partitioners}
    for i in range(start, start + count):
        rng = np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(i,)))
        taskset = generate_taskset(config, rng)
        for label, partitioner in partitioners:
            result = partitioner.partition(taskset, config.cores)
            # Accumulators are keyed by label, which may differ from the
            # partitioner's registry name (e.g. alpha variants).
            accs[label].add(result, check_scheme=False)
    return list(accs.values())


def evaluate_point(
    config: WorkloadConfig,
    schemes: list[SchemeSpec] | None = None,
    sets: int = 200,
    seed: int = 2016,
    jobs: int | None = 1,
) -> dict[str, SchemeStats]:
    """Evaluate all schemes on ``sets`` random task sets.

    Parameters
    ----------
    jobs:
        Worker processes; 1 (default) runs inline — deterministic either
        way.  ``None`` uses ``os.cpu_count()``.

    Returns
    -------
    dict mapping scheme label to its :class:`SchemeStats`.
    """
    if sets < 1:
        raise ReproError(f"sets must be >= 1, got {sets}")
    if schemes is None:
        schemes = default_schemes()
    labels = [s.label for s in schemes]
    if len(set(labels)) != len(labels):
        raise ReproError(f"duplicate scheme labels: {labels}")
    specs = tuple(schemes)

    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = max(1, min(jobs, sets))

    if jobs == 1:
        shards = [_run_shard(config, specs, seed, 0, sets)]
    else:
        bounds = np.linspace(0, sets, jobs + 1).astype(int)
        ranges = [
            (int(bounds[w]), int(bounds[w + 1] - bounds[w]))
            for w in range(jobs)
            if bounds[w + 1] > bounds[w]
        ]
        shards = []
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(_run_shard, config, specs, seed, start, count)
                for start, count in ranges
            ]
            for future, (start, count) in zip(futures, ranges):
                try:
                    shards.append(future.result())
                except BrokenProcessPool as pool_exc:
                    # A crashed worker poisons the whole pool and every
                    # pending future; salvage the batch by re-running
                    # this shard inline (the shard is self-seeded, so
                    # the retry is bit-identical to a worker run).
                    try:
                        shards.append(
                            _run_shard(config, specs, seed, start, count)
                        )
                    except Exception as retry_exc:
                        raise ReproError(
                            f"worker shard [{start}, {start + count}) crashed"
                            f" ({pool_exc!r}) and the inline retry failed"
                        ) from retry_exc

    merged: dict[str, SchemeAccumulator] = {
        label: SchemeAccumulator(label) for label in labels
    }
    for shard in shards:
        for acc in shard:
            merged[acc.scheme].merge(acc)
    return {label: merged[label].finalize() for label in labels}
