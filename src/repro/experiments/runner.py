"""Batch evaluation of partitioning schemes over random workloads.

One *data point* = (:class:`~repro.gen.WorkloadConfig`, list of scheme
specs, number of task sets).  Since the engine refactor this module is a
thin façade over :mod:`repro.engine`: :func:`evaluate_point` builds a
declarative :class:`~repro.engine.PointSpec` and hands it to the
:class:`~repro.engine.Engine`, which shards the batch across a
``ProcessPoolExecutor`` (per-set ``SeedSequence(seed, spawn_key=(i,))``
streams keep results bit-reproducible regardless of the worker count)
and, when given a store, checkpoints completed shards so interrupted
runs resume.  :class:`SchemeSpec` and :func:`default_schemes` are
re-exported from :mod:`repro.engine.spec` for backwards compatibility.
"""

from __future__ import annotations

import os

from repro.engine.core import Engine, ProgressHook
from repro.engine.spec import PointSpec, SchemeSpec, default_schemes
from repro.engine.store import ResultStore
from repro.gen.params import WorkloadConfig
from repro.metrics.aggregate import SchemeStats

__all__ = ["SchemeSpec", "evaluate_point", "default_schemes"]


def evaluate_point(
    config: WorkloadConfig,
    schemes: list[SchemeSpec] | None = None,
    sets: int = 200,
    seed: int = 2016,
    jobs: int | None = 1,
    store: ResultStore | str | os.PathLike | None = None,
    progress: ProgressHook | None = None,
) -> dict[str, SchemeStats]:
    """Evaluate all schemes on ``sets`` random task sets.

    Parameters
    ----------
    jobs:
        Worker processes; 1 (default) runs inline — deterministic either
        way.  ``None`` uses ``os.cpu_count()``.
    store:
        Optional :class:`~repro.engine.ResultStore` (or path).  With a
        store, completed shards are checkpointed and re-runs resume.
    progress:
        Optional per-shard observability hook (see
        :class:`~repro.engine.Engine`).

    Returns
    -------
    dict mapping scheme label to its :class:`SchemeStats`.
    """
    if schemes is None:
        schemes = default_schemes()
    point = PointSpec(
        config=config, schemes=tuple(schemes), sets=sets, seed=seed, kind="stats"
    )
    return Engine(jobs=jobs, store=store, progress=progress).evaluate(point)
