"""Sweep definitions for Figures 1-5 of the paper.

Each figure sweeps one parameter around the Section IV-A defaults
(``M = 8``, ``K = 4``, ``NSU = 0.6``, ``alpha = 0.7``, ``IFC = 0.4``)
and reports four panels per swept value: (a) schedulability ratio,
(b) system utilization ``U_sys``, (c) average core utilization
``U_avg``, and (d) workload imbalance ``Lambda`` — panels (b)-(d) over
schedulable sets only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.experiments.runner import (
    SchemeSpec,
    default_schemes,
    evaluate_point,
)
from repro.gen.params import CORE_COUNTS, WorkloadConfig
from repro.metrics.aggregate import SchemeStats

__all__ = [
    "SweepDefinition",
    "SweepResult",
    "figure1_nsu",
    "figure2_ifc",
    "figure3_alpha",
    "figure4_cores",
    "figure5_levels",
    "FIGURES",
    "run_sweep",
]


@dataclass(frozen=True)
class SweepDefinition:
    """One figure: a parameter name, its values, and the point builder."""

    figure: str  #: e.g. "fig1"
    title: str
    parameter: str  #: axis label, e.g. "NSU"
    values: tuple
    #: maps a swept value to the (config, schemes) of that data point
    point: Callable[[object], tuple[WorkloadConfig, list[SchemeSpec]]]


@dataclass(frozen=True)
class SweepResult:
    """All data points of one figure."""

    definition: SweepDefinition
    sets_per_point: int
    seed: int
    #: rows[i] corresponds to definition.values[i]
    rows: tuple[dict[str, SchemeStats], ...]

    @property
    def schemes(self) -> list[str]:
        return list(self.rows[0].keys()) if self.rows else []

    def series(self, metric: str) -> dict[str, list[float]]:
        """Per-scheme series of ``metric`` across the swept values.

        ``metric`` is one of ``sched_ratio``, ``u_sys``, ``u_avg``,
        ``imbalance``.
        """
        return {
            scheme: [getattr(row[scheme], metric) for row in self.rows]
            for scheme in self.schemes
        }


def figure1_nsu(
    nsu_values: Sequence[float] = (0.4, 0.5, 0.6, 0.7, 0.8),
) -> SweepDefinition:
    """Figure 1: impact of the normalized system utilization."""
    return SweepDefinition(
        figure="fig1",
        title="Performance of the algorithms with varying NSU",
        parameter="NSU",
        values=tuple(nsu_values),
        point=lambda v: (WorkloadConfig(nsu=float(v)), default_schemes()),
    )


def figure2_ifc(
    ifc_values: Sequence[float] = (0.3, 0.4, 0.5, 0.6, 0.7),
) -> SweepDefinition:
    """Figure 2: impact of the WCET increment factor."""
    return SweepDefinition(
        figure="fig2",
        title="Performance of the algorithms with varying IFC",
        parameter="IFC",
        values=tuple(ifc_values),
        point=lambda v: (WorkloadConfig(ifc=float(v)), default_schemes()),
    )


def figure3_alpha(
    alpha_values: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5),
) -> SweepDefinition:
    """Figure 3: impact of the imbalance threshold (CA-TPA only knob)."""
    return SweepDefinition(
        figure="fig3",
        title="Performance of the algorithms with varying alpha",
        parameter="alpha",
        values=tuple(alpha_values),
        point=lambda v: (WorkloadConfig(), default_schemes(alpha=float(v))),
    )


def figure4_cores(
    core_values: Sequence[int] = CORE_COUNTS,
) -> SweepDefinition:
    """Figure 4: impact of the number of processor cores."""
    return SweepDefinition(
        figure="fig4",
        title="Performance of the algorithms with varying M",
        parameter="M",
        values=tuple(core_values),
        point=lambda v: (WorkloadConfig(cores=int(v)), default_schemes()),
    )


def figure5_levels(
    level_values: Sequence[int] = (2, 3, 4, 5, 6),
) -> SweepDefinition:
    """Figure 5: impact of the number of criticality levels."""
    return SweepDefinition(
        figure="fig5",
        title="Performance of the algorithms with varying K",
        parameter="K",
        values=tuple(level_values),
        point=lambda v: (WorkloadConfig(levels=int(v)), default_schemes()),
    )


#: Figure id -> zero-argument definition factory.
FIGURES: dict[str, Callable[[], SweepDefinition]] = {
    "fig1": figure1_nsu,
    "fig2": figure2_ifc,
    "fig3": figure3_alpha,
    "fig4": figure4_cores,
    "fig5": figure5_levels,
}


def run_sweep(
    definition: SweepDefinition,
    sets: int = 200,
    seed: int = 2016,
    jobs: int | None = 1,
) -> SweepResult:
    """Evaluate every data point of a figure definition."""
    rows = []
    for value in definition.values:
        config, schemes = definition.point(value)
        rows.append(
            evaluate_point(config, schemes=schemes, sets=sets, seed=seed, jobs=jobs)
        )
    return SweepResult(
        definition=definition,
        sets_per_point=sets,
        seed=seed,
        rows=tuple(rows),
    )
