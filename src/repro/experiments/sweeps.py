"""Sweep definitions for Figures 1-5 of the paper.

Each figure sweeps one parameter around the Section IV-A defaults
(``M = 8``, ``K = 4``, ``NSU = 0.6``, ``alpha = 0.7``, ``IFC = 0.4``)
and reports four panels per swept value: (a) schedulability ratio,
(b) system utilization ``U_sys``, (c) average core utilization
``U_avg``, and (d) workload imbalance ``Lambda`` — panels (b)-(d) over
schedulable sets only.

A :class:`SweepDefinition` is a *builder*: :func:`definition_to_spec`
lowers it to a declarative :class:`~repro.engine.ExperimentSpec`, and
:func:`run_sweep` evaluates that spec on the resumable
:class:`~repro.engine.Engine`, returning the structured
:class:`~repro.engine.SweepArtifact` every renderer consumes.  Because
specs are pure data hashed per shard, figures that share a data point
(Fig. 1-5 all contain the Section IV-A default) reuse each other's
checkpoints when a store is given.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.engine.artifact import SweepArtifact
from repro.engine.core import Engine, ProgressHook
from repro.engine.spec import (
    ExperimentSpec,
    PointSpec,
    SchemeSpec,
    default_schemes,
)
from repro.engine.store import ResultStore
from repro.gen.params import CORE_COUNTS, WorkloadConfig

__all__ = [
    "SweepDefinition",
    "SweepResult",
    "definition_to_spec",
    "figure1_nsu",
    "figure2_ifc",
    "figure3_alpha",
    "figure4_cores",
    "figure5_levels",
    "FIGURES",
    "run_sweep",
]

#: Backwards-compatible alias: ``run_sweep`` now returns the engine's
#: structured artifact, which supports the old ``SweepResult`` surface
#: (``definition``/``rows``/``series``/``schemes``).
SweepResult = SweepArtifact


@dataclass(frozen=True)
class SweepDefinition:
    """One figure: a parameter name, its values, and the point builder."""

    figure: str  #: e.g. "fig1"
    title: str
    parameter: str  #: axis label, e.g. "NSU"
    values: tuple
    #: maps a swept value to the (config, schemes) of that data point
    point: Callable[[object], tuple[WorkloadConfig, list[SchemeSpec]]]


def definition_to_spec(
    definition: SweepDefinition, sets: int = 200, seed: int = 2016
) -> ExperimentSpec:
    """Lower a figure definition to a declarative experiment spec."""
    points = []
    for value in definition.values:
        config, schemes = definition.point(value)
        points.append(
            PointSpec(
                config=config,
                schemes=tuple(schemes),
                sets=sets,
                seed=seed,
                kind="stats",
            )
        )
    return ExperimentSpec(
        figure=definition.figure,
        title=definition.title,
        parameter=definition.parameter,
        values=tuple(definition.values),
        points=tuple(points),
    )


def figure1_nsu(
    nsu_values: Sequence[float] = (0.4, 0.5, 0.6, 0.7, 0.8),
) -> SweepDefinition:
    """Figure 1: impact of the normalized system utilization."""
    return SweepDefinition(
        figure="fig1",
        title="Performance of the algorithms with varying NSU",
        parameter="NSU",
        values=tuple(nsu_values),
        point=lambda v: (WorkloadConfig(nsu=float(v)), default_schemes()),
    )


def figure2_ifc(
    ifc_values: Sequence[float] = (0.3, 0.4, 0.5, 0.6, 0.7),
) -> SweepDefinition:
    """Figure 2: impact of the WCET increment factor."""
    return SweepDefinition(
        figure="fig2",
        title="Performance of the algorithms with varying IFC",
        parameter="IFC",
        values=tuple(ifc_values),
        point=lambda v: (WorkloadConfig(ifc=float(v)), default_schemes()),
    )


def figure3_alpha(
    alpha_values: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5),
) -> SweepDefinition:
    """Figure 3: impact of the imbalance threshold (CA-TPA only knob)."""
    return SweepDefinition(
        figure="fig3",
        title="Performance of the algorithms with varying alpha",
        parameter="alpha",
        values=tuple(alpha_values),
        point=lambda v: (WorkloadConfig(), default_schemes(alpha=float(v))),
    )


def figure4_cores(
    core_values: Sequence[int] = CORE_COUNTS,
) -> SweepDefinition:
    """Figure 4: impact of the number of processor cores."""
    return SweepDefinition(
        figure="fig4",
        title="Performance of the algorithms with varying M",
        parameter="M",
        values=tuple(core_values),
        point=lambda v: (WorkloadConfig(cores=int(v)), default_schemes()),
    )


def figure5_levels(
    level_values: Sequence[int] = (2, 3, 4, 5, 6),
) -> SweepDefinition:
    """Figure 5: impact of the number of criticality levels."""
    return SweepDefinition(
        figure="fig5",
        title="Performance of the algorithms with varying K",
        parameter="K",
        values=tuple(level_values),
        point=lambda v: (WorkloadConfig(levels=int(v)), default_schemes()),
    )


#: Figure id -> zero-argument definition factory.
FIGURES: dict[str, Callable[[], SweepDefinition]] = {
    "fig1": figure1_nsu,
    "fig2": figure2_ifc,
    "fig3": figure3_alpha,
    "fig4": figure4_cores,
    "fig5": figure5_levels,
}


def run_sweep(
    definition: SweepDefinition,
    sets: int = 200,
    seed: int = 2016,
    jobs: int | None = 1,
    store: ResultStore | str | os.PathLike | None = None,
    progress: ProgressHook | None = None,
) -> SweepArtifact:
    """Evaluate every data point of a figure definition.

    With a ``store``, completed shards are checkpointed as they finish
    and later (or interrupted) runs resume from them; results are
    bit-identical with or without a store and for any ``jobs`` count.
    """
    spec = definition_to_spec(definition, sets=sets, seed=seed)
    return Engine(jobs=jobs, store=store, progress=progress).run(spec)
