"""Experiment harness: figure sweeps, worked-example tables, reporting."""

from repro.experiments.compare import HeadToHead, format_head_to_head, head_to_head
from repro.experiments.export import save_sweep_csv, sweep_to_csv
from repro.experiments.weighted import weighted_schedulability
from repro.experiments.report import (
    format_allocation_trace,
    format_panel,
    format_sweep,
    format_table1,
)
from repro.experiments.runner import SchemeSpec, default_schemes, evaluate_point
from repro.experiments.sweeps import (
    FIGURES,
    SweepDefinition,
    SweepResult,
    figure1_nsu,
    figure2_ifc,
    figure3_alpha,
    figure4_cores,
    figure5_levels,
    run_sweep,
)
from repro.experiments.tables import (
    AllocationStep,
    allocation_trace,
    paper_example_taskset,
    search_paper_example,
    table1_rows,
)

__all__ = [
    "AllocationStep",
    "FIGURES",
    "HeadToHead",
    "format_head_to_head",
    "head_to_head",
    "SchemeSpec",
    "SweepDefinition",
    "SweepResult",
    "allocation_trace",
    "default_schemes",
    "evaluate_point",
    "figure1_nsu",
    "figure2_ifc",
    "figure3_alpha",
    "figure4_cores",
    "figure5_levels",
    "format_allocation_trace",
    "format_panel",
    "format_sweep",
    "format_table1",
    "paper_example_taskset",
    "run_sweep",
    "save_sweep_csv",
    "sweep_to_csv",
    "search_paper_example",
    "table1_rows",
    "weighted_schedulability",
]
