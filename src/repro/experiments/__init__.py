"""Experiment harness: figure sweeps, worked-example tables, reporting.

Since the engine refactor every harness entry point is a thin builder
over :mod:`repro.engine`: sweeps, head-to-head comparisons, and single
data points all lower to declarative specs, evaluate on the resumable
checkpointed :class:`~repro.engine.Engine`, and render from the one
structured :class:`~repro.engine.SweepArtifact` schema.
"""

from repro.engine.artifact import PointResult, SweepArtifact
from repro.experiments.compare import HeadToHead, format_head_to_head, head_to_head
from repro.experiments.dynamic import (
    DEFAULT_BURST_FACTORS,
    DynamicSweepResult,
    dynamic_point,
    format_dynamic,
    run_dynamic_sweep,
)
from repro.experiments.export import save_sweep_csv, sweep_to_csv
from repro.experiments.weighted import weighted_schedulability
from repro.experiments.report import (
    format_allocation_trace,
    format_panel,
    format_sweep,
    format_table1,
)
from repro.experiments.runner import SchemeSpec, default_schemes, evaluate_point
from repro.experiments.sweeps import (
    FIGURES,
    SweepDefinition,
    SweepResult,
    definition_to_spec,
    figure1_nsu,
    figure2_ifc,
    figure3_alpha,
    figure4_cores,
    figure5_levels,
    run_sweep,
)
from repro.experiments.tables import (
    AllocationStep,
    allocation_trace,
    paper_example_taskset,
    search_paper_example,
    table1_rows,
)

__all__ = [
    "AllocationStep",
    "DEFAULT_BURST_FACTORS",
    "DynamicSweepResult",
    "FIGURES",
    "HeadToHead",
    "dynamic_point",
    "format_dynamic",
    "run_dynamic_sweep",
    "PointResult",
    "SweepArtifact",
    "format_head_to_head",
    "head_to_head",
    "SchemeSpec",
    "SweepDefinition",
    "SweepResult",
    "allocation_trace",
    "default_schemes",
    "definition_to_spec",
    "evaluate_point",
    "figure1_nsu",
    "figure2_ifc",
    "figure3_alpha",
    "figure4_cores",
    "figure5_levels",
    "format_allocation_trace",
    "format_panel",
    "format_sweep",
    "format_table1",
    "paper_example_taskset",
    "run_sweep",
    "save_sweep_csv",
    "sweep_to_csv",
    "search_paper_example",
    "table1_rows",
    "weighted_schedulability",
]
