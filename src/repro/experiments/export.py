"""CSV export for sweep results.

Each figure's data exports as a tidy long-format CSV — one row per
(swept value, scheme, metric) — the layout plotting tools and notebooks
consume without reshaping.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.experiments.sweeps import SweepResult

__all__ = ["sweep_to_csv", "save_sweep_csv"]

_METRICS = ("sched_ratio", "u_sys", "u_avg", "imbalance")


def sweep_to_csv(result: SweepResult) -> str:
    """The sweep as a long-format CSV string."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(
        ["figure", "parameter", "value", "scheme", "metric", "result",
         "sets_per_point", "seed"]
    )
    d = result.definition
    for i, value in enumerate(d.values):
        for scheme, stats in result.rows[i].items():
            for metric in _METRICS:
                writer.writerow(
                    [
                        d.figure,
                        d.parameter,
                        value,
                        scheme,
                        metric,
                        getattr(stats, metric),
                        result.sets_per_point,
                        result.seed,
                    ]
                )
    return buf.getvalue()


def save_sweep_csv(result: SweepResult, path: str | Path) -> None:
    Path(path).write_text(sweep_to_csv(result))
