"""CSV export for sweep artifacts.

Each figure's data exports as a tidy long-format CSV — one row per
(swept value, scheme, metric) — the layout plotting tools and notebooks
consume without reshaping.  Input is the engine's structured
:class:`~repro.engine.SweepArtifact`, the same object every other
renderer reads.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.engine.artifact import SweepArtifact

__all__ = ["sweep_to_csv", "save_sweep_csv"]

_METRICS = ("sched_ratio", "u_sys", "u_avg", "imbalance")


def sweep_to_csv(result: SweepArtifact) -> str:
    """The sweep as a long-format CSV string."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(
        ["figure", "parameter", "value", "scheme", "metric", "result",
         "sets_per_point", "seed"]
    )
    for i, value in enumerate(result.values):
        for scheme, stats in result.rows[i].items():
            for metric in _METRICS:
                writer.writerow(
                    [
                        result.figure,
                        result.parameter,
                        value,
                        scheme,
                        metric,
                        getattr(stats, metric),
                        result.sets_per_point,
                        result.seed,
                    ]
                )
    return buf.getvalue()


def save_sweep_csv(result: SweepArtifact, path: str | Path) -> None:
    Path(path).write_text(sweep_to_csv(result))
