"""Head-to-head scheme comparison on a common workload batch.

Aggregate acceptance ratios hide *which* task sets a scheme wins on.
This module runs every scheme on the same batch and reports the pairwise
dominance matrix: ``wins[a][b]`` counts the task sets that scheme ``a``
schedules and scheme ``b`` does not.  A scheme that strictly dominates
another has a zero in the mirrored cell.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.runner import SchemeSpec
from repro.gen.generator import generate_taskset
from repro.gen.params import WorkloadConfig
from repro.types import ReproError

__all__ = ["HeadToHead", "head_to_head", "format_head_to_head"]


@dataclass(frozen=True)
class HeadToHead:
    """Pairwise dominance over one batch."""

    labels: tuple[str, ...]
    accepted: dict[str, int]  #: per-scheme acceptance counts
    wins: dict[str, dict[str, int]]  #: wins[a][b] = a-yes & b-no counts
    sets: int

    def ratio(self, label: str) -> float:
        return self.accepted[label] / self.sets


def head_to_head(
    config: WorkloadConfig,
    schemes: list[SchemeSpec],
    sets: int = 200,
    seed: int = 2016,
) -> HeadToHead:
    """Run every scheme on the same ``sets`` task sets and tally wins."""
    if sets < 1:
        raise ReproError(f"sets must be >= 1, got {sets}")
    labels = [s.label for s in schemes]
    if len(set(labels)) != len(labels):
        raise ReproError(f"duplicate scheme labels: {labels}")
    partitioners = [(s.label, s.build()) for s in schemes]
    accepted = {label: 0 for label in labels}
    wins = {a: {b: 0 for b in labels if b != a} for a in labels}
    for i in range(sets):
        rng = np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(i,)))
        taskset = generate_taskset(config, rng)
        outcome = {
            label: p.partition(taskset, config.cores).schedulable
            for label, p in partitioners
        }
        for a in labels:
            accepted[a] += outcome[a]
            for b in labels:
                if a != b and outcome[a] and not outcome[b]:
                    wins[a][b] += 1
    return HeadToHead(
        labels=tuple(labels), accepted=accepted, wins=wins, sets=sets
    )


def format_head_to_head(result: HeadToHead) -> str:
    """The dominance matrix as an aligned text table."""
    labels = result.labels
    width = max(8, max(len(s) for s in labels) + 1)
    header = (
        f"{'wins over ->':>{width}} |"
        + "".join(f"{s:>{width}}" for s in labels)
        + f"{'ratio':>{width}}"
    )
    lines = [
        f"Head-to-head on {result.sets} common task sets"
        " (cell = row schedules, column does not)",
        header,
        "-" * len(header),
    ]
    for a in labels:
        cells = "".join(
            f"{'-':>{width}}" if a == b else f"{result.wins[a][b]:>{width}}"
            for b in labels
        )
        lines.append(f"{a:>{width}} |{cells}{result.ratio(a):>{width}.3f}")
    return "\n".join(lines)
