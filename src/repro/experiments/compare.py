"""Head-to-head scheme comparison on a common workload batch.

Aggregate acceptance ratios hide *which* task sets a scheme wins on.
This module runs every scheme on the same batch and reports the pairwise
dominance matrix: ``wins[a][b]`` counts the task sets that scheme ``a``
schedules and scheme ``b`` does not.  A scheme that strictly dominates
another has a zero in the mirrored cell.

:func:`head_to_head` is a thin builder over the engine: it lowers the
request to a ``kind="h2h"`` :class:`~repro.engine.PointSpec`, so the
comparison shards, parallelizes, and checkpoints exactly like the
figure sweeps (an interrupted 50 000-set comparison resumes too).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.engine.core import Engine, ProgressHook
from repro.engine.spec import PointSpec, SchemeSpec
from repro.engine.store import ResultStore
from repro.gen.params import WorkloadConfig

__all__ = ["HeadToHead", "head_to_head", "format_head_to_head"]


@dataclass(frozen=True)
class HeadToHead:
    """Pairwise dominance over one batch."""

    labels: tuple[str, ...]
    accepted: dict[str, int]  #: per-scheme acceptance counts
    wins: dict[str, dict[str, int]]  #: wins[a][b] = a-yes & b-no counts
    sets: int

    def ratio(self, label: str) -> float:
        return self.accepted[label] / self.sets


def head_to_head(
    config: WorkloadConfig,
    schemes: list[SchemeSpec],
    sets: int = 200,
    seed: int = 2016,
    jobs: int | None = 1,
    store: ResultStore | str | os.PathLike | None = None,
    progress: ProgressHook | None = None,
) -> HeadToHead:
    """Run every scheme on the same ``sets`` task sets and tally wins."""
    point = PointSpec(
        config=config, schemes=tuple(schemes), sets=sets, seed=seed, kind="h2h"
    )
    merged = Engine(jobs=jobs, store=store, progress=progress).evaluate(point)
    return HeadToHead(
        labels=tuple(merged["labels"]),
        accepted=merged["accepted"],
        wins=merged["wins"],
        sets=merged["sets"],
    )


def format_head_to_head(result: HeadToHead) -> str:
    """The dominance matrix as an aligned text table."""
    labels = result.labels
    width = max(8, max(len(s) for s in labels) + 1)
    header = (
        f"{'wins over ->':>{width}} |"
        + "".join(f"{s:>{width}}" for s in labels)
        + f"{'ratio':>{width}}"
    )
    lines = [
        f"Head-to-head on {result.sets} common task sets"
        " (cell = row schedules, column does not)",
        header,
        "-" * len(header),
    ]
    for a in labels:
        cells = "".join(
            f"{'-':>{width}}" if a == b else f"{result.wins[a][b]:>{width}}"
            for b in labels
        )
        lines.append(f"{a:>{width}} |{cells}{result.ratio(a):>{width}.3f}")
    return "\n".join(lines)
