"""Plain-text rendering of sweep artifacts and the worked-example tables.

The paper's figures are line charts; this module prints the same data as
aligned text tables (one per panel) so every figure regenerates without
a plotting dependency.  The panel letters match the paper:
(a) schedulability ratio, (b) U_sys, (c) U_avg, (d) imbalance Lambda.

Everything renders from the one structured
:class:`~repro.engine.SweepArtifact` schema the engine produces — the
CSV exporter, the weighted-schedulability summary, and the CLI read the
same object, so a renderer can be checked against a stored artifact
without re-running the sweep.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.engine.artifact import SweepArtifact
from repro.experiments.tables import AllocationStep, table1_rows
from repro.model.taskset import MCTaskSet

__all__ = [
    "format_panel",
    "format_sweep",
    "format_table1",
    "format_allocation_trace",
]

PANELS = (
    ("a", "sched_ratio", "Schedulability ratio"),
    ("b", "u_sys", "System utilization U_sys"),
    ("c", "u_avg", "Average core utilization U_avg"),
    ("d", "imbalance", "Workload imbalance Lambda"),
)


def _fmt(value: float) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "   -  "
    return f"{value:6.3f}"


def format_panel(result: SweepArtifact, metric: str, heading: str) -> str:
    """One metric as a values-by-scheme text table."""
    schemes = result.schemes
    param = result.parameter
    header = f"{param:>8} | " + " ".join(f"{s:>8}" for s in schemes)
    lines = [heading, "-" * len(header), header, "-" * len(header)]
    series = result.series(metric)
    for i, value in enumerate(result.values):
        cells = " ".join(f"{_fmt(series[s][i]):>8}" for s in schemes)
        lines.append(f"{value!s:>8} | {cells}")
    return "\n".join(lines)


def format_sweep(result: SweepArtifact) -> str:
    """All four panels of one figure, paper-style."""
    out = [
        f"{result.figure.upper()}: {result.title}",
        f"({result.sets_per_point} task sets per data point, seed {result.seed})",
        "",
    ]
    for letter, metric, title in PANELS:
        out.append(format_panel(result, metric, f"({letter}) {title}"))
        out.append("")
    return "\n".join(out)


def format_table1(taskset: MCTaskSet) -> str:
    """Table I: timing parameters and utilization contributions."""
    rows = table1_rows(taskset)
    k = taskset.levels
    head = (
        f"{'task':>6} {'p_i':>7} {'l_i':>3} "
        + " ".join(f"{f'c({j})':>9}" for j in range(1, k + 1))
        + " "
        + " ".join(f"{f'u({j})':>7}" for j in range(1, k + 1))
        + f" {'C_i':>7}"
    )
    lines = ["Table I: timing parameters of the worked-example tasks", head]
    for r in rows:
        cs = list(r["wcets"]) + [float("nan")] * (k - len(r["wcets"]))
        us = r["utilizations"]
        lines.append(
            f"{r['task']:>6} {r['period']:>7g} {r['criticality']:>3} "
            + " ".join("      -  " if math.isnan(c) else f"{c:>9.3f}" for c in cs)
            + " "
            + " ".join(f"{u:>7.3f}" for u in us)
            + f" {r['contribution']:>7.3f}"
        )
    return "\n".join(lines)


def format_allocation_trace(
    title: str, taskset: MCTaskSet, steps: Sequence[AllocationStep]
) -> str:
    """Tables II/III: step-by-step allocation with core utilizations."""
    lines = [title]
    cores = len(steps[0].core_levels) if steps else 0
    for step in steps:
        name = taskset[step.task_index].name or f"tau_{step.task_index + 1}"
        if step.core is None:
            lines.append(f"  {name} -> FAILS (no feasible core)")
            continue
        parts = []
        for m in range(cores):
            mat = step.core_levels[m]
            diag = " ".join(
                f"U_{j + 1}({k + 1})={mat[j, k]:.3f}"
                for j in range(mat.shape[0])
                for k in range(j + 1)
                if mat[j, k] > 0
            )
            parts.append(f"P{m + 1}[{diag or 'empty'}]")
        lines.append(f"  {name} -> P{step.core + 1}   " + "  ".join(parts))
    return "\n".join(lines)
