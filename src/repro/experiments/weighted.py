"""Weighted schedulability — a single-number summary per scheme.

The standard real-time-community aggregate (Bastoni et al.): for a sweep
over a load parameter ``U`` (here NSU) with per-point acceptance ratios
``A(U)``,

.. math::

    W = \\frac{\\sum_U U \\cdot A(U)}{\\sum_U U},

which rewards schemes that keep accepting at *high* load.  Useful to
rank schemes across a whole figure instead of eyeballing curves.
Consumes the engine's :class:`~repro.engine.SweepArtifact` like every
other renderer.
"""

from __future__ import annotations

from repro.engine.artifact import SweepArtifact
from repro.types import ReproError

__all__ = ["weighted_schedulability"]


def weighted_schedulability(result: SweepArtifact) -> dict[str, float]:
    """Per-scheme weighted schedulability over the sweep's values.

    The swept values must be numeric and positive (they act as the
    weights); a sweep over e.g. NSU or IFC qualifies, a sweep over
    scheme-internal knobs like alpha is meaningless here and also works
    mechanically but should be interpreted with care.
    """
    try:
        weights = [float(v) for v in result.values]
    except (TypeError, ValueError) as exc:
        raise ReproError("weighted schedulability needs numeric sweep values") from exc
    if any(w <= 0 for w in weights):
        raise ReproError("weighted schedulability needs positive sweep values")
    total = sum(weights)
    ratios = result.series("sched_ratio")
    return {
        scheme: sum(w * r for w, r in zip(weights, series)) / total
        for scheme, series in ratios.items()
    }
