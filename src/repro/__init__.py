"""repro — Criticality-Aware Partitioning for Multicore Mixed-Criticality Systems.

A production-quality reproduction of Han, Tao, Zhu & Aydin (ICPP 2016):
the CA-TPA partitioning heuristic with per-core EDF-VD scheduling, the
classical baselines (FFD/BFD/WFD/Hybrid), the synthetic workload
generator of the paper's evaluation, a discrete-event EDF-VD/AMC runtime
simulator, and the full experiment harness regenerating every figure and
table of the paper.

Quickstart::

    from repro import MCTask, MCTaskSet, partition_taskset

    ts = MCTaskSet([
        MCTask(wcets=(2.0, 6.0), period=20.0, name="flight_ctrl"),
        MCTask(wcets=(5.0,), period=25.0, name="telemetry"),
    ])
    result = partition_taskset(ts, cores=2, scheme="ca-tpa")
    print(result.schedulable, result.assignment)
"""

from repro._version import __version__
from repro.model import MCTask, MCTaskSet, Partition

__all__ = [
    "__version__",
    "MCTask",
    "MCTaskSet",
    "Partition",
    "partition_taskset",
]


def partition_taskset(taskset, cores, scheme="ca-tpa", **kwargs):
    """Partition ``taskset`` onto ``cores`` cores using ``scheme``.

    Convenience wrapper around :func:`repro.partition.get_partitioner`;
    see :mod:`repro.partition` for the scheme registry and per-scheme
    options (e.g. ``alpha`` for CA-TPA's imbalance threshold).

    Returns a :class:`repro.partition.PartitionResult`.
    """
    from repro.partition import get_partitioner

    return get_partitioner(scheme, **kwargs).partition(taskset, cores)
