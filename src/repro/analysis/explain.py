"""Structured introspection of probe/admission decisions.

Every admission answer in the stack — a ``repro-mc`` sweep point, a
``/place`` 409, a validate counterexample — ultimately reduces to the
per-core Theorem-1/Eq.-(4) machinery in :mod:`repro.analysis.edfvd` and
:mod:`repro.analysis.simple`.  This module decomposes one decision into
the exact numbers behind it:

* :class:`CoreExplanation` — per core: the Eq.-(4) load and its margin,
  the ``lambda`` reduction factors, every Ineq.-(5) condition as an LHS
  (``mu(k)``) / RHS (``theta(k)``) / margin (``A(k)``) triple, the first
  feasible and first failing condition, and the Eq.-(9) utilization.
* :class:`HeadroomProfile` — the maximum uniform demand scale ``alpha``
  at which each core (and therefore the system) still passes the
  admission test, found by bisection over the *scalar* kernel.
* :class:`TaskSensitivity` — for a rejected set: how far the failed
  task would have to shrink to fit each core, and which already-placed
  task could be shrunk (and to what scale) to make room for it.
* :class:`ProbeExplanation` — one decision, fully decomposed, with the
  invariant the ``explain-decision`` validate oracle pins down:
  ``admitted`` **iff** every decision margin is ``>= -EPS``.

Everything here runs on the scalar kernel, off the probe hot path: the
partitioners and the serve placement loop never import this module's
functions on their fast path.  The margin algebra is exactly the
backends' feasibility test — Eq. (4) holds iff ``1 - load >= -EPS``
(:func:`repro.types.fits_unit_capacity`), condition ``k`` holds iff
``A(k) >= -EPS`` — so explanation and decision can never disagree
unless a backend does.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.edfvd import (
    capacity_terms,
    core_utilization,
    demand_terms,
    first_feasible_condition,
    lambda_factors,
)
from repro.analysis.feasibility import is_feasible_core
from repro.analysis.simple import is_feasible_simple, worst_case_load
from repro.types import EPS, ModelError

if TYPE_CHECKING:  # pragma: no cover - annotations only, avoids cycles
    from repro.model import MCTask, MCTaskSet, Partition
    from repro.partition.base import PartitionResult

__all__ = [
    "EXPLAIN_VERSION",
    "HEADROOM_MAX_SCALE",
    "ConditionMargin",
    "CoreExplanation",
    "HeadroomProfile",
    "ShrinkCandidate",
    "TaskSensitivity",
    "ProbeExplanation",
    "explain_level_matrix",
    "explain_candidates",
    "explain_result",
    "explain_admission",
    "headroom_for_matrix",
    "headroom_profile",
    "task_sensitivity",
    "place_rejection_reason",
    "format_explanation",
]

#: Version of the explanation schema (``ProbeExplanation.to_dict()``).
EXPLAIN_VERSION = 1

#: Headroom scales are bisected inside ``[0, HEADROOM_MAX_SCALE]`` and
#: clamped at the top, so a headroom figure (and the ``serve.headroom``
#: gauge) is always finite — an empty or far-underloaded core reports
#: exactly this ceiling rather than infinity.
HEADROOM_MAX_SCALE = 64.0

_BISECT_STEPS = 200  #: bisection converges to adjacent floats well before


def _num(value: float | None) -> float | None:
    """JSON-safe number: ``nan``/``+-inf`` become ``None``."""
    if value is None:
        return None
    value = float(value)
    return value if math.isfinite(value) else None


@dataclass(frozen=True)
class ConditionMargin:
    """One Ineq.-(5) condition ``k`` as LHS / RHS / margin.

    ``demand`` is ``mu(k)`` (the LHS), ``capacity`` is ``theta(k)`` (the
    RHS; ``nan`` when the lambda chain is undefined at ``k``), and
    ``margin`` is the available utilization ``A(k) = theta(k) - mu(k)``
    (``-inf`` when undefined).  ``passed`` iff ``margin >= -EPS`` —
    exactly the backends' acceptance test for this condition.
    """

    k: int
    demand: float
    capacity: float
    margin: float
    defined: bool
    passed: bool

    def to_dict(self) -> dict:
        return {
            "k": self.k,
            "demand": _num(self.demand),
            "capacity": _num(self.capacity),
            "margin": _num(self.margin),
            "defined": self.defined,
            "passed": self.passed,
        }


@dataclass(frozen=True)
class CoreExplanation:
    """The full Theorem-1/Eq.-(4) decomposition of one core's subset.

    ``margin`` is the core's decision margin: the best of the Eq.-(4)
    margin (``1 - load``) and every condition margin ``A(k)``.  By
    construction ``margin >= -EPS`` **iff** ``feasible`` — the single
    scalar that carries the whole admission decision for this core.
    """

    core: int
    tasks: tuple[int, ...]
    load: float  #: Eq.-(4) LHS: ``sum_k U_k(k)`` (the level-matrix trace)
    eq4_margin: float  #: ``1 - load``; ``>= -EPS`` iff Eq. (4) passes
    eq4_pass: bool
    lambdas: tuple[float, ...]  #: Eq.-(6) factors; ``nan`` = undefined
    conditions: tuple[ConditionMargin, ...]
    first_feasible_condition: int | None  #: the runtime protocol's ``k*``
    first_failing_condition: int | None
    feasible: bool
    margin: float
    utilization: float  #: Eq. (9); ``inf`` when infeasible

    def to_dict(self) -> dict:
        return {
            "core": self.core,
            "tasks": list(self.tasks),
            "load": _num(self.load),
            "eq4_margin": _num(self.eq4_margin),
            "eq4_pass": self.eq4_pass,
            "lambdas": [_num(x) for x in self.lambdas],
            "conditions": [c.to_dict() for c in self.conditions],
            "first_feasible_condition": self.first_feasible_condition,
            "first_failing_condition": self.first_failing_condition,
            "feasible": self.feasible,
            "margin": _num(self.margin),
            "utilization": _num(self.utilization),
        }


@dataclass(frozen=True)
class HeadroomProfile:
    """Maximum uniform demand scale still admissible, per core and system.

    ``per_core[m]`` is the largest ``alpha`` (clamped to ``max_scale``)
    at which core ``m``'s level matrix, scaled by ``alpha``, still
    passes :func:`~repro.analysis.feasibility.is_feasible_core`; empty
    cores report the clamp.  ``system`` is the minimum over the cores —
    the scale at which the *first* core tips over.
    """

    per_core: tuple[float, ...]
    system: float
    max_scale: float = HEADROOM_MAX_SCALE

    def to_dict(self) -> dict:
        return {
            "per_core": [_num(a) for a in self.per_core],
            "system": _num(self.system),
            "max_scale": _num(self.max_scale),
        }


@dataclass(frozen=True)
class ShrinkCandidate:
    """Shrinking ``task`` (on ``core``) to ``max_scale`` x its demand
    makes the rejected task fit on that core."""

    task: int
    core: int
    max_scale: float

    def to_dict(self) -> dict:
        return {
            "task": self.task,
            "core": self.core,
            "max_scale": _num(self.max_scale),
        }


@dataclass(frozen=True)
class TaskSensitivity:
    """How a rejected task could still be admitted.

    ``per_core_scale[m]`` is the largest scale ``beta`` of the *failed
    task's own* demand at which core ``m`` would accept it (0 when even
    an infinitesimal slice does not fit).  ``shrink_candidates`` ranks
    already-placed tasks by how little they would have to shrink to make
    room for the failed task at full demand.
    """

    task: int
    per_core_scale: tuple[float, ...]
    best_core: int | None
    best_scale: float
    shrink_candidates: tuple[ShrinkCandidate, ...] = ()

    def to_dict(self) -> dict:
        return {
            "task": self.task,
            "per_core_scale": [_num(b) for b in self.per_core_scale],
            "best_core": self.best_core,
            "best_scale": _num(self.best_scale),
            "shrink_candidates": [c.to_dict() for c in self.shrink_candidates],
        }


@dataclass(frozen=True)
class ProbeExplanation:
    """One admission decision, fully decomposed.

    The decision contract (pinned by the ``explain-decision`` oracle):
    ``admitted`` **iff** every margin in :meth:`decision_margins` is
    ``>= -EPS``.  For admitted sets those are the final per-core
    margins; for sets rejected at ``failed_task`` they are the margins
    of that task probed onto every core of the final partial partition
    — the exact probes the partitioner gave up on.
    """

    scheme: str | None
    cores: int
    rule: str
    probe_impl: str | None
    admitted: bool
    failed_task: int | None
    assignment: tuple[int, ...]
    core_explanations: tuple[CoreExplanation, ...]
    candidate_explanations: tuple[CoreExplanation, ...] | None = None
    headroom: HeadroomProfile | None = None
    sensitivity: TaskSensitivity | None = None
    version: int = field(default=EXPLAIN_VERSION)

    def decision_margins(self) -> tuple[float, ...]:
        """The margins whose signs *are* the decision (see class doc)."""
        if self.candidate_explanations is not None:
            return tuple(ce.margin for ce in self.candidate_explanations)
        return tuple(
            ce.margin for ce in self.core_explanations if ce.tasks
        )

    def to_dict(self) -> dict:
        """JSON-safe document (schema ``version``; no nan/inf values)."""
        return {
            "version": self.version,
            "scheme": self.scheme,
            "cores": self.cores,
            "rule": self.rule,
            "probe_impl": self.probe_impl,
            "admitted": self.admitted,
            "failed_task": self.failed_task,
            "assignment": list(self.assignment),
            "core_explanations": [
                ce.to_dict() for ce in self.core_explanations
            ],
            "candidate_explanations": (
                None
                if self.candidate_explanations is None
                else [ce.to_dict() for ce in self.candidate_explanations]
            ),
            "headroom": (
                None if self.headroom is None else self.headroom.to_dict()
            ),
            "sensitivity": (
                None if self.sensitivity is None else self.sensitivity.to_dict()
            ),
        }


# ----------------------------------------------------------------------
# Per-core decomposition
# ----------------------------------------------------------------------


def explain_level_matrix(
    level_matrix: np.ndarray,
    *,
    core: int = 0,
    tasks: tuple[int, ...] = (),
    rule: str = "max",
) -> CoreExplanation:
    """Decompose one ``(K, K)`` level matrix into a :class:`CoreExplanation`.

    Reuses the scalar kernel verbatim (:func:`lambda_factors`,
    :func:`demand_terms`, :func:`capacity_terms`,
    :func:`first_feasible_condition`), so every reported number is the
    number the admission test actually computed.
    """
    mat = np.asarray(level_matrix, dtype=np.float64)
    load = worst_case_load(mat)
    eq4_margin = 1.0 - load
    eq4_pass = is_feasible_simple(mat)
    lambdas = lambda_factors(mat)
    mu = demand_terms(mat)
    theta = capacity_terms(mat)
    conditions = []
    for i in range(mu.shape[0]):
        defined = bool(np.isfinite(theta[i]))
        margin = float(theta[i] - mu[i]) if defined else float("-inf")
        conditions.append(
            ConditionMargin(
                k=i + 1,
                demand=float(mu[i]),
                capacity=float(theta[i]),
                margin=margin,
                defined=defined,
                passed=defined and margin >= -EPS,
            )
        )
    first_ok = first_feasible_condition(mat)
    first_bad = next((c.k for c in conditions if not c.passed), None)
    cond_margin = max(c.margin for c in conditions)
    margin = max(eq4_margin, cond_margin)
    feasible = eq4_pass or any(c.passed for c in conditions)
    return CoreExplanation(
        core=core,
        tasks=tuple(int(t) for t in tasks),
        load=float(load),
        eq4_margin=float(eq4_margin),
        eq4_pass=bool(eq4_pass),
        lambdas=tuple(float(x) for x in lambdas),
        conditions=tuple(conditions),
        first_feasible_condition=first_ok,
        first_failing_condition=first_bad,
        feasible=bool(feasible),
        margin=float(margin),
        utilization=float(core_utilization(mat, rule=rule)),
    )


def _task_row(
    taskset_or_task: MCTaskSet | MCTask, task_index: int | None, levels: int
) -> tuple[np.ndarray, int]:
    """``(utilization row (K,), criticality)`` of a task (by index or value)."""
    if task_index is not None:
        ts = taskset_or_task
        return (
            np.asarray(ts.utilization_matrix[task_index], dtype=np.float64),
            int(ts.criticalities[task_index]),
        )
    task = taskset_or_task
    if task.criticality > levels:
        raise ModelError(
            f"task criticality {task.criticality} exceeds K={levels}"
        )
    row = np.zeros(levels, dtype=np.float64)
    for k in range(1, task.criticality + 1):
        row[k - 1] = task.utilization(k)
    return row, task.criticality


def _with_row(mat: np.ndarray, row: np.ndarray, crit: int) -> np.ndarray:
    """A copy of ``mat`` with a task's utilization row added (Eq. (15))."""
    cand = np.array(mat, dtype=np.float64, copy=True)
    cand[crit - 1, :crit] += row[:crit]
    return cand


def explain_candidates(
    level_matrices: np.ndarray,
    row: np.ndarray,
    criticality: int,
    *,
    rule: str = "max",
) -> tuple[CoreExplanation, ...]:
    """Explanations of one task hypothetically added to every core.

    ``level_matrices`` is the ``(M, K, K)`` stack; the result mirrors
    the Eq.-(15) probe row the placement loop evaluated, core by core.
    """
    return tuple(
        explain_level_matrix(
            _with_row(level_matrices[m], row, criticality),
            core=m,
            rule=rule,
        )
        for m in range(level_matrices.shape[0])
    )


# ----------------------------------------------------------------------
# Headroom (bisection over the scalar kernel)
# ----------------------------------------------------------------------


def _bisect_max_scale(feasible_at, max_scale: float) -> float:
    """Largest ``x`` in ``[0, max_scale]`` with ``feasible_at(x)``.

    Requires ``feasible_at(0)`` (the zero matrix always passes Eq. (4));
    clamps at ``max_scale`` when even the ceiling is feasible.  The
    admission test is monotone in a uniform demand scale (pinned by the
    ``admission-monotonicity`` oracle), so plain bisection brackets the
    boundary; iteration stops when the bracket collapses to adjacent
    floats.
    """
    if feasible_at(max_scale):
        return float(max_scale)
    lo, hi = 0.0, float(max_scale)
    for _ in range(_BISECT_STEPS):
        mid = 0.5 * (lo + hi)
        if mid <= lo or mid >= hi:  # bracket collapsed to adjacent floats
            break
        if feasible_at(mid):
            lo = mid
        else:
            hi = mid
    return lo


def headroom_for_matrix(
    level_matrix: np.ndarray, *, max_scale: float = HEADROOM_MAX_SCALE
) -> float:
    """Max uniform scale ``alpha`` with ``alpha * L`` still admissible."""
    mat = np.asarray(level_matrix, dtype=np.float64)
    return _bisect_max_scale(
        lambda alpha: is_feasible_core(alpha * mat), max_scale
    )


def headroom_profile(
    partition: Partition, *, max_scale: float = HEADROOM_MAX_SCALE
) -> HeadroomProfile:
    """Per-core and system-wide headroom of a (possibly partial) partition."""
    per_core = []
    for m in range(partition.cores):
        if partition.core_size(m) == 0:
            per_core.append(float(max_scale))
        else:
            per_core.append(
                headroom_for_matrix(
                    partition.level_matrix(m), max_scale=max_scale
                )
            )
    system = min(per_core) if per_core else float(max_scale)
    return HeadroomProfile(
        per_core=tuple(per_core), system=float(system), max_scale=max_scale
    )


# ----------------------------------------------------------------------
# Sensitivity of a rejected placement
# ----------------------------------------------------------------------

#: Cap on reported shrink candidates (ranked least-shrink-first).
_MAX_SHRINK_CANDIDATES = 8


def task_sensitivity(
    partition: Partition,
    failed_task: int,
    *,
    max_candidates: int = _MAX_SHRINK_CANDIDATES,
) -> TaskSensitivity:
    """What would have to shrink for ``failed_task`` to be admitted.

    Two monotone bisections per core: the failed task's own admissible
    scale ``beta`` (shrink the newcomer), and for each placed task the
    scale ``sigma`` at which shrinking *it* lets the newcomer in at full
    demand (shrink an incumbent).
    """
    ts = partition.taskset
    row_f, crit_f = _task_row(ts, failed_task, ts.levels)
    per_core = []
    candidates: list[ShrinkCandidate] = []
    for m in range(partition.cores):
        mat = np.asarray(partition.level_matrix(m), dtype=np.float64)

        def own_scale(beta: float) -> bool:
            return is_feasible_core(_with_row(mat, beta * row_f, crit_f))

        per_core.append(
            _bisect_max_scale(own_scale, 1.0) if own_scale(0.0) else 0.0
        )
        full = _with_row(mat, row_f, crit_f)
        for t in partition.tasks_on(m):
            row_t, crit_t = _task_row(ts, t, ts.levels)

            def incumbent_scale(sigma: float) -> bool:
                return is_feasible_core(
                    _with_row(full, (sigma - 1.0) * row_t, crit_t)
                )

            if not incumbent_scale(0.0):
                continue  # even evicting t entirely does not admit it
            candidates.append(
                ShrinkCandidate(
                    task=t,
                    core=m,
                    max_scale=_bisect_max_scale(incumbent_scale, 1.0),
                )
            )
    candidates.sort(key=lambda c: (-c.max_scale, c.core, c.task))
    best_scale = max(per_core) if per_core else 0.0
    best_core = (
        int(np.argmax(per_core)) if per_core and best_scale > 0.0 else None
    )
    return TaskSensitivity(
        task=int(failed_task),
        per_core_scale=tuple(per_core),
        best_core=best_core,
        best_scale=float(best_scale),
        shrink_candidates=tuple(candidates[:max_candidates]),
    )


# ----------------------------------------------------------------------
# Whole-decision explanations
# ----------------------------------------------------------------------


def explain_result(
    taskset: MCTaskSet,
    cores: int,
    result: PartitionResult,
    *,
    rule: str = "max",
    probe_impl: str | None = None,
    include_headroom: bool = True,
    include_sensitivity: bool = True,
    max_scale: float = HEADROOM_MAX_SCALE,
) -> ProbeExplanation:
    """Decompose an existing :class:`PartitionResult` (pure, no re-run).

    For rejected results with a recorded ``failed_task``, the candidate
    explanations reproduce the exact probes the partitioner gave up on:
    the failed task added to each core of the final partial partition.
    """
    part = result.partition
    core_expls = tuple(
        explain_level_matrix(
            part.level_matrix(m),
            core=m,
            tasks=tuple(part.tasks_on(m)),
            rule=rule,
        )
        for m in range(part.cores)
    )
    candidates = None
    sensitivity = None
    if not result.schedulable and result.failed_task is not None:
        row, crit = _task_row(taskset, result.failed_task, taskset.levels)
        candidates = explain_candidates(
            part.level_matrices(), row, crit, rule=rule
        )
        if include_sensitivity:
            sensitivity = task_sensitivity(part, result.failed_task)
    headroom = (
        headroom_profile(part, max_scale=max_scale)
        if include_headroom
        else None
    )
    return ProbeExplanation(
        scheme=result.scheme,
        cores=int(cores),
        rule=rule,
        probe_impl=probe_impl,
        admitted=bool(result.schedulable),
        failed_task=result.failed_task,
        assignment=tuple(int(c) for c in part.assignment),
        core_explanations=core_expls,
        candidate_explanations=candidates,
        headroom=headroom,
        sensitivity=sensitivity,
    )


def explain_admission(
    taskset: MCTaskSet,
    cores: int,
    scheme: str = "ca-tpa",
    *,
    rule: str = "max",
    probe_impl: str | None = None,
    include_headroom: bool = True,
    include_sensitivity: bool = True,
    max_scale: float = HEADROOM_MAX_SCALE,
) -> ProbeExplanation:
    """Run ``scheme`` on ``(taskset, cores)`` and explain its decision.

    ``probe_impl`` selects the backend for the partitioning run (``None``
    keeps the ambient contextvar selection); the recorded ``probe_impl``
    field is always the backend that actually decided.  All backends are
    pinned bit-identical, so the explanation never depends on the choice
    — which is exactly what the ``explain-decision`` oracle re-proves.
    """
    from repro.partition.probe import (
        probe_implementation,
        use_probe_implementation,
    )
    from repro.partition.registry import get_partitioner

    ctx = (
        use_probe_implementation(probe_impl)
        if probe_impl is not None
        else nullcontext()
    )
    with ctx:
        result = get_partitioner(scheme).partition(taskset, cores)
        decided_by = probe_implementation()
    return explain_result(
        taskset,
        cores,
        result,
        rule=rule,
        probe_impl=decided_by,
        include_headroom=include_headroom,
        include_sensitivity=include_sensitivity,
        max_scale=max_scale,
    )


def place_rejection_reason(
    partition: Partition, task: MCTask, *, rule: str = "max"
) -> dict:
    """Structured reason for a rejected ``/place``: per-core margins.

    Compact by design — the full decomposition is one ``POST /explain``
    away; the 409 body carries what an operator needs at a glance: the
    closest core, how far off it was, and each core's first failing
    condition.
    """
    row, crit = _task_row(task, None, partition.taskset.levels)
    cands = explain_candidates(
        partition.level_matrices(), row, crit, rule=rule
    )
    best = max(cands, key=lambda ce: ce.margin)
    return {
        "best_core": best.core,
        "best_margin": _num(best.margin),
        "cores": [
            {
                "core": ce.core,
                "margin": _num(ce.margin),
                "load": _num(ce.load),
                "first_failing_condition": ce.first_failing_condition,
            }
            for ce in cands
        ],
    }


# ----------------------------------------------------------------------
# Human-readable rendering (repro-mc explain)
# ----------------------------------------------------------------------


def _fmt(value: float | None, width: int = 0) -> str:
    if value is None or not math.isfinite(value):
        return "-"
    return f"{value:+.4f}" if width == 0 else f"{value:{width}.4f}"


def format_explanation(exp: ProbeExplanation) -> str:
    """Terminal rendering of one explanation (``repro-mc explain``)."""
    verdict = "ADMITTED" if exp.admitted else "REJECTED"
    lines = [
        f"explain: {exp.scheme} on {exp.cores} cores — {verdict} "
        f"(probe_impl={exp.probe_impl}, rule={exp.rule}, "
        f"schema v{exp.version})"
    ]
    if exp.headroom is not None:
        per_core = ", ".join(f"{a:.3f}" for a in exp.headroom.per_core)
        lines.append(
            f"  headroom: system alpha={exp.headroom.system:.3f} "
            f"(per-core: {per_core}; clamp {exp.headroom.max_scale:g})"
        )
    for ce in exp.core_explanations:
        state = "feasible" if ce.feasible else "INFEASIBLE"
        kstar = (
            f", k*={ce.first_feasible_condition}"
            if ce.first_feasible_condition is not None
            else f", first failing k={ce.first_failing_condition}"
        )
        lines.append(
            f"  core {ce.core}: {state}  margin={_fmt(ce.margin)}  "
            f"Eq.(4) load={ce.load:.4f}{kstar}  tasks={list(ce.tasks)}"
        )
        for c in ce.conditions:
            status = "pass" if c.passed else (
                "undefined" if not c.defined else "FAIL"
            )
            lines.append(
                f"    k={c.k}: mu={c.demand:.4f} vs "
                f"theta={_fmt(_num(c.capacity), 1)}  "
                f"margin={_fmt(_num(c.margin))}  {status}"
            )
    if exp.candidate_explanations is not None:
        lines.append(
            f"  failed task {exp.failed_task}: no feasible core — "
            "candidate probes:"
        )
        for ce in exp.candidate_explanations:
            lines.append(
                f"    core {ce.core}: margin={_fmt(ce.margin)}  "
                f"load={ce.load:.4f}  "
                f"first failing k={ce.first_failing_condition}"
            )
    if exp.sensitivity is not None:
        s = exp.sensitivity
        if s.best_core is not None:
            lines.append(
                f"  to admit: shrink task {s.task} to "
                f"{s.best_scale:.3f}x of its demand on core {s.best_core}"
            )
        for c in s.shrink_candidates[:3]:
            lines.append(
                f"  or: shrink task {c.task} (core {c.core}) to "
                f"{c.max_scale:.3f}x and place task {s.task} there"
            )
    return "\n".join(lines)
