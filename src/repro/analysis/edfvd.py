"""EDF-VD schedulability analysis for one core (Theorem 1 of the paper).

All functions in this module operate on a *level matrix*: the ``(K, K)``
array ``L`` with ``L[j-1, k-1] = U_j(k)``, i.e. the summed level-``k``
utilization of the core's tasks whose own criticality is exactly ``j``
(Eq. (3)).  Level matrices come from :meth:`MCTaskSet.level_matrix` or
:meth:`Partition.level_matrix`, and can be updated incrementally by
adding a candidate task's utilization row — which is exactly what the
partitioning probes do.

Reconstructed formulas (DESIGN.md §1 documents the cross-checks):

* reduction factors, Eq. (6)::

      lambda_1 = 0
      lambda_j = (sum_{x=j}^{K} U_x(j-1) / P_{j-1})
                 / (1 - U_{j-1}(j-1) / P_{j-1}),      P_j = prod_{x<=j} (1-lambda_x)

* condition ``k`` of Ineq. (5), for ``k = 1..K-1``::

      mu(k)    = sum_{i=k}^{K-1} U_i(i)
                 + min(U_K(K), U_K(K-1) / (1 - U_K(K)))
      theta(k) = prod_{j=1}^{k} (1 - lambda_j)
      feasible at k  <=>  mu(k) <= theta(k)

* available utilization (Eq. (8)) ``A(k) = theta(k) - mu(k)`` and core
  utilization (Eq. (9)) ``U = max_{A(k) >= 0} (1 - A(k))`` (``inf`` when
  no condition holds).

For ``K = 2`` the machinery reduces exactly to the classical dual-
criticality EDF-VD results (Eq. (7) and the ``x = U_2(1)/(1-U_1(1))``
virtual-deadline factor); :mod:`repro.analysis.dual` implements those
directly and the test suite verifies agreement.

For ``K = 1`` (no mixed criticality) the conditions degenerate; we define
``A = [1 - U_1(1)]`` so that the core utilization is the plain EDF
utilization, which is the natural reduction.
"""

from __future__ import annotations

import numpy as np

from repro.types import EPS, INFEASIBLE, ModelError

__all__ = [
    "lambda_factors",
    "demand_terms",
    "capacity_terms",
    "available_utilizations",
    "core_utilization",
    "is_feasible_theorem1",
    "first_feasible_condition",
]


def _check_level_matrix(level_matrix: np.ndarray) -> np.ndarray:
    mat = np.asarray(level_matrix, dtype=np.float64)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1] or mat.shape[0] < 1:
        raise ModelError(f"level matrix must be square (K, K), got {mat.shape}")
    return mat


def lambda_factors(level_matrix: np.ndarray) -> np.ndarray:
    """The virtual-deadline reduction factors ``lambda_1..lambda_K`` (Eq. 6).

    Returns a ``(K,)`` array.  ``lambda_1`` is always 0.  An entry is
    ``nan`` when the factor is *undefined*: its denominator is not
    positive, the factor falls outside ``[0, 1)``, or an earlier factor is
    already undefined.  Conditions that reference an undefined factor are
    treated as failed by the other functions in this module.
    """
    mat = _check_level_matrix(level_matrix)
    k_levels = mat.shape[0]
    lambdas = np.full(k_levels, np.nan, dtype=np.float64)
    lambdas[0] = 0.0
    running_product = 1.0  # P_{j-1} = prod_{x=1}^{j-1} (1 - lambda_x)
    for j in range(2, k_levels + 1):
        # numerator: sum_{x=j}^{K} U_x(j-1), scaled by 1/P_{j-1}
        numerator = float(mat[j - 1 :, j - 2].sum()) / running_product
        denominator = 1.0 - float(mat[j - 2, j - 2]) / running_product
        if denominator <= EPS:
            break  # undefined from j on
        lam = numerator / denominator
        if not 0.0 <= lam < 1.0:
            break
        lambdas[j - 1] = lam
        running_product *= 1.0 - lam
    return lambdas


def demand_terms(level_matrix: np.ndarray) -> np.ndarray:
    """``mu(k)`` for ``k = 1..K-1`` — the demand side of Ineq. (5).

    For ``K = 1`` returns the single-element array ``[U_1(1)]`` (plain EDF
    demand).
    """
    mat = _check_level_matrix(level_matrix)
    k_levels = mat.shape[0]
    diag = np.diagonal(mat)
    if k_levels == 1:
        return diag.copy()
    u_top_own = float(diag[-1])  # U_K(K)
    u_top_below = float(mat[-1, -2])  # U_K(K-1)
    if u_top_own < 1.0 - EPS:
        min_term = min(u_top_own, u_top_below / (1.0 - u_top_own))
    else:
        # The ratio is meaningless (denominator <= 0); the demand is then
        # at least U_K(K) >= 1 and every condition fails anyway.
        min_term = u_top_own
    # suffix sums of diag over i = k..K-1
    partial = np.cumsum(diag[:-1][::-1])[::-1]
    return partial + min_term


def capacity_terms(level_matrix: np.ndarray) -> np.ndarray:
    """``theta(k) = prod_{j<=k} (1 - lambda_j)`` for ``k = 1..K-1``.

    Entries whose lambda chain is undefined are ``nan``.  For ``K = 1``
    returns ``[1.0]``.
    """
    mat = _check_level_matrix(level_matrix)
    k_levels = mat.shape[0]
    if k_levels == 1:
        return np.ones(1, dtype=np.float64)
    lambdas = lambda_factors(mat)
    return np.cumprod(1.0 - lambdas[: k_levels - 1])


def available_utilizations(level_matrix: np.ndarray) -> np.ndarray:
    """``A(k) = theta(k) - mu(k)`` (Eq. 8), ``-inf`` where undefined."""
    theta = capacity_terms(level_matrix)
    mu = demand_terms(level_matrix)
    avail = theta - mu
    avail[np.isnan(avail)] = -np.inf
    return avail


def core_utilization(level_matrix: np.ndarray, rule: str = "max") -> float:
    """Core utilization ``U^{Psi_m}`` per Eq. (9).

    ``max_{A(k) >= 0} (1 - A(k))``; :data:`repro.types.INFEASIBLE`
    (``inf``) when no condition has non-negative available utilization.

    ``rule="min"`` evaluates the optimistic alternative
    ``min_{A(k) >= 0} (1 - A(k))`` — i.e. the utilization under the
    *most favourable* feasible condition.  The OCR of the paper reads
    "max", which we take as canonical; the min variant is exposed as a
    research knob for the ablation benches (for ``K = 2`` the two
    coincide, since there is a single condition).
    """
    avail = available_utilizations(level_matrix)
    ok = avail >= -EPS
    if not ok.any():
        return INFEASIBLE
    if rule == "max":
        return float(np.max(1.0 - avail[ok]))
    if rule == "min":
        return float(np.min(1.0 - avail[ok]))
    raise ModelError(f"unknown Eq. (9) rule {rule!r}; use 'max' or 'min'")


def is_feasible_theorem1(level_matrix: np.ndarray) -> bool:
    """True iff Ineq. (5) holds for at least one ``k`` (Proposition 2)."""
    return bool((available_utilizations(level_matrix) >= -EPS).any())


def first_feasible_condition(level_matrix: np.ndarray) -> int | None:
    """The smallest ``k`` (1-based) for which Ineq. (5) holds, else ``None``.

    The paper's run-time protocol is parameterized by exactly this ``k``
    ("suppose that the inequality (5) holds for a specific k, but does not
    hold for any smaller value"); the simulator uses it as ``k*``.
    """
    avail = available_utilizations(level_matrix)
    hits = np.flatnonzero(avail >= -EPS)
    if hits.size == 0:
        return None
    return int(hits[0]) + 1
