"""EDF-VD schedulability analysis for mixed-criticality task sets."""

from repro.analysis.batch import (
    batch_available_utilizations,
    batch_capacity_terms,
    batch_core_utilization,
    batch_demand_terms,
    batch_is_feasible_core,
    batch_lambda_factors,
    batch_worst_case_load,
)
from repro.analysis.contribution import (
    contribution_matrix,
    contribution_order,
    utilization_contributions,
)
from repro.analysis.dbf import (
    DualPerTaskPlan,
    dbf_step,
    hi_mode_demand,
    is_feasible_dbf,
    lo_mode_demand,
    tune_virtual_deadlines,
)
from repro.analysis.dual import (
    SPEEDUP_BOUND,
    DualUtilizations,
    deadline_scale_factor,
    is_feasible_classic,
    is_feasible_dual,
    minimum_speed,
)
from repro.analysis.edfvd import (
    available_utilizations,
    capacity_terms,
    core_utilization,
    demand_terms,
    first_feasible_condition,
    is_feasible_theorem1,
    lambda_factors,
)
from repro.analysis.global_mc import (
    GlobalAdmission,
    gfb_edf_schedulable,
    global_edfvd_admission,
)
from repro.analysis.response_time import (
    FPAssignment,
    amc_rtb_schedulable,
    audsley_assignment,
    deadline_monotonic_order,
    response_time_hi,
    response_time_lo,
)
from repro.analysis.feasibility import (
    infeasible_cores,
    is_feasible_core,
    is_feasible_partition,
)
from repro.analysis.simple import (
    is_feasible_plain_edf,
    is_feasible_simple,
    worst_case_load,
)
from repro.analysis.virtual_deadlines import (
    VirtualDeadlineAssignment,
    assign_virtual_deadlines,
)

__all__ = [
    "available_utilizations",
    "batch_available_utilizations",
    "batch_capacity_terms",
    "batch_core_utilization",
    "batch_demand_terms",
    "batch_is_feasible_core",
    "batch_lambda_factors",
    "batch_worst_case_load",
    "capacity_terms",
    "contribution_matrix",
    "contribution_order",
    "core_utilization",
    "dbf_step",
    "deadline_scale_factor",
    "demand_terms",
    "DualPerTaskPlan",
    "DualUtilizations",
    "hi_mode_demand",
    "is_feasible_dbf",
    "lo_mode_demand",
    "tune_virtual_deadlines",
    "first_feasible_condition",
    "FPAssignment",
    "GlobalAdmission",
    "gfb_edf_schedulable",
    "global_edfvd_admission",
    "amc_rtb_schedulable",
    "audsley_assignment",
    "deadline_monotonic_order",
    "response_time_hi",
    "response_time_lo",
    "infeasible_cores",
    "is_feasible_classic",
    "is_feasible_core",
    "is_feasible_dual",
    "is_feasible_partition",
    "is_feasible_plain_edf",
    "is_feasible_simple",
    "is_feasible_theorem1",
    "lambda_factors",
    "minimum_speed",
    "SPEEDUP_BOUND",
    "utilization_contributions",
    "VirtualDeadlineAssignment",
    "assign_virtual_deadlines",
    "worst_case_load",
]
