"""Utilization contributions (Eqs. (12)-(13)) and the CA-TPA task order.

A task's *utilization contribution* at level ``k`` is its share of the
system-wide level-``k`` utilization,

.. math::

    \\mathcal{C}_i(k) = u_i(k) / U(k), \\qquad k = 1, \\dots, l_i,

and its overall contribution is the maximum over its valid levels,
:math:`\\mathcal{C}_i = \\max_k \\mathcal{C}_i(k)`.  CA-TPA orders tasks by
decreasing contribution, breaking ties first by higher criticality and
then by lower task index (the paper's relational operator ``>-``).
"""

from __future__ import annotations

import numpy as np

from repro.model.taskset import MCTaskSet

__all__ = [
    "contribution_matrix",
    "utilization_contributions",
    "contribution_order",
]


def contribution_matrix(taskset: MCTaskSet) -> np.ndarray:
    """``(N, K)`` array with ``C[i, k-1] = u_i(k) / U(k)`` (0 above ``l_i``).

    Levels with ``U(k) == 0`` contribute 0 for every task (they can only
    have ``u_i(k) == 0`` there as well).
    """
    umat = taskset.utilization_matrix
    totals = taskset.total_utilization_vector()
    with np.errstate(divide="ignore", invalid="ignore"):
        contrib = np.where(totals > 0.0, umat / totals, 0.0)
    return contrib


def utilization_contributions(taskset: MCTaskSet) -> np.ndarray:
    """``(N,)`` vector of overall contributions ``C_i`` (Eq. (13))."""
    return contribution_matrix(taskset).max(axis=1)


def contribution_order(taskset: MCTaskSet) -> list[int]:
    """Task indices sorted by the paper's ordering priority rules.

    Descending contribution; ties broken by higher criticality level,
    then by smaller task index.
    """
    contrib = utilization_contributions(taskset)
    crit = taskset.criticalities
    # np.lexsort sorts ascending by the *last* key first; negate the two
    # descending keys.  The final ascending-index tie-break is implicit in
    # lexsort's stability over the input order.
    return np.lexsort((-crit, -contrib)).tolist()
