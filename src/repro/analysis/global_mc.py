"""Global multiprocessor scheduling tests (substrate / related work).

The paper motivates *partitioned* scheduling by contrast with *global*
scheduling (Section I, citing Bastoni et al.'s empirical comparison and
the global MC analyses of Li & Baruah and Pathan).  To make that
comparison executable, this module provides:

* :func:`gfb_edf_schedulable` — the classical Goossens–Funk–Baruah
  density test for global EDF on ``m`` identical processors (sound for
  constrained-deadline sporadic tasks):
  ``sum_i delta_i <= m - (m - 1) * max_i delta_i``;
* :func:`global_edfvd_admission` — a dual-criticality global EDF-VD
  admission test in the spirit of Li & Baruah's ECRTS'12 analysis: scan
  the virtual-deadline factor ``x`` and accept if the GFB density test
  passes in both modes, with LO-mode HI densities ``u_i(1)/x`` and
  HI-mode densities ``u_i(2)/(1-x)`` (the ``1-x`` floor covers the
  carry-over job that crossed the switch with only ``(1-x) p_i`` of its
  window left).

``global_edfvd_admission`` is an *adaptation* (the exact published test
differs in constants); it is deliberately conservative and is validated
empirically — the test suite simulates every accepted set under
adversarial scenarios on the global simulator and requires zero misses.
"""

from __future__ import annotations

import numpy as np

from repro.model.taskset import MCTaskSet
from repro.types import EPS, ModelError, fits_unit_capacity

__all__ = ["gfb_edf_schedulable", "global_edfvd_admission", "GlobalAdmission"]

from dataclasses import dataclass


def gfb_edf_schedulable(densities, processors: int) -> bool:
    """GFB density test for global EDF on ``processors`` identical CPUs."""
    if processors < 1:
        raise ModelError(f"processors must be >= 1, got {processors}")
    dens = np.asarray(list(densities), dtype=np.float64)
    if dens.size == 0:
        return True
    if (dens < 0).any():
        raise ModelError("densities must be non-negative")
    d_max = float(dens.max())
    if not fits_unit_capacity(d_max):
        return False
    return float(dens.sum()) <= processors - (processors - 1) * d_max + EPS


@dataclass(frozen=True)
class GlobalAdmission:
    """Outcome of the global EDF-VD admission scan."""

    schedulable: bool
    x_factor: float | None  #: accepted virtual-deadline factor, if any


def global_edfvd_admission(
    taskset: MCTaskSet, processors: int, x_grid=None
) -> GlobalAdmission:
    """Dual-criticality global EDF-VD admission (GFB in both modes).

    Scans ``x`` over ``x_grid`` (default 0.05..0.95 step 0.05, plus 1.0
    meaning "no deadline scaling, plain global EDF on worst-case
    budgets") and accepts the first ``x`` for which both mode tests
    pass.
    """
    if taskset.levels != 2:
        raise ModelError(
            f"global EDF-VD admission supports K=2 only, got K={taskset.levels}"
        )
    lo = [t for t in taskset if t.criticality == 1]
    hi = [t for t in taskset if t.criticality == 2]
    if x_grid is None:
        x_grid = [i / 20.0 for i in range(1, 20)] + [1.0]
    for x in x_grid:
        if not 0.0 < x <= 1.0:
            raise ModelError(f"x factors must lie in (0, 1], got {x}")
        if x == 1.0:
            # No virtual deadlines: one GFB test on worst-case budgets.
            densities = [t.utilization(1) for t in lo] + [
                t.utilization(2) for t in hi
            ]
            if gfb_edf_schedulable(densities, processors):
                return GlobalAdmission(schedulable=True, x_factor=1.0)
            continue
        lo_mode = [t.utilization(1) for t in lo] + [
            t.utilization(1) / x for t in hi
        ]
        hi_mode = [t.utilization(2) / (1.0 - x) for t in hi]
        if gfb_edf_schedulable(lo_mode, processors) and gfb_edf_schedulable(
            hi_mode, processors
        ):
            return GlobalAdmission(schedulable=True, x_factor=float(x))
    return GlobalAdmission(schedulable=False, x_factor=None)
