"""Simple utilization-based schedulability tests.

Eq. (4) of the paper: a core's tasks are EDF-VD schedulable if

.. math::

    \\sum_{k=1}^{K} U_k^{\\Psi_m}(k) \\le 1,

i.e. the core can absorb every task's *maximum* utilization at its own
criticality level simultaneously; EDF-VD then degenerates to plain EDF
with no virtual deadlines.  This is the (pessimistic) test classical
heuristics use as their first check.
"""

from __future__ import annotations

import numpy as np

from repro.types import ModelError, fits_unit_capacity

__all__ = ["worst_case_load", "is_feasible_simple", "is_feasible_plain_edf"]


def worst_case_load(level_matrix: np.ndarray) -> float:
    """``sum_k U_k(k)`` — the load figure used by Eq. (4) and by the
    classical heuristics as their bin "fill level"."""
    mat = np.asarray(level_matrix, dtype=np.float64)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ModelError(f"level matrix must be square (K, K), got {mat.shape}")
    return float(np.trace(mat))


def is_feasible_simple(level_matrix: np.ndarray) -> bool:
    """Eq. (4): sufficient utilization test for EDF-VD on one core."""
    return bool(fits_unit_capacity(worst_case_load(level_matrix)))


def is_feasible_plain_edf(utilizations: np.ndarray | list[float]) -> bool:
    """Classic Liu & Layland EDF bound for implicit deadlines: ``sum u <= 1``.

    Used for the non-MC (``K = 1``) degenerate case and in tests.
    """
    total = float(np.sum(np.asarray(utilizations, dtype=np.float64)))
    return bool(fits_unit_capacity(total))
