"""Virtual-deadline assignment for the EDF-VD run-time protocol.

The paper (text after Theorem 1) parameterizes the run-time protocol by
the smallest ``k*`` for which Ineq. (5) holds:

* while the core operates at level ``l <= k* - 1``, jobs of tasks in
  ``L_1 .. L_{l-1}`` are discarded, and every task ``tau_i`` in ``L_j``
  with ``j >= l + 1`` uses the shrunk *virtual* relative deadline
  ``p_i(l+1) = lambda_{l+1} * p_i(l)`` (with ``p_i(1) = p_i``), i.e. the
  cumulative product ``p_i * prod_{x=2}^{l+1} lambda_x``;
* from level ``k*`` on, jobs of tasks in ``L_1 .. L_{k*-1}`` are
  cancelled, tasks in ``L_{k*} .. L_{K-1}`` get their original deadlines
  back, and the deadlines of the top-criticality tasks ``L_K`` are "set
  accordingly based on the values of the min term" of Ineq. (5):

  - if the min term selects ``U_K(K)``, the ``L_K`` tasks also run with
    their original deadlines (their full-budget demand fits as is);
  - if it selects the ratio ``U_K(K-1) / (1 - U_K(K))``, the ``L_K``
    tasks run with deadlines scaled by ``1 - U_K(K)``.  This is the
    ESA'11 dual-criticality choice ``x = 1 - U_2(2)``: the scaled demand
    of the ``L_K`` tasks under level-(K-1) budgets is then exactly the
    ratio term, and at the top level the full-budget demand ``U_K(K) < 1``
    fits with original deadlines restored by optimality of EDF.

:class:`VirtualDeadlineAssignment` captures all of that in one immutable
object consumed by the runtime simulator (:mod:`repro.sched`).  The
protocol's correctness is exercised end-to-end by the simulator tests:
subsets accepted by Theorem 1 must not miss deadlines of non-dropped
jobs in simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.edfvd import (
    capacity_terms,
    demand_terms,
    first_feasible_condition,
    lambda_factors,
)
from repro.model.taskset import MCTaskSet
from repro.types import EPS, ModelError, fits_unit_capacity

__all__ = ["VirtualDeadlineAssignment", "assign_virtual_deadlines"]


@dataclass(frozen=True)
class VirtualDeadlineAssignment:
    """Deadline-scaling plan for one core's task subset.

    Attributes
    ----------
    k_star:
        The protocol's pivot level ``k*`` (smallest feasible condition of
        Ineq. (5); 1 when the subset needs no staged deadline shrinking
        below the pivot).
    lambdas:
        ``(K,)`` reduction factors of Eq. (6); ``lambdas[0] == 0``;
        entries beyond what the protocol needs may be ``nan``.
    top_level_scale:
        Deadline multiplier for ``L_K`` tasks at modes ``>= k*``; 1.0
        when the min term of Ineq. (5) selected ``U_K(K)``, otherwise
        ``1 - U_K(K)``.
    levels:
        ``K``.
    """

    k_star: int
    lambdas: tuple[float, ...]
    top_level_scale: float
    levels: int

    @property
    def top_level_restores(self) -> bool:
        """True when ``L_K`` tasks revert to full deadlines at level ``k*``."""
        return self.top_level_scale == 1.0

    def scale(self, task_level: int, mode: int) -> float:
        """Relative-deadline multiplier for a task of criticality
        ``task_level`` while the core operates at ``mode``.

        Returns a positive scale in ``(0, 1]``.  Callers must not ask
        about dropped tasks (``task_level < mode``).
        """
        if not 1 <= mode <= self.levels:
            raise ModelError(f"mode must be in [1, {self.levels}], got {mode}")
        if task_level < mode:
            raise ModelError(
                f"task of criticality {task_level} is dropped at mode {mode}"
            )
        if task_level > self.levels:
            raise ModelError(
                f"task criticality {task_level} exceeds system levels {self.levels}"
            )
        if mode < self.k_star:
            if task_level == mode:
                return 1.0
            # cumulative shrink prod_{x=2}^{mode+1} lambda_x
            return float(np.prod(self.lambdas[1 : mode + 1]))
        # mode >= k*: deadlines restored, except possibly for L_K.
        if task_level == self.levels:
            return self.top_level_scale
        return 1.0

    def task_scale(self, task_index: int, task_level: int, mode: int) -> float:
        """Per-task deadline-scale protocol used by the runtime simulator.

        Theorem-1 plans scale by criticality level only, so this simply
        delegates to :meth:`scale`; per-task plans (e.g. the DBF
        extension's :class:`~repro.analysis.dbf.DualPerTaskPlan`)
        override the same protocol with task-specific deadlines.
        """
        return self.scale(task_level, mode)


def assign_virtual_deadlines(subset: MCTaskSet) -> VirtualDeadlineAssignment | None:
    """Compute the deadline-scaling plan for a core's task subset.

    Returns ``None`` when the subset fails Theorem 1 entirely (no
    feasible condition ``k``); for ``K = 1`` the plain EDF utilization
    bound is used instead.
    """
    mat = subset.level_matrix()
    k_levels = subset.levels
    if k_levels == 1:
        # Plain EDF; feasible iff total utilization <= 1.
        if not fits_unit_capacity(float(mat[0, 0])):
            return None
        return VirtualDeadlineAssignment(
            k_star=1, lambdas=(0.0,), top_level_scale=1.0, levels=1
        )
    k_star = first_feasible_condition(mat)
    if k_star is None:
        return None
    lambdas = lambda_factors(mat)
    # Which branch did the min term take?  Feasibility guarantees
    # U_K(K) < 1, so the ratio is well defined.
    u_top_own = float(mat[-1, -1])
    u_top_below = float(mat[-1, -2])
    if u_top_own >= 1.0 - EPS:
        # The ratio is meaningless here; demand_terms used U_K(K) itself,
        # so treat it as the "own level" branch (restore).  Feasibility
        # with U_K(K) ~ 1 forces every other utilization to ~0.
        top_scale = 1.0
    elif u_top_own <= u_top_below / (1.0 - u_top_own) + EPS:
        top_scale = 1.0  # min term selected U_K(K): restore at k*
    else:
        top_scale = 1.0 - u_top_own
    # The protocol needs lambda_2..lambda_{k*}; Theorem-1 feasibility at
    # k* guarantees they are defined.
    needed = lambdas[:k_star]
    if np.isnan(needed).any():  # pragma: no cover - guarded by feasibility
        raise ModelError("feasible condition references undefined lambda factors")
    # Consistency: theta(k*) >= mu(k*) must hold (sanity against drift).
    theta = capacity_terms(mat)[k_star - 1]
    mu = demand_terms(mat)[k_star - 1]
    if mu > theta + 1e-9:  # pragma: no cover - guarded by feasibility
        raise ModelError("first_feasible_condition disagrees with theta/mu")
    return VirtualDeadlineAssignment(
        k_star=k_star,
        lambdas=tuple(float(v) for v in lambdas),
        top_level_scale=float(top_scale),
        levels=k_levels,
    )
