"""Per-core and whole-partition feasibility facade.

This module bundles the tests the paper's schemes actually invoke:

* :func:`is_feasible_core` — Eq. (4) as a fast path, then Theorem 1.
  (Eq. (4) implies the ``k = 1`` condition of Theorem 1 — proven in the
  test suite — so the fast path never changes the answer, only the cost.)
* :func:`is_feasible_partition` — Propositions 1/2 lifted to a full
  partition: every non-empty core must pass.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.batch import batch_is_feasible_core
from repro.analysis.edfvd import is_feasible_theorem1
from repro.analysis.simple import is_feasible_simple
from repro.model.partition import Partition

__all__ = ["is_feasible_core", "is_feasible_partition", "infeasible_cores"]


def is_feasible_core(level_matrix: np.ndarray) -> bool:
    """EDF-VD feasibility of one core's subset (Eq. (4) or Theorem 1)."""
    return is_feasible_simple(level_matrix) or is_feasible_theorem1(level_matrix)


def is_feasible_partition(partition: Partition) -> bool:
    """Proposition 2: every core's subset passes the per-core test."""
    return not infeasible_cores(partition)


def infeasible_cores(partition: Partition) -> list[int]:
    """Indices of non-empty cores whose subsets fail the per-core test."""
    feasible = batch_is_feasible_core(partition.level_matrices())
    occupied = partition.core_counts > 0
    return np.flatnonzero(occupied & ~feasible).tolist()
