"""Fixed-priority AMC response-time analysis (substrate / related work).

The paper's related-work line of partitioned *fixed-priority* MC
scheduling (Baruah–Burns–Davis RTSS'11 "Response-time analysis for
mixed criticality systems"; Kelly–Aydin–Zhao 2011 partitioned FP) needs
the **AMC-rtb** test, implemented here for dual-criticality task sets:

* LO-mode response time of every task ``i`` (priority order: lower
  index = higher priority)::

      R_i^LO = c_i(1) + sum_{j in hp(i)} ceil(R_i^LO / p_j) * c_j(1)

  schedulable in LO mode iff ``R_i^LO <= p_i``.

* HI-mode (post-switch) response time of every HI task, bounding LO
  interference by the pre-switch window ``R_i^LO``::

      R_i^HI = c_i(2) + sum_{j in hpH(i)} ceil(R_i^HI / p_j) * c_j(2)
                      + sum_{j in hpL(i)} ceil(R_i^LO / p_j) * c_j(1)

  schedulable iff ``R_i^HI <= p_i``.

Priority assignment: deadline monotonic (a good heuristic here) and
**Audsley's algorithm** (optimal for AMC-rtb): repeatedly find any task
that is schedulable at the lowest unassigned priority level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.model.taskset import MCTaskSet
from repro.types import EPS, ModelError

__all__ = [
    "response_time_lo",
    "response_time_hi",
    "amc_rtb_schedulable",
    "deadline_monotonic_order",
    "audsley_assignment",
    "FPAssignment",
]

_MAX_ITER = 10_000


def _check_dual(subset: MCTaskSet) -> None:
    if subset.levels != 2:
        raise ModelError(
            f"AMC response-time analysis supports K=2 only, got K={subset.levels}"
        )


def _fixed_point(initial: float, bound: float, step) -> float | None:
    """Iterate ``r -> step(r)`` from ``initial`` until fixed point or > bound."""
    r = initial
    for _ in range(_MAX_ITER):
        nxt = step(r)
        if nxt > bound + EPS:
            return None
        if nxt <= r + EPS:
            return nxt
        r = nxt
    return None  # pragma: no cover - pathological non-convergence


def response_time_lo(
    subset: MCTaskSet, priorities: list[int], index: int
) -> float | None:
    """LO-mode response time of ``index`` under the given priority order.

    ``priorities`` lists task indices from highest to lowest priority.
    Returns ``None`` when the response time exceeds the deadline.
    """
    task = subset[index]
    rank = priorities.index(index)
    hp = priorities[:rank]

    def step(r: float) -> float:
        return task.wcet(1) + sum(
            math.ceil(r / subset[j].period - EPS) * subset[j].wcet(1) for j in hp
        )

    return _fixed_point(task.wcet(1), task.period, step)


def response_time_hi(
    subset: MCTaskSet, priorities: list[int], index: int, r_lo: float
) -> float | None:
    """AMC-rtb HI-mode response time of HI task ``index``.

    ``r_lo`` is the task's LO-mode response time (the pre-switch window
    bounding LO-task interference).
    """
    task = subset[index]
    if task.criticality < 2:
        raise ModelError("HI-mode response time is defined for HI tasks only")
    rank = priorities.index(index)
    hp = priorities[:rank]
    hp_hi = [j for j in hp if subset[j].criticality >= 2]
    hp_lo = [j for j in hp if subset[j].criticality < 2]
    lo_interference = sum(
        math.ceil(r_lo / subset[j].period - EPS) * subset[j].wcet(1) for j in hp_lo
    )

    def step(r: float) -> float:
        return (
            task.wcet(2)
            + lo_interference
            + sum(
                math.ceil(r / subset[j].period - EPS) * subset[j].wcet(2)
                for j in hp_hi
            )
        )

    return _fixed_point(task.wcet(2), task.period, step)


def _task_schedulable_at(
    subset: MCTaskSet, priorities: list[int], index: int
) -> bool:
    """Both AMC-rtb conditions for one task at its slot in ``priorities``."""
    r_lo = response_time_lo(subset, priorities, index)
    if r_lo is None:
        return False
    if subset[index].criticality >= 2:
        return response_time_hi(subset, priorities, index, r_lo) is not None
    return True


def amc_rtb_schedulable(subset: MCTaskSet, priorities: list[int]) -> bool:
    """Whole-subset AMC-rtb test under an explicit priority order."""
    _check_dual(subset)
    if sorted(priorities) != list(range(len(subset))):
        raise ModelError("priorities must be a permutation of all task indices")
    return all(
        _task_schedulable_at(subset, priorities, i) for i in priorities
    )


def deadline_monotonic_order(subset: MCTaskSet) -> list[int]:
    """Indices from highest to lowest priority by increasing period
    (= relative deadline), ties by higher criticality then lower index."""
    return sorted(
        range(len(subset)),
        key=lambda i: (subset[i].period, -subset[i].criticality, i),
    )


@dataclass(frozen=True)
class FPAssignment:
    """A feasible fixed-priority assignment (highest priority first)."""

    priorities: tuple[int, ...]

    def priority_of(self, index: int) -> int:
        """0 = highest."""
        return self.priorities.index(index)


def audsley_assignment(subset: MCTaskSet) -> FPAssignment | None:
    """Audsley's optimal priority assignment under AMC-rtb.

    Builds the order bottom-up: at each (lowest remaining) priority
    level, pick any task that is schedulable there given that all other
    unassigned tasks sit above it.  Returns ``None`` iff no assignment
    makes the subset AMC-rtb schedulable.
    """
    _check_dual(subset)
    remaining = list(range(len(subset)))
    bottom: list[int] = []  # lowest priorities, built back to front
    while remaining:
        placed = False
        for candidate in remaining:
            others = [i for i in remaining if i != candidate]
            trial = others + [candidate] + bottom
            if _task_schedulable_at(subset, trial, candidate):
                bottom.insert(0, candidate)
                remaining = others
                placed = True
                break
        if not placed:
            return None
    return FPAssignment(priorities=tuple(bottom))
