"""Demand-bound-function analysis for dual-criticality EDF-VD (extension).

The paper cites (as the high-complexity alternative to its
utilization-based test) partitioned MC scheduling built on DBF-shaping
analyses in the style of Ekberg & Yi, *Bounding and shaping the demand
of mixed-criticality sporadic tasks* (ECRTS'12).  This module implements
that analysis for dual-criticality subsets:

* every HI task gets a per-task *virtual relative deadline*
  ``d_i <= p_i`` used while the core is in LO mode;
* **LO-mode test**: for all ``t``,
  ``sum_LO dbf(t; p_i, p_i, c_i(1)) + sum_HI dbf(t; p_i, d_i, c_i(1)) <= t``;
* **HI-mode test**: a HI job present at the switch met (or will meet)
  its virtual deadline, so after the switch it has at least
  ``p_i - d_i`` time to its real deadline; HI demand is therefore
  bounded by ``dbf(t; p_i, p_i - d_i, c_i(2))`` (first deadline at the
  offset, then periodic) and the test is ``sum_HI ... <= t`` for all
  ``t``;
* the *tuning* loop shrinks individual ``d_i`` (improving the HI test at
  the expense of the LO test) until both pass or no progress is
  possible.

Both tests enumerate the demand-step points up to the standard EDF
processor-demand busy-period bound (capped for pathological inputs —
see :func:`demand_horizon`).  The result is a per-task deadline plan the
runtime simulator can execute directly, so the extension is validated
end-to-end like the paper's own analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.taskset import MCTaskSet
from repro.types import EPS, ModelError

__all__ = [
    "dbf_step",
    "demand_horizon",
    "DualPerTaskPlan",
    "lo_mode_demand",
    "hi_mode_demand",
    "is_feasible_dbf",
    "tune_virtual_deadlines",
]

#: Hard cap on the demand-check horizon; beyond this the busy-period
#: bound is considered pathological and the test conservatively rejects.
HORIZON_CAP: float = 1e6


def dbf_step(t: float, period: float, deadline: float, wcet: float) -> float:
    """Demand bound of one sporadic task with first deadline at
    ``deadline`` and subsequent deadlines every ``period``:
    ``(floor((t - deadline)/period) + 1)^+ * wcet``."""
    if t < deadline - EPS:
        return 0.0
    return (np.floor((t - deadline) / period) + 1.0) * wcet


def _check_dual(subset: MCTaskSet) -> None:
    if subset.levels != 2:
        raise ModelError(
            f"DBF analysis supports dual-criticality subsets only, K={subset.levels}"
        )


def demand_horizon(
    utilization: float, weighted_slack: float, max_deadline: float
) -> float | None:
    """EDF processor-demand horizon: demand(t) <= t needs checking only
    up to ``max(D_max, weighted_slack / (1 - U))``.

    Returns ``None`` when the bound is unusable (``U >= 1`` or beyond
    :data:`HORIZON_CAP`), in which case the caller must reject.
    """
    if utilization >= 1.0 - 1e-9:
        # U == 1 exactly is schedulable for implicit deadlines, but the
        # busy-period bound diverges; callers treat None as "reject" and
        # the utilization-based tests already cover that boundary.
        return None
    horizon = max(max_deadline, weighted_slack / (1.0 - utilization))
    if horizon > HORIZON_CAP:
        return None
    return horizon


@dataclass(frozen=True)
class DualPerTaskPlan:
    """Per-task virtual deadlines for a dual-criticality subset.

    ``deadlines[i]`` is the LO-mode relative deadline of subset task
    ``i`` (equal to the period for LO tasks).  Implements the
    ``task_scale`` protocol of the runtime simulator: HI deadlines are
    restored in HI mode (the carry-over is what the HI-mode DBF bounds).
    """

    deadlines: tuple[float, ...]
    periods: tuple[float, ...]
    levels: int = 2

    def task_scale(self, task_index: int, task_level: int, mode: int) -> float:
        if not 1 <= mode <= self.levels:
            raise ModelError(f"mode must be in [1, {self.levels}], got {mode}")
        if task_level < mode:
            raise ModelError(
                f"task of criticality {task_level} is dropped at mode {mode}"
            )
        if mode == 1:
            return self.deadlines[task_index] / self.periods[task_index]
        return 1.0


def _demand_points(first_deadlines, periods, horizon) -> np.ndarray:
    """All step points of the aggregate dbf up to ``horizon``."""
    points = []
    for d0, p in zip(first_deadlines, periods):
        if d0 > horizon:
            continue
        count = int(np.floor((horizon - d0) / p)) + 1
        points.append(d0 + p * np.arange(count))
    if not points:
        return np.empty(0)
    return np.unique(np.concatenate(points))


def lo_mode_demand(subset: MCTaskSet, deadlines, t: float) -> float:
    """Aggregate LO-mode demand bound at ``t`` (level-1 budgets)."""
    _check_dual(subset)
    total = 0.0
    for i, task in enumerate(subset):
        total += dbf_step(t, task.period, deadlines[i], task.wcet(1))
    return total


def hi_mode_demand(subset: MCTaskSet, deadlines, t: float) -> float:
    """Aggregate HI-mode demand bound at ``t`` (level-2 budgets,
    first deadlines at ``p_i - d_i``)."""
    _check_dual(subset)
    total = 0.0
    for i, task in enumerate(subset):
        if task.criticality < 2:
            continue
        offset = task.period - deadlines[i]
        total += dbf_step(t, task.period, offset, task.wcet(2))
    return total


def _mode_check(first_deadlines, periods, wcets, horizon) -> float | None:
    """First t at which demand exceeds supply, else None (test passes)."""
    points = _demand_points(first_deadlines, periods, horizon)
    if points.size == 0:
        return None
    demand = np.zeros_like(points)
    for d0, p, c in zip(first_deadlines, periods, wcets):
        demand += np.where(
            points >= d0 - EPS, (np.floor((points - d0) / p) + 1.0) * c, 0.0
        )
    bad = np.flatnonzero(demand > points + 1e-9)
    if bad.size == 0:
        return None
    return float(points[bad[0]])


def _failing_point_lo(subset, deadlines) -> float | None | bool:
    periods = [t.period for t in subset]
    wcets = [t.wcet(1) for t in subset]
    u = sum(c / p for c, p in zip(wcets, periods))
    slack = sum(
        max(0.0, p - d) * (c / p) for p, d, c in zip(periods, deadlines, wcets)
    )
    horizon = demand_horizon(u, slack, max(deadlines))
    if horizon is None:
        return False  # unusable bound -> reject
    return _mode_check(deadlines, periods, wcets, horizon)


def _failing_point_hi(subset, deadlines) -> float | None | bool:
    rows = [
        (t.period, t.period - deadlines[i], t.wcet(2))
        for i, t in enumerate(subset)
        if t.criticality >= 2
    ]
    if not rows:
        return None
    periods = [r[0] for r in rows]
    offsets = [r[1] for r in rows]
    wcets = [r[2] for r in rows]
    u = sum(c / p for c, p in zip(wcets, periods))
    slack = sum(
        max(0.0, p - o) * (c / p) for p, o, c in zip(periods, offsets, wcets)
    )
    horizon = demand_horizon(u, slack, max(max(offsets), 1e-9))
    if horizon is None:
        return False
    return _mode_check(offsets, periods, wcets, horizon)


def is_feasible_dbf(subset: MCTaskSet, deadlines) -> bool:
    """Do both mode tests pass for the given virtual deadlines?"""
    _check_dual(subset)
    deadlines = list(deadlines)
    if len(deadlines) != len(subset):
        raise ModelError("one virtual deadline per task is required")
    for i, task in enumerate(subset):
        if not 0.0 < deadlines[i] <= task.period + EPS:
            raise ModelError(
                f"virtual deadline of task {i} must be in (0, p_i], got"
                f" {deadlines[i]}"
            )
    lo = _failing_point_lo(subset, deadlines)
    if lo is not None:
        return False
    hi = _failing_point_hi(subset, deadlines)
    return hi is None


def tune_virtual_deadlines(
    subset: MCTaskSet, max_iterations: int = 200, shrink: float = 0.85
) -> DualPerTaskPlan | None:
    """Ekberg-Yi-style deadline tuning for a dual-criticality subset.

    Starts from full deadlines (``d_i = p_i``: most LO slack, worst HI
    carry-over) and, while the HI-mode test fails, multiplicatively
    shrinks the virtual deadline of the HI task contributing the most
    demand at the failing instant.  Stops when both tests pass (returns
    the plan) or when the LO-mode test breaks / no deadline can shrink
    further (returns ``None``).
    """
    _check_dual(subset)
    deadlines = [t.period for t in subset]
    hi_indices = [i for i, t in enumerate(subset) if t.criticality >= 2]

    for _ in range(max_iterations):
        lo_fail = _failing_point_lo(subset, deadlines)
        if lo_fail is not None:  # includes the False "unusable bound" case
            return None
        hi_fail = _failing_point_hi(subset, deadlines)
        if hi_fail is None:
            return DualPerTaskPlan(
                deadlines=tuple(deadlines),
                periods=tuple(t.period for t in subset),
            )
        if hi_fail is False:
            return None
        # Shrink the deadline of the HI task with the largest demand
        # contribution at the failing instant (ties: first).
        best, best_demand = None, 0.0
        for i in hi_indices:
            task = subset[i]
            if deadlines[i] <= task.wcet(1) + EPS:
                continue  # cannot shrink below its LO budget
            contribution = dbf_step(
                hi_fail, task.period, task.period - deadlines[i], task.wcet(2)
            )
            if contribution > best_demand + EPS:
                best, best_demand = i, contribution
        if best is None:
            return None
        deadlines[best] = max(
            subset[best].wcet(1), deadlines[best] * shrink
        )
    return None
