"""Dual-criticality (``K = 2``) EDF-VD specialization.

These are the classical results of Baruah et al. (ESA'11 / ECRTS'12 /
JACM'15) that the paper's Theorem 1 generalizes.  They serve two
purposes here:

1. direct, independently-coded implementations used by the test suite to
   cross-check the reconstructed multi-level machinery in
   :mod:`repro.analysis.edfvd` (for ``K = 2`` the two must agree), and
2. the virtual-deadline factor ``x`` consumed by the runtime simulator in
   the common dual-criticality configuration.

Notation: ``U_j(k)`` with ``j`` the tasks' own criticality (1 = LO,
2 = HI) and ``k`` the level of the WCET used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.types import EPS, ModelError, fits_unit_capacity

__all__ = [
    "DualUtilizations",
    "is_feasible_dual",
    "is_feasible_classic",
    "deadline_scale_factor",
    "minimum_speed",
    "SPEEDUP_BOUND",
]

#: EDF-VD's speedup factor for dual-criticality systems (JACM'15): any
#: instance feasible on a unit-speed core is EDF-VD schedulable on a core
#: of speed 4/3.
SPEEDUP_BOUND: float = 4.0 / 3.0


@dataclass(frozen=True)
class DualUtilizations:
    """The three aggregate utilizations governing dual-criticality EDF-VD."""

    lo_lo: float  #: U_1(1): LO tasks at their own (only) level
    hi_lo: float  #: U_2(1): HI tasks under LO-mode WCETs
    hi_hi: float  #: U_2(2): HI tasks under HI-mode WCETs

    @classmethod
    def from_level_matrix(cls, level_matrix: np.ndarray) -> "DualUtilizations":
        mat = np.asarray(level_matrix, dtype=np.float64)
        if mat.shape != (2, 2):
            raise ModelError(
                f"dual-criticality analysis needs a (2, 2) level matrix, got {mat.shape}"
            )
        return cls(lo_lo=float(mat[0, 0]), hi_lo=float(mat[1, 0]), hi_hi=float(mat[1, 1]))


def is_feasible_dual(u: DualUtilizations) -> bool:
    """Eq. (7): ``U_1(1) + min(U_2(2), U_2(1)/(1 - U_2(2))) <= 1``."""
    if u.hi_hi >= 1.0 - EPS:
        min_term = u.hi_hi
    else:
        min_term = min(u.hi_hi, u.hi_lo / (1.0 - u.hi_hi))
    return bool(fits_unit_capacity(u.lo_lo + min_term))


def deadline_scale_factor(u: DualUtilizations) -> float | None:
    """The virtual-deadline factor ``x = U_2(1) / (1 - U_1(1))``.

    In LO mode every HI task's relative deadline is shrunk to ``x * p_i``.
    Returns ``None`` when no valid factor exists (``U_1(1) >= 1`` or the
    resulting ``x`` is not in ``[0, 1)``), which matches ``lambda_2`` of
    Eq. (6) being undefined.

    A factor of exactly 0 can only occur when there are no HI tasks, in
    which case no scaling is needed; callers may treat 0 as "no HI tasks".
    """
    denominator = 1.0 - u.lo_lo
    if denominator <= EPS:
        return None
    x = u.hi_lo / denominator
    if not 0.0 <= x < 1.0:
        return None
    return x


def is_feasible_classic(u: DualUtilizations) -> bool:
    """The JACM'15 sufficient test phrased via the ``x`` factor.

    Schedulable if either the plain worst-case utilization fits
    (``U_1(1) + U_2(2) <= 1``, EDF with no virtual deadlines), or the
    smallest admissible virtual-deadline factor
    ``x = U_2(1) / (1 - U_1(1))`` also satisfies the HI-mode condition
    ``x * U_1(1) + U_2(2) <= 1``.  (The LO-mode condition
    ``U_1(1) + U_2(1)/x <= 1`` holds by the choice of ``x``.)

    Note: this test *dominates* Eq. (7) — whenever Eq. (7) accepts, so
    does this test (if the ratio branch of Eq. (7) holds then
    ``x <= 1 - U_2(2)``, hence ``x*U_1(1) + U_2(2) <= U_1(1) +
    (1-U_1(1))*U_2(2) <= 1``), but not conversely.  It is coded
    independently and the test suite verifies the implication on random
    instances; the partitioners use the Theorem-1/Eq.-(7) family for
    faithfulness to the paper.
    """
    if fits_unit_capacity(u.lo_lo + u.hi_hi):  # plain EDF on worst-case budgets
        return True
    x = deadline_scale_factor(u)
    if x is None:
        return False
    return bool(fits_unit_capacity(x * u.lo_lo + u.hi_hi))


def minimum_speed(u: DualUtilizations, test=None) -> float:
    """The smallest processor speed at which ``test`` accepts, by bisection.

    Scaling the platform speed by ``s`` divides every utilization by
    ``s``.  ``test`` defaults to :func:`is_feasible_classic` (the JACM'15
    x-factor test), for which the classical speedup guarantee holds: any
    instance with ``max(U_1(1)+U_2(1), U_2(2)) <= 1`` (feasible on a
    unit-speed clairvoyant scheduler) needs speed at most 4/3
    (:data:`SPEEDUP_BOUND`).  Pass :func:`is_feasible_dual` to measure the
    Eq. (7) test instead — note that Eq. (7) does *not* enjoy the 4/3
    bound (e.g. ``(0.75, 0.25, 1.0)`` needs speed 1.5 under Eq. (7)).
    """
    if test is None:
        test = is_feasible_classic
    lo, hi = 0.0, 16.0
    base = (u.lo_lo, u.hi_lo, u.hi_hi)
    if not math.isfinite(sum(base)):
        raise ModelError("utilizations must be finite")
    for _ in range(100):
        mid = (lo + hi) / 2.0
        scaled = DualUtilizations(*(v / mid for v in base)) if mid > 0 else u
        if mid > 0 and test(scaled):
            hi = mid
        else:
            lo = mid
    return hi
