"""Vectorized EDF-VD analysis over stacks of level matrices.

The partitioning probes of Algorithm 1 ask the same question for every
core at once: "what would ``U^{Psi_m + tau_i}`` be on core ``m``?"
(Eqs. (14)-(15)).  The scalar functions in :mod:`repro.analysis.edfvd`
answer it one ``(K, K)`` matrix at a time, which costs one full Python
pass per core.  This module evaluates an ``(M, K, K)`` *stack* of level
matrices in a single NumPy pass: the sequential recurrence of Eq. (6)
stays a loop over the ``K`` criticality levels (it is inherently
sequential in ``j``), but every core is advanced simultaneously, so the
per-core Python overhead disappears.

Numerical contract: every function here performs, element for element,
the *same IEEE-754 operations in the same order* as its scalar
counterpart, so results are bit-identical — the partitioners can switch
between the paths without changing a single placement decision (the
test suite pins this property on random, NaN-lambda and infeasible
stacks).

Shapes: inputs are ``(M, K, K)`` stacks; per-level outputs are
``(M, K)`` (lambdas) or ``(M, max(K - 1, 1))`` (conditions); reductions
are ``(M,)``.
"""

from __future__ import annotations

import numpy as np

from repro.types import EPS, INFEASIBLE, ModelError, fits_unit_capacity

__all__ = [
    "batch_lambda_factors",
    "batch_demand_terms",
    "batch_capacity_terms",
    "batch_available_utilizations",
    "batch_core_utilization",
    "batch_worst_case_load",
    "batch_is_feasible_core",
]


def _check_stack(level_matrices: np.ndarray) -> np.ndarray:
    arr = np.asarray(level_matrices, dtype=np.float64)
    if arr.ndim != 3 or arr.shape[1] != arr.shape[2] or arr.shape[1] < 1:
        raise ModelError(
            f"level-matrix stack must have shape (M, K, K), got {arr.shape}"
        )
    return arr


# Strict-lower-triangle masks by K.  Summing a masked copy along the row
# axis yields every column's "criticalities above j-1" sum in one pass;
# for K < 8 NumPy reduces sequentially in row order, so the prepended
# zero rows leave each partial sum bit-identical to the scalar slice sum.
_BELOW_MASKS: dict[int, np.ndarray] = {}


def _strict_lower_mask(k_levels: int) -> np.ndarray:
    mask = _BELOW_MASKS.get(k_levels)
    if mask is None:
        mask = np.tril(np.ones((k_levels, k_levels), dtype=bool), k=-1)
        _BELOW_MASKS[k_levels] = mask
    return mask


def _lambda_factors(
    mats: np.ndarray, diag: np.ndarray, upto: int
) -> np.ndarray:
    """Unchecked core of :func:`batch_lambda_factors` (shared ``diag``).

    Runs the Eq.-(6) recurrence for ``lambda_2 .. lambda_upto`` only;
    entries past ``upto`` stay ``nan``.  Callers must wrap in
    ``np.errstate`` (division warnings are expected on dead rows).  The
    Theorem-1 chain passes ``upto = K - 1`` because ``theta(K-1)`` is
    the deepest capacity term — ``lambda_K`` never feeds a condition.
    """
    m_stack, k_levels = mats.shape[0], mats.shape[1]
    lambdas = np.full((m_stack, k_levels), np.nan, dtype=np.float64)
    lambdas[:, 0] = 0.0
    if k_levels == 1 or m_stack == 0:
        return lambdas
    if upto < 2:
        return lambdas
    below = np.where(_strict_lower_mask(k_levels), mats, 0.0).sum(axis=1)
    # j = 2: P_1 is exactly 1, so the divisions by the running product
    # are identities (x / 1.0 == x) and can be skipped bit-safely.
    denominator = 1.0 - diag[:, 0]
    lam = below[:, 0] / denominator
    # Level matrices are non-negative by construction, so whenever the
    # denominator check passes, lam >= 0 is automatic (and a NaN lam
    # fails `lam < 1.0` just like the scalar `0.0 <= lam` test); the
    # scalar path's lower-bound check is skipped here and below.
    alive = (denominator > EPS) & (lam < 1.0)
    np.copyto(lambdas[:, 1], lam, where=alive)
    if upto == 2 or not alive.any():
        return lambdas
    product = np.where(alive, 1.0 - lam, 1.0)  # P_2 per matrix
    for j in range(3, upto + 1):
        numerator = below[:, j - 2] / product
        denominator = 1.0 - diag[:, j - 2] / product
        lam = numerator / denominator
        ok = alive & (denominator > EPS) & (lam < 1.0)
        np.copyto(lambdas[:, j - 1], lam, where=ok)
        if not ok.any():
            break
        product = np.where(ok, product * (1.0 - lam), product)
        alive = ok
    return lambdas


def batch_lambda_factors(level_matrices: np.ndarray) -> np.ndarray:
    """Eq. (6) reduction factors for a stack: ``(M, K)`` of lambdas.

    Row semantics match :func:`repro.analysis.edfvd.lambda_factors`:
    ``lambda_1 = 0`` and entries are ``nan`` from the first undefined
    factor on.  The recurrence over ``j`` is sequential, but all ``M``
    matrices advance together; a row that dies is masked out of later
    steps (``alive``) exactly like the scalar early ``break``.
    """
    mats = _check_stack(level_matrices)
    diag = np.diagonal(mats, axis1=1, axis2=2)
    with np.errstate(divide="ignore", invalid="ignore"):
        return _lambda_factors(mats, diag, mats.shape[1])


def _demand_terms(mats: np.ndarray, diag: np.ndarray) -> np.ndarray:
    """Unchecked core of :func:`batch_demand_terms` (shared ``diag``).

    Callers must wrap in ``np.errstate`` (the ``U_K(K) >= 1`` rows
    divide by a non-positive denominator before being masked out).
    """
    if mats.shape[1] == 1:
        return diag.copy()
    u_top_own = diag[:, -1]  # U_K(K)
    u_top_below = mats[:, -1, -2]  # U_K(K-1)
    ratio = u_top_below / (1.0 - u_top_own)
    min_term = np.where(
        u_top_own < 1.0 - EPS, np.minimum(u_top_own, ratio), u_top_own
    )
    # suffix sums of the diagonal over i = k..K-1, per matrix
    partial = np.cumsum(diag[:, :-1][:, ::-1], axis=1)[:, ::-1]
    return partial + min_term[:, None]


def _available_utilizations(mats: np.ndarray) -> np.ndarray:
    """Unchecked core of :func:`batch_available_utilizations`.

    Computes the diagonal once and feeds it to both the lambda recurrence
    and the demand terms — the scalar path extracts it twice.  The
    recurrence stops at ``lambda_{K-1}``: ``theta(K-1)`` is the deepest
    capacity term of Ineq. (5), so ``lambda_K`` (which the scalar path
    computes and discards) is never evaluated here.
    """
    k_levels = mats.shape[1]
    diag = np.diagonal(mats, axis1=1, axis2=2)  # (M, K)
    with np.errstate(divide="ignore", invalid="ignore"):
        mu = _demand_terms(mats, diag)
        if k_levels == 1:
            theta = np.ones_like(mu)
        else:
            lambdas = _lambda_factors(mats, diag, k_levels - 1)
            theta = np.cumprod(1.0 - lambdas[:, : k_levels - 1], axis=1)
    avail = theta - mu
    avail[np.isnan(avail)] = -np.inf
    return avail


def batch_demand_terms(level_matrices: np.ndarray) -> np.ndarray:
    """``mu(k)`` for every matrix of the stack: ``(M, K-1)`` (Ineq. (5)).

    ``(M, 1)`` for ``K = 1`` (plain EDF demand), mirroring the scalar
    :func:`repro.analysis.edfvd.demand_terms`.
    """
    mats = _check_stack(level_matrices)
    with np.errstate(divide="ignore", invalid="ignore"):
        return _demand_terms(mats, np.diagonal(mats, axis1=1, axis2=2))


def batch_capacity_terms(level_matrices: np.ndarray) -> np.ndarray:
    """``theta(k)`` per matrix: ``(M, K-1)`` (``(M, 1)`` of ones for K=1)."""
    mats = _check_stack(level_matrices)
    m_stack, k_levels = mats.shape[0], mats.shape[1]
    if k_levels == 1:
        return np.ones((m_stack, 1), dtype=np.float64)
    lambdas = batch_lambda_factors(mats)
    return np.cumprod(1.0 - lambdas[:, : k_levels - 1], axis=1)


def batch_available_utilizations(level_matrices: np.ndarray) -> np.ndarray:
    """``A(k) = theta(k) - mu(k)`` per matrix (Eq. 8), ``-inf`` if undefined."""
    return _available_utilizations(_check_stack(level_matrices))


def batch_core_utilization(
    level_matrices: np.ndarray, rule: str = "max"
) -> np.ndarray:
    """Eq.-(9) core utilization for every matrix of the stack: ``(M,)``.

    Entries are :data:`repro.types.INFEASIBLE` (``inf``) where no
    Theorem-1 condition has non-negative available utilization; the
    ``rule`` knob matches :func:`repro.analysis.edfvd.core_utilization`.
    """
    if rule not in ("max", "min"):
        raise ModelError(f"unknown Eq. (9) rule {rule!r}; use 'max' or 'min'")
    return _core_utilization_stack(_check_stack(level_matrices), rule)


def _core_utilization_stack(mats: np.ndarray, rule: str) -> np.ndarray:
    """Unchecked core of :func:`batch_core_utilization`.

    ``1 - A(k)`` is finite for every condition that passes ``A(k) >=
    -EPS`` (a passing ``A`` is finite), so a row with no passing
    condition is recognisable from the reduction's identity element
    alone — no separate ``ok.any()`` pass is needed.
    """
    avail = _available_utilizations(mats)
    ok = avail >= -EPS
    if rule == "max":
        out = np.where(ok, 1.0 - avail, -np.inf).max(axis=1)
        return np.where(np.isneginf(out), INFEASIBLE, out)
    # rule == "min": the all-failed identity element is +inf, which is
    # already the INFEASIBLE marker.
    return np.where(ok, 1.0 - avail, np.inf).min(axis=1)


def batch_worst_case_load(level_matrices: np.ndarray) -> np.ndarray:
    """Eq.-(4) load figure ``sum_k U_k(k)`` per matrix: ``(M,)``."""
    mats = _check_stack(level_matrices)
    return np.trace(mats, axis1=1, axis2=2)


def batch_is_feasible_core(level_matrices: np.ndarray) -> np.ndarray:
    """Per-matrix Eq.(4)-or-Theorem-1 feasibility: ``(M,)`` bools.

    The vectorized twin of :func:`repro.analysis.is_feasible_core`,
    including its short-circuit: the Theorem-1 chain only runs on the
    rows that fail the Eq.-(4) trace test (feasibility is per-row, so
    gating cannot change any answer).  During the early, lightly-loaded
    phase of a partitioning run most candidate cores pass Eq. (4), which
    makes the feasibility probes nearly free.
    """
    return _is_feasible_stack(_check_stack(level_matrices))


def _is_feasible_stack(mats: np.ndarray) -> np.ndarray:
    """Unchecked core of :func:`batch_is_feasible_core`."""
    feasible = fits_unit_capacity(np.trace(mats, axis1=1, axis2=2))
    if not feasible.all():
        hard = np.flatnonzero(~feasible)
        avail = _available_utilizations(mats[hard])
        feasible[hard] = (avail >= -EPS).any(axis=1)
    return feasible
