"""Workload-generation parameters (Table IV of the paper).

:class:`WorkloadConfig` describes one *data point* of the evaluation: the
platform size, the criticality structure, and the random-workload knobs.
The class carries the paper's default values (Section IV-A: ``M = 8``,
``K = 4``, ``NSU = 0.6``, ``IFC = 0.4``; the imbalance threshold default
``alpha = 0.7`` lives with CA-TPA, not with the workload); the sweep
ranges of Table IV are exposed as module constants for the figure
harness.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.types import GenerationError

__all__ = [
    "WorkloadConfig",
    "CORE_COUNTS",
    "LEVEL_RANGE",
    "ALPHA_RANGE",
    "NSU_RANGE",
    "TASK_COUNT_RANGE",
    "PERIOD_RANGES",
    "IFC_RANGE",
]

#: Table IV: number of cores (M).
CORE_COUNTS: tuple[int, ...] = (2, 4, 8, 16, 32)
#: Table IV: system criticality level (K).
LEVEL_RANGE: tuple[int, int] = (2, 6)
#: Table IV: threshold for workload imbalance (alpha).
ALPHA_RANGE: tuple[float, float] = (0.1, 0.5)
#: Table IV: normalized system utilization (NSU).
NSU_RANGE: tuple[float, float] = (0.4, 0.8)
#: Table IV: number of tasks (N); sampled uniformly per task set.
TASK_COUNT_RANGE: tuple[int, int] = (40, 200)
#: Table IV: the three period ranges; each task picks one uniformly.
PERIOD_RANGES: tuple[tuple[int, int], ...] = ((50, 200), (200, 500), (500, 2000))
#: Table IV: increment factor (IFC) between consecutive-level WCETs.
IFC_RANGE: tuple[float, float] = (0.3, 0.7)


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters for one synthetic-workload data point.

    Attributes
    ----------
    cores:
        Number of homogeneous cores ``M``.
    levels:
        System criticality level count ``K``.
    nsu:
        Normalized system utilization: the ratio of the aggregate raw
        level-1 utilization to the number of cores.  The generator's
        sampling achieves this *in expectation*; set ``exact_nsu`` to
        rescale each set to hit it exactly.
    ifc:
        Increment factor: ``c_i(k) = c_i(k-1) * (1 + ifc)``.
    task_count_range:
        Inclusive range from which ``N`` is drawn per task set.
    period_ranges:
        Candidate inclusive period ranges; each task picks one uniformly
        and then an integer period uniformly inside it.
    exact_nsu:
        When True, level-1 WCETs are rescaled so the generated set's
        aggregate level-1 utilization is exactly ``nsu * cores``.
    crit_weights:
        Optional probability weights over the criticality levels
        ``1..K`` used when drawing each task's ``l_i``.  ``None``
        (default) is the paper's uniform draw; e.g. ``(4, 2, 1, 1)``
        skews towards low-criticality tasks, which is the realistic
        IMA mix (most functions are not DAL-A).
    """

    cores: int = 8
    levels: int = 4
    nsu: float = 0.6
    ifc: float = 0.4
    task_count_range: tuple[int, int] = TASK_COUNT_RANGE
    period_ranges: tuple[tuple[int, int], ...] = PERIOD_RANGES
    exact_nsu: bool = False
    crit_weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise GenerationError(f"cores must be >= 1, got {self.cores}")
        if self.levels < 1:
            raise GenerationError(f"levels must be >= 1, got {self.levels}")
        if not 0.0 < self.nsu:
            raise GenerationError(f"nsu must be positive, got {self.nsu}")
        if self.ifc < 0.0:
            raise GenerationError(f"ifc must be >= 0, got {self.ifc}")
        lo, hi = self.task_count_range
        if not 1 <= lo <= hi:
            raise GenerationError(
                f"invalid task count range {self.task_count_range}"
            )
        if not self.period_ranges:
            raise GenerationError("at least one period range is required")
        for plo, phi in self.period_ranges:
            if not 0 < plo <= phi:
                raise GenerationError(f"invalid period range ({plo}, {phi})")
        if self.crit_weights is not None:
            if len(self.crit_weights) != self.levels:
                raise GenerationError(
                    f"crit_weights needs one weight per level"
                    f" ({self.levels}), got {len(self.crit_weights)}"
                )
            if any(w < 0 for w in self.crit_weights) or sum(self.crit_weights) <= 0:
                raise GenerationError("crit_weights must be non-negative, sum > 0")

    def with_(self, **changes) -> "WorkloadConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)

    @classmethod
    def paper_default(cls) -> "WorkloadConfig":
        """The Section IV-A default configuration."""
        return cls()

    def to_dict(self) -> dict:
        """JSON-serializable form; inverse of :meth:`from_dict`.

        The engine's content-addressed store hashes this dict, so the
        field set is part of the cache-key contract: adding a workload
        knob changes every key (a full, safe invalidation).
        """
        return {
            "cores": self.cores,
            "levels": self.levels,
            "nsu": self.nsu,
            "ifc": self.ifc,
            "task_count_range": list(self.task_count_range),
            "period_ranges": [list(r) for r in self.period_ranges],
            "exact_nsu": self.exact_nsu,
            "crit_weights": (
                None if self.crit_weights is None else list(self.crit_weights)
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadConfig":
        """Rebuild a config from :meth:`to_dict` output (validates anew)."""
        return cls(
            cores=int(data["cores"]),
            levels=int(data["levels"]),
            nsu=float(data["nsu"]),
            ifc=float(data["ifc"]),
            task_count_range=tuple(data["task_count_range"]),
            period_ranges=tuple(tuple(r) for r in data["period_ranges"]),
            exact_nsu=bool(data["exact_nsu"]),
            crit_weights=(
                None
                if data["crit_weights"] is None
                else tuple(data["crit_weights"])
            ),
        )
