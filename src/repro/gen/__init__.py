"""Synthetic mixed-criticality workload generation."""

from repro.gen.generator import generate_batch, generate_taskset
from repro.gen.params import (
    ALPHA_RANGE,
    CORE_COUNTS,
    IFC_RANGE,
    LEVEL_RANGE,
    NSU_RANGE,
    PERIOD_RANGES,
    TASK_COUNT_RANGE,
    WorkloadConfig,
)
from repro.gen.uunifast import uunifast, uunifast_discard, uunifast_mc_taskset

__all__ = [
    "ALPHA_RANGE",
    "CORE_COUNTS",
    "IFC_RANGE",
    "LEVEL_RANGE",
    "NSU_RANGE",
    "PERIOD_RANGES",
    "TASK_COUNT_RANGE",
    "WorkloadConfig",
    "generate_batch",
    "generate_taskset",
    "uunifast",
    "uunifast_discard",
    "uunifast_mc_taskset",
]
