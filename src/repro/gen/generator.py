"""Synthetic MC task-set generation (Section IV-A of the paper).

The procedure, for a :class:`~repro.gen.params.WorkloadConfig`:

1. draw the task count ``N`` uniformly from ``task_count_range``;
2. set the base level-1 utilization ``u_base(1) = NSU * M / N``;
3. per task: pick one of the period ranges uniformly, then an integer
   period ``p_i`` uniformly within it;
4. draw ``c_i(1)`` uniformly from
   ``[0.2 * p_i * u_base(1), 1.8 * p_i * u_base(1)]``;
5. draw the criticality ``l_i`` uniformly from ``{1..K}`` and set
   ``c_i(k) = c_i(k-1) * (1 + IFC)`` for ``k = 2..l_i``.

Everything is vectorized with NumPy (hot loop of the experiment
harness); the per-task Python objects are only materialized at the end.
"""

from __future__ import annotations

import numpy as np

from repro.gen.params import WorkloadConfig
from repro.model.task import MCTask
from repro.model.taskset import MCTaskSet
from repro.types import GenerationError

__all__ = ["generate_taskset", "generate_batch"]


def generate_taskset(
    config: WorkloadConfig,
    rng: np.random.Generator,
    n_tasks: int | None = None,
) -> MCTaskSet:
    """One random MC task set per the paper's recipe.

    Parameters
    ----------
    config:
        The data-point parameters.
    rng:
        NumPy random generator (callers own seeding; the experiment
        harness derives per-set generators from a root seed so runs are
        reproducible and parallelizable).
    n_tasks:
        Optional fixed task count, overriding the random draw (used by
        tests and by sweeps over N).
    """
    lo, hi = config.task_count_range
    if n_tasks is None:
        n = int(rng.integers(lo, hi + 1))
    else:
        if n_tasks < 1:
            raise GenerationError(f"n_tasks must be >= 1, got {n_tasks}")
        n = int(n_tasks)

    u_base = config.nsu * config.cores / n

    ranges = np.asarray(config.period_ranges, dtype=np.int64)
    which = rng.integers(0, len(ranges), size=n)
    periods = rng.integers(
        ranges[which, 0], ranges[which, 1] + 1
    ).astype(np.float64)

    c1 = rng.uniform(0.2 * periods * u_base, 1.8 * periods * u_base)
    if config.exact_nsu:
        target = config.nsu * config.cores
        raw = float((c1 / periods).sum())
        c1 *= target / raw

    if config.crit_weights is None:
        crits = rng.integers(1, config.levels + 1, size=n)
    else:
        weights = np.asarray(config.crit_weights, dtype=np.float64)
        crits = rng.choice(
            np.arange(1, config.levels + 1), size=n, p=weights / weights.sum()
        )
    growth = 1.0 + config.ifc

    tasks = []
    for i in range(n):
        li = int(crits[i])
        wcets = c1[i] * growth ** np.arange(li)
        tasks.append(
            MCTask(wcets=tuple(wcets), period=float(periods[i]), name=f"tau_{i+1}")
        )
    return MCTaskSet(tasks, levels=config.levels)


def generate_batch(
    config: WorkloadConfig,
    count: int,
    seed: int | np.random.SeedSequence,
) -> list[MCTaskSet]:
    """``count`` independent task sets from a root seed.

    Each set gets its own child :class:`numpy.random.SeedSequence`, so
    the batch is reproducible regardless of how callers shard it across
    workers.
    """
    if count < 0:
        raise GenerationError(f"count must be >= 0, got {count}")
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    return [
        generate_taskset(config, np.random.default_rng(child))
        for child in root.spawn(count)
    ]
