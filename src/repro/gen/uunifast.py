"""UUniFast-based generation (extension; not used by the paper's figures).

`UUniFast <https://doi.org/10.1007/s11241-005-0507-9>`_ (Bini & Buttazzo,
2005) draws an unbiased uniform point from the simplex of ``n`` task
utilizations summing to ``U``.  ``uunifast_discard`` (Davis & Burns)
rejects vectors with any component above 1, for multiprocessor-scale
total utilizations.  :func:`uunifast_mc_taskset` layers the paper's
criticality structure (random levels + IFC growth) on top, giving an
alternative workload family for robustness experiments.
"""

from __future__ import annotations

import numpy as np

from repro.model.task import MCTask
from repro.model.taskset import MCTaskSet
from repro.types import GenerationError

__all__ = ["uunifast", "uunifast_discard", "uunifast_mc_taskset"]


def uunifast(n: int, total: float, rng: np.random.Generator) -> np.ndarray:
    """``n`` utilizations summing to ``total``, uniform on the simplex."""
    if n < 1:
        raise GenerationError(f"n must be >= 1, got {n}")
    if total <= 0:
        raise GenerationError(f"total must be positive, got {total}")
    utils = np.empty(n, dtype=np.float64)
    remaining = total
    for i in range(n - 1):
        next_remaining = remaining * float(rng.random()) ** (1.0 / (n - 1 - i))
        utils[i] = remaining - next_remaining
        remaining = next_remaining
    utils[n - 1] = remaining
    return utils


def uunifast_discard(
    n: int, total: float, rng: np.random.Generator, max_tries: int = 1000
) -> np.ndarray:
    """UUniFast, rejecting vectors with any single utilization above 1."""
    if total > n:
        raise GenerationError(
            f"total utilization {total} cannot fit in {n} tasks of u <= 1"
        )
    for _ in range(max_tries):
        utils = uunifast(n, total, rng)
        if (utils <= 1.0).all():
            return utils
    raise GenerationError(
        f"uunifast_discard failed after {max_tries} tries (n={n}, total={total})"
    )


def uunifast_mc_taskset(
    n: int,
    total_level1: float,
    levels: int,
    ifc: float,
    rng: np.random.Generator,
    period_range: tuple[int, int] = (50, 2000),
) -> MCTaskSet:
    """MC task set whose level-1 utilizations come from UUniFast-discard.

    Criticalities are uniform over ``{1..levels}`` and higher-level WCETs
    grow by ``1 + ifc`` per level, as in the paper's generator.
    """
    if levels < 1:
        raise GenerationError(f"levels must be >= 1, got {levels}")
    if ifc < 0:
        raise GenerationError(f"ifc must be >= 0, got {ifc}")
    utils = uunifast_discard(n, total_level1, rng)
    plo, phi = period_range
    if not 0 < plo <= phi:
        raise GenerationError(f"invalid period range {period_range}")
    periods = rng.integers(plo, phi + 1, size=n).astype(np.float64)
    crits = rng.integers(1, levels + 1, size=n)
    growth = 1.0 + ifc
    tasks = []
    for i in range(n):
        li = int(crits[i])
        c1 = utils[i] * periods[i]
        if c1 <= 0.0:
            # UUniFast can produce (near-)zero components; clamp to a
            # negligible but valid execution time.
            c1 = 1e-9 * periods[i]
        wcets = c1 * growth ** np.arange(li)
        tasks.append(
            MCTask(wcets=tuple(wcets), period=float(periods[i]), name=f"tau_{i+1}")
        )
    return MCTaskSet(tasks, levels=levels)
