"""Counterexample shrinking and repro files.

When an oracle fails, the raw case is a 6-12 task randomly generated
set — too big to eyeball.  :func:`shrink_case` reduces it the classic
way: greedily delete tasks while the oracle still fails (to a
fixpoint), then bisect a uniform WCET scale towards the smallest demand
that still fails.  The result is written as a self-contained
``repro-mc-counterexample`` JSON document; :func:`check_repro` replays
one, so a fixed bug can be proven fixed by re-running its repro file.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro._version import __version__
from repro.engine.spec import SchemeSpec
from repro.gen.params import WorkloadConfig
from repro.model import MCTask, MCTaskSet
from repro.model.io import taskset_from_dict, taskset_to_dict
from repro.types import ReproError
from repro.validate.fuzz import OracleFailure
from repro.validate.oracles import Oracle, ValidationCase, get_oracle

__all__ = [
    "REPRO_FORMAT",
    "REPRO_VERSION",
    "check_repro",
    "counterexample_dict",
    "load_repro",
    "shrink_case",
    "shrink_failure",
    "write_repro",
]

REPRO_FORMAT = "repro-mc-counterexample"
REPRO_VERSION = 1

#: Bisection steps for the WCET-scale pass; 12 halvings pin the minimal
#: failing scale to ~2.5e-4 of the original demand span.
_BISECTION_STEPS = 12


def _fresh_case(base: ValidationCase, taskset: MCTaskSet) -> ValidationCase:
    """A new case for ``taskset`` — never reuse ``base`` (cached results)."""
    return ValidationCase(
        taskset=taskset,
        config=base.config,
        schemes=base.schemes,
        seed=base.seed,
        set_index=base.set_index,
        sim_cycles=base.sim_cycles,
    )


def _without_task(taskset: MCTaskSet, index: int) -> MCTaskSet:
    tasks = [t for i, t in enumerate(taskset) if i != index]
    return MCTaskSet(tasks, levels=taskset.levels)


def _scaled(taskset: MCTaskSet, scale: float) -> MCTaskSet:
    return MCTaskSet(
        [
            MCTask(
                wcets=tuple(c * scale for c in t.wcets),
                period=t.period,
                name=t.name,
            )
            for t in taskset
        ],
        levels=taskset.levels,
    )


def shrink_case(
    oracle: Oracle, case: ValidationCase
) -> tuple[ValidationCase, list[str]]:
    """Minimize a failing case; returns the shrunk case and its messages.

    Pass 1 (greedy deletion): repeatedly drop any single task whose
    removal keeps the oracle failing, until no removal does.  Pass 2
    (parameter bisection): uniformly scale all WCETs, bisecting for the
    smallest scale in ``(0, 1]`` that still fails — failures driven by
    overload usually survive with far less demand than the generator
    drew, and the small numbers make the violation legible.

    Raises :class:`ReproError` when the oracle passes on ``case`` —
    there is nothing to shrink (and silently returning the input would
    mask a flaky, non-deterministic oracle).
    """
    messages = oracle.check(_fresh_case(case, case.taskset))
    if not messages:
        raise ReproError(
            f"cannot shrink: oracle {oracle.name!r} passes on the given case"
        )
    current, current_messages = case.taskset, messages

    shrunk = True
    while shrunk and len(current) > 1:
        shrunk = False
        for i in range(len(current)):
            candidate = _without_task(current, i)
            msgs = oracle.check(_fresh_case(case, candidate))
            if msgs:
                current, current_messages = candidate, msgs
                shrunk = True
                break

    # Invariant: `hi` always fails (starts at the post-deletion set).
    lo, hi = 0.0, 1.0
    for _ in range(_BISECTION_STEPS):
        mid = (lo + hi) / 2.0
        if mid <= 0.0:  # pragma: no cover - lo starts at 0, mid > 0
            break
        msgs = oracle.check(_fresh_case(case, _scaled(current, mid)))
        if msgs:
            hi, current_messages = mid, msgs
        else:
            lo = mid
    if hi < 1.0:
        current = _scaled(current, hi)

    return _fresh_case(case, current), current_messages


def counterexample_dict(
    failure: OracleFailure, shrunk: ValidationCase, messages: list[str]
) -> dict:
    """The self-contained JSON repro document for one shrunk failure."""
    return {
        "format": REPRO_FORMAT,
        "version": REPRO_VERSION,
        "repro_version": __version__,
        "oracle": failure.oracle,
        "seed": failure.seed,
        "set_index": failure.set_index,
        "messages": list(messages),
        "config": shrunk.config.to_dict(),
        "schemes": [s.to_dict() for s in shrunk.schemes],
        "taskset": taskset_to_dict(shrunk.taskset),
    }


def shrink_failure(failure: OracleFailure) -> dict:
    """Rebuild a campaign failure, shrink it, and return its repro document."""
    oracle = get_oracle(failure.oracle)
    shrunk, messages = shrink_case(oracle, failure.case())
    return counterexample_dict(failure, shrunk, messages)


def write_repro(doc: dict, directory: str | Path) -> Path:
    """Write a repro document as ``<oracle>-seed<S>-set<I>-M<m>K<k>-nsu<u>.json``.

    The campaign runs the same seed and set indices against every
    config, so the filename must carry the config — otherwise the K=4
    counterexample for set 0 overwrites the K=3 one.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    cfg = doc["config"]
    nsu = str(cfg["nsu"]).replace(".", "p")
    path = directory / (
        f"{doc['oracle']}-seed{doc['seed']}-set{doc['set_index']}"
        f"-M{cfg['cores']}K{cfg['levels']}-nsu{nsu}.json"
    )
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


def load_repro(path: str | Path) -> dict:
    """Load and validate a ``repro-mc-counterexample`` document."""
    doc = json.loads(Path(path).read_text())
    if doc.get("format") != REPRO_FORMAT:
        raise ReproError(
            f"not a {REPRO_FORMAT} document: format={doc.get('format')!r}"
        )
    if doc.get("version") != REPRO_VERSION:
        raise ReproError(f"unsupported repro version {doc.get('version')!r}")
    return doc


def check_repro(doc_or_path: dict | str | Path) -> list[str]:
    """Re-run the failing oracle on a stored counterexample.

    Returns the oracle's messages — empty means the bug the repro file
    captured no longer reproduces.
    """
    doc = doc_or_path if isinstance(doc_or_path, dict) else load_repro(doc_or_path)
    case = ValidationCase(
        taskset=taskset_from_dict(doc["taskset"]),
        config=WorkloadConfig.from_dict(doc["config"]),
        schemes=tuple(SchemeSpec.from_dict(s) for s in doc["schemes"]),
        seed=int(doc["seed"]),
        set_index=int(doc["set_index"]),
    )
    return get_oracle(doc["oracle"]).check(case)
