"""repro.validate — differential validation harness.

Cross-layer invariants (:mod:`~repro.validate.oracles`) checked over
seeded fuzzed workloads (:mod:`~repro.validate.fuzz`, riding the
resumable experiment engine), with failing cases reduced to minimal
JSON repro files (:mod:`~repro.validate.shrink`).  The CLI front end is
``repro-mc validate``; the invariants and file formats are documented
in docs/API.md ("Validation").
"""

from repro.validate.fuzz import (
    CAMPAIGN_CONFIGS,
    CampaignResult,
    OracleFailure,
    campaign_points,
    make_case,
    run_campaign,
    run_case,
)
from repro.validate.oracles import (
    SIM_CYCLES,
    Oracle,
    ValidationCase,
    all_oracles,
    get_oracle,
    register_oracle,
)
from repro.validate.shrink import (
    REPRO_FORMAT,
    REPRO_VERSION,
    check_repro,
    counterexample_dict,
    load_repro,
    shrink_case,
    shrink_failure,
    write_repro,
)

__all__ = [
    "CAMPAIGN_CONFIGS",
    "REPRO_FORMAT",
    "REPRO_VERSION",
    "SIM_CYCLES",
    "CampaignResult",
    "Oracle",
    "OracleFailure",
    "ValidationCase",
    "all_oracles",
    "campaign_points",
    "check_repro",
    "counterexample_dict",
    "get_oracle",
    "load_repro",
    "make_case",
    "run_campaign",
    "run_case",
    "register_oracle",
    "shrink_case",
    "shrink_failure",
    "write_repro",
]
