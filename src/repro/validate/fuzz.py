"""Seeded fuzz campaign driving generated workloads through the oracles.

The campaign rides on the experiment engine: each validation point is a
:class:`~repro.engine.spec.PointSpec` with ``kind="validate"``, so
shards resume from the :class:`~repro.engine.store.ResultStore` exactly
like figure sweeps do (an interrupted ``repro-mc validate --sets 5000``
picks up where it stopped), and the task sets are the very sets the
experiments see — set ``i`` of a point comes from
``SeedSequence(seed, spawn_key=(i,))``, the engine-wide convention.

Shard payloads are plain JSON: ``{"cases", "checks", "failures"}`` with
one record per oracle failure carrying the full task-set document, so a
cached failure can be rebuilt and shrunk without regenerating anything.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.engine.core import Engine, ProgressHook, register_shard_kind
from repro.engine.spec import PointSpec, SchemeSpec, default_schemes
from repro.engine.store import ResultStore
from repro.gen.generator import generate_taskset
from repro.gen.params import WorkloadConfig
from repro.model.io import taskset_from_dict, taskset_to_dict
from repro.obs import runtime as obs
from repro.types import ReproError
from repro.validate.oracles import SIM_CYCLES, ValidationCase, all_oracles

__all__ = [
    "CAMPAIGN_CONFIGS",
    "CampaignResult",
    "OracleFailure",
    "campaign_points",
    "make_case",
    "run_campaign",
    "run_case",
]

#: Deliberately small workloads: a validation case runs every oracle —
#: ~10 partitioning attempts plus half a dozen short simulations — so
#: the grid trades per-case breadth for case throughput.  The corners:
#: the dual-criticality specialization (twice, once near the
#: feasibility boundary), a mid-size K=3 system, and a K=4 system
#: matching the paper's default level count.
CAMPAIGN_CONFIGS: tuple[WorkloadConfig, ...] = tuple(
    WorkloadConfig(
        cores=cores,
        levels=levels,
        nsu=nsu,
        task_count_range=(6, 12),
        period_ranges=((10, 60), (60, 240)),
    )
    for cores, levels, nsu in (
        (2, 2, 0.6),
        (2, 2, 0.9),
        (4, 3, 0.7),
        (4, 4, 0.5),
    )
)


def make_case(
    config: WorkloadConfig,
    schemes: tuple[SchemeSpec, ...],
    seed: int,
    index: int,
    sim_cycles: float = SIM_CYCLES,
) -> ValidationCase:
    """Task set ``index`` of a validation point, as a checkable case."""
    rng = np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(index,)))
    return ValidationCase(
        taskset=generate_taskset(config, rng),
        config=config,
        schemes=tuple(schemes),
        seed=seed,
        set_index=index,
        sim_cycles=sim_cycles,
    )


def run_case(case: ValidationCase) -> list[dict]:
    """Run every registered oracle over one case.

    Returns one JSON-able failure record per failing oracle (empty =
    all green).  Instrumented runs tally ``validate.cases``,
    ``validate.checks``, and ``validate.failures.<oracle>`` counters.
    """
    records = []
    instrumented = obs.OBS.enabled
    if instrumented:
        obs.counter("validate.cases").inc()
    for oracle in all_oracles():
        messages = oracle.check(case)
        if instrumented:
            obs.counter("validate.checks").inc()
        if messages:
            if instrumented:
                obs.counter(f"validate.failures.{oracle.name}").inc()
            records.append(
                {
                    "oracle": oracle.name,
                    "set_index": case.set_index,
                    "messages": list(messages),
                    "taskset": taskset_to_dict(case.taskset),
                }
            )
    return records


def _run_validate_shard(
    config: WorkloadConfig,
    schemes: tuple[SchemeSpec, ...],
    seed: int,
    start: int,
    count: int,
) -> dict:
    """Engine shard runner: cases ``start .. start+count-1`` of a point."""
    n_oracles = len(all_oracles())
    failures: list[dict] = []
    for i in range(start, start + count):
        failures.extend(run_case(make_case(config, schemes, seed, i)))
    return {"cases": count, "checks": count * n_oracles, "failures": failures}


def _encode_validate(result: dict) -> dict:
    return {"kind": "validate", **result}


def _decode_validate(payload: dict) -> dict:
    if payload.get("kind") != "validate":
        raise ReproError(
            f"stored shard kind {payload.get('kind')!r} != requested 'validate'"
        )
    return {
        "cases": int(payload["cases"]),
        "checks": int(payload["checks"]),
        "failures": [dict(record) for record in payload["failures"]],
    }


def _merge_validate(point: PointSpec, shards: list) -> dict:
    merged = {"cases": 0, "checks": 0, "failures": []}
    for shard in shards:
        merged["cases"] += shard["cases"]
        merged["checks"] += shard["checks"]
        merged["failures"].extend(shard["failures"])
    return merged


register_shard_kind(
    "validate",
    run=_run_validate_shard,
    encode=_encode_validate,
    decode=_decode_validate,
    merge=_merge_validate,
)


@dataclass(frozen=True)
class OracleFailure:
    """One oracle violation, with everything needed to reproduce it."""

    oracle: str
    config: WorkloadConfig
    schemes: tuple[SchemeSpec, ...]
    seed: int
    set_index: int
    messages: tuple[str, ...]
    taskset_doc: dict

    def case(self, sim_cycles: float = SIM_CYCLES) -> ValidationCase:
        """Rebuild the failing :class:`ValidationCase` from the record."""
        return ValidationCase(
            taskset=taskset_from_dict(self.taskset_doc),
            config=self.config,
            schemes=self.schemes,
            seed=self.seed,
            set_index=self.set_index,
            sim_cycles=sim_cycles,
        )


@dataclass(frozen=True)
class CampaignResult:
    """Merged outcome of one validation campaign."""

    points: tuple[PointSpec, ...]
    cases: int
    checks: int
    failures: tuple[OracleFailure, ...]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"validate: {self.cases} cases x {len(all_oracles())} oracles "
            f"over {len(self.points)} points ({self.checks} checks): "
            + ("all green" if self.ok else f"{len(self.failures)} FAILURE(S)")
        ]
        for f in self.failures:
            lines.append(
                f"  FAIL {f.oracle} (seed {f.seed}, set {f.set_index}, "
                f"M={f.config.cores}, K={f.config.levels}, NSU={f.config.nsu:g})"
            )
            lines.extend(f"    {message}" for message in f.messages)
        return "\n".join(lines)


def campaign_points(
    sets: int,
    seed: int,
    schemes: tuple[SchemeSpec, ...] | None = None,
    configs: tuple[WorkloadConfig, ...] = CAMPAIGN_CONFIGS,
) -> tuple[PointSpec, ...]:
    """The campaign grid as engine point specs (``kind="validate"``)."""
    schemes = tuple(schemes) if schemes else tuple(default_schemes())
    return tuple(
        PointSpec(config=c, schemes=schemes, sets=sets, seed=seed, kind="validate")
        for c in configs
    )


def run_campaign(
    sets: int = 50,
    seed: int = 0,
    *,
    jobs: int | None = 1,
    store: ResultStore | str | os.PathLike | None = None,
    progress: ProgressHook | None = None,
    schemes: tuple[SchemeSpec, ...] | None = None,
    configs: tuple[WorkloadConfig, ...] = CAMPAIGN_CONFIGS,
) -> CampaignResult:
    """Fuzz ``sets`` task sets per campaign config through every oracle.

    Resumable: with a ``store``, completed shards are checkpointed and a
    re-run (same sets/seed/schemes) answers from cache.
    """
    points = campaign_points(sets, seed, schemes=schemes, configs=configs)
    engine = Engine(jobs=jobs, store=store, progress=progress)
    cases = checks = 0
    failures: list[OracleFailure] = []
    for point in points:
        payload = engine.evaluate(point)
        cases += payload["cases"]
        checks += payload["checks"]
        failures.extend(
            OracleFailure(
                oracle=record["oracle"],
                config=point.config,
                schemes=point.schemes,
                seed=point.seed,
                set_index=record["set_index"],
                messages=tuple(record["messages"]),
                taskset_doc=record["taskset"],
            )
            for record in payload["failures"]
        )
    return CampaignResult(
        points=points, cases=cases, checks=checks, failures=tuple(failures)
    )
