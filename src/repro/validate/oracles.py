"""Cross-layer invariant oracles for differential validation.

Each oracle is a named *differential* check over one generated task set
(a :class:`ValidationCase`): two independently-coded paths through the
stack — analysis vs. simulation, scalar vs. vectorized, report fields
vs. obs counters — must agree.  An oracle returns a list of
human-readable failure messages; an empty list means the invariant
held.  The seeded fuzz driver (:mod:`repro.validate.fuzz`) sweeps
generated workloads through every registered oracle, and the shrinker
(:mod:`repro.validate.shrink`) reduces any failure to a minimal repro.

The registry is deliberately open: downstream experiments can
``@register_oracle`` additional invariants and they are picked up by
``repro-mc validate`` automatically.

Built-in oracles
----------------
``probe-scalar-batch``
    The scalar, batch, and incremental probe backends make bit-identical
    placement decisions for every scheme.
``theorem1-eq7-k2``
    At ``K = 2``, Ineq. (5) (Theorem 1) agrees with the classical
    dual-criticality test Eq. (7) on every core's level matrix.
``admission-monotonicity``
    Uniformly scaling a feasible core's demand *down* never makes it
    infeasible, and a ``schedulable`` partition result implies every
    core passes the Theorem-1 analysis.
``schedulable-no-miss``
    A Theorem-1-schedulable partition misses no deadlines in runtime
    simulation under honest, worst-case, and random overrun scenarios.
``trace-busy-time``
    Execution-slice accounting (``Trace.busy_time``) and event tallies
    reconcile exactly with the :class:`~repro.sched.CoreReport`.
``job-conservation``
    Every released job is accounted for:
    ``released == completed + dropped + pending``, per core and
    system-wide.
``telemetry-counters``
    Running instrumented changes nothing, and the report's
    ``telemetry()`` reconciles key-for-key with the ``sim.*`` obs
    counters.
``serve-offline``
    The admission daemon's ``/admit`` answers (coordinator + micro-
    batcher, all schemes submitted concurrently) are bit-identical to
    the offline partitioner's results.
``explain-decision``
    The structured explanation layer reproduces every backend's
    admission decision: ``ProbeExplanation.admitted`` matches the
    partitioner's verdict under scalar/batch/incremental, all decision
    margins are nonnegative iff the set is admitted, and the
    explanation document itself is backend-invariant.
``events-job-conservation``
    Under a deterministic injection script covering all four event
    families (WCET burst + recovery window, arrival + departure, core
    failure + hotplug), job conservation still holds per core and
    system-wide, and the event tallies themselves balance (arrivals
    admitted + rejected, displaced = replaced + lost, recovery windows
    applied + no-op + missed).
``events-telemetry``
    The same evented run executed plain and instrumented is identical,
    and both ``telemetry()`` and ``event_telemetry()`` reconcile
    key-for-key with the ``sim.*`` / ``sim.event.*`` obs counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.analysis import (
    DualUtilizations,
    assign_virtual_deadlines,
    is_feasible_core,
    is_feasible_dual,
    is_feasible_theorem1,
)
from repro.engine.spec import SchemeSpec, default_schemes
from repro.gen.params import WorkloadConfig
from repro.model import MCTaskSet
from repro.obs import runtime as obs
from repro.partition.base import PartitionResult
from repro.partition.probe import use_probe_implementation
from repro.sched import (
    CoreSimulator,
    HonestScenario,
    LevelScenario,
    RandomScenario,
    SystemSimulator,
    default_horizon,
)
from repro.types import ReproError

__all__ = [
    "SIM_CYCLES",
    "Oracle",
    "ValidationCase",
    "all_oracles",
    "get_oracle",
    "register_oracle",
]

#: Default simulation span in multiples of the longest period.  Five
#: cycles keep a fuzz case in the low milliseconds while still crossing
#: enough release-phase relations to exercise the AMC protocol.
SIM_CYCLES = 5.0


@dataclass(eq=False)
class ValidationCase:
    """One fuzz case: a task set plus everything the oracles need.

    Partition outcomes are computed lazily and cached — several oracles
    look at the same schedulable partition, and partitioning (not
    checking) dominates the cost of a case.  The case therefore must be
    treated as immutable: the shrinker builds a *fresh* case per
    candidate task set instead of mutating one.
    """

    taskset: MCTaskSet
    config: WorkloadConfig
    schemes: tuple[SchemeSpec, ...] = ()
    seed: int = 0
    set_index: int = 0
    sim_cycles: float = SIM_CYCLES
    _results: dict[str, PartitionResult] | None = field(
        default=None, init=False, repr=False
    )

    def __post_init__(self) -> None:
        if not self.schemes:
            self.schemes = tuple(default_schemes())

    def scheme_results(self) -> dict[str, PartitionResult]:
        """Partition outcome per scheme label (batch probe engine), cached."""
        if self._results is None:
            with use_probe_implementation("batch"):
                self._results = {
                    spec.label: spec.build().partition(
                        self.taskset, self.config.cores
                    )
                    for spec in self.schemes
                }
        return self._results

    def first_schedulable(self) -> tuple[str, PartitionResult] | tuple[None, None]:
        """The first scheme (in spec order) that produced a feasible partition."""
        for label, result in self.scheme_results().items():
            if result.schedulable:
                return label, result
        return None, None

    def sim_seed(self, salt: int) -> np.random.SeedSequence:
        """Deterministic per-case simulation seed stream.

        The spawn key folds in the set index and a per-use salt, so
        different oracles (and different scenarios within one oracle)
        draw independent — but reproducible — streams.
        """
        return np.random.SeedSequence(
            self.seed, spawn_key=(self.set_index, 0xCA5E, salt)
        )


@dataclass(frozen=True)
class Oracle:
    """A named cross-layer invariant over one :class:`ValidationCase`.

    ``check(case)`` returns failure messages; empty means the invariant
    held for this case.
    """

    name: str
    description: str
    check: Callable[[ValidationCase], list[str]]


_ORACLES: dict[str, Oracle] = {}


def register_oracle(name: str, description: str):
    """Decorator: register ``fn(case) -> list[str]`` under ``name``."""

    def decorate(fn: Callable[[ValidationCase], list[str]]):
        _ORACLES[name] = Oracle(name=name, description=description, check=fn)
        return fn

    return decorate


def all_oracles() -> tuple[Oracle, ...]:
    """Every registered oracle, in deterministic (sorted-name) order."""
    return tuple(_ORACLES[name] for name in sorted(_ORACLES))


def get_oracle(name: str) -> Oracle:
    try:
        return _ORACLES[name]
    except KeyError:
        raise ReproError(
            f"unknown oracle {name!r}; registered: {sorted(_ORACLES)}"
        ) from None


# ----------------------------------------------------------------------
# Built-in oracles
# ----------------------------------------------------------------------


@register_oracle(
    "probe-scalar-batch",
    "scalar, batch, and incremental probe backends make identical decisions",
)
def _check_probe_equivalence(case: ValidationCase) -> list[str]:
    failures = []
    batch = case.scheme_results()
    for impl in ("scalar", "incremental"):
        with use_probe_implementation(impl):
            for spec in case.schemes:
                b = batch[spec.label]
                s = spec.build().partition(case.taskset, case.config.cores)
                if (
                    s.schedulable != b.schedulable
                    or s.failed_task != b.failed_task
                    or not np.array_equal(s.assignment, b.assignment)
                ):
                    failures.append(
                        f"{spec.label}: {impl}/batch probes disagree "
                        f"(schedulable {s.schedulable}/{b.schedulable}, "
                        f"failed_task {s.failed_task}/{b.failed_task}, "
                        f"assignment {s.assignment.tolist()} "
                        f"vs {b.assignment.tolist()})"
                    )
    return failures


@register_oracle(
    "theorem1-eq7-k2",
    "Ineq. (5) at K=2 agrees with the dual-criticality Eq. (7)",
)
def _check_dual_equivalence(case: ValidationCase) -> list[str]:
    if case.taskset.levels != 2:
        return []
    matrices = [("whole set", case.taskset.level_matrix())]
    label, result = case.first_schedulable()
    if result is not None:
        part = result.partition
        matrices += [
            (f"{label} core {m}", part.level_matrix(m))
            for m in range(part.cores)
            if part.core_size(m)
        ]
    failures = []
    for what, mat in matrices:
        theorem1 = is_feasible_theorem1(mat)
        eq7 = is_feasible_dual(DualUtilizations.from_level_matrix(mat))
        if theorem1 != eq7:
            failures.append(
                f"{what}: Theorem 1 says {theorem1} but Eq. (7) says {eq7} "
                f"for level matrix {mat.tolist()}"
            )
    return failures


@register_oracle(
    "admission-monotonicity",
    "scaling a feasible core's demand down never breaks feasibility",
)
def _check_admission_monotonicity(case: ValidationCase) -> list[str]:
    failures = []
    for label, result in case.scheme_results().items():
        if not result.schedulable:
            continue
        part = result.partition
        for m in range(part.cores):
            if not part.core_size(m):
                continue
            mat = part.level_matrix(m)
            if not is_feasible_core(mat):
                failures.append(
                    f"{label}: result claims schedulable but core {m} "
                    f"fails the admission test (matrix {mat.tolist()})"
                )
                continue
            for scale in (0.9, 0.75, 0.5):
                if not is_feasible_core(mat * scale):
                    failures.append(
                        f"{label}: core {m} is feasible at full demand but "
                        f"infeasible at x{scale} (matrix {mat.tolist()})"
                    )
    return failures


@register_oracle(
    "schedulable-no-miss",
    "a Theorem-1-schedulable partition never misses a deadline in simulation",
)
def _check_schedulable_no_miss(case: ValidationCase) -> list[str]:
    label, result = case.first_schedulable()
    if result is None:
        return []
    horizon = default_horizon(result.partition, cycles=case.sim_cycles)
    scenarios = [
        ("honest", HonestScenario()),
        (f"level-{case.taskset.levels}", LevelScenario(target=case.taskset.levels)),
        ("random", RandomScenario(overrun_prob=0.3)),
    ]
    failures = []
    for salt, (name, scenario) in enumerate(scenarios):
        report = SystemSimulator(
            result.partition, scenario, horizon=horizon
        ).run(seed=case.sim_seed(salt))
        if report.miss_count:
            failures.append(
                f"{label}: {report.miss_count} deadline miss(es) under the "
                f"{name} scenario over horizon {horizon:g}"
            )
    return failures


@register_oracle(
    "trace-busy-time",
    "trace slices and event tallies reconcile with the core report",
)
def _check_trace_busy_time(case: ValidationCase) -> list[str]:
    label, result = case.first_schedulable()
    if result is None:
        return []
    part = result.partition
    core = next((m for m in range(part.cores) if part.core_size(m)), None)
    if core is None:
        return []
    subset = part.taskset.subset(part.tasks_on(core))
    plan = assign_virtual_deadlines(subset)
    if plan is None:
        return [
            f"{label}: partition is schedulable but assign_virtual_deadlines "
            f"refuses core {core}"
        ]
    horizon = case.sim_cycles * max(t.period for t in subset)
    report = CoreSimulator(
        subset=subset,
        plan=plan,
        scenario=LevelScenario(target=subset.levels),
        rng=np.random.default_rng(case.sim_seed(101)),
        horizon=horizon,
        record_trace=True,
    ).run()
    failures = []
    busy = report.trace.busy_time()
    if abs(busy - report.busy_time) > 1e-6 * max(1.0, report.busy_time):
        failures.append(
            f"core {core}: Trace.busy_time() {busy!r} != "
            f"CoreReport.busy_time {report.busy_time!r}"
        )
    counts = report.trace.counts()
    tallies = (
        ("release", report.released),
        ("complete", report.completed),
        ("drop", report.dropped),
        ("mode_up", report.mode_switches),
        ("idle_reset", report.idle_resets),
    )
    for kind, reported in tallies:
        if counts[kind] != reported:
            failures.append(
                f"core {core}: trace counts {counts[kind]} {kind} events "
                f"but the report says {reported}"
            )
    return failures


@register_oracle(
    "job-conservation",
    "released == completed + dropped + pending, per core and system-wide",
)
def _check_job_conservation(case: ValidationCase) -> list[str]:
    label, result = case.first_schedulable()
    if result is None:
        return []
    horizon = default_horizon(result.partition, cycles=case.sim_cycles)
    report = SystemSimulator(
        result.partition, LevelScenario(target=case.taskset.levels), horizon=horizon
    ).run(seed=case.sim_seed(202))
    failures = []
    for m, core in enumerate(report.core_reports):
        if core is None:
            continue
        if core.released != core.completed + core.dropped + core.pending:
            failures.append(
                f"core {m}: {core.released} released != {core.completed} "
                f"completed + {core.dropped} dropped + {core.pending} pending"
            )
    if report.released != report.completed + report.dropped + report.pending:
        failures.append(
            f"system: {report.released} released != {report.completed} "
            f"completed + {report.dropped} dropped + {report.pending} pending"
        )
    return failures


@register_oracle(
    "telemetry-counters",
    "instrumented runs change nothing and reconcile with sim.* counters",
)
def _check_telemetry_counters(case: ValidationCase) -> list[str]:
    label, result = case.first_schedulable()
    if result is None:
        return []
    horizon = default_horizon(result.partition, cycles=case.sim_cycles)
    sim = SystemSimulator(
        result.partition, RandomScenario(overrun_prob=0.3), horizon=horizon
    )
    plain = sim.run(seed=case.sim_seed(303))
    with obs.collect() as registry:
        instrumented = sim.run(seed=case.sim_seed(303))
        counters = registry.snapshot()["counters"]
    failures = []
    if plain.telemetry() != instrumented.telemetry():
        failures.append(
            f"{label}: enabling instrumentation changed the simulation "
            f"({plain.telemetry()} vs {instrumented.telemetry()})"
        )
    for key, value in instrumented.telemetry().items():
        recorded = counters.get(key, 0)
        if recorded != value:
            failures.append(
                f"{key}: report says {value} but the obs counter says {recorded}"
            )
    return failures


@register_oracle(
    "serve-offline",
    "the admission daemon's /admit answers match the offline partitioner",
)
def _check_serve_offline(case: ValidationCase) -> list[str]:
    """Differential: online service vs. offline batch, same question.

    Spins up an in-process coordinator (no sockets), submits one
    ``/admit`` per paper scheme *concurrently* — so the answers come out
    of real coalesced flushes — and requires byte-identical agreement
    with a direct offline run of each partitioner.
    """
    import asyncio

    # Deferred: repro.serve must stay an optional layer of validate.
    from repro.partition.registry import PAPER_SCHEMES, get_partitioner
    from repro.serve import AdmitRequest, Coordinator, MicroBatcher, ServeState

    cores = case.config.cores

    async def query() -> list[dict]:
        state = ServeState(cores=cores, levels=case.taskset.levels)
        batcher = MicroBatcher(window=0.001)
        worker = asyncio.create_task(Coordinator(state, batcher).run())
        futures = [
            batcher.submit(
                "admit", AdmitRequest(case.taskset, cores, scheme)
            )
            for scheme in PAPER_SCHEMES
        ]
        bodies = await asyncio.gather(*futures)
        batcher.close()
        await worker
        return bodies

    failures = []
    for scheme, body in zip(PAPER_SCHEMES, asyncio.run(query())):
        offline = get_partitioner(scheme).partition(case.taskset, cores)
        expected = {
            "schedulable": bool(offline.schedulable),
            "assignment": offline.partition.assignment.tolist(),
            "order": list(offline.order),
            "failed_task": offline.failed_task,
            "utilizations": offline.partition.core_utilizations().tolist(),
        }
        got = {key: body[key] for key in expected}
        if got != expected:
            diff = {k: (got[k], expected[k]) for k in expected if got[k] != expected[k]}
            failures.append(
                f"{scheme}: serve /admit diverges from the offline "
                f"partitioner on (serve, offline) = {diff}"
            )
    return failures


@register_oracle(
    "explain-decision",
    "explanation margins reproduce every backend's admission decision",
)
def _check_explain_decision(case: ValidationCase) -> list[str]:
    """Differential: the introspection layer vs. the decision layer.

    For every scheme, build a :class:`ProbeExplanation` from the cached
    batch result (scalar kernel, no re-partitioning) and require

    * ``admitted`` == the partitioner's ``schedulable`` verdict;
    * every decision margin ``>= -EPS``  <=>  admitted — the sign of
      the margins *is* the decision;
    * the same document (modulo the recorded ``probe_impl``) from the
      scalar and incremental backends' partition results — explanations
      are backend-invariant because the backends are bit-identical.

    Headroom/sensitivity are skipped: they are derived views (their own
    bisection invariant is property-tested in ``tests/analysis``), and
    the campaign runs this oracle over hundreds of cases.
    """
    from repro.analysis.explain import explain_result
    from repro.types import EPS

    failures = []
    batch = case.scheme_results()
    reference = {}
    for spec in case.schemes:
        b = batch[spec.label]
        exp = explain_result(
            case.taskset,
            case.config.cores,
            b,
            probe_impl="batch",
            include_headroom=False,
            include_sensitivity=False,
        )
        reference[spec.label] = exp
        if exp.admitted != b.schedulable:
            failures.append(
                f"{spec.label}: explanation says admitted={exp.admitted} "
                f"but the partitioner says schedulable={b.schedulable}"
            )
        margins = exp.decision_margins()
        margins_admit = all(m >= -EPS for m in margins)
        if (b.schedulable or b.failed_task is not None) and (
            margins_admit != exp.admitted
        ):
            failures.append(
                f"{spec.label}: decision margins {margins} imply "
                f"admitted={margins_admit} but the decision was "
                f"admitted={exp.admitted}"
            )
    for impl in ("scalar", "incremental"):
        with use_probe_implementation(impl):
            for spec in case.schemes:
                r = spec.build().partition(case.taskset, case.config.cores)
                exp = explain_result(
                    case.taskset,
                    case.config.cores,
                    r,
                    probe_impl=impl,
                    include_headroom=False,
                    include_sensitivity=False,
                )
                got = exp.to_dict()
                want = reference[spec.label].to_dict()
                got.pop("probe_impl")
                want.pop("probe_impl")
                if got != want:
                    diff = sorted(
                        k for k in want if got.get(k) != want.get(k)
                    )
                    failures.append(
                        f"{spec.label}: {impl}/batch explanations diverge "
                        f"on {diff}"
                    )
    return failures


def _case_event_script(case: ValidationCase, partition, horizon: float) -> list:
    """A deterministic injection script touching all four event families.

    Parameters derive from ``case.sim_seed(404)`` only, so every oracle
    that attaches events to this case sees the *same* script — the
    differential question is always "same dynamic world, two code
    paths".
    """
    from repro.model import MCTask
    from repro.sched import (
        core_failure,
        core_hotplug,
        mode_recovery,
        task_arrival,
        task_departure,
        wcet_burst,
    )

    rng = np.random.default_rng(case.sim_seed(404))
    taskset = case.taskset
    n = len(taskset)
    src = taskset[int(rng.integers(n))]
    arriving = MCTask(
        wcets=tuple(0.5 * w for w in src.wcets),
        period=src.period,
        name="fuzz-arrival",
    )
    events = [
        wcet_burst(0.25 * horizon, 0.6 * horizon, 1.0 + 2.0 * rng.random()),
        mode_recovery(0.3 * horizon, 0.7 * horizon),
        task_arrival(0.2 * horizon, arriving),
        task_departure(0.5 * horizon, int(rng.integers(n))),
    ]
    if partition.cores > 1:
        core = int(rng.integers(partition.cores))
        events.append(core_failure(0.4 * horizon, core))
        events.append(core_hotplug(0.8 * horizon, core))
    return events


@register_oracle(
    "events-job-conservation",
    "job conservation holds across injected arrival/departure/failure events",
)
def _check_events_job_conservation(case: ValidationCase) -> list[str]:
    from repro.sched.events import EventInjectionRuntime

    label, result = case.first_schedulable()
    if result is None:
        return []
    horizon = default_horizon(result.partition, cycles=case.sim_cycles)
    runtime = EventInjectionRuntime(
        _case_event_script(case, result.partition, horizon), horizon=horizon
    )
    report = SystemSimulator(
        result.partition,
        LevelScenario(target=case.taskset.levels),
        horizon=horizon,
        allow_infeasible=True,  # failure re-partitioning may overload cores
        events=runtime,
    ).run(seed=case.sim_seed(505))
    failures = []
    for m, core in enumerate(report.core_reports):
        if core is None:
            continue
        if core.released != core.completed + core.dropped + core.pending:
            failures.append(
                f"core {m}: {core.released} released != {core.completed} "
                f"completed + {core.dropped} dropped + {core.pending} pending"
            )
    if report.released != report.completed + report.dropped + report.pending:
        failures.append(
            f"system: {report.released} released != {report.completed} "
            f"completed + {report.dropped} dropped + {report.pending} pending"
        )
    ev = report.events.counters
    n_arrivals = sum(
        1 for e in runtime.events if e.kind == "task_arrival"
    )
    if ev["arrival_admitted"] + ev["arrival_rejected"] != n_arrivals:
        failures.append(
            f"arrivals leak: {ev['arrival_admitted']} admitted + "
            f"{ev['arrival_rejected']} rejected != {n_arrivals} injected"
        )
    if ev["displaced"] != ev["replaced"] + ev["repartition_lost"]:
        failures.append(
            f"re-partition leak: {ev['displaced']} displaced != "
            f"{ev['replaced']} replaced + {ev['repartition_lost']} lost"
        )
    n_windows = sum(1 for e in runtime.events if e.kind == "mode_recovery")
    resolved = (
        ev["mode_recovery_applied"]
        + ev["mode_recovery_noop"]
        + ev["mode_recovery_missed"]
    )
    expected = n_windows * report.telemetry()["sim.cores_simulated"]
    if resolved != expected:
        failures.append(
            f"recovery-window leak: applied {ev['mode_recovery_applied']} + "
            f"noop {ev['mode_recovery_noop']} + missed "
            f"{ev['mode_recovery_missed']} != {expected} "
            f"(windows x simulated cores)"
        )
    return failures


@register_oracle(
    "events-telemetry",
    "telemetry reconciliation holds under every injected event kind",
)
def _check_events_telemetry(case: ValidationCase) -> list[str]:
    from repro.sched.events import EventInjectionRuntime

    label, result = case.first_schedulable()
    if result is None:
        return []
    horizon = default_horizon(result.partition, cycles=case.sim_cycles)
    script = _case_event_script(case, result.partition, horizon)

    def simulate():
        # A fresh simulator per run: compilation is deterministic, so
        # recompiling under instrumentation must change nothing except
        # the spans it emits.
        return SystemSimulator(
            result.partition,
            RandomScenario(overrun_prob=0.3),
            horizon=horizon,
            allow_infeasible=True,
            events=EventInjectionRuntime(script, horizon=horizon),
        ).run(seed=case.sim_seed(606))

    plain = simulate()
    with obs.collect() as registry:
        instrumented = simulate()
        counters = registry.snapshot()["counters"]
    failures = []
    if plain.telemetry() != instrumented.telemetry():
        failures.append(
            f"{label}: enabling instrumentation changed the evented run "
            f"({plain.telemetry()} vs {instrumented.telemetry()})"
        )
    if plain.event_telemetry() != instrumented.event_telemetry():
        failures.append(
            f"{label}: enabling instrumentation changed the event outcome "
            f"({plain.event_telemetry()} vs "
            f"{instrumented.event_telemetry()})"
        )
    expected = dict(instrumented.telemetry())
    expected.update(instrumented.event_telemetry())
    for key, value in expected.items():
        recorded = counters.get(key, 0)
        if recorded != value:
            failures.append(
                f"{key}: report says {value} but the obs counter says {recorded}"
            )
    return failures
