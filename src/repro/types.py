"""Shared types, constants and exceptions for the :mod:`repro` package.

The numerical conventions used throughout the library are documented in
DESIGN.md section 6.  In particular, every schedulability comparison of the
form ``demand <= capacity`` is performed with :data:`EPS` of absolute slack
to absorb floating-point round-off; :data:`EPS` is small enough (1e-12)
that it never flips a decision on the utilization scales used here
(utilizations are O(1)).
"""

from __future__ import annotations

__all__ = [
    "EPS",
    "INFEASIBLE",
    "fits_unit_capacity",
    "ReproError",
    "ModelError",
    "PartitionError",
    "GenerationError",
    "SimulationError",
]

#: Absolute tolerance for floating point feasibility comparisons.
EPS: float = 1e-12


def fits_unit_capacity(value):
    """``value <= 1 + EPS``, evaluated in slack form ``1 - value >= -EPS``.

    The two phrasings are *not* float-equivalent: ``1.0 + EPS`` rounds to
    a representable number slightly above ``1 + 1e-12``, while the
    subtraction ``1.0 - value`` is exact for ``value`` in ``[0.5, 2]``
    (Sterbenz), which is how Theorem 1's available-utilization chain
    measures slack.  Every unit-capacity admission comparison goes
    through this helper so that Eq. (4), Eq. (7) and Theorem 1 agree on
    the boundary bit-for-bit.  Works elementwise on NumPy arrays.
    """
    return (1.0 - value) >= -EPS

#: Sentinel value used for "this core cannot accommodate the task"
#: (Eq. (15a) of the paper assigns the new core utilization +inf in that
#: case).  Kept as a named constant so call sites read like the paper.
INFEASIBLE: float = float("inf")


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ModelError(ReproError):
    """An MC task or task set violates the model constraints."""


class PartitionError(ReproError):
    """A partitioning operation was used incorrectly (not mere infeasibility)."""


class GenerationError(ReproError):
    """Synthetic workload generation parameters are invalid."""


class SimulationError(ReproError):
    """The runtime simulator was configured or driven incorrectly."""
