"""Live daemon state: one mutable partition, immutable read snapshots.

The coordinator is the only writer.  Every commit publishes a fresh
:class:`StateSnapshot` holding a *frozen* :class:`~repro.model.Partition`
copy (see :meth:`Partition.snapshot`), replacing the previous one with a
single attribute store — atomic under both the GIL and asyncio's
cooperative scheduling — so ``GET /state`` handlers read without any
lock and can never observe a half-applied flush.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.core import imbalance_factor
from repro.model import MCTaskSet, Partition
from repro.model.io import taskset_to_dict

__all__ = ["ServeState", "StateSnapshot"]


@dataclass(frozen=True)
class StateSnapshot:
    """One immutable view of the live system.

    ``partition`` is ``None`` until the first accepted placement
    (:class:`~repro.model.MCTaskSet` cannot be empty); when present it
    is frozen — mutating it raises.
    """

    cores: int
    levels: int
    seq: int
    partition: Partition | None
    #: Probe backend the coordinator places under (informational).
    probe_impl: str = "incremental"

    @property
    def task_count(self) -> int:
        return 0 if self.partition is None else len(self.partition.taskset)

    def utilizations(self, rule: str = "max") -> np.ndarray:
        if self.partition is None:
            return np.zeros(self.cores, dtype=np.float64)
        return self.partition.core_utilizations(rule)

    def to_dict(self, rule: str = "max") -> dict:
        """The ``GET /state`` body."""
        utils = self.utilizations(rule)
        body = {
            "cores": self.cores,
            "levels": self.levels,
            "seq": self.seq,
            "tasks": self.task_count,
            "probe_impl": self.probe_impl,
            "utilizations": utils.tolist(),
            "lambda": float(imbalance_factor(utils)),
        }
        if self.partition is None:
            body["assignment"] = []
            body["taskset"] = None
        else:
            body["assignment"] = self.partition.assignment.tolist()
            body["taskset"] = taskset_to_dict(self.partition.taskset)
        return body


class ServeState:
    """Holder of the live partition plus its published snapshot."""

    def __init__(
        self, cores: int, levels: int = 2, probe_impl: str = "incremental"
    ):
        self.cores = int(cores)
        self.levels = int(levels)
        self.probe_impl = str(probe_impl)
        self._partition: Partition | None = None
        self._snapshot = StateSnapshot(
            cores=self.cores,
            levels=self.levels,
            seq=0,
            partition=None,
            probe_impl=self.probe_impl,
        )

    @property
    def snapshot(self) -> StateSnapshot:
        """The current immutable view (lock-free read)."""
        return self._snapshot

    @property
    def partition(self) -> Partition | None:
        """The live (mutable) partition — coordinator use only."""
        return self._partition

    @property
    def taskset(self) -> MCTaskSet | None:
        return None if self._partition is None else self._partition.taskset

    def commit(self, partition: Partition) -> StateSnapshot:
        """Install ``partition`` as the live state; publish its snapshot."""
        self._partition = partition
        snap = StateSnapshot(
            cores=self.cores,
            levels=self.levels,
            seq=self._snapshot.seq + 1,
            partition=partition.snapshot(),
            probe_impl=self.probe_impl,
        )
        self._snapshot = snap
        return snap
