"""Micro-batching of admission/placement requests.

Handlers :meth:`~MicroBatcher.submit` work items and await their
futures; the coordinator pulls *batches*: after the first item arrives,
the batcher waits one coalescing window so a concurrent burst lands in
the same flush, then drains the queue (bounded by ``max_batch``).  The
queue is bounded — a full queue raises :class:`ServeOverflow`, which the
transport answers with ``503`` instead of letting latency grow without
bound (backpressure).
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field

from repro.types import ReproError

__all__ = ["MicroBatcher", "ServeOverflow", "WorkItem"]


class ServeOverflow(ReproError):
    """The request queue is full; the caller should answer 503."""


@dataclass
class WorkItem:
    """One pending request: ``kind`` is ``"admit"``, ``"explain"`` or ``"place"``.

    Ingress stamps the tracing identity: ``request_id`` (unique per
    daemon process, echoed in the response body and on the request's
    span) plus the enqueue instants — ``enqueued`` on the perf-counter
    clock (queue-wait arithmetic) and ``wall`` on the epoch clock (span
    ``start``).
    """

    kind: str
    request: object
    future: asyncio.Future = field(repr=False)
    request_id: str = ""
    enqueued: float = 0.0
    wall: float = 0.0


class MicroBatcher:
    """Bounded request queue with a coalescing flush window."""

    def __init__(
        self,
        maxsize: int = 256,
        window: float = 0.001,
        max_batch: int = 64,
    ):
        if max_batch < 1:
            raise ReproError(f"max_batch must be >= 1, got {max_batch}")
        self._queue: asyncio.Queue[WorkItem | None] = asyncio.Queue(maxsize=maxsize)
        self.window = float(window)
        self.max_batch = int(max_batch)
        self._closed = False
        self._ids = itertools.count(1)

    @property
    def depth(self) -> int:
        """Requests currently queued (for the /metrics gauge)."""
        return self._queue.qsize()

    def submit(self, kind: str, request: object) -> asyncio.Future:
        """Enqueue one request; the returned future resolves at flush.

        This is request ingress: the item gets its ``request_id`` and
        its enqueue timestamps here, so queue-wait is measured from the
        moment admission was asked for, not from when a flush noticed.
        """
        if self._closed:
            raise ServeOverflow("service is shutting down")
        future = asyncio.get_running_loop().create_future()
        item = WorkItem(
            kind,
            request,
            future,
            request_id=f"{kind}-{next(self._ids)}",
            enqueued=time.perf_counter(),
            wall=time.time(),
        )
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            raise ServeOverflow(
                f"request queue full ({self._queue.maxsize} pending)"
            ) from None
        return future

    def close(self) -> None:
        """Stop accepting work; wake the coordinator for final drains."""
        if not self._closed:
            self._closed = True
            # The sentinel gets the coordinator out of its blocking get().
            # put_nowait on a full queue cannot happen for the sentinel
            # slot mattering: drain loops empty the queue first.
            try:
                self._queue.put_nowait(None)
            except asyncio.QueueFull:  # pragma: no cover - drained anyway
                pass

    async def next_batch(self) -> list[WorkItem] | None:
        """Await the next flush, or ``None`` when closed and drained.

        Coalescing: block for the first item, sleep one window so a
        concurrent burst catches up, then drain (≤ ``max_batch``).
        """
        if self._closed and self._queue.empty():
            return None  # the sentinel may already be consumed
        first = await self._queue.get()
        if first is None:
            return None if self._queue.empty() else self._drain([])
        if self.window > 0 and self._queue.qsize() < self.max_batch - 1:
            await asyncio.sleep(self.window)
        return self._drain([first])

    def _drain(self, batch: list[WorkItem]) -> list[WorkItem]:
        while len(batch) < self.max_batch:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is None:
                continue  # shutdown sentinel: keep draining real work
            batch.append(item)
        return batch
