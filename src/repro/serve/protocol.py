"""Wire protocol of the admission daemon: JSON in, JSON out.

Requests reuse the on-disk document formats of :mod:`repro.model.io`
(``repro-mc-taskset`` for ``/admit``, a single task entry for
``/place``), so a task set saved by any other layer of the repro can be
POSTed verbatim.  Parsing failures raise :class:`ProtocolError`, which
carries the HTTP status the transport should answer with.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model import MCTask, MCTaskSet
from repro.model.io import taskset_from_dict
from repro.partition.registry import available_schemes
from repro.types import ModelError, ReproError

__all__ = [
    "ProtocolError",
    "AdmitRequest",
    "ExplainRequest",
    "PlaceRequest",
    "parse_admit",
    "parse_explain",
    "parse_place",
]

#: Largest request body the transport will read, in bytes.
MAX_BODY_BYTES = 8 * 1024 * 1024


class ProtocolError(ReproError):
    """A malformed request; ``status`` is the HTTP answer (400/404/413)."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class AdmitRequest:
    """``POST /admit``: can ``taskset`` go on ``cores`` under ``scheme``?"""

    taskset: MCTaskSet
    cores: int
    scheme: str


@dataclass(frozen=True)
class ExplainRequest:
    """``POST /explain``: decompose the admission decision for ``taskset``.

    Same body as ``/admit``; the answer is the full
    :class:`repro.analysis.explain.ProbeExplanation` document instead of
    the bare verdict.
    """

    taskset: MCTaskSet
    cores: int
    scheme: str


@dataclass(frozen=True)
class PlaceRequest:
    """``POST /place``: which live core should this new task go to?"""

    task: MCTask


def _require_dict(payload: object) -> dict:
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    return payload


def parse_admit(payload: object) -> AdmitRequest:
    """Validate an ``/admit`` body: ``{taskset, cores, scheme?}``."""
    body = _require_dict(payload)
    try:
        taskset = taskset_from_dict(body["taskset"])
    except KeyError:
        raise ProtocolError("admit request needs a 'taskset' document") from None
    except (ModelError, TypeError) as exc:
        raise ProtocolError(f"bad taskset: {exc}") from exc
    cores = body.get("cores")
    if not isinstance(cores, int) or isinstance(cores, bool) or cores < 1:
        raise ProtocolError(f"'cores' must be a positive integer, got {cores!r}")
    scheme = body.get("scheme", "ca-tpa")
    if scheme not in available_schemes():
        raise ProtocolError(
            f"unknown scheme {scheme!r}; available: {available_schemes()}"
        )
    return AdmitRequest(taskset=taskset, cores=cores, scheme=scheme)


def parse_explain(payload: object) -> ExplainRequest:
    """Validate an ``/explain`` body — identical shape to ``/admit``."""
    req = parse_admit(payload)
    return ExplainRequest(taskset=req.taskset, cores=req.cores, scheme=req.scheme)


def parse_place(payload: object) -> PlaceRequest:
    """Validate a ``/place`` body: ``{task: {period, wcets, name?}}``."""
    body = _require_dict(payload)
    entry = body.get("task")
    if not isinstance(entry, dict):
        raise ProtocolError("place request needs a 'task' object")
    try:
        task = MCTask(
            wcets=tuple(entry["wcets"]),
            period=entry["period"],
            name=entry.get("name", ""),
        )
    except (KeyError, TypeError, ModelError) as exc:
        raise ProtocolError(f"bad task: {exc}") from exc
    return PlaceRequest(task=task)
