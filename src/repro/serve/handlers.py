"""Route table of the admission daemon.

``Api.handle`` maps ``(method, path, query, body)`` to
``(status, json_body_or_text)``.  Reads (``/state``, ``/metrics``,
``/metrics/history``, ``/healthz``) are answered inline from immutable
snapshots and the live window — no queue, no lock, nothing blocking the
event loop.  Queued work (``/admit``, ``/explain``, ``/place``) is submitted to the
:class:`MicroBatcher` and awaited; a full queue turns into ``503``
(backpressure), malformed bodies into ``400``.

``GET /metrics`` defaults to the lifetime JSON snapshot;
``?format=prometheus`` switches to the text exposition (counters,
summaries, exact log-bucket histograms, plus live gauges like queue
depth).  ``GET /metrics/history`` returns the windowed time-series the
``repro-mc top`` dashboard polls.
"""

from __future__ import annotations

import time

from repro.obs.live import LiveMetrics, render_prometheus
from repro.obs.runtime import OBS
from repro.serve.batcher import MicroBatcher, ServeOverflow
from repro.serve.protocol import (
    ProtocolError,
    parse_admit,
    parse_explain,
    parse_place,
)
from repro.serve.state import ServeState
from repro.types import ReproError

__all__ = ["Api"]


class Api:
    """Dispatches parsed HTTP requests; owns no mutable state itself."""

    def __init__(
        self,
        state: ServeState,
        batcher: MicroBatcher,
        live: LiveMetrics | None = None,
    ):
        self.state = state
        self.batcher = batcher
        self.live = live

    async def handle(
        self, method: str, path: str, payload: object, query: dict | None = None
    ):
        """Returns ``(status, body)`` — a dict (JSON) or str (text/plain)."""
        started = time.perf_counter()
        try:
            status, body = await self._route(method, path, payload, query or {})
        except ProtocolError as exc:
            status, body = exc.status, {"error": str(exc)}
        except ServeOverflow as exc:
            if OBS.enabled:
                OBS.registry.counter("serve.overflow_503").inc()
                OBS.registry.counter("serve.rejected_503").inc()
            if self.live is not None:
                self.live.inc("serve.rejected_503")
            status, body = 503, {"error": str(exc)}
        except ReproError as exc:
            status, body = 422, {"error": str(exc)}
        elapsed = time.perf_counter() - started
        if OBS.enabled:
            OBS.registry.summary("serve.latency_ms").observe(elapsed * 1e3)
            OBS.registry.counter("serve.requests").inc()
            OBS.registry.counter(f"serve.http.{status}").inc()
        if self.live is not None:
            self.live.inc("serve.requests")
            self.live.inc(f"serve.http.{status}")
            self.live.observe("serve.handle.seconds", elapsed)
        return status, body

    async def _route(self, method: str, path: str, payload: object, query: dict):
        if path == "/admit" and method == "POST":
            future = self.batcher.submit("admit", parse_admit(payload))
            return 200, await future
        if path == "/explain" and method == "POST":
            future = self.batcher.submit("explain", parse_explain(payload))
            return 200, await future
        if path == "/place" and method == "POST":
            future = self.batcher.submit("place", parse_place(payload))
            body = await future
            return (200 if body["accepted"] else 409), body
        if path == "/state" and method == "GET":
            return 200, self.state.snapshot.to_dict()
        if path == "/metrics" and method == "GET":
            fmt = query.get("format", "json")
            if fmt == "prometheus":
                gauges = self.live.gauges() if self.live is not None else {}
                return 200, render_prometheus(OBS.registry, gauges=gauges)
            if fmt != "json":
                raise ProtocolError(f"unknown metrics format: {fmt!r}")
            return 200, {
                "queue_depth": self.batcher.depth,
                "metrics": OBS.registry.snapshot(),
            }
        if path == "/metrics/history" and method == "GET":
            if self.live is None:
                raise ProtocolError(
                    "live telemetry is not enabled on this daemon", status=404
                )
            return 200, self.live.history()
        if path == "/healthz" and method == "GET":
            snap = self.state.snapshot
            return 200, {
                "ok": True,
                "seq": snap.seq,
                "probe_impl": snap.probe_impl,
            }
        if path in (
            "/admit",
            "/explain",
            "/place",
            "/state",
            "/metrics",
            "/metrics/history",
            "/healthz",
        ):
            raise ProtocolError(f"{method} not allowed on {path}", status=405)
        raise ProtocolError(f"no such endpoint: {path}", status=404)
