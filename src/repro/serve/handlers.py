"""Route table of the admission daemon.

``Api.handle`` maps ``(method, path, body)`` to ``(status, json_body)``.
Reads (``/state``, ``/metrics``, ``/healthz``) are answered inline from
immutable snapshots — no queue, no lock.  Writes (``/admit``,
``/place``) are submitted to the :class:`MicroBatcher` and awaited; a
full queue turns into ``503`` (backpressure), malformed bodies into
``400``.
"""

from __future__ import annotations

import time

from repro.obs.runtime import OBS
from repro.serve.batcher import MicroBatcher, ServeOverflow
from repro.serve.protocol import ProtocolError, parse_admit, parse_place
from repro.serve.state import ServeState
from repro.types import ReproError

__all__ = ["Api"]


class Api:
    """Dispatches parsed HTTP requests; owns no mutable state itself."""

    def __init__(self, state: ServeState, batcher: MicroBatcher):
        self.state = state
        self.batcher = batcher

    async def handle(self, method: str, path: str, payload: object):
        """Returns ``(status, body_dict)``."""
        started = time.perf_counter()
        try:
            status, body = await self._route(method, path, payload)
        except ProtocolError as exc:
            status, body = exc.status, {"error": str(exc)}
        except ServeOverflow as exc:
            if OBS.enabled:
                OBS.registry.counter("serve.overflow_503").inc()
            status, body = 503, {"error": str(exc)}
        except ReproError as exc:
            status, body = 422, {"error": str(exc)}
        if OBS.enabled:
            OBS.registry.summary("serve.latency_ms").observe(
                (time.perf_counter() - started) * 1e3
            )
            OBS.registry.counter(f"serve.http.{status}").inc()
        return status, body

    async def _route(self, method: str, path: str, payload: object):
        if path == "/admit" and method == "POST":
            future = self.batcher.submit("admit", parse_admit(payload))
            return 200, await future
        if path == "/place" and method == "POST":
            future = self.batcher.submit("place", parse_place(payload))
            body = await future
            return (200 if body["accepted"] else 409), body
        if path == "/state" and method == "GET":
            return 200, self.state.snapshot.to_dict()
        if path == "/metrics" and method == "GET":
            return 200, {
                "queue_depth": self.batcher.depth,
                "metrics": OBS.registry.snapshot(),
            }
        if path == "/healthz" and method == "GET":
            snap = self.state.snapshot
            return 200, {
                "ok": True,
                "seq": snap.seq,
                "probe_impl": snap.probe_impl,
            }
        if path in ("/admit", "/place", "/state", "/metrics", "/healthz"):
            raise ProtocolError(f"{method} not allowed on {path}", status=405)
        raise ProtocolError(f"no such endpoint: {path}", status=404)
