"""The single-writer coordinator of the admission daemon.

One asyncio task owns all mutation of the live :class:`ServeState`;
handlers only enqueue work and await futures.  Each flush:

* observes ``serve.batch_size`` (the coalescing win: p50 > 1 under load);
* answers every ``/admit`` by running the *offline* partitioner verbatim
  — bit-identical to ``repro-mc``'s batch path by construction, pinned
  by the ``serve-offline`` oracle in :mod:`repro.validate`;
* answers the flush's ``/place`` requests with **one** call into the
  stacked probe kernel (:func:`repro.partition.probe.batch_probe_tasks`
  over the whole micro-batch), then applies placements greedily in
  arrival order, re-probing the remaining rows after each assignment.

Every flush runs under the coordinator's configured probe backend
(``--probe-impl``, default ``incremental``): the live partition carries
warm per-core Theorem-1 state across requests, so the post-assignment
re-probe recomputes only the column of the core that just changed —
every other (task, core) hypothesis answers from cache.  All backends
are pinned bit-identical, so the placement decisions (and the
``serve-offline`` oracle parity) do not depend on the choice.

Placement rule: best fit by Eq. (15) — the feasible core whose new
Eq.-(9) utilization is smallest (ties to the lowest core index), i.e.
the worst-fit/best-balance choice CA-TPA's probes are built for.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.explain import explain_admission, place_rejection_reason
from repro.metrics.core import imbalance_factor
from repro.model import MCTaskSet, Partition
from repro.obs.live import LiveMetrics
from repro.obs.runtime import OBS, current_span_id, record_span, span
from repro.partition.backend import get_backend
from repro.partition.probe import batch_probe_tasks, use_probe_implementation
from repro.partition.registry import get_partitioner
from repro.serve.batcher import MicroBatcher, WorkItem
from repro.serve.protocol import (
    AdmitRequest,
    ExplainRequest,
    PlaceRequest,
    ProtocolError,
)
from repro.serve.state import ServeState
from repro.types import ReproError

__all__ = ["Coordinator"]


class Coordinator:
    """Drains the batcher; the only writer of ``state``."""

    def __init__(
        self,
        state: ServeState,
        batcher: MicroBatcher,
        rule: str = "max",
        probe_impl: str = "incremental",
        live: LiveMetrics | None = None,
    ):
        get_backend(probe_impl)  # fail fast on unknown names
        self.state = state
        self.batcher = batcher
        self.rule = rule
        self.probe_impl = probe_impl
        self.live = live

    async def run(self) -> None:
        """Flush batches until the batcher is closed and drained."""
        while (batch := await self.batcher.next_batch()) is not None:
            self.flush(batch)

    # ------------------------------------------------------------------
    def flush(self, batch: list[WorkItem]) -> None:
        """Resolve every future of one micro-batch (synchronous).

        The whole flush — admission sweeps and placements alike — runs
        under the configured probe backend; the selection rides a
        contextvar, so concurrent readers are unaffected.

        Tracing: the flush is one shared ``serve.flush`` span; every
        request in the batch additionally gets its *own*
        ``serve.request`` span recorded as a child of the flush span,
        carrying its ``request_id`` and the attribution triple
        ``queue_wait`` (ingress → flush start), ``kernel`` (its share of
        probe-kernel time) and ``apply`` (its share of
        assignment/commit time); the span's ``seconds`` is exactly the
        sum of the three.
        """
        flush_start = time.perf_counter()
        if OBS.enabled:
            OBS.registry.summary("serve.batch_size").observe(float(len(batch)))
        if self.live is not None:
            self.live.observe("serve.batch_size", float(len(batch)))
        places = [item for item in batch if item.kind == "place"]
        with span("serve.flush", batch=len(batch)):
            flush_id = current_span_id()
            with use_probe_implementation(self.probe_impl):
                for item in batch:
                    if item.kind in ("admit", "explain"):
                        fn = self._admit if item.kind == "admit" else self._explain
                        t0 = time.perf_counter()
                        self._resolve(item, fn, item.request)
                        self._finish_request(
                            item,
                            flush_start,
                            flush_id,
                            kernel=time.perf_counter() - t0,
                            apply=0.0,
                        )
                if places:
                    self._place_flush(places, flush_start, flush_id)

    def _resolve(self, item: WorkItem, fn, *args) -> None:
        if item.future.cancelled():  # pragma: no cover - client went away
            return
        try:
            result = fn(*args)
            if isinstance(result, dict):
                result.setdefault("request_id", item.request_id)
            item.future.set_result(result)
        except ReproError as exc:
            item.future.set_exception(exc)

    def _finish_request(
        self,
        item: WorkItem,
        flush_start: float,
        flush_id: int | None,
        *,
        kernel: float,
        apply: float,
    ) -> None:
        """Record one request's span + latency observations.

        ``seconds`` is constructed as ``queue_wait + kernel + apply`` so
        the three components reconcile with the span total *exactly*
        (pinned in ``tests/serve/test_tracing.py``); each component is a
        real measured interval, so the sum also tracks the request's
        wall-clock latency up to the future-resolution hop.
        """
        queue_wait = max(flush_start - item.enqueued, 0.0)
        seconds = queue_wait + kernel + apply
        if OBS.enabled:
            OBS.registry.histogram(f"serve.{item.kind}.seconds").observe(seconds)
            record_span(
                "serve.request",
                start=item.wall,
                seconds=seconds,
                parent_id=flush_id,
                request_id=item.request_id,
                kind=item.kind,
                queue_wait=queue_wait,
                kernel=kernel,
                apply=apply,
            )
        if self.live is not None:
            self.live.observe(f"serve.{item.kind}.seconds", seconds)

    # ------------------------------------------------------------------
    # /admit: the offline partitioner, verbatim
    # ------------------------------------------------------------------
    def _admit(self, req: AdmitRequest) -> dict:
        reg = OBS.registry
        if OBS.enabled:
            reg.counter(f"serve.admit.requests[{req.scheme}]").inc()
        with span("serve.admit", scheme=req.scheme, cores=req.cores):
            result = get_partitioner(req.scheme).partition(req.taskset, req.cores)
        utils = result.partition.core_utilizations(self.rule)
        if OBS.enabled and result.schedulable:
            reg.counter(f"serve.admit.schedulable[{req.scheme}]").inc()
        return {
            "scheme": result.scheme,
            "cores": req.cores,
            "schedulable": bool(result.schedulable),
            "assignment": result.partition.assignment.tolist(),
            "order": list(result.order),
            "failed_task": result.failed_task,
            "utilizations": utils.tolist(),
            "lambda": float(imbalance_factor(utils)),
        }

    # ------------------------------------------------------------------
    # /explain: the full decision decomposition, scalar kernel, off-path
    # ------------------------------------------------------------------
    def _explain(self, req: ExplainRequest) -> dict:
        if OBS.enabled:
            OBS.registry.counter(f"serve.explain.requests[{req.scheme}]").inc()
        with span("serve.explain", scheme=req.scheme, cores=req.cores):
            # The partitioning run inherits the flush's ambient probe
            # backend; the recorded ``probe_impl`` field says which one
            # decided.  Backends are pinned bit-identical, so the
            # document matches an offline explain modulo that field —
            # exactly what scripts/serve_smoke.py asserts.
            exp = explain_admission(
                req.taskset, req.cores, req.scheme, rule=self.rule
            )
        return exp.to_dict()

    # ------------------------------------------------------------------
    # /place: one stacked kernel call per flush
    # ------------------------------------------------------------------
    def _place_flush(
        self,
        places: list[WorkItem],
        flush_start: float,
        flush_id: int | None,
    ) -> None:
        state = self.state
        # Reject tasks the daemon's K cannot express before touching state.
        ready: list[WorkItem] = []
        for item in places:
            task = item.request.task
            if task.criticality > state.levels:
                self._resolve(
                    item,
                    self._raise,
                    ProtocolError(
                        f"task criticality {task.criticality} exceeds the "
                        f"daemon's K={state.levels}"
                    ),
                )
                self._finish_request(
                    item, flush_start, flush_id, kernel=0.0, apply=0.0
                )
            else:
                ready.append(item)
        if not ready:
            return

        old = state.partition
        old_tasks = list(old.taskset) if old is not None else []
        new_tasks = [item.request.task for item in ready]
        grown = MCTaskSet(old_tasks + new_tasks, levels=state.levels)
        part = old.extended(grown) if old is not None else Partition(
            grown, state.cores
        )
        base = len(old_tasks)
        idx = list(range(base, base + len(ready)))

        place_start = time.perf_counter()
        kernel_total = 0.0
        with span("serve.place", batch=len(ready)):
            # THE kernel call of the flush: every (task, core) hypothesis
            # of the micro-batch in one stacked NumPy pass.
            t0 = time.perf_counter()
            utils = batch_probe_tasks(part, idx, rule=self.rule)
            kernel_total += time.perf_counter() - t0
            decisions: list[int | None] = []
            reasons: list[dict | None] = []
            for t, task_index in enumerate(idx):
                core = self._best_core(utils[t])
                decisions.append(core)
                if core is None:
                    # Explain the refusal against the exact partition
                    # state this row was probed on (scalar kernel, only
                    # for rejected rows — the accept path is untouched).
                    reasons.append(
                        place_rejection_reason(
                            part, grown[task_index], rule=self.rule
                        )
                    )
                    continue
                reasons.append(None)
                part.assign(task_index, core)
                remaining = idx[t + 1 :]
                if remaining:
                    # Re-probe the rows still waiting through the active
                    # backend.  Only the chosen core's column went stale,
                    # which is exactly what the incremental backend
                    # recomputes — the other columns answer from the
                    # warm per-core state (bit-identical either way).
                    t0 = time.perf_counter()
                    utils[t + 1 :] = batch_probe_tasks(
                        part, remaining, rule=self.rule
                    )
                    kernel_total += time.perf_counter() - t0

        accepted = [i for i, c in zip(idx, decisions) if c is not None]
        if len(accepted) < len(ready):
            # Drop rejected tasks from the live set: rebuild the grown
            # task set from the accepted suffix only.  Decisions are
            # unaffected — rejected tasks were never assigned, so they
            # contributed nothing to any level matrix.
            if accepted:
                kept = old_tasks + [grown[i] for i in accepted]
                final_ts = MCTaskSet(kept, levels=state.levels)
                final = (
                    old.extended(final_ts)
                    if old is not None
                    else Partition(final_ts, state.cores)
                )
                for offset, i in enumerate(accepted):
                    final.assign(base + offset, int(part.core_of(i)))
                part = final
            else:
                part = old  # nothing accepted: state is unchanged
        if part is not None and part is not old:
            state.commit(part)
        snap_seq = state.snapshot.seq

        # Attribution shares: kernel time is the measured probe-kernel
        # total, apply is everything else in the placement block
        # (assignments, column refreshes bookkeeping, rebuild, commit) —
        # both split evenly across the batch, since the stacked kernel
        # serves all rows at once.
        place_total = time.perf_counter() - place_start
        apply_total = max(place_total - kernel_total, 0.0)
        kernel_share = kernel_total / len(ready)
        apply_share = apply_total / len(ready)

        reg = OBS.registry
        for item, core, reason in zip(ready, decisions, reasons):
            if OBS.enabled:
                name = "accepted" if core is not None else "rejected"
                reg.counter(f"serve.place.{name}").inc()
            if self.live is not None:
                name = "accepted" if core is not None else "rejected"
                self.live.inc(f"serve.place.{name}")
            self._resolve(
                item, self._place_response, item.request, core, snap_seq, reason
            )
            self._finish_request(
                item,
                flush_start,
                flush_id,
                kernel=kernel_share,
                apply=apply_share,
            )

    def _place_response(
        self,
        req: PlaceRequest,
        core: int | None,
        seq: int,
        reason: dict | None = None,
    ) -> dict:
        body = {
            "task": {
                "name": req.task.name,
                "period": req.task.period,
                "wcets": list(req.task.wcets),
            },
            "accepted": core is not None,
            "core": core,
            "seq": seq,
        }
        if core is None:
            # Structured refusal: best core + margin and, per core, the
            # first failing Theorem-1 condition (see
            # ``repro.analysis.explain.place_rejection_reason``).
            body["reason"] = reason
        return body

    @staticmethod
    def _raise(exc: Exception) -> None:
        raise exc

    @staticmethod
    def _best_core(row: np.ndarray) -> int | None:
        """Feasible core with the smallest Eq.-(15) probe, or ``None``."""
        finite = np.isfinite(row)
        if not finite.any():
            return None
        best = np.where(finite, row, np.inf)
        return int(np.argmin(best))  # argmin ties to the lowest index
