"""Daemon lifecycle: wire-up, instrumentation, graceful shutdown.

:class:`ServeDaemon` assembles state + batcher + coordinator + HTTP
transport, runs them under :func:`repro.obs.runtime.instrument` (so
``serve.*`` counters, probe counters and spans all accumulate in one
registry), and on shutdown drains the queue before exporting the run
manifest and the metrics snapshot — a stopped daemon leaves the same
provenance trail as a finished ``repro-mc`` sweep.
"""

from __future__ import annotations

import asyncio
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro._version import __version__
from repro.obs import (
    JsonlSink,
    build_manifest,
    manifest_path_for,
    new_run_id,
    write_manifest,
)
from repro.obs import runtime as obs_runtime
from repro.obs.live import LiveMetrics, SloMonitor, parse_slo
from repro.serve.batcher import MicroBatcher
from repro.serve.coordinator import Coordinator
from repro.serve.handlers import Api
from repro.serve.http import HttpServer
from repro.serve.state import ServeState

__all__ = ["ServeConfig", "ServeDaemon", "run_forever"]


@dataclass
class ServeConfig:
    """Everything ``repro-mc serve`` can tune."""

    cores: int = 4
    levels: int = 2
    host: str = "127.0.0.1"
    port: int = 0  #: 0 = ephemeral; the bound port is printed/exposed
    window_ms: float = 1.0
    max_batch: int = 64
    backlog: int = 256
    rule: str = "max"
    #: Probe backend the coordinator flushes under; ``incremental``
    #: keeps Theorem-1 state warm across requests (the serve default).
    probe_impl: str = "incremental"
    metrics_path: str | None = None
    log_json: str | None = None
    #: SLO rules (``"p95(serve.place.seconds) < 5ms"``…) checked every
    #: ``slo_interval_s`` over the live window; ok→fail edges emit
    #: ``slo.alert`` events and bump ``serve.slo.alerts``.
    slo: list[str] = field(default_factory=list)
    slo_interval_s: float = 1.0
    #: Live-window geometry (ring of fixed-width time buckets).
    bucket_seconds: float = 1.0
    history_buckets: int = 120
    command: list[str] = field(default_factory=list)


class ServeDaemon:
    """One runnable admission daemon instance."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.state = ServeState(
            cores=config.cores,
            levels=config.levels,
            probe_impl=config.probe_impl,
        )
        self.batcher = MicroBatcher(
            maxsize=config.backlog,
            window=config.window_ms / 1e3,
            max_batch=config.max_batch,
        )
        self.live = LiveMetrics(
            bucket_seconds=config.bucket_seconds,
            buckets=config.history_buckets,
        )
        self.live.gauge("serve.queue_depth", lambda: self.batcher.depth)
        self.live.gauge("serve.state_seq", lambda: self.state.snapshot.seq)
        self.live.gauge("serve.tasks", lambda: self.state.snapshot.task_count)
        self.live.gauge("serve.lambda", self._lambda_gauge)
        self.live.gauge("serve.headroom", self._headroom_gauge)
        # Bad SLO syntax fails here, before any socket binds.
        self.slo = SloMonitor([parse_slo(rule) for rule in config.slo])
        # The Coordinator validates probe_impl eagerly: an unknown name
        # fails here with a clean ReproError, before any socket binds.
        self.coordinator = Coordinator(
            self.state,
            self.batcher,
            rule=config.rule,
            probe_impl=config.probe_impl,
            live=self.live,
        )
        self.api = Api(self.state, self.batcher, live=self.live)
        self.server = HttpServer(self.api, config.host, config.port)
        self.run_id = new_run_id()
        self.bound: tuple[str, int] | None = None

    def _lambda_gauge(self) -> float:
        """Current Λ imbalance over the published snapshot (live gauge)."""
        from repro.metrics.core import imbalance_factor

        return float(imbalance_factor(self.state.snapshot.utilizations()))

    def _headroom_gauge(self) -> float:
        """System headroom α over the published snapshot (live gauge).

        The max uniform demand scale the live partition still admits,
        clamped to ``HEADROOM_MAX_SCALE`` — always finite, so the
        Prometheus exposition never emits ``+Inf``.  An empty daemon
        reports the clamp.
        """
        from repro.analysis.explain import HEADROOM_MAX_SCALE, headroom_profile

        part = self.state.snapshot.partition
        if part is None:
            return float(HEADROOM_MAX_SCALE)
        return float(headroom_profile(part).system)

    async def _slo_loop(self) -> None:
        """Periodic SLO evaluation over the live window (edge-triggered).

        Each ok→fail transition emits one ``slo.alert`` event and bumps
        ``serve.slo.alerts``; each fail→ok emits ``slo.resolved``.  The
        loop is cancelled at shutdown; :meth:`run` performs one final
        check after the drain so short-lived daemons still evaluate
        every rule at least once.
        """
        while True:
            await asyncio.sleep(self.config.slo_interval_s)
            self._check_slo()

    def _check_slo(self) -> None:
        _results, newly_failing, newly_ok = self.slo.check(self.live)
        for result in newly_failing:
            if obs_runtime.OBS.enabled:
                obs_runtime.OBS.registry.counter("serve.slo.alerts").inc()
            obs_runtime.emit(
                "slo.alert",
                rule=result.rule.text,
                value=result.value,
                threshold=result.rule.threshold,
            )
        for result in newly_ok:
            obs_runtime.emit(
                "slo.resolved", rule=result.rule.text, value=result.value
            )

    async def run(
        self,
        shutdown: asyncio.Event,
        ready: asyncio.Event | None = None,
    ) -> int:
        """Serve until ``shutdown`` is set; then drain and export.

        Shutdown ordering is part of the durability contract (pinned in
        ``tests/serve/test_drain.py``): drain the queue, record the
        final spans/events, snapshot the registry, close the JSONL sink,
        *then* write the metrics dump + manifest — so ``events.jsonl``
        is complete on disk before (and regardless of) the export, even
        when the serving block raises.
        """
        config = self.config
        sink = JsonlSink(config.log_json) if config.log_json else None
        snapshot: dict | None = None
        try:
            with obs_runtime.instrument(sink=sink, run_id=self.run_id) as obs:
                try:
                    # The root of the daemon's span tree: coordinator
                    # flushes run inside this block on the same task
                    # stack, so serve.flush (and every per-request span
                    # under it) parents here — one rooted tree per run.
                    with obs_runtime.span("serve.run"):
                        self.bound = await self.server.start()
                        obs_runtime.emit(
                            "serve.start",
                            host=self.bound[0],
                            port=self.bound[1],
                            cores=config.cores,
                        )
                        worker = asyncio.create_task(self.coordinator.run())
                        slo_task = (
                            asyncio.create_task(self._slo_loop())
                            if self.slo.rules
                            else None
                        )
                        if ready is not None:
                            ready.set()
                        await shutdown.wait()
                        # Graceful: stop accepting, let queued work drain.
                        await self.server.stop()
                        self.batcher.close()
                        await worker
                        if slo_task is not None:
                            slo_task.cancel()
                            try:
                                await slo_task
                            except asyncio.CancelledError:
                                pass
                        if self.slo.rules:
                            self._check_slo()  # final pass over the drain
                    obs_runtime.emit("serve.stop", seq=self.state.snapshot.seq)
                finally:
                    snapshot = obs.registry.snapshot()
        finally:
            if sink is not None:
                sink.close()
            if snapshot is not None:
                self._export(snapshot)
        return 0

    def _export(self, metrics_snapshot: dict) -> None:
        """Write the metrics dump and its run manifest (if configured)."""
        if self.config.metrics_path is None:
            return
        metrics_path = Path(self.config.metrics_path)
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "run_id": self.run_id,
            "repro_version": __version__,
            "command": self.config.command,
            "metrics": metrics_snapshot,
        }
        if self.slo.rules:
            payload["slo"] = {
                "alerts": self.slo.alerts,
                "failing": sorted(self.slo.failing),
                "rules": [rule.text for rule in self.slo.rules],
            }
        metrics_path.write_text(json.dumps(payload, indent=2) + "\n")
        manifest = build_manifest(
            run_id=self.run_id,
            command=self.config.command,
            figure="serve",
            jobs=1,
            artifact_path=metrics_path,
            metrics=metrics_snapshot,
            events_log=self.config.log_json,
        )
        write_manifest(manifest_path_for(metrics_path), manifest)


def run_forever(config: ServeConfig, stream=sys.stderr) -> int:
    """Blocking entry point used by ``repro-mc serve``.

    Installs SIGINT/SIGTERM handlers for a graceful drain-then-export
    shutdown and prints the bound address once listening.
    """
    import signal

    async def _main() -> int:
        daemon = ServeDaemon(config)
        shutdown = asyncio.Event()
        ready = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, shutdown.set)

        async def announce():
            await ready.wait()
            host, port = daemon.bound
            stream.write(
                f"repro-mc serve: listening on http://{host}:{port} "
                f"(cores={config.cores}, K={config.levels}, "
                f"window={config.window_ms}ms)\n"
            )
            stream.flush()

        announcer = asyncio.create_task(announce())
        code = await daemon.run(shutdown, ready=ready)
        await announcer
        stream.write("repro-mc serve: drained and stopped\n")
        stream.flush()
        return code

    return asyncio.run(_main())
