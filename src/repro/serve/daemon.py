"""Daemon lifecycle: wire-up, instrumentation, graceful shutdown.

:class:`ServeDaemon` assembles state + batcher + coordinator + HTTP
transport, runs them under :func:`repro.obs.runtime.instrument` (so
``serve.*`` counters, probe counters and spans all accumulate in one
registry), and on shutdown drains the queue before exporting the run
manifest and the metrics snapshot — a stopped daemon leaves the same
provenance trail as a finished ``repro-mc`` sweep.
"""

from __future__ import annotations

import asyncio
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro._version import __version__
from repro.obs import (
    JsonlSink,
    build_manifest,
    manifest_path_for,
    new_run_id,
    write_manifest,
)
from repro.obs import runtime as obs_runtime
from repro.serve.batcher import MicroBatcher
from repro.serve.coordinator import Coordinator
from repro.serve.handlers import Api
from repro.serve.http import HttpServer
from repro.serve.state import ServeState

__all__ = ["ServeConfig", "ServeDaemon", "run_forever"]


@dataclass
class ServeConfig:
    """Everything ``repro-mc serve`` can tune."""

    cores: int = 4
    levels: int = 2
    host: str = "127.0.0.1"
    port: int = 0  #: 0 = ephemeral; the bound port is printed/exposed
    window_ms: float = 1.0
    max_batch: int = 64
    backlog: int = 256
    rule: str = "max"
    #: Probe backend the coordinator flushes under; ``incremental``
    #: keeps Theorem-1 state warm across requests (the serve default).
    probe_impl: str = "incremental"
    metrics_path: str | None = None
    log_json: str | None = None
    command: list[str] = field(default_factory=list)


class ServeDaemon:
    """One runnable admission daemon instance."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.state = ServeState(
            cores=config.cores,
            levels=config.levels,
            probe_impl=config.probe_impl,
        )
        self.batcher = MicroBatcher(
            maxsize=config.backlog,
            window=config.window_ms / 1e3,
            max_batch=config.max_batch,
        )
        # The Coordinator validates probe_impl eagerly: an unknown name
        # fails here with a clean ReproError, before any socket binds.
        self.coordinator = Coordinator(
            self.state,
            self.batcher,
            rule=config.rule,
            probe_impl=config.probe_impl,
        )
        self.api = Api(self.state, self.batcher)
        self.server = HttpServer(self.api, config.host, config.port)
        self.run_id = new_run_id()
        self.bound: tuple[str, int] | None = None

    async def run(
        self,
        shutdown: asyncio.Event,
        ready: asyncio.Event | None = None,
    ) -> int:
        """Serve until ``shutdown`` is set; then drain and export."""
        config = self.config
        sink = JsonlSink(config.log_json) if config.log_json else None
        try:
            with obs_runtime.instrument(sink=sink, run_id=self.run_id) as obs:
                self.bound = await self.server.start()
                obs_runtime.emit(
                    "serve.start",
                    host=self.bound[0],
                    port=self.bound[1],
                    cores=config.cores,
                )
                worker = asyncio.create_task(self.coordinator.run())
                if ready is not None:
                    ready.set()
                await shutdown.wait()
                # Graceful: stop accepting, let queued work drain.
                await self.server.stop()
                self.batcher.close()
                await worker
                obs_runtime.emit("serve.stop", seq=self.state.snapshot.seq)
                snapshot = obs.registry.snapshot()
        finally:
            if sink is not None:
                sink.close()
        self._export(snapshot)
        return 0

    def _export(self, metrics_snapshot: dict) -> None:
        """Write the metrics dump and its run manifest (if configured)."""
        if self.config.metrics_path is None:
            return
        metrics_path = Path(self.config.metrics_path)
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(
            json.dumps(
                {
                    "run_id": self.run_id,
                    "repro_version": __version__,
                    "command": self.config.command,
                    "metrics": metrics_snapshot,
                },
                indent=2,
            )
            + "\n"
        )
        manifest = build_manifest(
            run_id=self.run_id,
            command=self.config.command,
            figure="serve",
            jobs=1,
            artifact_path=metrics_path,
            metrics=metrics_snapshot,
            events_log=self.config.log_json,
        )
        write_manifest(manifest_path_for(metrics_path), manifest)


def run_forever(config: ServeConfig, stream=sys.stderr) -> int:
    """Blocking entry point used by ``repro-mc serve``.

    Installs SIGINT/SIGTERM handlers for a graceful drain-then-export
    shutdown and prints the bound address once listening.
    """
    import signal

    async def _main() -> int:
        daemon = ServeDaemon(config)
        shutdown = asyncio.Event()
        ready = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, shutdown.set)

        async def announce():
            await ready.wait()
            host, port = daemon.bound
            stream.write(
                f"repro-mc serve: listening on http://{host}:{port} "
                f"(cores={config.cores}, K={config.levels}, "
                f"window={config.window_ms}ms)\n"
            )
            stream.flush()

        announcer = asyncio.create_task(announce())
        code = await daemon.run(shutdown, ready=ready)
        await announcer
        stream.write("repro-mc serve: drained and stopped\n")
        stream.flush()
        return code

    return asyncio.run(_main())
