"""Online admission-control service for the partitioning machinery.

``repro.serve`` wraps the offline CA-TPA partitioner and the vectorized
probe kernel in a long-running asyncio daemon that answers placement and
admission queries over local HTTP/JSON:

* ``POST /admit`` — would this task set be schedulable on ``M`` cores
  under a scheme?  Runs the *offline* partitioner verbatim, so answers
  are bit-identical to ``repro-mc``'s batch results (pinned by the
  ``serve-offline`` validation oracle).
* ``POST /place`` — which core should this new task go to, given the
  live system state?  Placements are micro-batched: concurrent requests
  coalesce into a single call of the stacked probe kernel.  Rejections
  (409) carry a structured ``reason``: the closest core, its margin,
  and each core's first failing Theorem-1 condition.
* ``POST /explain`` — the full decision decomposition for a task set
  (:class:`repro.analysis.explain.ProbeExplanation`): per-core
  per-condition margins, headroom α, and rejection sensitivity.
* ``GET /state`` — the current partition, per-core Eq.-(9) utilizations
  and the Eq.-(16) imbalance factor ``Lambda`` — served lock-free from
  an immutable snapshot.
* ``GET /metrics`` — the live instrumentation registry snapshot.

All mutation flows through one coordinator task; readers never block.
See docs/API.md ("The admission daemon") and ``repro-mc serve``.
"""

from repro.serve.batcher import MicroBatcher, ServeOverflow
from repro.serve.coordinator import Coordinator
from repro.serve.daemon import ServeConfig, ServeDaemon, run_forever
from repro.serve.handlers import Api
from repro.serve.protocol import (
    AdmitRequest,
    ExplainRequest,
    PlaceRequest,
    ProtocolError,
    parse_admit,
    parse_explain,
    parse_place,
)
from repro.serve.state import ServeState, StateSnapshot

__all__ = [
    "Api",
    "AdmitRequest",
    "Coordinator",
    "ExplainRequest",
    "MicroBatcher",
    "PlaceRequest",
    "ProtocolError",
    "ServeConfig",
    "ServeDaemon",
    "ServeOverflow",
    "ServeState",
    "StateSnapshot",
    "parse_admit",
    "parse_explain",
    "parse_place",
    "run_forever",
]
