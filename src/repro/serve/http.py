"""A deliberately tiny HTTP/1.1 transport over asyncio streams.

Just enough protocol for a local admission daemon: request line,
query strings, headers, ``Content-Length`` bodies (JSON only),
keep-alive, and nothing else — no chunked encoding, no TLS, no external
dependencies.  Anything malformed gets a ``400`` and the connection
closed.  Responses are JSON by default; a handler returning a ``str``
body is sent as ``text/plain`` (the Prometheus exposition path).
"""

from __future__ import annotations

import asyncio
import json
from urllib.parse import parse_qsl, unquote

from repro.serve.handlers import Api
from repro.serve.protocol import MAX_BODY_BYTES

__all__ = ["HttpServer"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    503: "Service Unavailable",
}


class HttpServer:
    """Serves an :class:`Api` on a local TCP port."""

    def __init__(self, api: Api, host: str = "127.0.0.1", port: int = 0):
        self.api = api
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the actual ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._client, self.host, self.port
        )
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        self.port = port
        return host, port

    async def stop(self) -> None:
        """Stop accepting new connections and wait for the listener."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    async def _client(self, reader: asyncio.StreamReader, writer) -> None:
        try:
            while True:
                keep_alive = await self._one_request(reader, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # client went away mid-request
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _one_request(self, reader, writer) -> bool:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return False  # clean close between keep-alive requests
        parts = request_line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            await self._respond(writer, 400, {"error": "malformed request line"})
            return False
        method, target, _version = parts
        path, _, query_string = target.partition("?")
        path = unquote(path)
        query = dict(parse_qsl(query_string, keep_blank_values=True))

        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            if ":" in line:
                key, value = line.split(":", 1)
                headers[key.strip().lower()] = value.strip()

        length = 0
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                await self._respond(writer, 400, {"error": "bad Content-Length"})
                return False
        if length > MAX_BODY_BYTES:
            await self._respond(
                writer, 413, {"error": f"body exceeds {MAX_BODY_BYTES} bytes"}
            )
            return False
        payload = None
        if length:
            raw = await reader.readexactly(length)
            try:
                payload = json.loads(raw)
            except (json.JSONDecodeError, UnicodeDecodeError):
                await self._respond(writer, 400, {"error": "body is not JSON"})
                return False

        status, body = await self.api.handle(
            method.upper(), path, payload, query=query
        )
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        await self._respond(writer, status, body, keep_alive=keep_alive)
        return keep_alive

    @staticmethod
    async def _respond(
        writer, status: int, body: dict | str, keep_alive=False
    ) -> None:
        if isinstance(body, str):
            data = body.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            data = json.dumps(body).encode("utf-8")
            content_type = "application/json"
        reason = _REASONS.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + data)
        await writer.drain()
