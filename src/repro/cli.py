"""Command-line interface: regenerate any figure or table of the paper.

Examples
--------
Regenerate Figure 1 with 1000 task sets per data point on 8 workers::

    repro-mc fig1 --sets 1000 --jobs 8

Print the worked example (Tables I-III)::

    repro-mc tables

Run everything the paper reports (this is the long one)::

    repro-mc all --sets 2000 --jobs 0
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.report import (
    format_allocation_trace,
    format_sweep,
    format_table1,
)
from repro.experiments.sweeps import FIGURES, run_sweep
from repro.experiments.tables import allocation_trace, paper_example_taskset
from repro.partition.catpa import CATPA
from repro.partition.classical import FirstFitDecreasing

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mc",
        description=(
            "Criticality-aware partitioning for multicore mixed-criticality "
            "systems: regenerate the paper's figures and tables."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[*FIGURES.keys(), "tables", "all"],
        help="which paper artifact to regenerate",
    )
    parser.add_argument(
        "--sets",
        type=int,
        default=500,
        help="random task sets per data point (paper: 50000; default 500)",
    )
    parser.add_argument("--seed", type=int, default=2016, help="root RNG seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; 0 = all CPU cores (default 1)",
    )
    parser.add_argument(
        "--out",
        type=argparse.FileType("w"),
        default=sys.stdout,
        help="write the report to a file instead of stdout",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each figure's data as <DIR>/<figure>.csv",
    )
    return parser


def _render_tables() -> str:
    ts = paper_example_taskset()
    out = [format_table1(ts), ""]
    ffd_steps = allocation_trace(FirstFitDecreasing(), ts, cores=2)
    out.append(
        format_allocation_trace("Table II: allocations under FFD", ts, ffd_steps)
    )
    out.append("")
    ca_steps = allocation_trace(CATPA(), ts, cores=2)
    out.append(
        format_allocation_trace("Table III: allocations under CA-TPA", ts, ca_steps)
    )
    return "\n".join(out)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    jobs = None if args.jobs == 0 else args.jobs
    names = list(FIGURES) + ["tables"] if args.experiment == "all" else [args.experiment]

    for name in names:
        start = time.perf_counter()
        if name == "tables":
            text = _render_tables()
        else:
            result = run_sweep(
                FIGURES[name](), sets=args.sets, seed=args.seed, jobs=jobs
            )
            text = format_sweep(result)
            if args.csv is not None:
                from pathlib import Path

                from repro.experiments.export import save_sweep_csv

                directory = Path(args.csv)
                directory.mkdir(parents=True, exist_ok=True)
                save_sweep_csv(result, directory / f"{name}.csv")
        elapsed = time.perf_counter() - start
        print(text, file=args.out)
        print(f"[{name} regenerated in {elapsed:.1f}s]\n", file=args.out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
