"""Command-line interface: regenerate any figure or table of the paper.

All figure subcommands run on the resumable :class:`~repro.engine.Engine`:
completed shards are checkpointed to a content-addressed store (default
``$REPRO_MC_STORE`` or ``~/.cache/repro-mc/store``), so an interrupted
``repro-mc all --sets 2000`` resumes from where it stopped and re-runs
answer instantly from cache.  ``--no-store`` opts out; ``--progress``
streams per-shard timing and cache hit/miss counters to stderr.

Examples
--------
Regenerate Figure 1 with 1000 task sets per data point on 8 workers::

    repro-mc fig1 --sets 1000 --jobs 8

Print the worked example (Tables I-III)::

    repro-mc tables

Run everything the paper reports (this is the long one; interrupting it
is safe — a re-run resumes from the checkpointed shards)::

    repro-mc all --sets 2000 --jobs 0 --progress

Fuzz the cross-layer invariant oracles (scalar vs. batch probes,
analysis vs. simulation, reports vs. counters) and shrink any failure
to a minimal JSON repro under ``--repro-dir``::

    repro-mc validate --sets 200 --seed 0

Instrumented runs write full provenance: ``--json DIR`` drops a
``<figure>.manifest.json`` run manifest next to each artifact,
``--metrics PATH`` dumps the merged counter/summary snapshot, and
``--log-json PATH`` streams structured JSONL events.  ``repro-mc
inspect out/fig1.json`` pretty-prints the manifest of a past run.

Diagnose where an instrumented run spent its time (critical path,
self-time table, flamegraph/Perfetto exports — all reconstructed
offline from the events file)::

    repro-mc fig1 --sets 1000 --jobs 8 --log-json events.jsonl
    repro-mc trace events.jsonl --report
    repro-mc trace events.jsonl --chrome trace.json --folded stacks.folded

Gate probe throughput/overhead against the committed ``BENCH_*.json``
baselines (exits non-zero on regression; CI runs this)::

    repro-mc bench compare
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from contextlib import nullcontext
from pathlib import Path

from repro import bench as bench_defaults
from repro._version import __version__
from repro.engine import Engine, ResultStore, default_store_root
from repro.experiments.report import (
    format_allocation_trace,
    format_sweep,
    format_table1,
)
from repro.experiments.sweeps import FIGURES, definition_to_spec
from repro.experiments.tables import allocation_trace, paper_example_taskset
from repro.obs import (
    JsonlSink,
    MetricsRegistry,
    build_manifest,
    format_manifest,
    git_describe,
    load_manifest,
    manifest_path_for,
    new_run_id,
    write_manifest,
)
from repro.obs import runtime as obs_runtime
from repro.partition.backend import available_backends, get_backend
from repro.partition.catpa import CATPA
from repro.partition.classical import FirstFitDecreasing
from repro.partition.probe import use_probe_implementation
from repro.types import ReproError

__all__ = ["main", "build_parser", "version_string"]


def version_string() -> str:
    """``repro-mc <version>``, with git describe when in a work tree."""
    described = git_describe()
    base = f"repro-mc {__version__}"
    return f"{base} ({described})" if described else base


class _LazyOutput:
    """``--out`` target that opens (and truncates) only on first write.

    ``argparse.FileType("w")`` used to create/truncate the target at
    *parse* time, so a run that failed validation had already clobbered
    an existing report — and the handle was never explicitly closed.
    This wrapper is stdout when no path was given, otherwise a file that
    comes into existence with the first report byte and is closed by
    :func:`main`'s ``finally``.
    """

    def __init__(self, path: str | None):
        self.path = path
        self._file = None

    def write(self, text: str) -> int:
        if self.path is None:
            return sys.stdout.write(text)
        if self._file is None:
            self._file = open(self.path, "w")
        return self._file.write(text)

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()
        elif self.path is None:
            sys.stdout.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class _VersionAction(argparse.Action):
    """Like ``action="version"`` but resolves git describe lazily, so
    building the parser never shells out."""

    def __init__(self, option_strings, dest, **kwargs):
        kwargs.setdefault("nargs", 0)
        kwargs.setdefault("help", "print the version (with git describe) and exit")
        super().__init__(option_strings, dest, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        print(version_string())
        parser.exit()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mc",
        description=(
            "Criticality-aware partitioning for multicore mixed-criticality "
            "systems: regenerate the paper's figures and tables."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[
            *FIGURES.keys(),
            "tables",
            "all",
            "dynamic",
            "validate",
            "simulate",
            "explain",
            "inspect",
            "trace",
            "bench",
            "serve",
            "top",
        ],
        help=(
            "which paper artifact to regenerate, 'dynamic' for the "
            "injected-event resilience sweep, 'validate' to fuzz the "
            "cross-layer invariant oracles, 'simulate' to run one "
            "partitioned EDF-VD simulation (optionally with an injected "
            "event script), 'explain' to decompose one admission decision "
            "(per-core Theorem-1 condition margins, headroom, rejection "
            "sensitivity), 'inspect' to pretty-print "
            "the run manifest of an existing artifact, 'trace' to analyse "
            "the span tree of an instrumented run, 'bench' to gate "
            "probe throughput against the committed baselines, 'serve' "
            "to run the online admission-control daemon, or 'top' for a "
            "live dashboard over a daemon URL or a sweep's events.jsonl"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help=(
            "artifact or manifest paths (inspect), an events.jsonl file or "
            "run directory (trace), the action 'compare' (bench), or a "
            "daemon URL / events.jsonl / run directory (top)"
        ),
    )
    parser.add_argument("--version", action=_VersionAction)
    parser.add_argument(
        "--sets",
        type=int,
        default=500,
        help="random task sets per data point (paper: 50000; default 500)",
    )
    parser.add_argument("--seed", type=int, default=2016, help="root RNG seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; 0 = all CPU cores (default 1)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help=(
            "write the report to PATH instead of stdout; the file is "
            "opened only when the first report line is ready, so a "
            "failing command never clobbers an existing report"
        ),
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each figure's data as <DIR>/<figure>.csv",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        nargs="?",
        const="-",
        default=None,
        help=(
            "also write each figure's SweepArtifact as <DIR>/<figure>.json; "
            "for 'explain', bare --json prints the explanation document to "
            "stdout instead of the text report (a DIR writes "
            "<DIR>/explain.json)"
        ),
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help=(
            "checkpoint store for completed shards (default: $REPRO_MC_STORE "
            "or ~/.cache/repro-mc/store); interrupted sweeps resume from it"
        ),
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="disable shard checkpointing (always recompute)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="stream per-shard timing and cache hit/miss counts to stderr",
    )
    parser.add_argument(
        "--log-json",
        metavar="PATH",
        default=None,
        help="stream structured run events (JSON lines) to PATH",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help=(
            "write the merged instrumentation counters/summaries of the "
            "whole invocation to PATH as JSON"
        ),
    )
    parser.add_argument(
        "--probe-impl",
        metavar="NAME",
        default=None,
        help=(
            "probe backend for every schedulability probe of this "
            "invocation (figures, validate, serve); one of: "
            f"{', '.join(available_backends())}.  Defaults: batch for "
            "sweeps/validate, incremental for serve.  All backends are "
            "pinned bit-identical, so results never depend on the choice"
        ),
    )
    parser.add_argument(
        "--repro-dir",
        metavar="DIR",
        default="counterexamples",
        help=(
            "where 'validate' writes shrunk counterexample JSON files "
            "(default: counterexamples/)"
        ),
    )
    sim_group = parser.add_argument_group("simulate options")
    sim_group.add_argument(
        "--taskset",
        metavar="PATH",
        default=None,
        help=(
            "simulate/explain: task-set JSON (repro-mc-taskset format) to "
            "partition (--scheme, --cores) and simulate or explain"
        ),
    )
    sim_group.add_argument(
        "--events",
        metavar="PATH",
        default=None,
        help=(
            "simulate: injected-event script JSON (repro-mc-events "
            "format); validated up front against the partition"
        ),
    )
    sim_group.add_argument(
        "--scheme",
        default="ca-tpa",
        help=(
            "simulate/explain: partitioning scheme from the registry "
            "(default ca-tpa)"
        ),
    )
    sim_group.add_argument(
        "--scenario",
        choices=("honest", "random", "level"),
        default="random",
        help=(
            "simulate: execution-demand scenario; 'random' overruns "
            "with --overrun-prob (default random)"
        ),
    )
    sim_group.add_argument(
        "--overrun-prob",
        type=float,
        default=0.1,
        help="simulate: per-job overrun probability of --scenario random",
    )
    sim_group.add_argument(
        "--cycles",
        type=float,
        default=20.0,
        help=(
            "simulate: horizon in multiples of the longest period "
            "(default 20)"
        ),
    )
    sim_group.add_argument(
        "--allow-infeasible",
        action="store_true",
        help=(
            "simulate: run cores that fail the Theorem-1 analysis under "
            "plain EDF instead of refusing (misses are then expected)"
        ),
    )
    dynamic_group = parser.add_argument_group("dynamic options")
    dynamic_group.add_argument(
        "--burst-factors",
        metavar="CSV",
        default=None,
        help=(
            "dynamic: comma-separated WCET burst factors to sweep "
            "(default 1.0,1.5,2.0,3.0,4.0)"
        ),
    )
    trace_group = parser.add_argument_group("trace options")
    trace_group.add_argument(
        "--report",
        action="store_true",
        help=(
            "trace: print the critical-path + self-time report "
            "(default when no export flag is given)"
        ),
    )
    trace_group.add_argument(
        "--folded",
        metavar="PATH",
        default=None,
        help=(
            "trace: write folded stacks (flamegraph.pl/speedscope input) "
            "to PATH ('-' for stdout)"
        ),
    )
    trace_group.add_argument(
        "--chrome",
        metavar="PATH",
        default=None,
        help=(
            "trace: write Chrome trace-event JSON (chrome://tracing / "
            "Perfetto) to PATH ('-' for stdout)"
        ),
    )
    trace_group.add_argument(
        "--top",
        type=int,
        default=15,
        help="trace: rows in the self-time table (default 15)",
    )
    serve_group = parser.add_argument_group("serve options")
    serve_group.add_argument(
        "--cores",
        type=int,
        default=4,
        help=(
            "serve/simulate/explain: cores of the target system (default 4)"
        ),
    )
    serve_group.add_argument(
        "--levels",
        type=int,
        default=2,
        help="serve: criticality levels K of the live system (default 2)",
    )
    serve_group.add_argument(
        "--host",
        default="127.0.0.1",
        help="serve: bind address (default 127.0.0.1)",
    )
    serve_group.add_argument(
        "--port",
        type=int,
        default=8787,
        help="serve: TCP port; 0 picks an ephemeral port (default 8787)",
    )
    serve_group.add_argument(
        "--window-ms",
        type=float,
        default=1.0,
        help=(
            "serve: micro-batch coalescing window in milliseconds; "
            "concurrent requests arriving within it share one probe "
            "kernel call (default 1.0)"
        ),
    )
    serve_group.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="serve: max requests per flush (default 64)",
    )
    serve_group.add_argument(
        "--backlog",
        type=int,
        default=256,
        help=(
            "serve: bounded request queue size; a full queue answers 503 "
            "(default 256)"
        ),
    )
    serve_group.add_argument(
        "--slo",
        action="append",
        metavar="RULE",
        default=None,
        help=(
            "serve: SLO rule over the live window, e.g. "
            "'p95(serve.place.seconds) < 5ms' or "
            "'rate(serve.rejected_503) == 0'; repeatable.  Violations "
            "emit slo.alert events and bump the serve.slo.alerts counter"
        ),
    )
    top_group = parser.add_argument_group("top options")
    top_group.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="top: refresh interval in seconds (default 2.0)",
    )
    top_group.add_argument(
        "--once",
        action="store_true",
        help=(
            "top: render a single frame without terminal control codes "
            "and exit (for scripts/CI)"
        ),
    )
    bench_group = parser.add_argument_group("bench options")
    bench_group.add_argument(
        "--gate-ratio",
        type=float,
        default=None,
        help=(
            "bench compare: measured throughput/speedup must be at least "
            "this fraction of the committed baseline (default "
            f"{bench_defaults.DEFAULT_GATE_RATIO})"
        ),
    )
    bench_group.add_argument(
        "--overhead-gate",
        type=float,
        default=None,
        help=(
            "bench compare: max median disabled guarded/raw probe ratio "
            f"(default {bench_defaults.DEFAULT_OVERHEAD_GATE})"
        ),
    )
    bench_group.add_argument(
        "--baseline-dir",
        metavar="DIR",
        default=None,
        help=(
            "bench compare: directory holding the committed BENCH_*.json "
            "baselines (default: current directory)"
        ),
    )
    return parser


def _render_tables() -> str:
    ts = paper_example_taskset()
    out = [format_table1(ts), ""]
    ffd_steps = allocation_trace(FirstFitDecreasing(), ts, cores=2)
    out.append(
        format_allocation_trace("Table II: allocations under FFD", ts, ffd_steps)
    )
    out.append("")
    ca_steps = allocation_trace(CATPA(), ts, cores=2)
    out.append(
        format_allocation_trace("Table III: allocations under CA-TPA", ts, ca_steps)
    )
    return "\n".join(out)


def _progress_hook(stream):
    """Render engine events as human-readable stderr lines."""

    def hook(event: dict) -> None:
        if event["event"] == "point":
            print(
                f"[{event['figure']} {event['parameter']}={event['value']}]",
                file=stream,
            )
        elif event["event"] == "shard":
            stop = event["start"] + event["count"]
            source = (
                "cache hit"
                if event["cached"]
                else f"computed in {event['seconds']:.2f}s"
            )
            print(
                f"  shard [{event['start']}, {stop}) {source}",
                file=stream,
            )

    return hook


def _inspect(paths: list[str], out) -> int:
    """Pretty-print the run manifest next to each artifact path."""
    if not paths:
        print(
            "repro-mc inspect: pass at least one artifact or manifest path",
            file=sys.stderr,
        )
        return 2
    for i, raw in enumerate(paths):
        path = Path(raw)
        if not path.name.endswith(".manifest.json"):
            path = manifest_path_for(path)
        try:
            manifest = load_manifest(path)
        except ReproError as exc:
            print(f"repro-mc inspect: {exc}", file=sys.stderr)
            return 1
        if i:
            print("", file=out)
        print(format_manifest(manifest), file=out)
    return 0


def _write_export(target: str, text: str, out) -> None:
    """Write an exporter's output to a path, or stdout when ``-``."""
    if target == "-":
        print(text, file=out)
        return
    path = Path(target)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text + "\n")


def _trace(args) -> int:
    """``repro-mc trace``: analyse/export the span tree of a past run."""
    from repro.obs import trace as trace_mod

    if len(args.paths) != 1:
        print(
            "repro-mc trace: pass exactly one events.jsonl file or run directory",
            file=sys.stderr,
        )
        return 2
    try:
        tree = trace_mod.load_tree(args.paths[0])
    except ReproError as exc:
        print(f"repro-mc trace: {exc}", file=sys.stderr)
        return 1
    if not tree.roots:
        print(
            f"repro-mc trace: no span events in {args.paths[0]} "
            "(was the run instrumented with --log-json?)",
            file=sys.stderr,
        )
        return 1
    if tree.orphans:
        print(
            f"repro-mc trace: warning: {len(tree.orphans)} orphan span(s) "
            "whose parent never closed; attached as extra roots",
            file=sys.stderr,
        )
    exported = False
    if args.folded is not None:
        _write_export(args.folded, trace_mod.to_folded(tree), args.out)
        exported = True
    if args.chrome is not None:
        chrome = json.dumps(trace_mod.to_chrome(tree), separators=(",", ":"))
        _write_export(args.chrome, chrome, args.out)
        exported = True
    if args.report or not exported:
        print(trace_mod.format_report(tree, top=args.top), file=args.out)
    return 0


def _bench(args) -> int:
    """``repro-mc bench compare``: quick probe bench vs committed baselines."""
    from repro import bench

    if args.paths != ["compare"]:
        print(
            "repro-mc bench: the only supported action is 'compare' "
            "(repro-mc bench compare)",
            file=sys.stderr,
        )
        return 2
    code, report = bench.run_compare(
        sets=args.sets if args.sets != 500 else bench.DEFAULT_SETS,
        seed=args.seed,
        baseline_dir=args.baseline_dir,
        gate_ratio=(
            bench.DEFAULT_GATE_RATIO if args.gate_ratio is None else args.gate_ratio
        ),
        overhead_gate=(
            bench.DEFAULT_OVERHEAD_GATE
            if args.overhead_gate is None
            else args.overhead_gate
        ),
    )
    print(report, file=args.out)
    return code


def _write_metrics(args, run_id, command, snapshot) -> None:
    """Dump the merged instrumentation snapshot to ``--metrics PATH``."""
    metrics_path = Path(args.metrics)
    metrics_path.parent.mkdir(parents=True, exist_ok=True)
    metrics_path.write_text(
        json.dumps(
            {
                "run_id": run_id,
                "repro_version": __version__,
                "command": command,
                "metrics": snapshot,
            },
            indent=2,
        )
        + "\n"
    )


def _simulate(args, command: list[str]) -> int:
    """``repro-mc simulate``: one partitioned EDF-VD run, optionally
    under an injected-event script (``--events``)."""
    from repro.model import load_events, load_taskset
    from repro.partition.registry import get_partitioner
    from repro.sched import (
        EventInjectionRuntime,
        HonestScenario,
        LevelScenario,
        RandomScenario,
        SystemSimulator,
        default_horizon,
    )

    if args.paths:
        print(
            f"repro-mc simulate: unexpected positional arguments {args.paths}",
            file=sys.stderr,
        )
        return 2
    if args.taskset is None:
        print(
            "repro-mc simulate: --taskset PATH is required",
            file=sys.stderr,
        )
        return 2
    taskset = load_taskset(args.taskset)
    result = get_partitioner(args.scheme).partition(taskset, args.cores)
    if not result.partition.is_complete:
        print(
            f"repro-mc simulate: {args.scheme} could not place every task "
            f"on {args.cores} cores (failed at task {result.failed_task}); "
            "nothing to simulate",
            file=sys.stderr,
        )
        return 1
    if not result.schedulable and not args.allow_infeasible:
        print(
            f"repro-mc simulate: the {args.scheme} partition fails the "
            "schedulability analysis; pass --allow-infeasible to simulate "
            "it anyway",
            file=sys.stderr,
        )
        return 1
    horizon = default_horizon(result.partition, cycles=args.cycles)
    runtime = None
    if args.events is not None:
        runtime = EventInjectionRuntime(
            load_events(args.events), horizon=horizon
        )
    scenario = {
        "honest": lambda: HonestScenario(),
        "random": lambda: RandomScenario(overrun_prob=args.overrun_prob),
        "level": lambda: LevelScenario(target=taskset.levels),
    }[args.scenario]()
    sim = SystemSimulator(
        result.partition,
        scenario,
        horizon=horizon,
        allow_infeasible=args.allow_infeasible,
        events=runtime,
    )

    instrumented = bool(args.log_json or args.metrics)
    run_id = new_run_id() if instrumented else None
    sink = JsonlSink(args.log_json) if args.log_json else None
    snapshot = None
    try:
        if instrumented:
            with obs_runtime.instrument(sink=sink, run_id=run_id) as state:
                obs_runtime.emit(
                    "cli.simulate_start",
                    taskset=args.taskset,
                    events=args.events,
                    scheme=args.scheme,
                )
                with obs_runtime.span("cli.simulate"):
                    report = sim.run(seed=args.seed)
                snapshot = state.registry.snapshot()
        else:
            report = sim.run(seed=args.seed)
    finally:
        if sink is not None:
            sink.close()

    lines = [
        f"simulate: {len(taskset)} tasks on {args.cores} cores "
        f"({args.scheme}), horizon {horizon:g}, scenario {args.scenario}, "
        f"seed {args.seed}",
        f"  schedulable offline: {result.schedulable}",
    ]
    for key, value in sorted(report.telemetry().items()):
        lines.append(f"  {key}: {value}")
    for key, value in sorted(report.event_telemetry().items()):
        lines.append(f"  {key}: {value}")
    print("\n".join(lines), file=args.out)
    if args.metrics is not None:
        _write_metrics(args, run_id, command, snapshot)
    return 0


def _run_dynamic(args, jobs, store, progress, command) -> int:
    """``repro-mc dynamic``: the injected-event resilience sweep."""
    from repro.experiments.dynamic import (
        DEFAULT_BURST_FACTORS,
        format_dynamic,
        run_dynamic_sweep,
    )

    if args.burst_factors is None:
        factors = DEFAULT_BURST_FACTORS
    else:
        try:
            factors = tuple(
                float(tok) for tok in args.burst_factors.split(",") if tok
            )
        except ValueError:
            print(
                f"repro-mc dynamic: --burst-factors must be a comma-"
                f"separated float list, got {args.burst_factors!r}",
                file=sys.stderr,
            )
            return 2
        if not factors:
            print(
                "repro-mc dynamic: --burst-factors is empty", file=sys.stderr
            )
            return 2
    instrumented = bool(args.log_json or args.metrics)
    run_id = new_run_id() if instrumented else None
    sink = JsonlSink(args.log_json) if args.log_json else None
    snapshot = None
    start = time.perf_counter()
    try:
        if instrumented:
            with obs_runtime.instrument(sink=sink, run_id=run_id) as state:
                obs_runtime.emit(
                    "cli.dynamic_start", sets=args.sets, seed=args.seed
                )
                with obs_runtime.span("cli.dynamic"):
                    result = run_dynamic_sweep(
                        factors,
                        sets=args.sets,
                        seed=args.seed,
                        jobs=jobs,
                        store=store,
                        progress=progress,
                        probe_impl=args.probe_impl,
                    )
                snapshot = state.registry.snapshot()
        else:
            result = run_dynamic_sweep(
                factors,
                sets=args.sets,
                seed=args.seed,
                jobs=jobs,
                store=store,
                progress=progress,
                probe_impl=args.probe_impl,
            )
    finally:
        if sink is not None:
            sink.close()
    print(format_dynamic(result), file=args.out)
    print(
        f"[dynamic regenerated in {time.perf_counter() - start:.1f}s]",
        file=args.out,
    )
    if args.json is not None:
        directory = Path(args.json)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "dynamic.json").write_text(
            json.dumps(result.to_dict(), indent=2) + "\n"
        )
    if args.metrics is not None:
        _write_metrics(args, run_id, command, snapshot)
    return 0


def _run_validate(args, jobs, store, progress, command) -> int:
    """``repro-mc validate``: fuzz the oracle registry, shrink failures."""
    from repro.validate import run_campaign, shrink_failure, write_repro

    instrumented = bool(args.log_json or args.metrics)
    run_id = new_run_id() if instrumented else None
    sink = JsonlSink(args.log_json) if args.log_json else None
    snapshot = None
    start = time.perf_counter()
    # --probe-impl rides the contextvar: the campaign engine resolves it
    # per evaluate() and forwards it into worker processes + shard keys.
    impl_ctx = (
        use_probe_implementation(args.probe_impl)
        if args.probe_impl
        else nullcontext()
    )
    try:
        with impl_ctx:
            if instrumented:
                with obs_runtime.instrument(sink=sink, run_id=run_id) as state:
                    obs_runtime.emit(
                        "cli.validate_start", sets=args.sets, seed=args.seed
                    )
                    with obs_runtime.span("cli.validate"):
                        result = run_campaign(
                            args.sets,
                            args.seed,
                            jobs=jobs,
                            store=store,
                            progress=progress,
                        )
                    snapshot = state.registry.snapshot()
            else:
                result = run_campaign(
                    args.sets, args.seed, jobs=jobs, store=store, progress=progress
                )
    finally:
        if sink is not None:
            sink.close()
    print(result.summary(), file=args.out)
    for failure in result.failures:
        doc = shrink_failure(failure)
        path = write_repro(doc, args.repro_dir)
        print(
            f"  repro written: {path} ({len(doc['taskset']['tasks'])} tasks)",
            file=args.out,
        )
    print(
        f"[validate done in {time.perf_counter() - start:.1f}s]",
        file=args.out,
    )
    if args.metrics is not None:
        metrics_path = Path(args.metrics)
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(
            json.dumps(
                {
                    "run_id": run_id,
                    "repro_version": __version__,
                    "command": command,
                    "metrics": snapshot,
                },
                indent=2,
            )
            + "\n"
        )
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    command = list(argv) if argv is not None else sys.argv[1:]
    # The report target opens lazily on first write and is always closed
    # here, whatever exit path the subcommand takes.
    args.out = _LazyOutput(args.out)
    try:
        return _dispatch(args, command)
    finally:
        args.out.close()


def _serve(args, command: list[str]) -> int:
    """``repro-mc serve``: run the online admission-control daemon."""
    from repro.obs.live import parse_slo
    from repro.serve import ServeConfig
    from repro.serve.daemon import run_forever

    for rule in args.slo or []:
        try:
            parse_slo(rule)
        except ReproError as exc:
            print(f"repro-mc serve: {exc}", file=sys.stderr)
            return 2
    config = ServeConfig(
        cores=args.cores,
        levels=args.levels,
        host=args.host,
        port=args.port,
        window_ms=args.window_ms,
        max_batch=args.max_batch,
        backlog=args.backlog,
        probe_impl=args.probe_impl or "incremental",
        metrics_path=args.metrics,
        log_json=args.log_json,
        slo=args.slo or [],
        command=command,
    )
    return run_forever(config)


def _top(args) -> int:
    """``repro-mc top``: live dashboard over a daemon URL or events file."""
    from repro.obs.top import run_top

    if len(args.paths) != 1:
        print(
            "repro-mc top: pass exactly one daemon URL "
            "(e.g. http://127.0.0.1:8787) or an events.jsonl file / run "
            "directory",
            file=sys.stderr,
        )
        return 2
    try:
        return run_top(
            args.paths[0],
            interval=args.interval,
            once=args.once,
            stream=sys.stdout,
        )
    except ReproError as exc:
        print(f"repro-mc top: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0


def _explain_cmd(args) -> int:
    """``repro-mc explain``: decompose one admission decision.

    The task set comes from ``--taskset PATH`` or a single positional
    path.  ``--json`` (bare) prints the :class:`ProbeExplanation`
    document to stdout; ``--json DIR`` writes ``<DIR>/explain.json``
    and still prints the text report; neither prints the report only.
    """
    from repro.analysis.explain import explain_admission, format_explanation
    from repro.model import load_taskset

    if args.taskset is not None and args.paths:
        print(
            "repro-mc explain: pass the task set either as --taskset PATH "
            "or as one positional path, not both",
            file=sys.stderr,
        )
        return 2
    path = args.taskset if args.taskset is not None else (
        args.paths[0] if len(args.paths) == 1 else None
    )
    if path is None:
        print(
            "repro-mc explain: exactly one task-set JSON is required "
            "(--taskset PATH or a positional path)",
            file=sys.stderr,
        )
        return 2
    taskset = load_taskset(path)
    exp = explain_admission(
        taskset,
        args.cores,
        args.scheme,
        probe_impl=args.probe_impl,
    )
    if args.json == "-":
        print(
            json.dumps(exp.to_dict(), indent=2, allow_nan=False),
            file=args.out,
        )
        return 0
    if args.json is not None:
        out_dir = Path(args.json)
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / "explain.json").write_text(
            json.dumps(exp.to_dict(), indent=2, allow_nan=False) + "\n"
        )
    print(format_explanation(exp), file=args.out)
    return 0


def _dispatch(args, command: list[str]) -> int:
    if args.probe_impl is not None:
        try:
            get_backend(args.probe_impl)
        except ReproError as exc:
            print(f"repro-mc: {exc}", file=sys.stderr)
            return 2
    if args.experiment == "explain":
        try:
            return _explain_cmd(args)
        except ReproError as exc:
            print(f"repro-mc explain: {exc}", file=sys.stderr)
            return 1
    if args.json == "-":
        print(
            "repro-mc: bare --json (print to stdout) is only supported by "
            "'explain'; pass --json DIR",
            file=sys.stderr,
        )
        return 2
    if args.experiment == "inspect":
        return _inspect(args.paths, args.out)
    if args.experiment == "trace":
        return _trace(args)
    if args.experiment == "bench":
        return _bench(args)
    if args.experiment == "serve":
        return _serve(args, command)
    if args.experiment == "top":
        return _top(args)
    if args.experiment == "simulate":
        try:
            return _simulate(args, command)
        except ReproError as exc:
            print(f"repro-mc simulate: {exc}", file=sys.stderr)
            return 1
    if args.paths:
        print(
            f"repro-mc {args.experiment}: unexpected positional arguments "
            f"{args.paths} (paths are for the inspect subcommand)",
            file=sys.stderr,
        )
        return 2
    jobs = None if args.jobs == 0 else args.jobs
    names = list(FIGURES) + ["tables"] if args.experiment == "all" else [args.experiment]

    store = None
    if not args.no_store:
        root = Path(args.store).expanduser() if args.store else default_store_root()
        store = ResultStore(root)
    progress = _progress_hook(sys.stderr) if args.progress else None

    if args.experiment == "validate":
        return _run_validate(args, jobs, store, progress, command)
    if args.experiment == "dynamic":
        return _run_dynamic(args, jobs, store, progress, command)

    # One run id + (optional) shared event log per invocation; each
    # figure gets a fresh registry whose dump is merged into the totals
    # that --metrics writes at the end.
    instrumented = bool(args.log_json or args.metrics or args.json)
    run_id = new_run_id() if instrumented else None
    sink = JsonlSink(args.log_json) if args.log_json else None
    totals = MetricsRegistry()

    try:
        for name in names:
            start = time.perf_counter()
            if name == "tables":
                text = _render_tables()
            else:
                engine = Engine(
                    jobs=jobs,
                    store=store,
                    progress=progress,
                    probe_impl=args.probe_impl,
                )
                spec = definition_to_spec(
                    FIGURES[name](), sets=args.sets, seed=args.seed
                )
                figure_metrics = None
                if instrumented:
                    with obs_runtime.instrument(sink=sink, run_id=run_id) as state:
                        obs_runtime.emit("cli.figure_start", figure=name)
                        # The run's root span: every engine/worker span of
                        # this figure hangs off it, so `repro-mc trace`
                        # sees one rooted tree whose duration is the
                        # figure's wall clock.
                        with obs_runtime.span("cli.figure", figure=name):
                            artifact = engine.run(spec)
                        figure_metrics = state.registry.snapshot()
                        totals.merge(state.registry.dump())
                else:
                    artifact = engine.run(spec)
                text = format_sweep(artifact)
                if args.csv is not None:
                    from repro.experiments.export import save_sweep_csv

                    directory = Path(args.csv)
                    directory.mkdir(parents=True, exist_ok=True)
                    save_sweep_csv(artifact, directory / f"{name}.csv")
                if args.json is not None:
                    directory = Path(args.json)
                    directory.mkdir(parents=True, exist_ok=True)
                    artifact_path = directory / f"{name}.json"
                    artifact_path.write_text(artifact.to_json() + "\n")
                    manifest = build_manifest(
                        run_id=run_id,
                        command=command,
                        figure=name,
                        sets=args.sets,
                        seed=args.seed,
                        jobs=args.jobs,
                        artifact_path=artifact_path,
                        engine_stats=engine.stats.as_dict(),
                        metrics=figure_metrics,
                        events_log=args.log_json,
                    )
                    write_manifest(manifest_path_for(artifact_path), manifest)
                if args.progress:
                    s = engine.stats
                    print(
                        f"[{name}: {s.shards_planned} shards planned, "
                        f"{s.cache_hits} cache hits, {s.cache_misses} misses, "
                        f"{s.shards_computed} computed in {s.compute_seconds:.2f}s]",
                        file=sys.stderr,
                    )
            elapsed = time.perf_counter() - start
            print(text, file=args.out)
            print(f"[{name} regenerated in {elapsed:.1f}s]\n", file=args.out)
    finally:
        if sink is not None:
            sink.close()

    if args.metrics is not None:
        metrics_path = Path(args.metrics)
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(
            json.dumps(
                {
                    "run_id": run_id,
                    "repro_version": __version__,
                    "command": command,
                    "metrics": totals.snapshot(),
                },
                indent=2,
            )
            + "\n"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
