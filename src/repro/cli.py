"""Command-line interface: regenerate any figure or table of the paper.

All figure subcommands run on the resumable :class:`~repro.engine.Engine`:
completed shards are checkpointed to a content-addressed store (default
``$REPRO_MC_STORE`` or ``~/.cache/repro-mc/store``), so an interrupted
``repro-mc all --sets 2000`` resumes from where it stopped and re-runs
answer instantly from cache.  ``--no-store`` opts out; ``--progress``
streams per-shard timing and cache hit/miss counters to stderr.

Examples
--------
Regenerate Figure 1 with 1000 task sets per data point on 8 workers::

    repro-mc fig1 --sets 1000 --jobs 8

Print the worked example (Tables I-III)::

    repro-mc tables

Run everything the paper reports (this is the long one; interrupting it
is safe — a re-run resumes from the checkpointed shards)::

    repro-mc all --sets 2000 --jobs 0 --progress
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.engine import Engine, ResultStore, default_store_root
from repro.experiments.report import (
    format_allocation_trace,
    format_sweep,
    format_table1,
)
from repro.experiments.sweeps import FIGURES, definition_to_spec
from repro.experiments.tables import allocation_trace, paper_example_taskset
from repro.partition.catpa import CATPA
from repro.partition.classical import FirstFitDecreasing

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mc",
        description=(
            "Criticality-aware partitioning for multicore mixed-criticality "
            "systems: regenerate the paper's figures and tables."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[*FIGURES.keys(), "tables", "all"],
        help="which paper artifact to regenerate",
    )
    parser.add_argument(
        "--sets",
        type=int,
        default=500,
        help="random task sets per data point (paper: 50000; default 500)",
    )
    parser.add_argument("--seed", type=int, default=2016, help="root RNG seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; 0 = all CPU cores (default 1)",
    )
    parser.add_argument(
        "--out",
        type=argparse.FileType("w"),
        default=sys.stdout,
        help="write the report to a file instead of stdout",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each figure's data as <DIR>/<figure>.csv",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="also write each figure's SweepArtifact as <DIR>/<figure>.json",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help=(
            "checkpoint store for completed shards (default: $REPRO_MC_STORE "
            "or ~/.cache/repro-mc/store); interrupted sweeps resume from it"
        ),
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="disable shard checkpointing (always recompute)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="stream per-shard timing and cache hit/miss counts to stderr",
    )
    return parser


def _render_tables() -> str:
    ts = paper_example_taskset()
    out = [format_table1(ts), ""]
    ffd_steps = allocation_trace(FirstFitDecreasing(), ts, cores=2)
    out.append(
        format_allocation_trace("Table II: allocations under FFD", ts, ffd_steps)
    )
    out.append("")
    ca_steps = allocation_trace(CATPA(), ts, cores=2)
    out.append(
        format_allocation_trace("Table III: allocations under CA-TPA", ts, ca_steps)
    )
    return "\n".join(out)


def _progress_hook(stream):
    """Render engine events as human-readable stderr lines."""

    def hook(event: dict) -> None:
        if event["event"] == "point":
            print(
                f"[{event['figure']} {event['parameter']}={event['value']}]",
                file=stream,
            )
        elif event["event"] == "shard":
            stop = event["start"] + event["count"]
            source = (
                "cache hit"
                if event["cached"]
                else f"computed in {event['seconds']:.2f}s"
            )
            print(
                f"  shard [{event['start']}, {stop}) {source}",
                file=stream,
            )

    return hook


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    jobs = None if args.jobs == 0 else args.jobs
    names = list(FIGURES) + ["tables"] if args.experiment == "all" else [args.experiment]

    store = None
    if not args.no_store:
        root = Path(args.store).expanduser() if args.store else default_store_root()
        store = ResultStore(root)
    progress = _progress_hook(sys.stderr) if args.progress else None

    for name in names:
        start = time.perf_counter()
        if name == "tables":
            text = _render_tables()
        else:
            engine = Engine(jobs=jobs, store=store, progress=progress)
            spec = definition_to_spec(FIGURES[name](), sets=args.sets, seed=args.seed)
            artifact = engine.run(spec)
            text = format_sweep(artifact)
            if args.csv is not None:
                from repro.experiments.export import save_sweep_csv

                directory = Path(args.csv)
                directory.mkdir(parents=True, exist_ok=True)
                save_sweep_csv(artifact, directory / f"{name}.csv")
            if args.json is not None:
                directory = Path(args.json)
                directory.mkdir(parents=True, exist_ok=True)
                (directory / f"{name}.json").write_text(artifact.to_json() + "\n")
            if args.progress:
                s = engine.stats
                print(
                    f"[{name}: {s.shards_planned} shards planned, "
                    f"{s.cache_hits} cache hits, {s.cache_misses} misses, "
                    f"{s.shards_computed} computed in {s.compute_seconds:.2f}s]",
                    file=sys.stderr,
                )
        elapsed = time.perf_counter() - start
        print(text, file=args.out)
        print(f"[{name} regenerated in {elapsed:.1f}s]\n", file=args.out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
