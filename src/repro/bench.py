"""Quick probe-throughput regression check against committed baselines.

``repro-mc bench compare`` re-runs a scaled-down version of the
``benchmarks/`` probe microbenchmarks — Theorem-1 probe throughput
(batch vs scalar), the daemon-style placement loop (incremental vs
batch), and the disabled-instrumentation overhead on the probe hot
path — and compares the result against the committed
``BENCH_partition.json`` / ``BENCH_obs_overhead.json`` baselines.

Raw wall-clock numbers are not comparable across machines, so the gates
are deliberately chosen to survive a hardware change:

* **speedup** — the measured batch/scalar speedup must be at least
  ``gate_ratio`` times the committed speedup.  Both sides of the ratio
  run on the *same* machine, so a drop means the batch path regressed
  relative to the scalar path, not that the machine is slower.
* **throughput** — measured batch probes/sec must be at least
  ``gate_ratio`` times the committed figure.  This one *is*
  machine-relative; the default ``gate_ratio`` leaves generous room for
  slower CI hardware while still catching an order-of-magnitude
  regression (e.g. the batch path silently falling back to scalar).
* **incremental column** — on the placement-loop workload, measured
  incremental hypotheses/sec must clear ``gate_ratio`` times the
  committed figure, and the incremental/batch speedup must stay above
  ``max(1.0, gate_ratio x committed)`` — i.e. the incremental backend
  must never be slower than batch on the workload it exists for,
  however slow the machine.
* **disabled overhead** — the median paired guarded/raw ratio must stay
  under ``overhead_gate``.  Machine-independent by construction; the
  quick run uses a looser default gate than the full benchmark's 1.02
  because fewer samples mean more timing noise.

The full, slow benchmarks under ``benchmarks/`` remain the source of
truth for the committed numbers; this module exists so CI (and a
developer about to touch the probe layer) gets a minutes-not-hours
regression signal.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import numpy as np

from repro.analysis.batch import _core_utilization_stack
from repro.gen import WorkloadConfig, generate_taskset
from repro.model import Partition
from repro.partition import ordering
from repro.partition.probe import (
    batch_probe,
    batch_probe_tasks,
    use_probe_implementation,
)

__all__ = [
    "DEFAULT_SETS",
    "DEFAULT_PLACEMENT_SETS",
    "DEFAULT_SERVE_PLACES",
    "DEFAULT_GATE_RATIO",
    "DEFAULT_OVERHEAD_GATE",
    "PLACEMENT_TASK_RANGE",
    "placement_loop",
    "replay_probe_states",
    "run_placement_bench",
    "run_probe_bench",
    "run_serve_bench",
    "compare_against_baselines",
    "run_compare",
]

SEED = 2016
DEFAULT_SETS = 12
DEFAULT_PLACEMENT_SETS = 3
CHUNKS = 8  #: interleaved chunks for the paired A/B/A overhead measurement

#: Backlog depth of the placement-loop workload.  The incremental
#: backend's advantage grows with the number of pending rows per flush
#: (unchanged columns answer from cache); a deep backlog is the
#: daemon-under-load shape the backend exists for.
PLACEMENT_TASK_RANGE = (250, 400)

#: Measured value must be >= gate_ratio * committed value (throughput
#: and speedup gates).  0.5 tolerates a 2x slower machine / noisy CI box
#: while still catching the batch path degrading to scalar-like speed.
DEFAULT_GATE_RATIO = 0.5

#: Median guarded/raw gate for the quick disabled-overhead check.  The
#: full benchmark gates at 1.02 over 48 paired ratios; the quick run has
#: far fewer samples, so the gate is looser.
DEFAULT_OVERHEAD_GATE = 1.10

PARTITION_BASELINE = "BENCH_partition.json"
OVERHEAD_BASELINE = "BENCH_obs_overhead.json"
SERVE_BASELINE = "BENCH_serve.json"

#: Concurrent /place requests of the quick serve-latency burst.
DEFAULT_SERVE_PLACES = 256


def replay_probe_states(
    config: WorkloadConfig, sets: int, seed: int = SEED
) -> list[tuple[Partition, int]]:
    """The (partition, task_index) probe states of a greedy CA-TPA replay.

    Mirrors the state construction of ``benchmarks/`` (placement replayed
    once, every recorded state immutable) at a fraction of the set count.
    """
    rng = np.random.default_rng(seed)
    states: list[tuple[Partition, int]] = []
    for _ in range(sets):
        taskset = generate_taskset(config, rng)
        partition = Partition(taskset, config.cores)
        placed: list[tuple[int, int]] = []
        for task_index in ordering.by_contribution(taskset):
            snapshot = Partition(taskset, config.cores)
            for i, m in placed:
                snapshot.assign(i, m)
            states.append((snapshot, task_index))
            new_utils = _core_utilization_stack(
                partition.candidate_stack(task_index), "max"
            )
            finite = np.isfinite(new_utils)
            if not finite.any():
                break
            target = int(np.argmin(np.where(finite, new_utils, np.inf)))
            partition.assign(task_index, target)
            placed.append((task_index, target))
    return states


def placement_loop(taskset, cores: int, rule: str = "max") -> int:
    """One daemon-style placement loop; returns hypotheses answered.

    Mirrors the coordinator's ``/place`` flush: probe *every* pending
    task against every core, place the head of the queue on its best
    finite core, re-probe the remainder, repeat.  Under the batch
    backend each round recomputes the full ``(pending, cores)`` grid;
    under the incremental backend only the mutated core's column is
    fresh work — identical answers, different cost.
    """
    partition = Partition(taskset, cores)
    pending = list(ordering.by_contribution(taskset))
    hypotheses = 0
    while pending:
        utils = batch_probe_tasks(partition, pending, rule=rule)
        hypotheses += utils.size
        head = utils[0]
        task_index = pending.pop(0)
        finite = np.isfinite(head)
        if not finite.any():
            continue  # no feasible core: skip, keep placing the rest
        partition.assign(
            task_index, int(np.argmin(np.where(finite, head, np.inf)))
        )
    return hypotheses


def run_placement_bench(
    sets: int = DEFAULT_PLACEMENT_SETS, seed: int = SEED, passes: int = 3
) -> dict:
    """Time the placement loop under the batch and incremental backends.

    Both backends answer the exact same hypotheses (pinned bit-identical
    by the validate campaign), so ``speedup`` is a pure throughput
    ratio on provably equivalent work.
    """
    config = WorkloadConfig(task_count_range=PLACEMENT_TASK_RANGE)
    rng = np.random.default_rng(seed)
    tasksets = [generate_taskset(config, rng) for _ in range(sets)]
    timings: dict[str, float] = {}
    hypotheses = 0
    for impl in ("batch", "incremental"):
        with use_probe_implementation(impl):
            placement_loop(tasksets[0], config.cores)  # warm-up
            best = float("inf")
            for _ in range(passes):
                start = time.perf_counter()
                hypotheses = sum(
                    placement_loop(ts, config.cores) for ts in tasksets
                )
                best = min(best, time.perf_counter() - start)
            timings[impl] = best
    return {
        "benchmark": "placement-loop",
        "sets": sets,
        "seed": seed,
        "task_count_range": list(PLACEMENT_TASK_RANGE),
        "hypotheses": hypotheses,
        "batch": {
            "seconds": timings["batch"],
            "probes_per_sec": hypotheses / timings["batch"],
        },
        "incremental": {
            "seconds": timings["incremental"],
            "probes_per_sec": hypotheses / timings["incremental"],
        },
        "speedup": timings["batch"] / timings["incremental"],
    }


def run_serve_bench(
    places: int = DEFAULT_SERVE_PLACES, seed: int = SEED, cores: int = 8
) -> dict:
    """Serve-latency burst: an in-process daemon under concurrent /place.

    Boots a real :class:`~repro.serve.daemon.ServeDaemon` (ephemeral
    port, incremental backend — the serve defaults), fires ``places``
    concurrent HTTP ``/place`` requests at it, and reports qps plus the
    exact log-bucket p50/p95 of ``serve.place.seconds`` (queue-wait +
    kernel + apply per request, the same histogram the daemon exposes
    via Prometheus).  Everything runs in one process on one event loop,
    so the numbers are the coalescing path's, not a client fleet's.
    """
    import asyncio
    import json as json_mod

    from repro.obs.runtime import OBS
    from repro.serve.daemon import ServeConfig, ServeDaemon

    rng = np.random.default_rng(seed)
    bodies = []
    for i in range(places):
        period = float(rng.uniform(50.0, 200.0))
        lo = period * float(rng.uniform(0.001, 0.01))
        body = {
            "task": {"name": f"b{i}", "period": period, "wcets": [lo, lo * 2]}
        }
        bodies.append(json_mod.dumps(body).encode("utf-8"))

    async def _post(host: str, port: int, body: bytes) -> None:
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(
            (
                "POST /place HTTP/1.1\r\nHost: bench\r\n"
                f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
            ).encode("latin-1")
            + body
        )
        await writer.drain()
        await reader.read()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass

    async def _bench() -> dict:
        config = ServeConfig(
            cores=cores,
            port=0,
            backlog=places + 8,
            command=["bench", "serve"],
        )
        daemon = ServeDaemon(config)
        shutdown = asyncio.Event()
        ready = asyncio.Event()
        runner = asyncio.create_task(daemon.run(shutdown, ready=ready))
        await ready.wait()
        host, port = daemon.bound
        start = time.perf_counter()
        await asyncio.gather(*(_post(host, port, body) for body in bodies))
        elapsed = time.perf_counter() - start
        # The daemon instruments the whole process while it runs, so its
        # registry is readable here — before shutdown restores state.
        latency = OBS.registry.histogram("serve.place.seconds").as_dict()
        batch = OBS.registry.summaries.get("serve.batch_size")
        batch_p50 = batch.percentile(50.0) if batch is not None else 0.0
        accepted = OBS.registry.counter("serve.place.accepted").value
        shutdown.set()
        await runner
        return {
            "benchmark": "serve-burst",
            "places": places,
            "seed": seed,
            "cores": cores,
            "seconds": elapsed,
            "qps": places / elapsed,
            "accepted": accepted,
            "batch_p50": batch_p50,
            "place_p50_s": latency["p50"],
            "place_p95_s": latency["p95"],
        }

    return asyncio.run(_bench())


def _raw(partition: Partition, task_index: int):
    return _core_utilization_stack(partition.candidate_stack(task_index), "max")


def _time_states(fn, states, passes: int = 3) -> float:
    """Best-of-``passes`` wall time of ``fn`` over the probe states."""
    best = float("inf")
    for _ in range(passes):
        start = time.perf_counter()
        for partition, task_index in states:
            fn(partition, task_index)
        best = min(best, time.perf_counter() - start)
    return best


def run_probe_bench(sets: int = DEFAULT_SETS, seed: int = SEED) -> dict:
    """Measure batch/scalar probe throughput and the disabled overhead.

    Returns a dict with the same vocabulary as the committed baselines:
    ``probes``, ``batch``/``scalar`` seconds and probes/sec, ``speedup``,
    and the median paired ``disabled_overhead_ratio``.
    """
    config = WorkloadConfig()  # the Fig.-1 default point
    states = replay_probe_states(config, sets, seed)
    if not states:
        raise ValueError("probe-state replay produced no states")

    batch_seconds = _time_states(batch_probe, states)
    with use_probe_implementation("scalar"):
        scalar_seconds = _time_states(batch_probe, states)

    chunks = [states[k::CHUNKS] for k in range(CHUNKS)]
    ratios = []
    for chunk in chunks:
        before = _time_states(_raw, chunk)
        timed = _time_states(batch_probe, chunk)
        after = _time_states(_raw, chunk)
        ratios.append(timed / ((before + after) / 2))

    return {
        "benchmark": "probe-throughput-quick",
        "sets": sets,
        "seed": seed,
        "probes": len(states),
        "batch": {
            "seconds": batch_seconds,
            "probes_per_sec": len(states) / batch_seconds,
        },
        "scalar": {
            "seconds": scalar_seconds,
            "probes_per_sec": len(states) / scalar_seconds,
        },
        "speedup": scalar_seconds / batch_seconds,
        "placement": run_placement_bench(seed=seed),
        "serve": run_serve_bench(seed=seed),
        "disabled_overhead_ratio": statistics.median(ratios),
        "overhead_samples": len(ratios),
    }


def _load_json(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def compare_against_baselines(
    measured: dict,
    baseline_dir: str | Path,
    *,
    gate_ratio: float = DEFAULT_GATE_RATIO,
    overhead_gate: float = DEFAULT_OVERHEAD_GATE,
) -> tuple[list[str], list[str]]:
    """Gate the measurement against the committed baselines.

    Returns ``(failures, lines)``: human-readable report lines plus a
    list of failed-gate descriptions (empty = all gates passed).  A
    missing baseline file is itself a failure — a silently absent
    baseline would make the gate vacuous.
    """
    baseline_dir = Path(baseline_dir)
    failures: list[str] = []
    lines = [
        f"bench compare: {measured['probes']} probes "
        f"({measured['sets']} sets, seed {measured['seed']})",
        "",
        f"  {'metric':<26} {'measured':>12} {'committed':>12} {'gate':>16}",
    ]

    def check(metric: str, value: float, committed: float, floor: float) -> None:
        ok = value >= floor
        lines.append(
            f"  {metric:<26} {value:>12.2f} {committed:>12.2f} "
            f"{'>= ' + format(floor, '.2f'):>14} {'ok' if ok else 'FAIL'}"
        )
        if not ok:
            failures.append(
                f"{metric}: measured {value:.2f} < gate {floor:.2f} "
                f"(committed {committed:.2f} x ratio {gate_ratio})"
            )

    partition = _load_json(baseline_dir / PARTITION_BASELINE)
    if partition is None:
        failures.append(f"missing/unreadable baseline {PARTITION_BASELINE}")
        lines.append(f"  !! no {PARTITION_BASELINE} in {baseline_dir}")
    else:
        committed_pps = float(partition["probe"]["batch"]["probes_per_sec"])
        committed_speedup = float(partition["probe"]["speedup"])
        check(
            "batch probes/sec",
            measured["batch"]["probes_per_sec"],
            committed_pps,
            gate_ratio * committed_pps,
        )
        check(
            "batch/scalar speedup",
            measured["speedup"],
            committed_speedup,
            gate_ratio * committed_speedup,
        )
        placement = partition.get("placement")
        if placement is None:
            # A vacuously-green incremental gate is itself a failure.
            failures.append(
                f"baseline {PARTITION_BASELINE} has no 'placement' section"
            )
            lines.append(f"  !! no placement section in {PARTITION_BASELINE}")
        else:
            committed_inc = float(
                placement["incremental"]["probes_per_sec"]
            )
            committed_inc_speedup = float(placement["speedup"])
            check(
                "incremental probes/sec",
                measured["placement"]["incremental"]["probes_per_sec"],
                committed_inc,
                gate_ratio * committed_inc,
            )
            # Machine-relative floor, but never below 1.0: whatever the
            # hardware, incremental must not lose to batch on the
            # placement workload.
            check(
                "incremental/batch speedup",
                measured["placement"]["speedup"],
                committed_inc_speedup,
                max(1.0, gate_ratio * committed_inc_speedup),
            )

    serve_baseline = _load_json(baseline_dir / SERVE_BASELINE)
    serve_measured = measured.get("serve")
    if serve_baseline is None:
        # Same policy as the placement section: a silently absent
        # baseline would make the serve-latency gate vacuous.
        failures.append(f"missing/unreadable baseline {SERVE_BASELINE}")
        lines.append(f"  !! no {SERVE_BASELINE} in {baseline_dir}")
    elif serve_measured is not None:
        committed_qps = float(serve_baseline["qps"])
        check(
            "serve qps",
            serve_measured["qps"],
            committed_qps,
            gate_ratio * committed_qps,
        )
        # Latency gates from above: a slower machine is allowed
        # 1/gate_ratio times the committed p95, no more.
        committed_p95 = float(serve_baseline["place_p95_s"])
        measured_p95 = float(serve_measured["place_p95_s"])
        ceiling = committed_p95 / gate_ratio
        ok = measured_p95 <= ceiling
        lines.append(
            f"  {'serve place p95 (s)':<26} {measured_p95:>12.5f} "
            f"{committed_p95:>12.5f} "
            f"{'<= ' + format(ceiling, '.5f'):>14} {'ok' if ok else 'FAIL'}"
        )
        if not ok:
            failures.append(
                f"serve place p95: measured {measured_p95:.5f}s exceeds "
                f"gate {ceiling:.5f}s (committed {committed_p95:.5f}s / "
                f"ratio {gate_ratio})"
            )

    overhead = _load_json(baseline_dir / OVERHEAD_BASELINE)
    measured_overhead = measured["disabled_overhead_ratio"]
    committed_overhead = (
        float(overhead["disabled_overhead_ratio"]) if overhead else float("nan")
    )
    ok = measured_overhead <= overhead_gate
    lines.append(
        f"  {'disabled overhead':<26} {measured_overhead:>12.3f} "
        f"{committed_overhead:>12.3f} "
        f"{'<= ' + format(overhead_gate, '.2f'):>14} {'ok' if ok else 'FAIL'}"
    )
    if not ok:
        failures.append(
            f"disabled overhead: median guarded/raw {measured_overhead:.3f} "
            f"exceeds gate {overhead_gate:.2f}"
        )
    if overhead is None:
        failures.append(f"missing/unreadable baseline {OVERHEAD_BASELINE}")
        lines.append(f"  !! no {OVERHEAD_BASELINE} in {baseline_dir}")

    lines.append("")
    if failures:
        lines.append(f"{len(failures)} gate(s) FAILED:")
        lines.extend(f"  - {failure}" for failure in failures)
    else:
        lines.append("all gates passed")
    return failures, lines


def run_compare(
    *,
    sets: int = DEFAULT_SETS,
    seed: int = SEED,
    baseline_dir: str | Path | None = None,
    gate_ratio: float = DEFAULT_GATE_RATIO,
    overhead_gate: float = DEFAULT_OVERHEAD_GATE,
) -> tuple[int, str]:
    """Run the quick bench and gate it; returns ``(exit_code, report)``.

    ``baseline_dir`` defaults to the current working directory (where CI
    checks out the repo root with the committed ``BENCH_*.json`` files).
    """
    measured = run_probe_bench(sets=sets, seed=seed)
    failures, lines = compare_against_baselines(
        measured,
        Path.cwd() if baseline_dir is None else baseline_dir,
        gate_ratio=gate_ratio,
        overhead_gate=overhead_gate,
    )
    return (1 if failures else 0), "\n".join(lines)
