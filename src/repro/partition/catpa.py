"""CA-TPA: the paper's Criticality-Aware Task Partitioning Algorithm.

Algorithm 1, augmented with the workload-imbalance override of
Section III (Eq. (16)):

1. Sort tasks by decreasing utilization contribution (Eqs. (12)-(13)).
2. For each task, probe every core: compute the hypothetical new core
   utilization ``U^{Psi_m + tau_i}`` (Eq. (15)) and the increment
   ``Delta = U^{Psi_m + tau_i} - U^{Psi_m}`` (Eq. (14)).  Allocate the
   task to the feasible core with the minimum increment (ties: lowest
   core index).  Fail as soon as some task fits nowhere.
3. Imbalance override: before selecting by minimum increment, compute
   the workload imbalance factor
   ``Lambda = (U_sys - min_m U^{Psi_m}) / U_sys`` over the cores that
   already hold at least one task.  If ``Lambda`` exceeds the threshold
   ``alpha``, the task is instead assigned to the feasible core with the
   minimum *current* core utilization (ties: lowest core index).

Eq.-(16) semantics: cores that are still idle are **excluded** from the
``min`` while the partial mapping is being built.  Algorithm 1's
override exists to re-balance the cores the packing has already loaded;
an untouched core would pin ``Lambda`` at exactly 1 and make the
min-utilization rule — not the paper's min-increment rule — place the
first ``M`` tasks for every ``alpha < 1``.  The *reported* imbalance
metric, :func:`repro.metrics.imbalance_factor`, follows the same
loaded-core convention for finished partitions.

The Eq.-(15) probes run through the vectorized batch engine
(:func:`repro.partition.probe.batch_probe`): one ``(M, K, K)`` NumPy
pass per task instead of ``M`` scalar evaluations.  The per-core
Eq.-(9) utilizations are tracked incrementally, so a full run costs
``O(N * M * K^2)`` probe work plus the ``O(N log N)`` sort, matching the
paper's complexity analysis.
"""

from __future__ import annotations

import numpy as np

from repro.model.partition import Partition
from repro.model.taskset import MCTaskSet
from repro.partition import ordering
from repro.partition.base import Partitioner
from repro.partition.probe import batch_probe, first_finite_probe
from repro.types import EPS, PartitionError

__all__ = ["CATPA"]

#: Increments closer than this are treated as equal so that exact ties
#: (which differ only by float round-off of Eq. (9)) deterministically go
#: to the lower core index, as Algorithm 1 specifies.
TIE_EPS: float = 1e-9


class CATPA(Partitioner):
    """Criticality-Aware Task Partitioning Algorithm.

    Parameters
    ----------
    alpha:
        Threshold for the workload imbalance factor ``Lambda``
        (Eq. (16)), measured over the cores that already hold tasks.
        The paper sweeps ``[0.1, 0.5]`` and uses 0.7 as the default in
        the other experiments; ``alpha >= 1`` effectively disables the
        override (``Lambda < 1`` whenever every loaded core utilization
        is finite and positive), and ``alpha = None`` disables it
        outright (the ablation benches use that).
    eq9_rule:
        Aggregation over feasible Theorem-1 conditions in Eq. (9):
        ``"max"`` (the paper's text, default) or ``"min"`` (the
        optimistic variant; identical for dual-criticality systems).
    """

    name = "ca-tpa"

    def __init__(self, alpha: float | None = 0.7, eq9_rule: str = "max"):
        if alpha is not None and not 0.0 <= alpha:
            raise PartitionError(f"alpha must be >= 0 or None, got {alpha}")
        if eq9_rule not in ("max", "min"):
            raise PartitionError(f"eq9_rule must be 'max' or 'min', got {eq9_rule!r}")
        self.alpha = alpha
        self.eq9_rule = eq9_rule

    # ------------------------------------------------------------------
    def order_tasks(self, taskset: MCTaskSet) -> list[int]:
        return ordering.by_contribution(taskset)

    def select_core(
        self, task_index: int, partition: Partition, state: dict
    ) -> int | None:
        utils = state.get("core_utils")
        if utils is None:
            utils = np.zeros(partition.cores, dtype=np.float64)
            state["core_utils"] = utils

        if self._imbalance_exceeded(utils, partition):
            target, new_util = self._min_utilization_core(
                task_index, partition, utils
            )
        else:
            target, new_util = self._min_increment_core(
                task_index, partition, utils
            )
        if target is None:
            return None
        utils[target] = new_util
        return target

    def _final_core_utils(self, partition, state):
        utils = state.get("core_utils")
        return None if utils is None else utils.copy()

    # ------------------------------------------------------------------
    def _imbalance_exceeded(self, utils: np.ndarray, partition: Partition) -> bool:
        """Eq. (16) over the loaded cores of the partial mapping."""
        if self.alpha is None:
            return False
        loaded = utils[partition.core_counts > 0]
        if loaded.size == 0:
            return False  # empty system: Lambda defined as 0
        u_sys = float(loaded.max())
        if u_sys <= EPS:
            return False
        imbalance = (u_sys - float(loaded.min())) / u_sys
        return imbalance > self.alpha

    def _min_increment_core(
        self, task_index: int, partition: Partition, utils: np.ndarray
    ) -> tuple[int | None, float]:
        new_utils = batch_probe(partition, task_index, rule=self.eq9_rule)
        best_core: int | None = None
        best_increment = np.inf
        best_new = np.inf
        for m in range(partition.cores):
            new_util = float(new_utils[m])
            if not np.isfinite(new_util):
                continue
            increment = new_util - utils[m]
            # ties (within float noise) keep the lowest-index core
            if increment < best_increment - TIE_EPS:
                best_increment = increment
                best_core = m
                best_new = new_util
        return best_core, best_new

    def _min_utilization_core(
        self, task_index: int, partition: Partition, utils: np.ndarray
    ) -> tuple[int | None, float]:
        # Cores by ascending current utilization; stable sort keeps the
        # lowest index first among ties.
        return first_finite_probe(
            partition,
            task_index,
            np.argsort(utils, kind="stable"),
            rule=self.eq9_rule,
        )
