"""Shared probing helpers: "what if task i joined core m?".

Probes never mutate the partition; they build the hypothetical level
matrix ``U_j^{Psi_m + tau_i}(k)`` by adding the task's utilization row to
the core's cached matrix and evaluate the schedulability machinery on it.

The evaluation strategy is pluggable: this module holds the *selection*
mechanism (a contextvar naming the active backend) and the public probe
functions the schemes call, while the strategies themselves live in
:mod:`repro.partition.backend`:

* the **batch** backend (default) builds all ``M`` candidate matrices in
  one broadcasted ``(M, K, K)`` stack and evaluates them with
  :mod:`repro.analysis.batch` in a single NumPy pass;
* the **scalar** backend evaluates one ``(K, K)`` matrix per core with
  :mod:`repro.analysis.edfvd`, probing lazily in preference order where
  the heuristics historically did;
* the **incremental** backend caches probe rows on the partition next to
  its per-core version counters and recomputes only the (task, core)
  hypotheses whose core was mutated since the last probe — the admission
  daemon's warm-state engine.

All backends produce bit-identical placement decisions (pinned by the
test suite and the ``repro-mc validate`` differential campaign);
:func:`use_probe_implementation` switches between them, which the
``benchmarks/test_bench_probe_speed.py`` throughput benchmark uses to
measure the speedups.

Instrumentation: when :data:`repro.obs.OBS` is enabled, every probe
records how many candidate (task, core) hypotheses it evaluated, how
many were Theorem-1 infeasible, and — for feasibility probes — which
admission path accepted each core (Eq. (4) directly vs the Theorem-1
chain, and in the latter case *which* condition ``k`` of Ineq. (5)
passed first).  The counters carry the active scheme tag
(``theorem1.cond_pass.k2[ca-tpa]``), so per-scheme hit rates come for
free, and each probe's kernel time is attributed to a synthetic
``probe`` child of the innermost open span
(:func:`repro.obs.add_span_time`) — the trace layer's scheme→probe
level.  Disabled, the entire layer is one branch per probe (pinned
< 2 % by ``benchmarks/test_bench_probe_overhead.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.model.partition import Partition
from repro.partition.backend import (
    available_backends,
    candidate_level_matrix,
    get_backend,
    probe_core_utilization,
    probe_feasible,
)

__all__ = [
    "candidate_level_matrix",
    "probe_core_utilization",
    "probe_feasible",
    "batch_candidate_matrices",
    "batch_probe",
    "batch_probe_feasible",
    "batch_probe_tasks",
    "batch_probe_feasible_tasks",
    "first_feasible_core",
    "first_finite_probe",
    "probe_implementation",
    "use_probe_implementation",
    "available_backends",
]

#: Active probe backend name: "batch" (default), "scalar" or
#: "incremental" (see :mod:`repro.partition.backend`).  A
#: :class:`~contextvars.ContextVar`, not a module global: the selection
#: is isolated per thread and per asyncio task, so a benchmark thread
#: running scalar probes cannot flip a concurrent server handler (or the
#: admission daemon's coordinator) onto the wrong engine mid-decision.
_ACTIVE_IMPLEMENTATION: ContextVar[str] = ContextVar(
    "repro_probe_implementation", default="batch"
)


def probe_implementation() -> str:
    """The currently active probe backend name (e.g. ``"batch"``)."""
    return _ACTIVE_IMPLEMENTATION.get()


@contextmanager
def use_probe_implementation(impl: str) -> Iterator[None]:
    """Select the probe backend for the current context.

    ``impl`` must name a registered backend
    (:func:`repro.partition.backend.available_backends`); unknown names
    raise :class:`repro.types.ModelError`.  The selection is scoped to
    the current thread/async task (it rides a
    :class:`~contextvars.ContextVar`), so concurrent contexts never
    observe each other's choice.
    """
    get_backend(impl)  # validate eagerly: clean ReproError, not KeyError
    token = _ACTIVE_IMPLEMENTATION.set(impl)
    try:
        yield
    finally:
        _ACTIVE_IMPLEMENTATION.reset(token)


def _active_backend():
    return get_backend(_ACTIVE_IMPLEMENTATION.get())


# ----------------------------------------------------------------------
# Batch path (all cores at once)
# ----------------------------------------------------------------------
def batch_candidate_matrices(partition: Partition, task_index: int) -> np.ndarray:
    """The ``(M, K, K)`` stack of all candidate level matrices for a task.

    One broadcasted add builds every ``U^{Psi_m + tau_i}`` hypothesis at
    once instead of ``M`` per-core copies.
    """
    return partition.candidate_stack(task_index)


def batch_probe(
    partition: Partition, task_index: int, rule: str = "max"
) -> np.ndarray:
    """Eq.-(15) probe of ``task_index`` against *every* core: ``(M,)``.

    Entry ``m`` is the hypothetical ``U^{Psi_m + tau_i}`` (``inf`` where
    the enlarged subset is Theorem-1 infeasible, per Eq. (15a)).
    Evaluated by the active backend (see :func:`probe_implementation`).
    """
    return _active_backend().probe(partition, task_index, rule=rule)


def batch_probe_feasible(partition: Partition, task_index: int) -> np.ndarray:
    """Eq.(4)-or-Theorem-1 feasibility of the task on every core: ``(M,)``."""
    return _active_backend().probe_feasible(partition, task_index)


# ----------------------------------------------------------------------
# Micro-batch path (several tasks x all cores, one kernel call)
# ----------------------------------------------------------------------
def batch_probe_tasks(
    partition: Partition, task_indices: Sequence[int], rule: str = "max"
) -> np.ndarray:
    """Eq.-(15) probes of several tasks against every core: ``(T, M)``.

    Row ``t`` is exactly :func:`batch_probe` of ``task_indices[t]``
    bit-for-bit, whichever backend is active — but the whole micro-batch
    costs one kernel pass (batch) or one flat refresh of only the stale
    (task, core) pairs (incremental).  This is the admission daemon's
    flush primitive.
    """
    return _active_backend().probe_tasks(partition, task_indices, rule=rule)


def batch_probe_feasible_tasks(
    partition: Partition, task_indices: Sequence[int]
) -> np.ndarray:
    """Feasibility of several tasks on every core: boolean ``(T, M)``.

    Row ``t`` equals :func:`batch_probe_feasible` of ``task_indices[t]``
    bit-for-bit under every backend.
    """
    return _active_backend().probe_feasible_tasks(partition, task_indices)


# ----------------------------------------------------------------------
# Preference-order scans shared by the heuristics
# ----------------------------------------------------------------------
def first_feasible_core(
    partition: Partition,
    task_index: int,
    core_order: Iterable[int] | None = None,
) -> int | None:
    """First core in ``core_order`` on which the task is feasible.

    The batch/incremental backends evaluate all cores in one pass and
    scan the result; the scalar backend probes lazily in preference
    order (the historical behaviour of FFD-like schemes).  ``None`` when
    no core fits.
    """
    return _active_backend().first_feasible_core(
        partition, task_index, core_order
    )


def first_finite_probe(
    partition: Partition,
    task_index: int,
    core_order: Iterable[int],
    rule: str = "max",
) -> tuple[int | None, float]:
    """First core in ``core_order`` with a finite Eq.-(15) probe.

    Returns ``(core, new_utilization)``, or ``(None, inf)`` when the task
    fits nowhere.  Used by the min-utilization override and the ablation
    fit rules, which pick by preference order rather than by increment.
    """
    return _active_backend().first_finite_probe(
        partition, task_index, core_order, rule=rule
    )
