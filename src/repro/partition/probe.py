"""Shared probing helpers: "what if task i joined core m?".

Probes never mutate the partition; they build the hypothetical level
matrix ``U_j^{Psi_m + tau_i}(k)`` by adding the task's utilization row to
the core's cached matrix and evaluate the schedulability machinery on it.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.edfvd import core_utilization
from repro.analysis.feasibility import is_feasible_core
from repro.model.partition import Partition

__all__ = ["candidate_level_matrix", "probe_core_utilization", "probe_feasible"]


def candidate_level_matrix(
    partition: Partition, core: int, task_index: int
) -> np.ndarray:
    """Level matrix of core ``core`` if ``task_index`` were added to it."""
    taskset = partition.taskset
    task = taskset[task_index]
    mat = partition.level_matrix(core).copy()
    crit = task.criticality
    mat[crit - 1, :crit] += taskset.utilization_matrix[task_index, :crit]
    return mat


def probe_core_utilization(
    partition: Partition, core: int, task_index: int, rule: str = "max"
) -> float:
    """Hypothetical new core utilization ``U^{Psi_m + tau_i}`` (Eq. (15)).

    ``inf`` (:data:`repro.types.INFEASIBLE`) when the enlarged subset
    fails Theorem 1, per Eq. (15a).  ``rule`` selects the Eq. (9)
    aggregation (see :func:`repro.analysis.core_utilization`).
    """
    return core_utilization(
        candidate_level_matrix(partition, core, task_index), rule=rule
    )


def probe_feasible(partition: Partition, core: int, task_index: int) -> bool:
    """Would the enlarged subset pass the Eq.(4)-or-Theorem-1 test?"""
    return is_feasible_core(candidate_level_matrix(partition, core, task_index))
