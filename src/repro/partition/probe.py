"""Shared probing helpers: "what if task i joined core m?".

Probes never mutate the partition; they build the hypothetical level
matrix ``U_j^{Psi_m + tau_i}(k)`` by adding the task's utilization row to
the core's cached matrix and evaluate the schedulability machinery on it.

Two implementations coexist:

* the **batch** path (default) builds all ``M`` candidate matrices in one
  broadcasted ``(M, K, K)`` stack and evaluates them with
  :mod:`repro.analysis.batch` in a single NumPy pass;
* the **scalar** path evaluates one ``(K, K)`` matrix per core with
  :mod:`repro.analysis.edfvd`, probing lazily in preference order where
  the heuristics historically did.

Both produce bit-identical placement decisions (pinned by the test
suite); :func:`use_probe_implementation` switches between them, which the
``benchmarks/test_bench_probe_speed.py`` throughput benchmark uses to
measure the speedup of the batch engine.

Instrumentation: when :data:`repro.obs.OBS` is enabled, every probe
records how many candidate (task, core) hypotheses it evaluated, how
many were Theorem-1 infeasible, and — for feasibility probes — which
admission path accepted each core (Eq. (4) directly vs the Theorem-1
chain, and in the latter case *which* condition ``k`` of Ineq. (5)
passed first).  The counters carry the active scheme tag
(``theorem1.cond_pass.k2[ca-tpa]``), so per-scheme hit rates come for
free, and each probe's kernel time is attributed to a synthetic
``probe`` child of the innermost open span
(:func:`repro.obs.add_span_time`) — the trace layer's scheme→probe
level.  Disabled, the entire layer is one branch per probe (pinned
< 2 % by ``benchmarks/test_bench_probe_overhead.py``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.analysis.batch import (
    _available_utilizations,
    _core_utilization_stack,
    _is_feasible_stack,
)
from repro.analysis.edfvd import available_utilizations, core_utilization
from repro.analysis.feasibility import is_feasible_core
from repro.model.partition import Partition
from repro.obs.runtime import OBS, add_span_time
from repro.types import EPS, ModelError, fits_unit_capacity

__all__ = [
    "candidate_level_matrix",
    "probe_core_utilization",
    "probe_feasible",
    "batch_candidate_matrices",
    "batch_probe",
    "batch_probe_feasible",
    "batch_probe_tasks",
    "batch_probe_feasible_tasks",
    "first_feasible_core",
    "first_finite_probe",
    "probe_implementation",
    "use_probe_implementation",
]

#: Active probe implementation: "batch" (vectorized, default) or "scalar".
#: A :class:`~contextvars.ContextVar`, not a module global: the selection
#: is isolated per thread and per asyncio task, so a benchmark thread
#: running scalar probes cannot flip a concurrent server handler (or the
#: admission daemon's coordinator) onto the wrong engine mid-decision.
_ACTIVE_IMPLEMENTATION: ContextVar[str] = ContextVar(
    "repro_probe_implementation", default="batch"
)


def probe_implementation() -> str:
    """The currently active probe implementation (``"batch"``/``"scalar"``)."""
    return _ACTIVE_IMPLEMENTATION.get()


@contextmanager
def use_probe_implementation(impl: str) -> Iterator[None]:
    """Select the probe implementation for the current context.

    The selection is scoped to the current thread/async task (it rides
    a :class:`~contextvars.ContextVar`), so concurrent contexts never
    observe each other's choice.
    """
    if impl not in ("batch", "scalar"):
        raise ModelError(f"unknown probe implementation {impl!r}")
    token = _ACTIVE_IMPLEMENTATION.set(impl)
    try:
        yield
    finally:
        _ACTIVE_IMPLEMENTATION.reset(token)


# ----------------------------------------------------------------------
# Instrumentation recorders (touched only when OBS.enabled)
# ----------------------------------------------------------------------
def _tagged(name: str) -> str:
    """Append the active scheme tag: ``theorem1.eq4_pass[ca-tpa]``."""
    scheme = OBS.scheme
    return f"{name}[{scheme}]" if scheme else name


def _record_utilization_probe(impl: str, new_utils: np.ndarray) -> None:
    """Count one Eq.-(15) probe evaluation and its infeasible cores."""
    reg = OBS.registry
    reg.counter(_tagged(f"probe.calls.{impl}")).inc()
    reg.counter("probe.cores_probed").inc(int(new_utils.size))
    reg.counter("probe.infeasible_cores").inc(
        int(np.count_nonzero(~np.isfinite(new_utils)))
    )


def _record_feasibility_stack(stack: np.ndarray, feasible: np.ndarray) -> None:
    """Attribute every core of a feasibility probe to its admission path.

    ``eq4_pass`` counts cores admitted by the Eq.-(4) trace test alone;
    ``admitted`` counts cores that failed Eq. (4) but passed the
    Theorem-1 chain, broken down by the first condition ``k`` of
    Ineq. (5) with non-negative available utilization;  ``rejected``
    counts cores that failed both.
    """
    reg = OBS.registry
    eq4 = fits_unit_capacity(np.trace(stack, axis1=1, axis2=2))
    reg.counter(_tagged("theorem1.eq4_pass")).inc(int(np.count_nonzero(eq4)))
    reg.counter(_tagged("theorem1.rejected")).inc(
        int(np.count_nonzero(~feasible))
    )
    admitted = feasible & ~eq4
    n_admitted = int(np.count_nonzero(admitted))
    reg.counter(_tagged("theorem1.admitted")).inc(n_admitted)
    if n_admitted:
        avail = _available_utilizations(stack[admitted])
        first = np.argmax(avail >= -EPS, axis=1)
        for k in np.unique(first):
            reg.counter(_tagged(f"theorem1.cond_pass.k{int(k) + 1}")).inc(
                int(np.count_nonzero(first == k))
            )


def _record_scalar_feasibility(mat: np.ndarray, feasible: bool) -> None:
    """Scalar twin of :func:`_record_feasibility_stack` (one core)."""
    reg = OBS.registry
    reg.counter(_tagged("probe.calls.scalar")).inc()
    reg.counter("probe.cores_probed").inc()
    eq4 = bool(fits_unit_capacity(float(np.trace(mat))))
    if eq4:
        reg.counter(_tagged("theorem1.eq4_pass")).inc()
    elif feasible:
        reg.counter(_tagged("theorem1.admitted")).inc()
        avail = available_utilizations(mat)
        k = int(np.argmax(avail >= -EPS))
        reg.counter(_tagged(f"theorem1.cond_pass.k{k + 1}")).inc()
    if not feasible:
        reg.counter(_tagged("theorem1.rejected")).inc()


# ----------------------------------------------------------------------
# Scalar path (one core at a time)
# ----------------------------------------------------------------------
def candidate_level_matrix(
    partition: Partition, core: int, task_index: int
) -> np.ndarray:
    """Level matrix of core ``core`` if ``task_index`` were added to it."""
    taskset = partition.taskset
    task = taskset[task_index]
    mat = partition.level_matrix(core).copy()
    crit = task.criticality
    mat[crit - 1, :crit] += taskset.utilization_matrix[task_index, :crit]
    return mat


def probe_core_utilization(
    partition: Partition, core: int, task_index: int, rule: str = "max"
) -> float:
    """Hypothetical new core utilization ``U^{Psi_m + tau_i}`` (Eq. (15)).

    ``inf`` (:data:`repro.types.INFEASIBLE`) when the enlarged subset
    fails Theorem 1, per Eq. (15a).  ``rule`` selects the Eq. (9)
    aggregation (see :func:`repro.analysis.core_utilization`).
    """
    if OBS.enabled:
        t0 = time.perf_counter()
        new_util = core_utilization(
            candidate_level_matrix(partition, core, task_index), rule=rule
        )
        add_span_time("probe", time.perf_counter() - t0)
        reg = OBS.registry
        reg.counter(_tagged("probe.calls.scalar")).inc()
        reg.counter("probe.cores_probed").inc()
        if not np.isfinite(new_util):
            reg.counter("probe.infeasible_cores").inc()
        return new_util
    return core_utilization(
        candidate_level_matrix(partition, core, task_index), rule=rule
    )


def probe_feasible(partition: Partition, core: int, task_index: int) -> bool:
    """Would the enlarged subset pass the Eq.(4)-or-Theorem-1 test?"""
    if OBS.enabled:
        t0 = time.perf_counter()
        mat = candidate_level_matrix(partition, core, task_index)
        feasible = is_feasible_core(mat)
        add_span_time("probe", time.perf_counter() - t0)
        _record_scalar_feasibility(mat, feasible)
        return feasible
    return is_feasible_core(candidate_level_matrix(partition, core, task_index))


# ----------------------------------------------------------------------
# Batch path (all cores at once)
# ----------------------------------------------------------------------
def batch_candidate_matrices(partition: Partition, task_index: int) -> np.ndarray:
    """The ``(M, K, K)`` stack of all candidate level matrices for a task.

    One broadcasted add builds every ``U^{Psi_m + tau_i}`` hypothesis at
    once instead of ``M`` per-core copies.
    """
    return partition.candidate_stack(task_index)


def batch_probe(
    partition: Partition, task_index: int, rule: str = "max"
) -> np.ndarray:
    """Eq.-(15) probe of ``task_index`` against *every* core: ``(M,)``.

    Entry ``m`` is the hypothetical ``U^{Psi_m + tau_i}`` (``inf`` where
    the enlarged subset is Theorem-1 infeasible, per Eq. (15a)).
    """
    if _ACTIVE_IMPLEMENTATION.get() == "scalar":
        # Counters accrue inside the scalar primitive, one per core.
        return np.array(
            [
                probe_core_utilization(partition, m, task_index, rule=rule)
                for m in range(partition.cores)
            ],
            dtype=np.float64,
        )
    if rule not in ("max", "min"):
        raise ModelError(f"unknown Eq. (9) rule {rule!r}; use 'max' or 'min'")
    if OBS.enabled:
        t0 = time.perf_counter()
        new_utils = _core_utilization_stack(
            partition.candidate_stack(task_index), rule
        )
        add_span_time("probe", time.perf_counter() - t0)
        _record_utilization_probe("batch", new_utils)
        return new_utils
    return _core_utilization_stack(partition.candidate_stack(task_index), rule)


def batch_probe_feasible(partition: Partition, task_index: int) -> np.ndarray:
    """Eq.(4)-or-Theorem-1 feasibility of the task on every core: ``(M,)``."""
    if _ACTIVE_IMPLEMENTATION.get() == "scalar":
        # Counters accrue inside the scalar primitive, one per core.
        return np.array(
            [
                probe_feasible(partition, m, task_index)
                for m in range(partition.cores)
            ],
            dtype=bool,
        )
    if OBS.enabled:
        t0 = time.perf_counter()
        stack = partition.candidate_stack(task_index)
        feasible = _is_feasible_stack(stack)
        add_span_time("probe", time.perf_counter() - t0)
        reg = OBS.registry
        reg.counter(_tagged("probe.calls.batch")).inc()
        reg.counter("probe.cores_probed").inc(int(feasible.size))
        _record_feasibility_stack(stack, feasible)
        return feasible
    return _is_feasible_stack(partition.candidate_stack(task_index))


# ----------------------------------------------------------------------
# Micro-batch path (several tasks x all cores, one kernel call)
# ----------------------------------------------------------------------
def batch_probe_tasks(
    partition: Partition, task_indices: Sequence[int], rule: str = "max"
) -> np.ndarray:
    """Eq.-(15) probes of several tasks against every core: ``(T, M)``.

    Row ``t`` is exactly :func:`batch_probe` of ``task_indices[t]`` (the
    ``(T*M, K, K)`` stack goes through the same kernel, so results are
    bit-identical) — but the whole micro-batch costs one NumPy pass.
    This is the admission daemon's flush primitive.
    """
    idx = np.asarray(task_indices, dtype=np.int64)
    cores = partition.cores
    if idx.size == 0:
        return np.empty((0, cores), dtype=np.float64)
    if _ACTIVE_IMPLEMENTATION.get() == "scalar":
        return np.stack([batch_probe(partition, int(i), rule=rule) for i in idx])
    if rule not in ("max", "min"):
        raise ModelError(f"unknown Eq. (9) rule {rule!r}; use 'max' or 'min'")
    if OBS.enabled:
        t0 = time.perf_counter()
        stacks = partition.candidate_stacks(idx)
        flat = _core_utilization_stack(stacks.reshape((-1,) + stacks.shape[2:]), rule)
        new_utils = flat.reshape(idx.size, cores)
        add_span_time("probe", time.perf_counter() - t0)
        reg = OBS.registry
        reg.counter(_tagged("probe.calls.batch")).inc(int(idx.size))
        reg.counter("probe.cores_probed").inc(int(new_utils.size))
        reg.counter("probe.infeasible_cores").inc(
            int(np.count_nonzero(~np.isfinite(new_utils)))
        )
        return new_utils
    stacks = partition.candidate_stacks(idx)
    flat = _core_utilization_stack(stacks.reshape((-1,) + stacks.shape[2:]), rule)
    return flat.reshape(idx.size, cores)


def batch_probe_feasible_tasks(
    partition: Partition, task_indices: Sequence[int]
) -> np.ndarray:
    """Feasibility of several tasks on every core: boolean ``(T, M)``.

    Row ``t`` equals :func:`batch_probe_feasible` of ``task_indices[t]``
    bit-for-bit; the batch path evaluates the whole micro-batch with one
    stacked kernel call.
    """
    idx = np.asarray(task_indices, dtype=np.int64)
    cores = partition.cores
    if idx.size == 0:
        return np.empty((0, cores), dtype=bool)
    if _ACTIVE_IMPLEMENTATION.get() == "scalar":
        return np.stack([batch_probe_feasible(partition, int(i)) for i in idx])
    if OBS.enabled:
        t0 = time.perf_counter()
        stacks = partition.candidate_stacks(idx)
        flat_stack = stacks.reshape((-1,) + stacks.shape[2:])
        flat = _is_feasible_stack(flat_stack)
        feasible = flat.reshape(idx.size, cores)
        add_span_time("probe", time.perf_counter() - t0)
        reg = OBS.registry
        reg.counter(_tagged("probe.calls.batch")).inc(int(idx.size))
        reg.counter("probe.cores_probed").inc(int(feasible.size))
        _record_feasibility_stack(flat_stack, flat)
        return feasible
    stacks = partition.candidate_stacks(idx)
    flat = _is_feasible_stack(stacks.reshape((-1,) + stacks.shape[2:]))
    return flat.reshape(idx.size, cores)


# ----------------------------------------------------------------------
# Preference-order scans shared by the heuristics
# ----------------------------------------------------------------------
def first_feasible_core(
    partition: Partition,
    task_index: int,
    core_order: Iterable[int] | None = None,
) -> int | None:
    """First core in ``core_order`` on which the task is feasible.

    The batch path evaluates all cores in one pass and scans the result;
    the scalar path probes lazily in preference order (the historical
    behaviour of FFD-like schemes).  ``None`` when no core fits.
    """
    if core_order is None:
        core_order = range(partition.cores)
    if _ACTIVE_IMPLEMENTATION.get() == "scalar":
        for m in core_order:
            if probe_feasible(partition, int(m), task_index):
                return int(m)
        return None
    feasible = batch_probe_feasible(partition, task_index)
    for m in core_order:
        if feasible[int(m)]:
            return int(m)
    return None


def first_finite_probe(
    partition: Partition,
    task_index: int,
    core_order: Iterable[int],
    rule: str = "max",
) -> tuple[int | None, float]:
    """First core in ``core_order`` with a finite Eq.-(15) probe.

    Returns ``(core, new_utilization)``, or ``(None, inf)`` when the task
    fits nowhere.  Used by the min-utilization override and the ablation
    fit rules, which pick by preference order rather than by increment.
    """
    if _ACTIVE_IMPLEMENTATION.get() == "scalar":
        for m in core_order:
            new_util = probe_core_utilization(
                partition, int(m), task_index, rule=rule
            )
            if np.isfinite(new_util):
                return int(m), new_util
        return None, np.inf
    new_utils = batch_probe(partition, task_index, rule=rule)
    for m in core_order:
        if np.isfinite(new_utils[int(m)]):
            return int(m), float(new_utils[int(m)])
    return None, np.inf
