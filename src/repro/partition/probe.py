"""Shared probing helpers: "what if task i joined core m?".

Probes never mutate the partition; they build the hypothetical level
matrix ``U_j^{Psi_m + tau_i}(k)`` by adding the task's utilization row to
the core's cached matrix and evaluate the schedulability machinery on it.

Two implementations coexist:

* the **batch** path (default) builds all ``M`` candidate matrices in one
  broadcasted ``(M, K, K)`` stack and evaluates them with
  :mod:`repro.analysis.batch` in a single NumPy pass;
* the **scalar** path evaluates one ``(K, K)`` matrix per core with
  :mod:`repro.analysis.edfvd`, probing lazily in preference order where
  the heuristics historically did.

Both produce bit-identical placement decisions (pinned by the test
suite); :func:`use_probe_implementation` switches between them, which the
``benchmarks/test_bench_probe_speed.py`` throughput benchmark uses to
measure the speedup of the batch engine.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator

import numpy as np

from repro.analysis.batch import (
    _core_utilization_stack,
    _is_feasible_stack,
)
from repro.analysis.edfvd import core_utilization
from repro.analysis.feasibility import is_feasible_core
from repro.model.partition import Partition
from repro.types import ModelError

__all__ = [
    "candidate_level_matrix",
    "probe_core_utilization",
    "probe_feasible",
    "batch_candidate_matrices",
    "batch_probe",
    "batch_probe_feasible",
    "first_feasible_core",
    "first_finite_probe",
    "probe_implementation",
    "use_probe_implementation",
]

#: Active probe implementation: "batch" (vectorized, default) or "scalar".
_ACTIVE_IMPLEMENTATION = "batch"


def probe_implementation() -> str:
    """The currently active probe implementation (``"batch"``/``"scalar"``)."""
    return _ACTIVE_IMPLEMENTATION


@contextmanager
def use_probe_implementation(impl: str) -> Iterator[None]:
    """Temporarily select the probe implementation (benchmarks/tests)."""
    global _ACTIVE_IMPLEMENTATION
    if impl not in ("batch", "scalar"):
        raise ModelError(f"unknown probe implementation {impl!r}")
    previous = _ACTIVE_IMPLEMENTATION
    _ACTIVE_IMPLEMENTATION = impl
    try:
        yield
    finally:
        _ACTIVE_IMPLEMENTATION = previous


# ----------------------------------------------------------------------
# Scalar path (one core at a time)
# ----------------------------------------------------------------------
def candidate_level_matrix(
    partition: Partition, core: int, task_index: int
) -> np.ndarray:
    """Level matrix of core ``core`` if ``task_index`` were added to it."""
    taskset = partition.taskset
    task = taskset[task_index]
    mat = partition.level_matrix(core).copy()
    crit = task.criticality
    mat[crit - 1, :crit] += taskset.utilization_matrix[task_index, :crit]
    return mat


def probe_core_utilization(
    partition: Partition, core: int, task_index: int, rule: str = "max"
) -> float:
    """Hypothetical new core utilization ``U^{Psi_m + tau_i}`` (Eq. (15)).

    ``inf`` (:data:`repro.types.INFEASIBLE`) when the enlarged subset
    fails Theorem 1, per Eq. (15a).  ``rule`` selects the Eq. (9)
    aggregation (see :func:`repro.analysis.core_utilization`).
    """
    return core_utilization(
        candidate_level_matrix(partition, core, task_index), rule=rule
    )


def probe_feasible(partition: Partition, core: int, task_index: int) -> bool:
    """Would the enlarged subset pass the Eq.(4)-or-Theorem-1 test?"""
    return is_feasible_core(candidate_level_matrix(partition, core, task_index))


# ----------------------------------------------------------------------
# Batch path (all cores at once)
# ----------------------------------------------------------------------
def batch_candidate_matrices(partition: Partition, task_index: int) -> np.ndarray:
    """The ``(M, K, K)`` stack of all candidate level matrices for a task.

    One broadcasted add builds every ``U^{Psi_m + tau_i}`` hypothesis at
    once instead of ``M`` per-core copies.
    """
    return partition.candidate_stack(task_index)


def batch_probe(
    partition: Partition, task_index: int, rule: str = "max"
) -> np.ndarray:
    """Eq.-(15) probe of ``task_index`` against *every* core: ``(M,)``.

    Entry ``m`` is the hypothetical ``U^{Psi_m + tau_i}`` (``inf`` where
    the enlarged subset is Theorem-1 infeasible, per Eq. (15a)).
    """
    if _ACTIVE_IMPLEMENTATION == "scalar":
        return np.array(
            [
                probe_core_utilization(partition, m, task_index, rule=rule)
                for m in range(partition.cores)
            ],
            dtype=np.float64,
        )
    if rule not in ("max", "min"):
        raise ModelError(f"unknown Eq. (9) rule {rule!r}; use 'max' or 'min'")
    return _core_utilization_stack(partition.candidate_stack(task_index), rule)


def batch_probe_feasible(partition: Partition, task_index: int) -> np.ndarray:
    """Eq.(4)-or-Theorem-1 feasibility of the task on every core: ``(M,)``."""
    if _ACTIVE_IMPLEMENTATION == "scalar":
        return np.array(
            [
                probe_feasible(partition, m, task_index)
                for m in range(partition.cores)
            ],
            dtype=bool,
        )
    return _is_feasible_stack(partition.candidate_stack(task_index))


# ----------------------------------------------------------------------
# Preference-order scans shared by the heuristics
# ----------------------------------------------------------------------
def first_feasible_core(
    partition: Partition,
    task_index: int,
    core_order: Iterable[int] | None = None,
) -> int | None:
    """First core in ``core_order`` on which the task is feasible.

    The batch path evaluates all cores in one pass and scans the result;
    the scalar path probes lazily in preference order (the historical
    behaviour of FFD-like schemes).  ``None`` when no core fits.
    """
    if core_order is None:
        core_order = range(partition.cores)
    if _ACTIVE_IMPLEMENTATION == "scalar":
        for m in core_order:
            if probe_feasible(partition, int(m), task_index):
                return int(m)
        return None
    feasible = batch_probe_feasible(partition, task_index)
    for m in core_order:
        if feasible[int(m)]:
            return int(m)
    return None


def first_finite_probe(
    partition: Partition,
    task_index: int,
    core_order: Iterable[int],
    rule: str = "max",
) -> tuple[int | None, float]:
    """First core in ``core_order`` with a finite Eq.-(15) probe.

    Returns ``(core, new_utilization)``, or ``(None, inf)`` when the task
    fits nowhere.  Used by the min-utilization override and the ablation
    fit rules, which pick by preference order rather than by increment.
    """
    if _ACTIVE_IMPLEMENTATION == "scalar":
        for m in core_order:
            new_util = probe_core_utilization(
                partition, int(m), task_index, rule=rule
            )
            if np.isfinite(new_util):
                return int(m), new_util
        return None, np.inf
    new_utils = batch_probe(partition, task_index, rule=rule)
    for m in core_order:
        if np.isfinite(new_utils[int(m)]):
            return int(m), float(new_utils[int(m)])
    return None, np.inf
