"""The Hybrid partitioning scheme of Rodriguez et al. (WMC 2013).

High-criticality tasks are spread out with WFD (so that each core keeps
headroom for their mode-switch overloads), then low-criticality tasks
are packed with FFD.  The cited scheme is defined for dual-criticality
systems; for ``K > 2`` we generalize with a configurable criticality
threshold (DESIGN.md "Substitutions"): tasks with ``l_i >=
high_threshold`` form the high group.  Both phases sort by decreasing
maximum utilization ``u_i(l_i)`` and use the paper's two-step
feasibility check.
"""

from __future__ import annotations

import numpy as np

from repro.model.partition import Partition
from repro.model.taskset import MCTaskSet
from repro.partition.base import Partitioner
from repro.partition.probe import first_feasible_core
from repro.types import PartitionError

__all__ = ["HybridPartitioner"]


class HybridPartitioner(Partitioner):
    """WFD for high-criticality tasks, then FFD for low-criticality ones."""

    name = "hybrid"

    def __init__(self, high_threshold: int = 2):
        if high_threshold < 1:
            raise PartitionError(
                f"high_threshold must be >= 1, got {high_threshold}"
            )
        self.high_threshold = high_threshold

    def order_tasks(self, taskset: MCTaskSet) -> list[int]:
        umax = np.array([t.max_utilization for t in taskset])
        crit = taskset.criticalities
        high = crit >= self.high_threshold
        # Primary key: high group first.  Secondary: decreasing umax.
        # Final tie: lower index (lexsort stability).
        return np.lexsort((-umax, ~high)).tolist()

    def select_core(
        self, task_index: int, partition: Partition, state: dict
    ) -> int | None:
        loads = state.get("loads")
        if loads is None:
            loads = np.zeros(partition.cores, dtype=np.float64)
            state["loads"] = loads
        task = partition.taskset[task_index]
        if task.criticality >= self.high_threshold:
            core_order = np.argsort(loads, kind="stable")  # WFD
        else:
            core_order = np.arange(partition.cores)  # FFD
        target = first_feasible_core(partition, task_index, core_order)
        if target is not None:
            loads[target] += task.max_utilization
        return target
