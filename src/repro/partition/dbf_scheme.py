"""DBF-based partitioned MC scheduling (extension; cf. Gu et al., DATE'14).

The paper positions CA-TPA against the partitioning scheme "that
exploits the DBF-based schedulability test (with a much higher
complexity)".  This module provides that comparator for dual-criticality
systems: first-fit over decreasing maximum utilization, but each
(core, task) probe runs the Ekberg-Yi demand-bound analysis with
per-task virtual-deadline tuning (:mod:`repro.analysis.dbf`) instead of
the utilization-based Theorem 1.

For ``K != 2`` the DBF analysis does not apply and the scheme falls back
to the standard Theorem-1 probe, making it usable inside generic sweeps.
"""

from __future__ import annotations

from repro.analysis.dbf import tune_virtual_deadlines
from repro.model.partition import Partition
from repro.model.taskset import MCTaskSet
from repro.partition import ordering
from repro.partition.base import Partitioner
from repro.partition.probe import first_feasible_core

__all__ = ["DBFFirstFit"]


class DBFFirstFit(Partitioner):
    """First-fit decreasing with the DBF feasibility test per core."""

    name = "dbf-ffd"

    def __init__(self, max_iterations: int = 200):
        self.max_iterations = max_iterations

    def order_tasks(self, taskset: MCTaskSet) -> list[int]:
        return ordering.by_max_utilization(taskset)

    def select_core(
        self, task_index: int, partition: Partition, state: dict
    ) -> int | None:
        if partition.taskset.levels != 2:
            return first_feasible_core(partition, task_index)
        for m in range(partition.cores):
            candidate = partition.tasks_on(m) + [task_index]
            subset = partition.taskset.subset(candidate)
            if tune_virtual_deadlines(subset, self.max_iterations) is not None:
                return m
        return None

    def core_plans(self, partition: Partition):
        """Per-core :class:`DualPerTaskPlan` for a finished partition
        (``None`` entries for empty cores).  Only valid for ``K = 2``."""
        plans = []
        for m in range(partition.cores):
            idx = partition.tasks_on(m)
            if not idx:
                plans.append(None)
                continue
            subset = partition.taskset.subset(idx)
            plans.append(tune_virtual_deadlines(subset, self.max_iterations))
        return plans
