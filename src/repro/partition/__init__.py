"""Task-to-core partitioning heuristics (CA-TPA and baselines)."""

from repro.partition.ablation import CATPAVariant
from repro.partition.base import Partitioner, PartitionResult
from repro.partition.catpa import CATPA
from repro.partition.classical import (
    BestFitDecreasing,
    FirstFitDecreasing,
    WorstFitDecreasing,
)
from repro.partition.dbf_scheme import DBFFirstFit
from repro.partition.fp_schemes import FPPartitioner
from repro.partition.hybrid import HybridPartitioner
from repro.partition.registry import (
    PAPER_SCHEMES,
    available_schemes,
    get_partitioner,
    register,
)

__all__ = [
    "BestFitDecreasing",
    "CATPA",
    "CATPAVariant",
    "DBFFirstFit",
    "FPPartitioner",
    "FirstFitDecreasing",
    "HybridPartitioner",
    "PAPER_SCHEMES",
    "Partitioner",
    "PartitionResult",
    "WorstFitDecreasing",
    "available_schemes",
    "get_partitioner",
    "register",
]
