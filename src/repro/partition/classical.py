"""Classical bin-packing heuristics: FFD, BFD, WFD.

All three sort tasks by decreasing maximum utilization ``u_i(l_i)`` and
differ only in how they pick among the feasible cores:

* **FFD** — the first (lowest-index) feasible core;
* **BFD** — the feasible core with the *highest* current load (tightest
  fit);
* **WFD** — the feasible core with the *lowest* current load (most
  spare room).

"Load" is the Eq. (4) figure ``sum_k U_k^{Psi_m}(k)`` — the sum of the
assigned tasks' maximum utilizations — which is what these heuristics
classically pack on.  Feasibility of a (core, task) pair is the paper's
two-step check: Eq. (4) first, then Theorem 1
(:func:`repro.analysis.is_feasible_core`).
"""

from __future__ import annotations

import numpy as np

from repro.model.partition import Partition
from repro.model.taskset import MCTaskSet
from repro.partition import ordering
from repro.partition.base import Partitioner
from repro.partition.probe import first_feasible_core

__all__ = ["FirstFitDecreasing", "BestFitDecreasing", "WorstFitDecreasing"]


class _ClassicalDecreasing(Partitioner):
    """Shared machinery for the utilization-sorted classical heuristics."""

    def order_tasks(self, taskset: MCTaskSet) -> list[int]:
        return ordering.by_max_utilization(taskset)

    def select_core(
        self, task_index: int, partition: Partition, state: dict
    ) -> int | None:
        loads = state.get("loads")
        if loads is None:
            loads = np.zeros(partition.cores, dtype=np.float64)
            state["loads"] = loads
        target = self._pick(task_index, partition, loads)
        if target is not None:
            loads[target] += partition.taskset[task_index].max_utilization
        return target

    def _pick(
        self, task_index: int, partition: Partition, loads: np.ndarray
    ) -> int | None:
        raise NotImplementedError

    def _feasible_in_preference_order(
        self, task_index: int, partition: Partition, core_order
    ) -> int | None:
        return first_feasible_core(partition, task_index, core_order)


class FirstFitDecreasing(_ClassicalDecreasing):
    """FFD: lowest-index feasible core."""

    name = "ffd"

    def _pick(self, task_index, partition, loads):
        return self._feasible_in_preference_order(
            task_index, partition, range(partition.cores)
        )


class BestFitDecreasing(_ClassicalDecreasing):
    """BFD: feasible core with the highest current load (tightest fit).

    Ties go to the lowest core index (stable sort on descending load).
    """

    name = "bfd"

    def _pick(self, task_index, partition, loads):
        order = np.argsort(-loads, kind="stable")
        return self._feasible_in_preference_order(task_index, partition, order)


class WorstFitDecreasing(_ClassicalDecreasing):
    """WFD: feasible core with the lowest current load (most spare room).

    Ties go to the lowest core index.
    """

    name = "wfd"

    def _pick(self, task_index, partition, loads):
        order = np.argsort(loads, kind="stable")
        return self._feasible_in_preference_order(task_index, partition, order)
