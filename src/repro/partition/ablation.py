"""Ablation variants of CA-TPA (DESIGN.md §5).

Each variant changes exactly one design decision of CA-TPA so the
ablation benches can attribute the scheme's advantage:

* ordering rule — utilization contribution (paper) vs decreasing
  maximum utilization vs criticality-first vs random;
* core-selection rule — minimum utilization increment (paper) vs
  first-fit / best-fit / worst-fit on the Eq.-(9) core utilization;
* imbalance override — enabled (paper) vs disabled.
"""

from __future__ import annotations

import numpy as np

from repro.model.partition import Partition
from repro.model.taskset import MCTaskSet
from repro.partition import ordering
from repro.partition.catpa import CATPA
from repro.partition.probe import first_finite_probe
from repro.types import PartitionError

__all__ = ["CATPAVariant", "ORDERINGS", "SELECTIONS"]

ORDERINGS = {
    "contribution": ordering.by_contribution,
    "max-utilization": ordering.by_max_utilization,
    "criticality": ordering.by_criticality_then_utilization,
}

SELECTIONS = ("min-increment", "first-fit", "best-fit", "worst-fit")


class CATPAVariant(CATPA):
    """CA-TPA with swappable ordering / selection / imbalance pieces.

    Parameters
    ----------
    order:
        One of :data:`ORDERINGS` (or ``"random"`` with ``rng``).
    selection:
        One of :data:`SELECTIONS`.  All selections only consider cores on
        which the task is Theorem-1 feasible:

        - ``min-increment`` — the paper's rule (minimum Eq.-(14) delta);
        - ``first-fit`` — lowest-index feasible core;
        - ``best-fit`` — feasible core with the highest current Eq.-(9)
          utilization;
        - ``worst-fit`` — feasible core with the lowest current Eq.-(9)
          utilization.
    alpha:
        Imbalance threshold; ``None`` disables the override.
    rng:
        Random generator, required when ``order == "random"``.
    """

    def __init__(
        self,
        order: str = "contribution",
        selection: str = "min-increment",
        alpha: float | None = 0.7,
        eq9_rule: str = "max",
        rng: np.random.Generator | None = None,
    ):
        super().__init__(alpha=alpha, eq9_rule=eq9_rule)
        if order != "random" and order not in ORDERINGS:
            raise PartitionError(f"unknown ordering {order!r}")
        if order == "random" and rng is None:
            raise PartitionError("random ordering requires an rng")
        if selection not in SELECTIONS:
            raise PartitionError(f"unknown selection {selection!r}")
        self.order = order
        self.selection = selection
        self.rng = rng
        self.name = f"ca-tpa[{order}/{selection}" + (
            "/no-imbalance]" if alpha is None else f"/a={alpha:g}]"
        )

    def order_tasks(self, taskset: MCTaskSet) -> list[int]:
        if self.order == "random":
            return ordering.randomized(taskset, self.rng)
        return ORDERINGS[self.order](taskset)

    def _min_increment_core(
        self, task_index: int, partition: Partition, utils: np.ndarray
    ) -> tuple[int | None, float]:
        if self.selection == "min-increment":
            return super()._min_increment_core(task_index, partition, utils)
        if self.selection == "first-fit":
            core_order = range(partition.cores)
        elif self.selection == "best-fit":
            core_order = np.argsort(-utils, kind="stable")
        else:  # worst-fit
            core_order = np.argsort(utils, kind="stable")
        return first_finite_probe(
            partition, task_index, core_order, rule=self.eq9_rule
        )
