"""Pluggable probe backends: scalar, batch, and incremental Δ-state.

The probing question of Algorithm 1 — "what would ``U^{Psi_m + tau_i}``
be if task ``i`` joined core ``m``?" — admits three evaluation
strategies with bit-identical answers:

* :class:`ScalarBackend` evaluates one ``(K, K)`` matrix per core with
  :mod:`repro.analysis.edfvd`, probing lazily in preference order where
  the heuristics historically did;
* :class:`BatchBackend` builds all ``M`` candidate matrices in one
  broadcasted ``(M, K, K)`` stack and evaluates them with
  :mod:`repro.analysis.batch` in a single NumPy pass;
* :class:`IncrementalBackend` caches evaluated probe rows on the
  partition (:attr:`repro.model.partition.Partition.probe_state`) next
  to the per-core version counters and, on re-probe, recomputes **only**
  the (task, core) hypotheses whose core was mutated since — every stale
  pair of a whole micro-batch goes through one flat kernel call
  (:meth:`Partition.candidate_pairs_stack`).

Bit-identity of the incremental path rests on a structural property of
the batch kernels (:func:`~repro.analysis.batch._core_utilization_stack`
and :func:`~repro.analysis.batch._is_feasible_stack`): they are per-row
independent — rows interact only through masked writes and an early
``break`` taken when *all* rows are dead, at which point every
remaining entry is ``nan``-final anyway.  Evaluating any sub-stack of
candidate matrices therefore reproduces the matching rows of the full
stack bit for bit, so serving the unchanged columns from cache cannot
move a placement decision.  The validate campaign pins
scalar == batch == incremental end to end.

Backends are selected *by name* through the registry below; the
contextvar that holds the active name (and the public module-level
probe functions the schemes call) lives in :mod:`repro.partition.probe`.
Unknown names raise :class:`repro.types.ModelError` (a
:class:`~repro.types.ReproError`), never a bare ``KeyError``.

Instrumentation mirrors the historical probe counters
(``probe.calls.<impl>``, ``probe.cores_probed``, theorem-1 admission
attribution) with one incremental-specific nuance: ``probe.cores_probed``
counts only *freshly evaluated* hypotheses (the kernel work actually
done) and the columns served from cache accrue under
``probe.cache_hits.incremental``; the ``theorem1.*`` admission-path
attribution is likewise recorded for fresh evaluations only, because a
cached column no longer has its candidate matrix at hand.
"""

from __future__ import annotations

import abc
import time
from typing import Iterable, Sequence

import numpy as np

from repro.analysis.batch import (
    _available_utilizations,
    _core_utilization_stack,
    _is_feasible_stack,
)
from repro.analysis.edfvd import available_utilizations, core_utilization
from repro.analysis.feasibility import is_feasible_core
from repro.model.partition import Partition
from repro.obs.runtime import OBS, add_span_time
from repro.types import EPS, ModelError, fits_unit_capacity

__all__ = [
    "ProbeBackend",
    "ScalarBackend",
    "BatchBackend",
    "IncrementalBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "candidate_level_matrix",
    "probe_core_utilization",
    "probe_feasible",
]


def _check_rule(rule: str) -> None:
    if rule not in ("max", "min"):
        raise ModelError(f"unknown Eq. (9) rule {rule!r}; use 'max' or 'min'")


# ----------------------------------------------------------------------
# Instrumentation recorders (touched only when OBS.enabled)
# ----------------------------------------------------------------------
def _tagged(name: str) -> str:
    """Append the active scheme tag: ``theorem1.eq4_pass[ca-tpa]``."""
    scheme = OBS.scheme
    return f"{name}[{scheme}]" if scheme else name


def _record_utilization_probe(impl: str, new_utils: np.ndarray) -> None:
    """Count one Eq.-(15) probe evaluation and its infeasible cores."""
    reg = OBS.registry
    reg.counter(_tagged(f"probe.calls.{impl}")).inc()
    reg.counter("probe.cores_probed").inc(int(new_utils.size))
    reg.counter("probe.infeasible_cores").inc(
        int(np.count_nonzero(~np.isfinite(new_utils)))
    )


def _record_feasibility_stack(stack: np.ndarray, feasible: np.ndarray) -> None:
    """Attribute every core of a feasibility probe to its admission path.

    ``eq4_pass`` counts cores admitted by the Eq.-(4) trace test alone;
    ``admitted`` counts cores that failed Eq. (4) but passed the
    Theorem-1 chain, broken down by the first condition ``k`` of
    Ineq. (5) with non-negative available utilization;  ``rejected``
    counts cores that failed both.
    """
    reg = OBS.registry
    eq4 = fits_unit_capacity(np.trace(stack, axis1=1, axis2=2))
    reg.counter(_tagged("theorem1.eq4_pass")).inc(int(np.count_nonzero(eq4)))
    reg.counter(_tagged("theorem1.rejected")).inc(
        int(np.count_nonzero(~feasible))
    )
    admitted = feasible & ~eq4
    n_admitted = int(np.count_nonzero(admitted))
    reg.counter(_tagged("theorem1.admitted")).inc(n_admitted)
    if n_admitted:
        avail = _available_utilizations(stack[admitted])
        first = np.argmax(avail >= -EPS, axis=1)
        for k in np.unique(first):
            reg.counter(_tagged(f"theorem1.cond_pass.k{int(k) + 1}")).inc(
                int(np.count_nonzero(first == k))
            )


def _record_scalar_feasibility(mat: np.ndarray, feasible: bool) -> None:
    """Scalar twin of :func:`_record_feasibility_stack` (one core)."""
    reg = OBS.registry
    reg.counter(_tagged("probe.calls.scalar")).inc()
    reg.counter("probe.cores_probed").inc()
    eq4 = bool(fits_unit_capacity(float(np.trace(mat))))
    if eq4:
        reg.counter(_tagged("theorem1.eq4_pass")).inc()
    elif feasible:
        reg.counter(_tagged("theorem1.admitted")).inc()
        avail = available_utilizations(mat)
        k = int(np.argmax(avail >= -EPS))
        reg.counter(_tagged(f"theorem1.cond_pass.k{k + 1}")).inc()
    if not feasible:
        reg.counter(_tagged("theorem1.rejected")).inc()


def _record_incremental(
    values: np.ndarray, n_calls: int, n_fresh: int
) -> None:
    """Count an incremental probe: fresh kernel work vs cached columns."""
    reg = OBS.registry
    reg.counter(_tagged("probe.calls.incremental")).inc(int(n_calls))
    reg.counter("probe.cores_probed").inc(int(n_fresh))
    reg.counter("probe.cache_hits.incremental").inc(
        int(values.size - n_fresh)
    )


# ----------------------------------------------------------------------
# Scalar primitives (one core at a time) — shared with repro.partition.probe
# ----------------------------------------------------------------------
def candidate_level_matrix(
    partition: Partition, core: int, task_index: int
) -> np.ndarray:
    """Level matrix of core ``core`` if ``task_index`` were added to it."""
    taskset = partition.taskset
    task = taskset[task_index]
    mat = partition.level_matrix(core).copy()
    crit = task.criticality
    mat[crit - 1, :crit] += taskset.utilization_matrix[task_index, :crit]
    return mat


def probe_core_utilization(
    partition: Partition, core: int, task_index: int, rule: str = "max"
) -> float:
    """Hypothetical new core utilization ``U^{Psi_m + tau_i}`` (Eq. (15)).

    ``inf`` (:data:`repro.types.INFEASIBLE`) when the enlarged subset
    fails Theorem 1, per Eq. (15a).  ``rule`` selects the Eq. (9)
    aggregation (see :func:`repro.analysis.core_utilization`).
    """
    if OBS.enabled:
        t0 = time.perf_counter()
        new_util = core_utilization(
            candidate_level_matrix(partition, core, task_index), rule=rule
        )
        add_span_time("probe", time.perf_counter() - t0)
        reg = OBS.registry
        reg.counter(_tagged("probe.calls.scalar")).inc()
        reg.counter("probe.cores_probed").inc()
        if not np.isfinite(new_util):
            reg.counter("probe.infeasible_cores").inc()
        return new_util
    return core_utilization(
        candidate_level_matrix(partition, core, task_index), rule=rule
    )


def probe_feasible(partition: Partition, core: int, task_index: int) -> bool:
    """Would the enlarged subset pass the Eq.(4)-or-Theorem-1 test?"""
    if OBS.enabled:
        t0 = time.perf_counter()
        mat = candidate_level_matrix(partition, core, task_index)
        feasible = is_feasible_core(mat)
        add_span_time("probe", time.perf_counter() - t0)
        _record_scalar_feasibility(mat, feasible)
        return feasible
    return is_feasible_core(candidate_level_matrix(partition, core, task_index))


# ----------------------------------------------------------------------
# The backend protocol
# ----------------------------------------------------------------------
class ProbeBackend(abc.ABC):
    """One strategy for answering every probe the heuristics can ask.

    Implementations must be bit-identical to each other for every
    method: the schemes (and the admission daemon) switch backends
    without changing a single placement decision.  The four abstract
    methods are the evaluation primitives; the two preference-order
    scans have a shared full-row default that lazy backends may
    override.
    """

    #: Registry name; also the value of the ``--probe-impl`` flag.
    name: str = ""

    @abc.abstractmethod
    def probe(
        self, partition: Partition, task_index: int, rule: str = "max"
    ) -> np.ndarray:
        """Eq.-(15) probe of one task against every core: ``(M,)`` floats."""

    @abc.abstractmethod
    def probe_feasible(
        self, partition: Partition, task_index: int
    ) -> np.ndarray:
        """Eq.(4)-or-Theorem-1 feasibility on every core: ``(M,)`` bools."""

    @abc.abstractmethod
    def probe_tasks(
        self,
        partition: Partition,
        task_indices: Sequence[int],
        rule: str = "max",
    ) -> np.ndarray:
        """Eq.-(15) probes of several tasks against every core: ``(T, M)``."""

    @abc.abstractmethod
    def probe_feasible_tasks(
        self, partition: Partition, task_indices: Sequence[int]
    ) -> np.ndarray:
        """Feasibility of several tasks on every core: boolean ``(T, M)``."""

    def first_feasible_core(
        self,
        partition: Partition,
        task_index: int,
        core_order: Iterable[int] | None = None,
    ) -> int | None:
        """First core in ``core_order`` on which the task is feasible."""
        if core_order is None:
            core_order = range(partition.cores)
        feasible = self.probe_feasible(partition, task_index)
        for m in core_order:
            if feasible[int(m)]:
                return int(m)
        return None

    def first_finite_probe(
        self,
        partition: Partition,
        task_index: int,
        core_order: Iterable[int],
        rule: str = "max",
    ) -> tuple[int | None, float]:
        """First core in ``core_order`` with a finite Eq.-(15) probe."""
        new_utils = self.probe(partition, task_index, rule=rule)
        for m in core_order:
            if np.isfinite(new_utils[int(m)]):
                return int(m), float(new_utils[int(m)])
        return None, np.inf


# ----------------------------------------------------------------------
# Scalar backend: one (K, K) matrix per core, lazy preference order
# ----------------------------------------------------------------------
class ScalarBackend(ProbeBackend):
    """Per-core scalar evaluation via :mod:`repro.analysis.edfvd`."""

    name = "scalar"

    def probe(
        self, partition: Partition, task_index: int, rule: str = "max"
    ) -> np.ndarray:
        # Counters accrue inside the scalar primitive, one per core.
        return np.array(
            [
                probe_core_utilization(partition, m, task_index, rule=rule)
                for m in range(partition.cores)
            ],
            dtype=np.float64,
        )

    def probe_feasible(
        self, partition: Partition, task_index: int
    ) -> np.ndarray:
        return np.array(
            [
                probe_feasible(partition, m, task_index)
                for m in range(partition.cores)
            ],
            dtype=bool,
        )

    def probe_tasks(
        self,
        partition: Partition,
        task_indices: Sequence[int],
        rule: str = "max",
    ) -> np.ndarray:
        idx = np.asarray(task_indices, dtype=np.int64)
        if idx.size == 0:
            return np.empty((0, partition.cores), dtype=np.float64)
        return np.stack(
            [self.probe(partition, int(i), rule=rule) for i in idx]
        )

    def probe_feasible_tasks(
        self, partition: Partition, task_indices: Sequence[int]
    ) -> np.ndarray:
        idx = np.asarray(task_indices, dtype=np.int64)
        if idx.size == 0:
            return np.empty((0, partition.cores), dtype=bool)
        return np.stack([self.probe_feasible(partition, int(i)) for i in idx])

    def first_feasible_core(
        self,
        partition: Partition,
        task_index: int,
        core_order: Iterable[int] | None = None,
    ) -> int | None:
        # Lazy preference-order probing: the historical behaviour of the
        # FFD-like schemes (stop at the first feasible core).
        if core_order is None:
            core_order = range(partition.cores)
        for m in core_order:
            if probe_feasible(partition, int(m), task_index):
                return int(m)
        return None

    def first_finite_probe(
        self,
        partition: Partition,
        task_index: int,
        core_order: Iterable[int],
        rule: str = "max",
    ) -> tuple[int | None, float]:
        for m in core_order:
            new_util = probe_core_utilization(
                partition, int(m), task_index, rule=rule
            )
            if np.isfinite(new_util):
                return int(m), new_util
        return None, np.inf


# ----------------------------------------------------------------------
# Batch backend: all cores at once, one NumPy pass
# ----------------------------------------------------------------------
class BatchBackend(ProbeBackend):
    """Stacked ``(M, K, K)`` evaluation via :mod:`repro.analysis.batch`."""

    name = "batch"

    def probe(
        self, partition: Partition, task_index: int, rule: str = "max"
    ) -> np.ndarray:
        _check_rule(rule)
        if OBS.enabled:
            t0 = time.perf_counter()
            new_utils = _core_utilization_stack(
                partition.candidate_stack(task_index), rule
            )
            add_span_time("probe", time.perf_counter() - t0)
            _record_utilization_probe("batch", new_utils)
            return new_utils
        return _core_utilization_stack(partition.candidate_stack(task_index), rule)

    def probe_feasible(
        self, partition: Partition, task_index: int
    ) -> np.ndarray:
        if OBS.enabled:
            t0 = time.perf_counter()
            stack = partition.candidate_stack(task_index)
            feasible = _is_feasible_stack(stack)
            add_span_time("probe", time.perf_counter() - t0)
            reg = OBS.registry
            reg.counter(_tagged("probe.calls.batch")).inc()
            reg.counter("probe.cores_probed").inc(int(feasible.size))
            _record_feasibility_stack(stack, feasible)
            return feasible
        return _is_feasible_stack(partition.candidate_stack(task_index))

    def probe_tasks(
        self,
        partition: Partition,
        task_indices: Sequence[int],
        rule: str = "max",
    ) -> np.ndarray:
        idx = np.asarray(task_indices, dtype=np.int64)
        cores = partition.cores
        if idx.size == 0:
            return np.empty((0, cores), dtype=np.float64)
        _check_rule(rule)
        if OBS.enabled:
            t0 = time.perf_counter()
            stacks = partition.candidate_stacks(idx)
            flat = _core_utilization_stack(
                stacks.reshape((-1,) + stacks.shape[2:]), rule
            )
            new_utils = flat.reshape(idx.size, cores)
            add_span_time("probe", time.perf_counter() - t0)
            reg = OBS.registry
            reg.counter(_tagged("probe.calls.batch")).inc(int(idx.size))
            reg.counter("probe.cores_probed").inc(int(new_utils.size))
            reg.counter("probe.infeasible_cores").inc(
                int(np.count_nonzero(~np.isfinite(new_utils)))
            )
            return new_utils
        stacks = partition.candidate_stacks(idx)
        flat = _core_utilization_stack(
            stacks.reshape((-1,) + stacks.shape[2:]), rule
        )
        return flat.reshape(idx.size, cores)

    def probe_feasible_tasks(
        self, partition: Partition, task_indices: Sequence[int]
    ) -> np.ndarray:
        idx = np.asarray(task_indices, dtype=np.int64)
        cores = partition.cores
        if idx.size == 0:
            return np.empty((0, cores), dtype=bool)
        if OBS.enabled:
            t0 = time.perf_counter()
            stacks = partition.candidate_stacks(idx)
            flat_stack = stacks.reshape((-1,) + stacks.shape[2:])
            flat = _is_feasible_stack(flat_stack)
            feasible = flat.reshape(idx.size, cores)
            add_span_time("probe", time.perf_counter() - t0)
            reg = OBS.registry
            reg.counter(_tagged("probe.calls.batch")).inc(int(idx.size))
            reg.counter("probe.cores_probed").inc(int(feasible.size))
            _record_feasibility_stack(flat_stack, flat)
            return feasible
        stacks = partition.candidate_stacks(idx)
        flat = _is_feasible_stack(stacks.reshape((-1,) + stacks.shape[2:]))
        return flat.reshape(idx.size, cores)


# ----------------------------------------------------------------------
# Incremental backend: warm per-core Theorem-1 state, Δ-refresh
# ----------------------------------------------------------------------
class _IncrementalState:
    """Per-partition probe cache: one ``(T, M)`` table per probe kind.

    For each ``("util", rule)`` / ``("feas",)`` key the state holds the
    cached answers ``values[t, m]`` alongside ``seqs[t, m]`` — the
    per-core version counter each answer was computed under.  An entry
    whose stored version differs from the partition's current one is
    stale.  Keeping whole tables (rather than per-task rows) makes the
    micro-batch staleness scan a single broadcast compare instead of a
    Python loop, which is what keeps the Δ-refresh bookkeeping cheaper
    than the kernel work it saves.

    Stored under ``partition.probe_state["incremental"]`` so the cache's
    lifetime is the partition's — :meth:`Partition.snapshot` starts cold
    (fresh counters-to-values pairing), :meth:`Partition.extended`
    carries the prefix rows over via :meth:`carried`.
    """

    __slots__ = ("tables",)

    def __init__(self) -> None:
        #: ``("util", rule) | ("feas",)`` -> ``(values (T, M), seqs (T, M))``
        self.tables: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}

    def table(
        self, key: tuple, n_tasks: int, cores: int, dtype
    ) -> tuple[np.ndarray, np.ndarray]:
        """The (values, seqs) table for ``key``, grown to ``n_tasks`` rows.

        New rows start with version ``-1`` (never matches a real
        counter), i.e. all-stale.
        """
        entry = self.tables.get(key)
        if entry is None or entry[0].shape[0] < n_tasks:
            values = np.empty((n_tasks, cores), dtype=dtype)
            seqs = np.full((n_tasks, cores), -1, dtype=np.int64)
            if entry is not None:
                old_values, old_seqs = entry
                values[: old_values.shape[0]] = old_values
                seqs[: old_seqs.shape[0]] = old_seqs
            entry = (values, seqs)
            self.tables[key] = entry
        return entry

    def carried(self, n_prefix: int) -> "_IncrementalState | None":
        """State for an :meth:`Partition.extended` successor.

        Rows for prefix tasks stay valid (same tasks, same matrices,
        same version counters); rows at or past ``n_prefix`` are dropped
        — those indices name *different* tasks in the grown set.  Arrays
        are copied so the two partitions never share mutable tables.
        """
        kept = _IncrementalState()
        for key, (values, seqs) in self.tables.items():
            n = min(n_prefix, values.shape[0])
            if n:
                kept.tables[key] = (values[:n].copy(), seqs[:n].copy())
        return kept if kept.tables else None


class IncrementalBackend(ProbeBackend):
    """Δ-state probing: unchanged cores answer from cache.

    The cache rides the partition (see :class:`_IncrementalState`), so
    warm state survives exactly as long as the partition object does —
    which is what lets the admission daemon keep Theorem-1 state hot
    across requests.  The single-task probes refresh stale columns with
    a sub-stack kernel call; the micro-batch probes collect every stale
    (task, core) pair across all rows into **one** flat
    :meth:`Partition.candidate_pairs_stack` evaluation, which is where
    the throughput win over the batch backend comes from.
    """

    name = "incremental"

    @staticmethod
    def state_of(partition: Partition) -> _IncrementalState:
        state = partition.probe_state.get("incremental")
        if not isinstance(state, _IncrementalState):
            state = _IncrementalState()
            partition.probe_state["incremental"] = state
        return state

    def probe(
        self, partition: Partition, task_index: int, rule: str = "max"
    ) -> np.ndarray:
        _check_rule(rule)
        state = self.state_of(partition)
        seqs_now = partition.core_versions()
        if OBS.enabled:
            t0 = time.perf_counter()
        values, seqs = state.table(
            ("util", rule), len(partition.taskset), partition.cores, np.float64
        )
        t = int(task_index)
        stale = np.flatnonzero(seqs[t] != seqs_now)
        n_fresh = stale.size
        if stale.size == seqs_now.size:
            values[t] = _core_utilization_stack(
                partition.candidate_stack(t), rule
            )
            seqs[t] = seqs_now
        elif stale.size:
            values[t, stale] = _core_utilization_stack(
                partition.candidate_stack_for_cores(t, stale), rule
            )
            seqs[t, stale] = seqs_now[stale]
        out = values[t].copy()
        if OBS.enabled:
            add_span_time("probe", time.perf_counter() - t0)
            _record_incremental(out, 1, n_fresh)
            OBS.registry.counter("probe.infeasible_cores").inc(
                int(np.count_nonzero(~np.isfinite(out)))
            )
        return out

    def probe_feasible(
        self, partition: Partition, task_index: int
    ) -> np.ndarray:
        state = self.state_of(partition)
        seqs_now = partition.core_versions()
        if OBS.enabled:
            t0 = time.perf_counter()
        values, seqs = state.table(
            ("feas",), len(partition.taskset), partition.cores, bool
        )
        t = int(task_index)
        stale = np.flatnonzero(seqs[t] != seqs_now)
        n_fresh = stale.size
        fresh_stack: np.ndarray | None = None
        fresh_vals: np.ndarray | None = None
        if stale.size == seqs_now.size:
            fresh_stack = partition.candidate_stack(t)
            fresh_vals = _is_feasible_stack(fresh_stack)
            values[t] = fresh_vals
            seqs[t] = seqs_now
        elif stale.size:
            fresh_stack = partition.candidate_stack_for_cores(t, stale)
            fresh_vals = _is_feasible_stack(fresh_stack)
            values[t, stale] = fresh_vals
            seqs[t, stale] = seqs_now[stale]
        out = values[t].copy()
        if OBS.enabled:
            add_span_time("probe", time.perf_counter() - t0)
            _record_incremental(out, 1, n_fresh)
            if fresh_stack is not None:
                _record_feasibility_stack(fresh_stack, fresh_vals)
        return out

    def _refresh_rows(
        self,
        partition: Partition,
        idx: np.ndarray,
        key: tuple,
        evaluate,
        dtype,
    ) -> tuple[np.ndarray, int, np.ndarray | None, np.ndarray | None]:
        """Shared Δ-refresh for the micro-batch probes.

        One broadcast compare finds every stale (task, core) pair of the
        whole micro-batch; one flat kernel call evaluates them; one
        fancy-index scatter writes them back.  Returns the ``(T, M)``
        answers, the fresh-pair count, and the fresh stack + values for
        admission-path attribution (``None`` when fully cached).
        """
        state = self.state_of(partition)
        seqs_now = partition.core_versions()
        values, seqs = state.table(
            key, len(partition.taskset), partition.cores, dtype
        )
        t_local, ci = np.nonzero(seqs[idx] != seqs_now)
        fresh_stack: np.ndarray | None = None
        fresh_vals: np.ndarray | None = None
        n_fresh = int(t_local.size)
        if n_fresh:
            ti = idx[t_local]
            fresh_stack = partition.candidate_pairs_stack(ti, ci)
            fresh_vals = evaluate(fresh_stack)
            values[ti, ci] = fresh_vals
            seqs[ti, ci] = seqs_now[ci]
        return values[idx], n_fresh, fresh_stack, fresh_vals

    def probe_tasks(
        self,
        partition: Partition,
        task_indices: Sequence[int],
        rule: str = "max",
    ) -> np.ndarray:
        idx = np.asarray(task_indices, dtype=np.int64)
        if idx.size == 0:
            return np.empty((0, partition.cores), dtype=np.float64)
        _check_rule(rule)
        if OBS.enabled:
            t0 = time.perf_counter()
        out, n_fresh, _, _ = self._refresh_rows(
            partition,
            idx,
            ("util", rule),
            lambda mats: _core_utilization_stack(mats, rule),
            np.float64,
        )
        if OBS.enabled:
            add_span_time("probe", time.perf_counter() - t0)
            _record_incremental(out, int(idx.size), n_fresh)
            OBS.registry.counter("probe.infeasible_cores").inc(
                int(np.count_nonzero(~np.isfinite(out)))
            )
        return out

    def probe_feasible_tasks(
        self, partition: Partition, task_indices: Sequence[int]
    ) -> np.ndarray:
        idx = np.asarray(task_indices, dtype=np.int64)
        if idx.size == 0:
            return np.empty((0, partition.cores), dtype=bool)
        if OBS.enabled:
            t0 = time.perf_counter()
        out, n_fresh, fresh_stack, fresh_vals = self._refresh_rows(
            partition, idx, ("feas",), _is_feasible_stack, bool
        )
        if OBS.enabled:
            add_span_time("probe", time.perf_counter() - t0)
            _record_incremental(out, int(idx.size), n_fresh)
            if fresh_stack is not None:
                _record_feasibility_stack(fresh_stack, fresh_vals)
        return out


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_BACKENDS: dict[str, ProbeBackend] = {}


def register_backend(backend: ProbeBackend) -> ProbeBackend:
    """Register a backend instance under its :attr:`ProbeBackend.name`."""
    if not backend.name:
        raise ModelError("probe backend must define a non-empty name")
    _BACKENDS[backend.name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Sorted names of every registered probe backend."""
    return tuple(sorted(_BACKENDS))


def get_backend(name: str) -> ProbeBackend:
    """Look up a backend by name; unknown names raise :class:`ModelError`."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ModelError(
            f"unknown probe implementation {name!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None


register_backend(ScalarBackend())
register_backend(BatchBackend())
register_backend(IncrementalBackend())
