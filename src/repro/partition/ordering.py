"""Task-ordering strategies for partitioning heuristics.

The first of the two partitioning steps (Section III of the paper) is to
sort the tasks.  CA-TPA sorts by *utilization contribution*
(:func:`repro.analysis.contribution_order`); the classical heuristics
sort by decreasing maximum utilization ``u_i(l_i)``.  The remaining
orders exist for the ablation studies in DESIGN.md §5.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.contribution import contribution_order
from repro.model.taskset import MCTaskSet

__all__ = [
    "by_contribution",
    "by_max_utilization",
    "by_criticality_then_utilization",
    "randomized",
]


def by_contribution(taskset: MCTaskSet) -> list[int]:
    """CA-TPA's order: decreasing utilization contribution (Eq. (13))."""
    return contribution_order(taskset)


def by_max_utilization(taskset: MCTaskSet) -> list[int]:
    """Classical decreasing-utilization order on ``u_i(l_i)``.

    Ties broken by higher criticality, then by lower index (mirroring the
    paper's tie rules so comparisons isolate the sort key).
    """
    umax = np.array([t.max_utilization for t in taskset])
    crit = taskset.criticalities
    return np.lexsort((-crit, -umax)).tolist()


def by_criticality_then_utilization(taskset: MCTaskSet) -> list[int]:
    """Criticality-first order (higher criticality earlier), utilization
    ``u_i(l_i)`` descending within a level.  Used by criticality-aware
    baselines in the literature (e.g. Kelly et al.)."""
    umax = np.array([t.max_utilization for t in taskset])
    crit = taskset.criticalities
    return np.lexsort((-umax, -crit)).tolist()


def randomized(taskset: MCTaskSet, rng: np.random.Generator) -> list[int]:
    """Uniformly random order (ablation control)."""
    return rng.permutation(len(taskset)).tolist()
