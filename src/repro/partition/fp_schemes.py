"""Partitioned fixed-priority MC scheduling (Kelly-Aydin-Zhao style).

The paper's closest fixed-priority prior art ([22], Kelly et al.) sorts
tasks either by utilization or by criticality and packs them first-fit /
worst-fit with a per-core fixed-priority MC schedulability test.  This
module provides those schemes for dual-criticality systems, using
AMC-rtb with Audsley priority assignment
(:mod:`repro.analysis.response_time`) as the per-core test — enabling
the classic "partitioned EDF-VD vs partitioned FP" comparison as an
extension experiment.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.response_time import audsley_assignment
from repro.model.partition import Partition
from repro.model.taskset import MCTaskSet
from repro.partition import ordering
from repro.partition.base import Partitioner
from repro.types import ModelError, PartitionError

__all__ = ["FPPartitioner"]


class FPPartitioner(Partitioner):
    """Partitioned fixed-priority (AMC-rtb + Audsley) heuristic.

    Parameters
    ----------
    order:
        ``"utilization"`` (decreasing ``u_i(l_i)``, Kelly's DU family)
        or ``"criticality"`` (criticality first, then utilization,
        Kelly's criticality-aware family).
    fit:
        ``"first"`` or ``"worst"`` (worst = feasible core with the
        lowest packed load).
    """

    name = "fp"

    def __init__(self, order: str = "utilization", fit: str = "first"):
        if order not in ("utilization", "criticality"):
            raise PartitionError(f"unknown order {order!r}")
        if fit not in ("first", "worst"):
            raise PartitionError(f"unknown fit {fit!r}")
        self.order = order
        self.fit = fit
        self.name = f"fp-{'ff' if fit == 'first' else 'wf'}" + (
            "-ca" if order == "criticality" else ""
        )

    def order_tasks(self, taskset: MCTaskSet) -> list[int]:
        if taskset.levels != 2:
            raise ModelError(
                f"partitioned FP supports dual-criticality sets only,"
                f" got K={taskset.levels}"
            )
        if self.order == "utilization":
            return ordering.by_max_utilization(taskset)
        return ordering.by_criticality_then_utilization(taskset)

    def select_core(
        self, task_index: int, partition: Partition, state: dict
    ) -> int | None:
        loads = state.get("loads")
        if loads is None:
            loads = np.zeros(partition.cores, dtype=np.float64)
            state["loads"] = loads
        if self.fit == "first":
            core_order = range(partition.cores)
        else:
            core_order = np.argsort(loads, kind="stable")
        for m in core_order:
            m = int(m)
            candidate = partition.tasks_on(m) + [task_index]
            subset = partition.taskset.subset(candidate)
            if audsley_assignment(subset) is not None:
                loads[m] += partition.taskset[task_index].max_utilization
                return m
        return None

    def core_assignments(self, partition: Partition):
        """Per-core Audsley priority assignments for a finished partition
        (``None`` entries for empty cores)."""
        out = []
        for m in range(partition.cores):
            idx = partition.tasks_on(m)
            if not idx:
                out.append(None)
                continue
            out.append(audsley_assignment(partition.taskset.subset(idx)))
        return out
