"""Name -> partitioner registry.

The experiment harness and the CLI refer to schemes by these names; the
five canonical ones are the schemes evaluated in the paper's Section IV.
"""

from __future__ import annotations

from typing import Callable

from repro.partition.ablation import CATPAVariant
from repro.partition.base import Partitioner
from repro.partition.catpa import CATPA
from repro.partition.classical import (
    BestFitDecreasing,
    FirstFitDecreasing,
    WorstFitDecreasing,
)
from repro.partition.dbf_scheme import DBFFirstFit
from repro.partition.fp_schemes import FPPartitioner
from repro.partition.hybrid import HybridPartitioner
from repro.types import PartitionError

__all__ = ["PAPER_SCHEMES", "available_schemes", "get_partitioner", "register"]

#: The five schemes compared in the paper's evaluation, in plot order.
PAPER_SCHEMES: tuple[str, ...] = ("ca-tpa", "ffd", "bfd", "wfd", "hybrid")

_REGISTRY: dict[str, Callable[..., Partitioner]] = {
    "ca-tpa": CATPA,
    "ffd": FirstFitDecreasing,
    "bfd": BestFitDecreasing,
    "wfd": WorstFitDecreasing,
    "hybrid": HybridPartitioner,
    "ca-tpa-variant": CATPAVariant,
    "dbf-ffd": DBFFirstFit,
    "fp-ff": lambda **kw: FPPartitioner(fit="first", **kw),
    "fp-wf": lambda **kw: FPPartitioner(fit="worst", **kw),
    "fp-ff-ca": lambda **kw: FPPartitioner(order="criticality", fit="first", **kw),
}


def available_schemes() -> list[str]:
    """All registered scheme names, canonical paper schemes first."""
    rest = sorted(set(_REGISTRY) - set(PAPER_SCHEMES))
    return list(PAPER_SCHEMES) + rest


def get_partitioner(name: str, **kwargs) -> Partitioner:
    """Instantiate a partitioner by registry name.

    Keyword arguments are forwarded to the scheme constructor (e.g.
    ``get_partitioner("ca-tpa", alpha=0.3)``).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise PartitionError(
            f"unknown scheme {name!r}; available: {available_schemes()}"
        ) from None
    return factory(**kwargs)


def register(name: str, factory: Callable[..., Partitioner]) -> None:
    """Add a custom scheme to the registry (e.g. from user code)."""
    if name in _REGISTRY:
        raise PartitionError(f"scheme {name!r} already registered")
    _REGISTRY[name] = factory
