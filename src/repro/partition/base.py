"""Partitioner interface and result container.

Every partitioning heuristic in :mod:`repro.partition` is a
:class:`Partitioner` subclass: a stateless-per-call object whose
:meth:`~Partitioner.partition` method maps a task set onto ``M`` cores
and reports whether it succeeded.  A failed attempt still returns the
partial :class:`~repro.model.Partition` (useful for diagnostics) plus the
index of the first task that could not be placed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.model.partition import Partition
from repro.model.taskset import MCTaskSet
from repro.obs.runtime import OBS, scheme_tag, span
from repro.types import PartitionError

__all__ = ["Partitioner", "PartitionResult"]


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of one partitioning attempt.

    Attributes
    ----------
    scheme:
        Registry name of the heuristic that produced this result.
    schedulable:
        True iff every task was placed on a core that passes the
        EDF-VD schedulability test.
    partition:
        The (possibly partial, when ``schedulable`` is False) partition.
    order:
        Task indices in the order the heuristic processed them.
    failed_task:
        Index of the first unplaceable task, or ``None`` on success.
    """

    scheme: str
    schedulable: bool
    partition: Partition
    order: tuple[int, ...]
    failed_task: int | None = None
    _core_utils: np.ndarray | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def assignment(self) -> np.ndarray:
        """Task -> core index vector (-1 for unassigned)."""
        return self.partition.assignment

    def core_utilizations(self) -> np.ndarray:
        """Per-core EDF-VD core utilizations ``U^{Psi_m}`` (Eq. (9)).

        Empty cores have utilization 0.  May contain ``inf`` for a
        partial/failed partition whose last probed state was infeasible
        (never for a ``schedulable`` result).
        """
        if self._core_utils is not None:
            return self._core_utils.copy()
        return self.partition.core_utilizations()


class Partitioner(abc.ABC):
    """Base class for task-to-core partitioning heuristics."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def order_tasks(self, taskset: MCTaskSet) -> list[int]:
        """The order in which tasks are offered to cores."""

    @abc.abstractmethod
    def select_core(
        self, task_index: int, partition: Partition, state: dict
    ) -> int | None:
        """Pick a feasible core for ``task_index`` or ``None`` if none fits.

        ``state`` is a per-attempt scratch dict the heuristic may use to
        cache incremental quantities across calls (e.g. per-core loads).
        """

    def partition(self, taskset: MCTaskSet, cores: int) -> PartitionResult:
        """Run the heuristic over the whole task set.

        Stops at the first unplaceable task (as Algorithm 1 does) and
        reports failure; otherwise returns the complete feasible
        partition.

        When :data:`repro.obs.OBS` is enabled the attempt is tagged with
        the scheme name (so probe/Theorem-1 counters recorded in the
        analysis layers are attributed per scheme) and the outcome lands
        in the ``partition.attempts/failures/tasks_placed[<scheme>]``
        counters.
        """
        if cores < 1:
            raise PartitionError(f"core count must be >= 1, got {cores}")
        part = Partition(taskset, cores)
        order = self.order_tasks(taskset)
        if sorted(order) != list(range(len(taskset))):
            raise PartitionError(
                f"{self.name}: order_tasks must return a permutation of all tasks"
            )
        with scheme_tag(self.name), span("partition.attempt"):
            state: dict = {}
            placed = 0
            for task_index in order:
                target = self.select_core(task_index, part, state)
                if target is None:
                    self._record_outcome(placed, failed=True)
                    return PartitionResult(
                        scheme=self.name,
                        schedulable=False,
                        partition=part,
                        order=tuple(order),
                        failed_task=task_index,
                    )
                part.assign(task_index, target)
                placed += 1
            self._record_outcome(placed, failed=False)
        return PartitionResult(
            scheme=self.name,
            schedulable=True,
            partition=part,
            order=tuple(order),
            failed_task=None,
            _core_utils=self._final_core_utils(part, state),
        )

    def _record_outcome(self, placed: int, *, failed: bool) -> None:
        if not OBS.enabled:
            return
        reg = OBS.registry
        reg.counter(f"partition.attempts[{self.name}]").inc()
        reg.counter(f"partition.tasks_placed[{self.name}]").inc(placed)
        if failed:
            reg.counter(f"partition.failures[{self.name}]").inc()

    def _final_core_utils(self, partition: Partition, state: dict) -> np.ndarray | None:
        """Hook: heuristics that track Eq.-(9) core utilizations
        incrementally can hand them over to the result to avoid a
        recompute; default is ``None`` (recompute on demand)."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
