"""Structured result artifacts: the one schema every renderer reads.

A :class:`SweepArtifact` is the finished product of one figure sweep —
swept values, full point provenance (workload config + scheme specs),
and the finalized :class:`~repro.metrics.aggregate.SchemeStats` per
scheme.  ``format_sweep``, ``sweep_to_csv``, the weighted-schedulability
summary, and the CLI all render from this object; its JSON form is
strict (no NaN literals) and versioned via :data:`SCHEMA_VERSION`, and
floats survive the round-trip bit-exactly (Python's shortest-repr float
serialization), so ``from_json(to_json(a)) == a``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.engine.spec import PointSpec, SchemeSpec
from repro.gen.params import WorkloadConfig
from repro.metrics.aggregate import SchemeStats
from repro.types import ReproError

__all__ = ["SCHEMA_VERSION", "PointResult", "SweepArtifact"]

#: Version of the artifact/store JSON schema.  Bump on any change to the
#: serialized shape *or* to the semantics of the recorded numbers; the
#: shard store keys on it, so bumping also invalidates every checkpoint.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class PointResult:
    """One evaluated data point, with full provenance.

    Supports mapping-style access by scheme label (``row["ca-tpa"]``,
    ``row.items()``) so renderers and tests can treat it like the plain
    ``dict[str, SchemeStats]`` it replaced.
    """

    value: object  #: the swept value this point belongs to
    config: WorkloadConfig
    schemes: tuple[SchemeSpec, ...]
    stats: tuple[SchemeStats, ...]  #: aligned with ``schemes``

    def __post_init__(self) -> None:
        if len(self.schemes) != len(self.stats):
            raise ReproError(
                f"{len(self.schemes)} schemes but {len(self.stats)} stats"
            )

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(s.label for s in self.schemes)

    def __getitem__(self, label: str) -> SchemeStats:
        for spec, stats in zip(self.schemes, self.stats):
            if spec.label == label:
                return stats
        raise KeyError(label)

    def __contains__(self, label: str) -> bool:
        return label in self.labels

    def __iter__(self):
        return iter(self.labels)

    def keys(self) -> tuple[str, ...]:
        return self.labels

    def items(self):
        return [(spec.label, stats) for spec, stats in zip(self.schemes, self.stats)]

    def to_point_spec(self, sets: int, seed: int, kind: str = "stats") -> PointSpec:
        """The spec that regenerates this row (provenance is executable)."""
        return PointSpec(
            config=self.config, schemes=self.schemes, sets=sets, seed=seed, kind=kind
        )

    def to_dict(self) -> dict:
        return {
            "value": self.value,
            "config": self.config.to_dict(),
            "schemes": [s.to_dict() for s in self.schemes],
            "stats": [s.to_dict() for s in self.stats],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PointResult":
        return cls(
            value=data["value"],
            config=WorkloadConfig.from_dict(data["config"]),
            schemes=tuple(SchemeSpec.from_dict(s) for s in data["schemes"]),
            stats=tuple(SchemeStats.from_dict(s) for s in data["stats"]),
        )


@dataclass(frozen=True)
class SweepArtifact:
    """All data points of one figure, ready for any renderer."""

    figure: str  #: e.g. "fig1"
    title: str
    parameter: str  #: axis label, e.g. "NSU"
    values: tuple
    sets_per_point: int
    seed: int
    #: rows[i] corresponds to values[i]
    rows: tuple[PointResult, ...]
    schema_version: int = field(default=SCHEMA_VERSION)

    @property
    def definition(self) -> "SweepArtifact":
        """Back-compat shim: the artifact carries its own definition
        fields (``figure``/``title``/``parameter``/``values``), so old
        ``result.definition.values``-style callers keep working."""
        return self

    @property
    def schemes(self) -> list[str]:
        return list(self.rows[0].labels) if self.rows else []

    def series(self, metric: str) -> dict[str, list[float]]:
        """Per-scheme series of ``metric`` across the swept values.

        ``metric`` is one of ``sched_ratio``, ``u_sys``, ``u_avg``,
        ``imbalance``.
        """
        return {
            scheme: [getattr(row[scheme], metric) for row in self.rows]
            for scheme in self.schemes
        }

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "kind": "sweep_artifact",
            "figure": self.figure,
            "title": self.title,
            "parameter": self.parameter,
            "values": list(self.values),
            "sets_per_point": self.sets_per_point,
            "seed": self.seed,
            "rows": [row.to_dict() for row in self.rows],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, allow_nan=False)

    @classmethod
    def from_dict(cls, data: dict) -> "SweepArtifact":
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ReproError(
                f"unsupported artifact schema version {version!r}"
                f" (this build reads version {SCHEMA_VERSION})"
            )
        return cls(
            figure=data["figure"],
            title=data["title"],
            parameter=data["parameter"],
            values=tuple(data["values"]),
            sets_per_point=int(data["sets_per_point"]),
            seed=int(data["seed"]),
            rows=tuple(PointResult.from_dict(r) for r in data["rows"]),
            schema_version=version,
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepArtifact":
        return cls.from_dict(json.loads(text))
