"""Declarative experiment specifications.

An experiment is a JSON-serializable *plan*, not code: a grid of
(:class:`~repro.gen.params.WorkloadConfig`, scheme list, sets, seed)
points.  The figure builders in :mod:`repro.experiments.sweeps`, the
head-to-head harness, and the CLI all produce these specs; the
:class:`~repro.engine.core.Engine` evaluates them.  Because a spec is
pure data, two different call sites that describe the same point (e.g.
Fig. 1 at NSU = 0.6 and Fig. 2 at IFC = 0.4 — both the Section IV-A
default) hash to the same shard keys and share checkpointed results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gen.params import WorkloadConfig
from repro.types import ReproError

__all__ = [
    "SchemeSpec",
    "default_schemes",
    "PointSpec",
    "ExperimentSpec",
    "plan_shards",
]

#: Evaluation modes a :class:`PointSpec` supports: ``stats`` accumulates
#: the four paper metrics per scheme; ``h2h`` tallies the pairwise
#: dominance matrix over the common task-set batch; ``validate`` sweeps
#: the task sets through the :mod:`repro.validate` oracle registry;
#: ``dynsim`` simulates each set under an injected-event script
#: (:mod:`repro.experiments.dynamic`).  The engine resolves each kind's
#: runner/codec through its shard-kind registry
#: (:func:`repro.engine.core.shard_kind`).
POINT_KINDS = ("stats", "h2h", "validate", "dynsim")


@dataclass(frozen=True)
class SchemeSpec:
    """Picklable description of one scheme configuration.

    ``label`` is the reporting key (defaults to ``name``); ``kwargs``
    are forwarded to the registry factory.
    """

    name: str
    kwargs: tuple[tuple[str, object], ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        if not self.label:
            object.__setattr__(self, "label", self.name)

    @classmethod
    def make(cls, name: str, label: str = "", **kwargs) -> "SchemeSpec":
        return cls(name=name, kwargs=tuple(sorted(kwargs.items())), label=label)

    def build(self):
        from repro.partition.registry import get_partitioner

        return get_partitioner(self.name, **dict(self.kwargs))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "label": self.label,
            "kwargs": {k: v for k, v in self.kwargs},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SchemeSpec":
        return cls.make(data["name"], label=data["label"], **data["kwargs"])


def default_schemes(alpha: float = 0.7) -> list[SchemeSpec]:
    """The paper's five schemes: CA-TPA (with ``alpha``) + 4 baselines."""
    return [
        SchemeSpec.make("ca-tpa", alpha=alpha),
        SchemeSpec.make("ffd"),
        SchemeSpec.make("bfd"),
        SchemeSpec.make("wfd"),
        SchemeSpec.make("hybrid"),
    ]


@dataclass(frozen=True)
class PointSpec:
    """One data point: a workload config evaluated by a scheme list.

    ``kind`` selects the shard payload (see :data:`POINT_KINDS`).  The
    spec is hashable content for the store: everything that influences
    the numbers — config, schemes, seed, set count — is in here.
    """

    config: WorkloadConfig
    schemes: tuple[SchemeSpec, ...]
    sets: int = 200
    seed: int = 2016
    kind: str = "stats"
    #: kind-specific knobs, sorted ``(key, value)`` pairs (e.g. the
    #: ``dynsim`` burst factor).  Kept out of :meth:`to_dict` when empty
    #: so every pre-existing point keeps its shard hashes.
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.sets < 1:
            raise ReproError(f"sets must be >= 1, got {self.sets}")
        if not self.schemes:
            raise ReproError("at least one scheme is required")
        labels = self.labels
        if len(set(labels)) != len(labels):
            raise ReproError(f"duplicate scheme labels: {list(labels)}")
        if self.kind not in POINT_KINDS:
            raise ReproError(
                f"unknown point kind {self.kind!r}; expected one of {POINT_KINDS}"
            )

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(s.label for s in self.schemes)

    def to_dict(self) -> dict:
        data = {
            "config": self.config.to_dict(),
            "schemes": [s.to_dict() for s in self.schemes],
            "sets": self.sets,
            "seed": self.seed,
            "kind": self.kind,
        }
        if self.params:
            data["params"] = {k: v for k, v in self.params}
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "PointSpec":
        return cls(
            config=WorkloadConfig.from_dict(data["config"]),
            schemes=tuple(SchemeSpec.from_dict(s) for s in data["schemes"]),
            sets=int(data["sets"]),
            seed=int(data["seed"]),
            kind=data["kind"],
            params=tuple(sorted(data.get("params", {}).items())),
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """A whole figure: swept values and their data points, as pure data."""

    figure: str  #: e.g. "fig1"
    title: str
    parameter: str  #: axis label, e.g. "NSU"
    values: tuple
    points: tuple[PointSpec, ...] = field(default=())

    def __post_init__(self) -> None:
        if len(self.values) != len(self.points):
            raise ReproError(
                f"{len(self.values)} swept values but {len(self.points)} points"
            )
        if not self.points:
            raise ReproError("an experiment needs at least one point")

    @property
    def sets_per_point(self) -> int:
        return self.points[0].sets

    @property
    def seed(self) -> int:
        return self.points[0].seed

    def to_dict(self) -> dict:
        return {
            "figure": self.figure,
            "title": self.title,
            "parameter": self.parameter,
            "values": list(self.values),
            "points": [p.to_dict() for p in self.points],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        return cls(
            figure=data["figure"],
            title=data["title"],
            parameter=data["parameter"],
            values=tuple(data["values"]),
            points=tuple(PointSpec.from_dict(p) for p in data["points"]),
        )


def plan_shards(sets: int, jobs: int) -> list[tuple[int, int]]:
    """Split ``[0, sets)`` into at most ``jobs`` contiguous shards.

    Returns ``(start, count)`` pairs with every ``count > 0``.  When
    ``jobs`` is close to ``sets``, ``np.linspace`` rounding can emit
    zero-width intervals; those are dropped, and the cover is verified
    exactly — a gap or overlap here would silently skew every figure.
    """
    if sets < 1:
        raise ReproError(f"sets must be >= 1, got {sets}")
    jobs = max(1, min(jobs, sets))
    bounds = np.linspace(0, sets, jobs + 1).astype(int)
    shards = [
        (int(lo), int(hi - lo)) for lo, hi in zip(bounds, bounds[1:]) if hi > lo
    ]
    cursor = 0
    for start, count in shards:
        if start != cursor or count < 1:
            raise ReproError(
                f"shard plan does not cover [0, {sets}) exactly: {shards}"
            )
        cursor += count
    if cursor != sets:
        raise ReproError(
            f"shard plan does not cover [0, {sets}) exactly: {shards}"
        )
    return shards
