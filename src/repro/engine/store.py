"""Content-addressed on-disk store for checkpointed shard results.

Every shard (one contiguous ``[start, start+count)`` slice of a data
point's task sets) is stored under a SHA-256 key derived from the full
evaluation content: workload config, scheme specs, seed, set range,
shard kind, artifact schema version, and the package version.  Identical
work therefore evaluates exactly once — across re-runs, across figures
that share a point (Fig. 1–5 all contain the Section IV-A default), and
across interrupted sweeps, which resume from the completed shards.

Invalidation is by key, never in place: bumping
:data:`~repro.engine.artifact.SCHEMA_VERSION` or the package version
orphans old entries (``clear()`` reclaims the space).  An algorithm
change *within* one package version must be accompanied by a version
bump — otherwise stale checkpoints would keep answering for the old
behavior (see docs/API.md, "Invalidation rules").

Layout::

    <root>/objects/<key[:2]>/<key>.json

Writes go through a same-directory temp file + ``os.replace`` so a
killed run never leaves a torn checkpoint.  Temp names are
pid/thread/sequence-unique, so concurrent writers — including two
threads of one process, e.g. the admission daemon next to an in-process
sweep — never collide; temp debris older than
:data:`STALE_TEMP_SECONDS` is purged when a store is opened.
Unreadable entries are treated as misses and deleted.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
import time
from pathlib import Path

from repro._version import __version__
from repro.engine.artifact import SCHEMA_VERSION
from repro.engine.spec import PointSpec

__all__ = [
    "ResultStore",
    "shard_key",
    "default_store_root",
    "STALE_TEMP_SECONDS",
]

#: Environment variable naming the default store location for the CLI.
STORE_ENV = "REPRO_MC_STORE"

#: Temp files older than this (seconds) are debris from a crashed run
#: and are purged when a store is opened; younger ones may belong to a
#: concurrent writer mid-``put`` and are left alone.
STALE_TEMP_SECONDS = 3600.0

#: Process-wide sequence folded into temp names so two threads of one
#: process (the admission daemon next to an in-process sweep) can never
#: collide on a temp path, whatever their pids/idents do.
_TEMP_SEQ = itertools.count()


def default_store_root() -> Path:
    """CLI default: ``$REPRO_MC_STORE`` or ``~/.cache/repro-mc/store``."""
    env = os.environ.get(STORE_ENV)
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro-mc/store").expanduser()


def _canonical(payload: dict) -> str:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def shard_key(
    point: PointSpec, start: int, count: int, probe_impl: str = "batch"
) -> str:
    """The content hash addressing one shard of one data point.

    ``probe_impl`` is part of the evaluation content: all probe backends
    are pinned bit-identical, but a store must never answer a
    ``--probe-impl`` run with shards computed under a different backend
    — if a backend bug ever broke the equivalence, mixed caches would
    mask it from the validate campaign instead of exposing it.
    """
    content = {
        "schema_version": SCHEMA_VERSION,
        "repro_version": __version__,
        "kind": point.kind,
        "config": point.config.to_dict(),
        "schemes": [s.to_dict() for s in point.schemes],
        "seed": point.seed,
        "start": start,
        "count": count,
        "probe_impl": probe_impl,
    }
    if point.params:
        # Folded in only when present: every pre-existing point (no
        # params) keeps the shard hashes it was checkpointed under.
        content["params"] = {k: v for k, v in point.params}
    return hashlib.sha256(_canonical(content).encode("utf-8")).hexdigest()


class ResultStore:
    """Filesystem-backed shard checkpoint store.

    Safe for concurrent writers of the *same* content (last atomic
    rename wins with identical bytes) — which is exactly the CI case of
    two Python versions sharing one cached store.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0  #: lifetime get() hits (per-run counts live on Engine)
        self.misses = 0
        self.temps_purged = self._purge_stale_temps()

    def _path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def _temp_path(self, key: str) -> Path:
        """A collision-free temp sibling of the object path.

        The suffix folds in pid, thread ident and a process-wide
        sequence number: a pid alone is not unique within a process, so
        two threads writing the same key used to race on one temp file
        (one ``os.replace`` would find its temp already consumed).
        """
        path = self._path(key)
        token = f"{os.getpid()}.{threading.get_ident()}.{next(_TEMP_SEQ)}"
        return path.with_name(f"{path.name}.tmp.{token}")

    def _purge_stale_temps(self) -> int:
        """Delete temp files left behind by crashed runs; returns count.

        Only temps older than :data:`STALE_TEMP_SECONDS` go — a younger
        one may be a concurrent writer's in-flight ``put``.
        """
        cutoff = time.time() - STALE_TEMP_SECONDS
        purged = 0
        for tmp in self.root.glob("objects/*/*.tmp.*"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink(missing_ok=True)
                    purged += 1
            except OSError:
                continue  # vanished or unreadable: someone else's problem
        return purged

    def get(self, key: str) -> dict | None:
        """The stored payload, or ``None`` (corrupt entries are purged)."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.misses += 1
            path.unlink(missing_ok=True)
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Atomically persist one shard payload (strict JSON)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._temp_path(key)
        try:
            tmp.write_text(_canonical(payload))
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("objects/*/*.json"))

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def clear(self) -> int:
        """Delete every stored object; returns the number removed."""
        removed = 0
        for path in list(self.root.glob("objects/*/*.json")):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
