"""Resumable, checkpointed experiment engine.

Declarative :class:`ExperimentSpec` grids (workload config × scheme
specs × sets/seed) evaluated by :class:`Engine`, which shards the work,
checkpoints completed shards into a content-addressed
:class:`ResultStore`, and renders everything into the versioned
:class:`SweepArtifact` schema that the reporting/export/CLI layers
consume.  See docs/API.md ("The experiment engine") for the store
layout and invalidation rules.
"""

from repro.engine.artifact import SCHEMA_VERSION, PointResult, SweepArtifact
from repro.engine.core import Engine, EngineRunStats, run_experiment
from repro.engine.spec import (
    ExperimentSpec,
    PointSpec,
    SchemeSpec,
    default_schemes,
    plan_shards,
)
from repro.engine.store import ResultStore, default_store_root, shard_key

__all__ = [
    "SCHEMA_VERSION",
    "Engine",
    "EngineRunStats",
    "ExperimentSpec",
    "PointResult",
    "PointSpec",
    "ResultStore",
    "SchemeSpec",
    "SweepArtifact",
    "default_schemes",
    "default_store_root",
    "plan_shards",
    "run_experiment",
    "shard_key",
]
